examples/adaptive_reopt.ml: Format Printf Raqo Raqo_catalog Raqo_cluster Raqo_execsim Raqo_plan
