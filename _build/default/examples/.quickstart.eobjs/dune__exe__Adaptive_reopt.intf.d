examples/adaptive_reopt.mli:
