examples/cloud_budget.ml: Format Printf Raqo Raqo_catalog Raqo_cluster Raqo_plan Raqo_planner
