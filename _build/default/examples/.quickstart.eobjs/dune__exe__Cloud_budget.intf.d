examples/cloud_budget.mli:
