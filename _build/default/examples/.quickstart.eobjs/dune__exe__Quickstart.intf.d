examples/quickstart.mli:
