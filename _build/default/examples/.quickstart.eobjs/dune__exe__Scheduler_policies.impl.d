examples/scheduler_policies.ml: Format List Printf Raqo Raqo_catalog Raqo_cluster Raqo_execsim Raqo_plan Raqo_scheduler
