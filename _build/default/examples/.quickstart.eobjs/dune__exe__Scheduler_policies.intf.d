examples/scheduler_policies.mli:
