examples/train_your_own.ml: Format List Printf Raqo Raqo_cluster Raqo_cost Raqo_dtree Raqo_execsim Raqo_plan Raqo_workload
