examples/train_your_own.mli:
