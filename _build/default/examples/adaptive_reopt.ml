(* Adaptive RAQO (paper Sections IV & VIII): between optimization and
   execution the cluster conditions change — a workload spike takes most of
   the cluster. Re-consult the optimizer and compare plans.

   Uses the paper's 5.1 GB sampled orders table so the BHJ/SMJ flip of
   Section III is visible end to end.

   Run with: dune exec examples/adaptive_reopt.exe *)

let () =
  let schema = Raqo_catalog.Tpch.schema () in
  (* The paper's sampled orders (~5.1 GB of the 16.5 GB table). *)
  let schema =
    Raqo_catalog.Schema.with_relation schema
      (Raqo_catalog.Relation.scale (Raqo_catalog.Schema.find schema "orders") 0.31)
  in
  let model = Raqo.Models.hive () in
  let roomy = Raqo_cluster.Conditions.make ~max_containers:12 ~max_gb:10.0 () in
  let opt = Raqo.Cost_based.create ~model ~conditions:roomy schema in
  let query = Raqo_catalog.Tpch.q12 in

  Format.printf "Optimizing under roomy conditions (%a)\n" Raqo_cluster.Conditions.pp roomy;
  match Raqo.Cost_based.optimize opt query with
  | None -> print_endline "no plan"
  | Some (stale, stale_cost) -> begin
      Format.printf "  chosen: %a (est cost %.1f)\n\n" Raqo_plan.Join_tree.pp_joint stale
        stale_cost;

      (* A spike hits: only small containers remain available. *)
      let spiked = Raqo_cluster.Conditions.make ~max_containers:40 ~max_gb:4.0 () in
      Format.printf "Cluster spike! New conditions: %a\n" Raqo_cluster.Conditions.pp spiked;
      match Raqo.Adaptive.reoptimize opt ~stale ~new_conditions:spiked query with
      | None -> print_endline "no feasible plan under the new conditions"
      | Some r ->
          Format.printf "  stale plan re-costed (clamped): %.1f\n" r.Raqo.Adaptive.stale_cost_now;
          Format.printf "  fresh plan: %a (est cost %.1f)\n" Raqo_plan.Join_tree.pp_joint
            r.Raqo.Adaptive.fresh r.Raqo.Adaptive.fresh_cost;
          Printf.printf "  plan changed: %b, improvement from re-optimizing: %.2fx\n"
            r.Raqo.Adaptive.plan_changed r.Raqo.Adaptive.improvement;
          print_string
            (Raqo.Explain.diff ~before:stale ~after:r.Raqo.Adaptive.fresh);
          (* Ground-truth check on the simulator. *)
          let clamp plan =
            Raqo_plan.Join_tree.map_annot
              (fun (impl, res) -> (impl, Raqo_cluster.Conditions.clamp spiked res))
              plan
          in
          match
            ( Raqo_execsim.Simulate.run_joint Raqo_execsim.Engine.hive schema (clamp stale),
              Raqo_execsim.Simulate.run_joint Raqo_execsim.Engine.hive schema
                r.Raqo.Adaptive.fresh )
          with
          | Ok old_run, Ok new_run ->
              Printf.printf
                "  simulated: stale plan %.0f s vs fresh plan %.0f s (%.2fx speedup)\n"
                old_run.Raqo_execsim.Simulate.seconds new_run.Raqo_execsim.Simulate.seconds
                (old_run.Raqo_execsim.Simulate.seconds
                /. new_run.Raqo_execsim.Simulate.seconds)
          | Error e, _ ->
              Printf.printf "  stale plan no longer runs at all: %s\n" e
          | _, Error e -> Printf.printf "  fresh plan failed: %s\n" e
    end
