(* The four RAQO use cases of paper Section IV, on TPC-H Q3:

     r => p       best plan for a fixed resource budget (tenant quota)
     p => (r, c)  cheapest resources + price for an already-fixed plan
     (p, r)       jointly optimal plan and resources
     c => (p, r)  best performance under a monetary cap

   Run with: dune exec examples/cloud_budget.exe *)

let describe tag (p : Raqo.Use_cases.priced_plan) =
  Format.printf "%s\n  plan: %a\n  est cost %.1f, est price $%.4f\n\n" tag
    Raqo_plan.Join_tree.pp_joint p.Raqo.Use_cases.plan p.Raqo.Use_cases.est_cost
    p.Raqo.Use_cases.est_money

let () =
  let schema = Raqo_catalog.Tpch.schema () in
  let model = Raqo.Models.hive () in
  let opt =
    Raqo.Cost_based.create ~kind:Raqo.Cost_based.Fast_randomized ~model
      ~conditions:Raqo_cluster.Conditions.default schema
  in
  let query = Raqo_catalog.Tpch.q3 in

  (* Use case 1 — r => p: the tenant's quota is 20 containers x 4 GB. *)
  let quota = Raqo_cluster.Resources.make ~containers:20 ~container_gb:4.0 in
  (match Raqo.Use_cases.plan_for_resources opt ~resources:quota query with
  | Some p -> describe "[r => p] best plan within a 20 x 4 GB quota:" p
  | None -> print_endline "[r => p] no feasible plan");

  (* Use case 2 — p => (r, c): the user insists on the stock join order;
     RAQO picks the resources and quotes the price. *)
  let shape = Raqo_planner.Heuristics.greedy_left_deep schema query in
  (match Raqo.Use_cases.resources_for_plan opt shape with
  | Some p -> describe "[p => (r, c)] resources for the stock join order:" p
  | None -> print_endline "[p => (r, c)] no feasible resources");

  (* Use case 3 — (p, r): abundant resources, jointly optimal. *)
  (match Raqo.Use_cases.best_joint opt query with
  | Some p -> describe "[(p, r)] jointly optimal plan and resources:" p
  | None -> print_endline "[(p, r)] no feasible plan");

  (* Use case 4 — c => (p, r): a hard monetary cap. *)
  let budget = 0.40 in
  match Raqo.Use_cases.plan_for_price opt ~budget query with
  | Some (p, within) ->
      describe
        (Printf.sprintf "[c => (p, r)] best plan under a $%.2f cap (%s):" budget
           (if within then "within budget" else "budget infeasible; cheapest shown"))
        p
  | None -> print_endline "[c => (p, r)] no plan"
