(* Scheduler policies: the paper's "interaction with the DAG scheduler"
   question made concrete. A query is optimized for the full cluster and
   submitted; a load spike takes most of the capacity away mid-flight.
   Should the scheduler delay the job, fail it, or adapt the remaining
   stages (downscale / re-optimize)?

   Run with: dune exec examples/scheduler_policies.exe *)

module Capacity = Raqo_scheduler.Capacity
module Executor = Raqo_scheduler.Executor

let () =
  let schema = Raqo_catalog.Tpch.schema () in
  let schema =
    Raqo_catalog.Schema.with_relation schema
      (Raqo_catalog.Relation.scale (Raqo_catalog.Schema.find schema "orders") 0.31)
  in
  let model = Raqo.Models.hive () in
  let engine = Raqo_execsim.Engine.hive in
  let roomy = Raqo_cluster.Conditions.make ~max_containers:100 ~max_gb:10.0 () in
  let reduced = Raqo_cluster.Conditions.make ~max_containers:20 ~max_gb:3.0 () in

  let opt = Raqo.Cost_based.create ~model ~conditions:roomy schema in
  match Raqo.Cost_based.optimize opt Raqo_catalog.Tpch.q3 with
  | None -> print_endline "no plan"
  | Some (plan, _) ->
      Format.printf "Plan (optimized for the full cluster):\n  %a\n\n"
        Raqo_plan.Join_tree.pp_joint plan;
      let capacity =
        Capacity.dip ~normal:roomy ~reduced ~from_t:1.0 ~until_t:2000.0
      in
      print_endline "Cluster: full, but a spike reduces it to 20 x 3 GB during [1, 2000) s.\n";
      List.iter
        (fun (name, policy) ->
          match Executor.run ~policy engine ~model schema ~capacity plan with
          | Executor.Completed { finish; total_wait; gb_seconds; stages } ->
              Printf.printf "%-20s completed at %6.0f s (waited %5.0f s, %.1f TB·s)\n" name
                finish total_wait (gb_seconds /. 1024.0);
              List.iter
                (fun (s : Executor.stage_report) ->
                  Format.printf "    stage %d: %a at %a%s\n" s.Executor.index
                    Raqo_plan.Join_impl.pp s.Executor.impl Raqo_cluster.Resources.pp
                    s.Executor.resources
                    (if s.Executor.adapted then "  [adapted]" else ""))
                stages
          | Executor.Failed { at_time; stage; reason } ->
              Printf.printf "%-20s FAILED at %.0f s (stage %d): %s\n" name at_time stage
                reason)
        [
          ("Wait", Executor.Wait None);
          ("Wait (500 s cap)", Executor.Wait (Some 500.0));
          ("Fail", Executor.Fail);
          ("Downscale", Executor.Downscale);
          ("Reoptimize", Executor.Reoptimize);
        ]
