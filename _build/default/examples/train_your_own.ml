(* Train-your-own: regenerate the paper's learning pipeline end to end —
   profile runs over the data-resource grid, a linear-regression cost model
   per operator (Section VI-A), and a CART decision tree for rule-based
   RAQO (Section V-B) — then compare against the shipped artifacts.

   Run with: dune exec examples/train_your_own.exe *)

let () =
  let engine = Raqo_execsim.Engine.hive in

  (* 1. Profile runs: sweep the simulator over the data-resource grid. *)
  let small_sizes, configs = Raqo.Join_dt.training_grid engine ~big_gb:77.0 in
  let samples = Raqo_workload.Profile_runs.sweep engine ~big_gb:77.0 ~small_sizes ~configs in
  Printf.printf "Profiled %d (implementation, size, configuration) runs\n"
    (List.length samples);

  (* 2. Cost model: OLS per operator. The paper's published coefficients use
     the 7-feature space; the extended space adds the reciprocal terms. *)
  let paper_space =
    Raqo_workload.Profile_runs.train_cost_model ~space:Raqo_cost.Feature.Paper samples
  in
  let extended =
    Raqo_workload.Profile_runs.train_cost_model ~space:Raqo_cost.Feature.Extended samples
  in
  let report name model =
    let r2_smj, r2_bhj = Raqo_workload.Profile_runs.model_fit samples model in
    Printf.printf "  %-22s R2(SMJ)=%.3f  R2(BHJ)=%.3f\n" name r2_smj r2_bhj
  in
  print_endline "\nCost-model fit on the profile runs:";
  report "paper 7-feature space" paper_space;
  report "extended space" extended;
  Format.printf "  SMJ coefficients (extended): %a\n" Raqo_cost.Linreg.pp
    extended.Raqo_cost.Op_cost.smj;

  (* 3. Decision tree: CART over the switch-point grid (Figure 11). *)
  let tree = Raqo.Join_dt.train engine ~big_gb:77.0 in
  let pruned = Raqo.Join_dt.train ~prune:true engine ~big_gb:77.0 in
  Printf.printf
    "\nRAQO decision tree: %d nodes, depth %d (pruned: %d nodes, depth %d)\n"
    (Raqo_dtree.Tree.n_nodes tree) (Raqo_dtree.Tree.depth tree)
    (Raqo_dtree.Tree.n_nodes pruned) (Raqo_dtree.Tree.depth pruned);
  print_endline "\nPruned tree (cf. paper Figure 11):";
  print_string (Raqo.Join_dt.render pruned);

  (* 4. Sanity: the freshly trained artifacts agree with the shipped model
     on the paper's headline decision. *)
  let r_big = Raqo_cluster.Resources.make ~containers:10 ~container_gb:10.0 in
  let r_par = Raqo_cluster.Resources.make ~containers:40 ~container_gb:3.0 in
  let show name resources =
    let model_pick =
      match Raqo_cost.Op_cost.best_impl extended ~small_gb:5.1 ~resources with
      | Some (impl, _) -> Raqo_plan.Join_impl.to_string impl
      | None -> "none"
    in
    let tree_pick =
      Raqo_plan.Join_impl.to_string (Raqo.Join_dt.choose tree ~small_gb:5.1 ~resources)
    in
    Format.printf "  %-18s model: %-3s  tree: %-3s\n" name model_pick tree_pick
  in
  print_endline "\n5.1 GB build side, who wins?";
  show "10 x 10 GB" r_big;
  show "40 x 3 GB" r_par
