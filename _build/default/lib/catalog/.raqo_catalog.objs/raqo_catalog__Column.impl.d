lib/catalog/column.ml: Histogram List Printf
