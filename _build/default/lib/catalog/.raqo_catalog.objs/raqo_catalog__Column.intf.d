lib/catalog/column.mli: Histogram
