lib/catalog/histogram.ml: Array Float
