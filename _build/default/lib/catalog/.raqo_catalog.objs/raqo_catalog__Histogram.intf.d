lib/catalog/histogram.mli:
