lib/catalog/join_graph.ml: List Map Set String
