lib/catalog/join_graph.mli:
