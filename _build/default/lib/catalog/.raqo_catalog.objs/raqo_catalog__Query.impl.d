lib/catalog/query.ml: Format List Schema String
