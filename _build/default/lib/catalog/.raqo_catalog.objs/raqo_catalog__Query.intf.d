lib/catalog/query.mli: Format Schema
