lib/catalog/random_schema.ml: Array Float Join_graph List Printf Raqo_util Relation Schema Set String
