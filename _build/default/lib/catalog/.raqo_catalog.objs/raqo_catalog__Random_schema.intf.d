lib/catalog/random_schema.mli: Raqo_util Schema
