lib/catalog/relation.ml: Format Raqo_util
