lib/catalog/relation.mli: Format
