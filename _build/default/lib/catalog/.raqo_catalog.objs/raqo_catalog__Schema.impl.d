lib/catalog/schema.ml: Float Join_graph List Map Raqo_util Relation String
