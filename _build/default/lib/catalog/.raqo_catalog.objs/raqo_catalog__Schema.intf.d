lib/catalog/schema.mli: Join_graph Relation
