lib/catalog/tpch.ml: Column Histogram Join_graph List Relation Schema
