lib/catalog/tpch.mli: Column Schema
