type t = { table : string; name : string; histogram : Histogram.t; distinct : float }

let make ~table ~name ~histogram ~distinct =
  if distinct <= 0.0 then invalid_arg "Column.make: nonpositive distinct count";
  { table; name; histogram; distinct }

type catalog = t list

let catalog columns = columns

let find catalog ?table name =
  let matches =
    List.filter
      (fun c ->
        c.name = name
        &&
        match table with
        | Some t -> c.table = t
        | None -> true)
      catalog
  in
  match matches with
  | [ c ] -> Ok c
  | [] ->
      Error
        (match table with
        | Some t -> Printf.sprintf "unknown column %s.%s" t name
        | None -> Printf.sprintf "unknown column %s" name)
  | _ :: _ :: _ ->
      Error (Printf.sprintf "ambiguous column %s (qualify it with a table name)" name)

let columns catalog = catalog
