(** Column metadata and statistics: what the SQL front end needs to resolve
    a column reference to its table and estimate filter selectivities. *)

type t = {
  table : string;
  name : string;
  histogram : Histogram.t;
  distinct : float;  (** estimated distinct-value count, for equality *)
}

val make : table:string -> name:string -> histogram:Histogram.t -> distinct:float -> t

(** A set of columns with name-based lookup. *)
type catalog

val catalog : t list -> catalog

(** [find catalog ?table name] resolves a column. With [table] the lookup is
    exact; without, the bare name must be unambiguous across tables.
    Errors are reported as [Error message]. *)
val find : catalog -> ?table:string -> string -> (t, string) result

(** [columns catalog] lists all columns. *)
val columns : catalog -> t list
