(* Equi-depth: each of the n buckets holds 1/n of the rows; only the bucket
   boundaries are stored. *)
type t = { bounds : float array }

let of_bounds bounds =
  if Array.length bounds < 2 then invalid_arg "Histogram.of_bounds: need at least 2 bounds";
  for i = 0 to Array.length bounds - 2 do
    if bounds.(i) > bounds.(i + 1) then
      invalid_arg "Histogram.of_bounds: bounds must be nondecreasing"
  done;
  { bounds }

let of_samples ~buckets samples =
  if buckets <= 0 then invalid_arg "Histogram.of_samples: nonpositive bucket count";
  if Array.length samples = 0 then invalid_arg "Histogram.of_samples: empty samples";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let bounds =
    Array.init (buckets + 1) (fun i ->
        if i = buckets then sorted.(n - 1)
        else sorted.(i * n / buckets))
  in
  of_bounds bounds

let uniform ~lo ~hi =
  if hi < lo then invalid_arg "Histogram.uniform: hi < lo";
  of_bounds [| lo; hi |]

let n_buckets t = Array.length t.bounds - 1
let min_value t = t.bounds.(0)
let max_value t = t.bounds.(Array.length t.bounds - 1)

let selectivity_lt t v =
  let n = n_buckets t in
  if v <= min_value t then 0.0
  else if v >= max_value t then 1.0
  else begin
    (* Find the bucket containing v, interpolate inside it. *)
    let rec go i =
      if i >= n then 1.0
      else begin
        let lo = t.bounds.(i) and hi = t.bounds.(i + 1) in
        if v <= hi then begin
          let within = if hi > lo then (v -. lo) /. (hi -. lo) else 0.0 in
          (float_of_int i +. within) /. float_of_int n
        end
        else go (i + 1)
      end
    in
    go 0
  end

let selectivity_le = selectivity_lt
let selectivity_gt t v = 1.0 -. selectivity_le t v
let selectivity_ge t v = 1.0 -. selectivity_lt t v

let selectivity_between t ~lo ~hi =
  if hi < lo then 0.0 else Float.max 0.0 (selectivity_le t hi -. selectivity_lt t lo)

let selectivity_eq t ~distinct v =
  if distinct <= 0.0 then invalid_arg "Histogram.selectivity_eq: nonpositive distinct count";
  if v < min_value t || v > max_value t then 0.0 else 1.0 /. distinct
