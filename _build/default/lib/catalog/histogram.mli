(** Equi-depth histograms for filter-selectivity estimation: the statistics
    a SQL WHERE clause needs to scale base-relation cardinalities before
    join planning (this is how "orders sampled down to 5.1 GB" enters the
    optimizer when written as a predicate). *)

type t

(** [of_bounds bounds] builds an equi-depth histogram from bucket
    boundaries: [bounds.(i) .. bounds.(i+1)] is one bucket holding an equal
    fraction of the rows. Bounds must be nondecreasing with at least two
    entries.
    @raise Invalid_argument otherwise. *)
val of_bounds : float array -> t

(** [of_samples ~buckets samples] builds an equi-depth histogram over
    observed values.
    @raise Invalid_argument on empty samples or nonpositive bucket count. *)
val of_samples : buckets:int -> float array -> t

(** [uniform ~lo ~hi] models a uniform distribution on [\[lo, hi\]]. *)
val uniform : lo:float -> hi:float -> t

val n_buckets : t -> int
val min_value : t -> float
val max_value : t -> float

(** [selectivity_lt t v] estimates the fraction of rows with value < [v]
    (linear interpolation within the containing bucket). In [\[0, 1\]]. *)
val selectivity_lt : t -> float -> float

(** [selectivity_le t v], [selectivity_gt t v], [selectivity_ge t v] —
    the other comparison directions. With continuous-value interpolation,
    [le] and [lt] coincide. *)
val selectivity_le : t -> float -> float

val selectivity_gt : t -> float -> float
val selectivity_ge : t -> float -> float

(** [selectivity_between t ~lo ~hi] estimates [lo <= value <= hi]. *)
val selectivity_between : t -> lo:float -> hi:float -> float

(** [selectivity_eq t ~distinct v] estimates equality against one of
    [distinct] distinct values: [1/distinct] when [v] lies in range, 0
    outside. *)
val selectivity_eq : t -> distinct:float -> float -> float
