type edge = { left : string; right : string; selectivity : float }

module Pair = struct
  type t = string * string

  (* Unordered pair key. *)
  let normalize (a, b) = if String.compare a b <= 0 then (a, b) else (b, a)
  let compare x y = compare (normalize x) (normalize y)
end

module Pair_map = Map.Make (Pair)

type t = { edge_list : edge list; by_pair : float Pair_map.t }

let make edges =
  let by_pair =
    List.fold_left
      (fun acc e ->
        if e.left = e.right then invalid_arg "Join_graph.make: self-edge";
        if e.selectivity <= 0.0 || e.selectivity > 1.0 then
          invalid_arg "Join_graph.make: selectivity out of (0,1]";
        let key = (e.left, e.right) in
        if Pair_map.mem key acc then invalid_arg "Join_graph.make: duplicate edge";
        Pair_map.add key e.selectivity acc)
      Pair_map.empty edges
  in
  { edge_list = edges; by_pair }

let edges t = t.edge_list
let selectivity t a b = Pair_map.find_opt (a, b) t.by_pair

let neighbors t a =
  List.filter_map
    (fun e ->
      if e.left = a then Some e.right else if e.right = a then Some e.left else None)
    t.edge_list

let edges_between t xs ys =
  let in_list l name = List.mem name l in
  List.filter
    (fun e ->
      (in_list xs e.left && in_list ys e.right)
      || (in_list xs e.right && in_list ys e.left))
    t.edge_list

let connected t names =
  match names with
  | [] -> true
  | first :: _ ->
      let module S = Set.Make (String) in
      let universe = S.of_list names in
      let rec grow frontier seen =
        if S.is_empty frontier then seen
        else begin
          let next =
            S.fold
              (fun name acc ->
                List.fold_left
                  (fun acc n ->
                    if S.mem n universe && not (S.mem n seen) then S.add n acc else acc)
                  acc (neighbors t name))
              frontier S.empty
          in
          grow next (S.union seen next)
        end
      in
      let start = S.singleton first in
      S.equal (grow start start) universe
