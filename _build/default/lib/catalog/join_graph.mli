(** The join graph: which relations join with which, and how selective each
    join predicate is. The paper keeps TPC-H's join edges and selectivities
    and reuses "similar selectivities" for randomly generated schemas. *)

type edge = {
  left : string;
  right : string;
  selectivity : float;  (** fraction of the cross product surviving the predicate *)
}

type t

(** [make edges] builds a graph. Edge endpoints are unordered; duplicate
    (unordered) pairs are rejected.
    @raise Invalid_argument on self-edges, nonpositive selectivity, or
    duplicates. *)
val make : edge list -> t

val edges : t -> edge list

(** [selectivity t a b] is the selectivity of the edge between [a] and [b],
    or [None] if they are not directly joinable. Symmetric. *)
val selectivity : t -> string -> string -> float option

(** [neighbors t a] is the set of relations directly joinable with [a]. *)
val neighbors : t -> string -> string list

(** [edges_between t xs ys] is every edge with one endpoint in [xs] and the
    other in [ys]. *)
val edges_between : t -> string list -> string list -> edge list

(** [connected t names] is true when the sub-graph induced by [names] is
    connected — i.e. [names] can be joined without a cartesian product. *)
val connected : t -> string list -> bool
