type t = { name : string; relations : string list }

let make ~name schema relations =
  if relations = [] then invalid_arg "Query.make: empty relation set";
  let sorted = List.sort_uniq compare relations in
  if List.length sorted <> List.length relations then
    invalid_arg "Query.make: duplicate relations";
  List.iter
    (fun r ->
      if not (Schema.mem schema r) then invalid_arg ("Query.make: unknown relation " ^ r))
    relations;
  if not (Schema.joinable schema relations) then
    invalid_arg ("Query.make: relations of " ^ name ^ " are not joinable (cartesian product)");
  { name; relations }

let n_joins q = List.length q.relations - 1

let pp fmt q =
  Format.fprintf fmt "%s: join(%s)" q.name (String.concat ", " q.relations)
