(** A query, for this optimizer's purposes, is a named set of relations to be
    joined (the paper: "the queries consist of a set of relations that need
    to be joined"). *)

type t = { name : string; relations : string list }

(** [make ~name schema relations] validates that every relation exists, that
    the set is non-empty and duplicate-free, and that it is joinable without
    a cartesian product.
    @raise Invalid_argument otherwise. *)
val make : name:string -> Schema.t -> string list -> t

(** [n_joins q] is the number of join operators ([relations - 1]). *)
val n_joins : t -> int

val pp : Format.formatter -> t -> unit
