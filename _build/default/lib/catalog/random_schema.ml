module Rng = Raqo_util.Rng

let generate ?(extra_edge_fraction = 0.3) rng ~tables =
  if tables < 1 then invalid_arg "Random_schema.generate: need at least one table";
  let relation i =
    Relation.make
      ~name:(Printf.sprintf "t%d" i)
      ~rows:(float_of_int (Rng.int_in_range rng ~lo:100_000 ~hi:2_000_000))
      ~row_bytes:(float_of_int (Rng.int_in_range rng ~lo:100 ~hi:200))
  in
  let relations = List.init tables relation in
  let rel = Array.of_list relations in
  (* FK-style selectivity: one match per row of the larger side. *)
  let edge i j =
    let bigger = Float.max rel.(i).Relation.rows rel.(j).Relation.rows in
    { Join_graph.left = rel.(i).Relation.name;
      right = rel.(j).Relation.name;
      selectivity = 1.0 /. bigger }
  in
  (* Spanning tree: t_i attaches to a random earlier table. *)
  let tree = List.init (tables - 1) (fun i -> edge (i + 1) (Rng.int rng (i + 1))) in
  let n_extra =
    if tables < 3 then 0
    else int_of_float (extra_edge_fraction *. float_of_int tables)
  in
  let module S = Set.Make (struct
    type t = string * string

    let compare = compare
  end) in
  let key i j =
    let a = rel.(i).Relation.name and b = rel.(j).Relation.name in
    if String.compare a b < 0 then (a, b) else (b, a)
  in
  let existing =
    List.fold_left
      (fun acc (e : Join_graph.edge) ->
        S.add (if e.left < e.right then (e.left, e.right) else (e.right, e.left)) acc)
      S.empty tree
  in
  let rec add_extras acc existing remaining attempts =
    if remaining = 0 || attempts = 0 then acc
    else begin
      let i = Rng.int rng tables and j = Rng.int rng tables in
      if i = j || S.mem (key i j) existing then add_extras acc existing remaining (attempts - 1)
      else add_extras (edge i j :: acc) (S.add (key i j) existing) (remaining - 1) (attempts - 1)
    end
  in
  let extras = add_extras [] existing n_extra (20 * n_extra) in
  Schema.make relations (Join_graph.make (tree @ extras))

let query rng schema ~joins =
  let wanted = joins + 1 in
  let names = Array.of_list (Schema.relation_names schema) in
  if wanted > Array.length names then
    invalid_arg "Random_schema.query: more joins than relations";
  let graph = Schema.graph schema in
  let module S = Set.Make (String) in
  let start = Rng.pick rng names in
  (* Grow a connected set by repeatedly absorbing a random frontier node. *)
  let rec grow chosen =
    if S.cardinal chosen >= wanted then chosen
    else begin
      let frontier =
        S.fold
          (fun name acc ->
            List.fold_left
              (fun acc n -> if S.mem n chosen then acc else S.add n acc)
              acc
              (Join_graph.neighbors graph name))
          chosen S.empty
      in
      if S.is_empty frontier then chosen
      else begin
        let pickable = Array.of_list (S.elements frontier) in
        grow (S.add (Rng.pick rng pickable) chosen)
      end
    end
  in
  S.elements (grow (S.singleton start))
