(** Randomly generated schemas for the scalability experiments (Figure 15):
    "a random number of tables, each of which have a randomly picked row size
    between 100 and 200 bytes, and a randomly picked number of rows between
    100K and 2M", with randomly generated join edges of TPC-H-like
    selectivities. *)

(** [generate rng ~tables] builds a connected random schema with [tables]
    relations named ["t0" .. "t<n-1>"]. A random spanning tree guarantees
    connectivity; [extra_edge_fraction] (default 0.3) extra edges are added
    on top, giving non-trivial join-order choices. *)
val generate : ?extra_edge_fraction:float -> Raqo_util.Rng.t -> tables:int -> Schema.t

(** [query rng schema ~joins] picks a connected set of [joins + 1] relations
    (a query with [joins] join operators), by random graph walk. *)
val query : Raqo_util.Rng.t -> Schema.t -> joins:int -> string list
