type t = { name : string; rows : float; row_bytes : float }

let make ~name ~rows ~row_bytes =
  if rows <= 0.0 then invalid_arg "Relation.make: rows must be positive";
  if row_bytes <= 0.0 then invalid_arg "Relation.make: row_bytes must be positive";
  { name; rows; row_bytes }

let size_gb r = Raqo_util.Units.gb_of_bytes (r.rows *. r.row_bytes)
let scale r factor = make ~name:r.name ~rows:(r.rows *. factor) ~row_bytes:r.row_bytes

let pp fmt r =
  Format.fprintf fmt "%s(%.0f rows, %a)" r.name r.rows Raqo_util.Units.pp_gb (size_gb r)
