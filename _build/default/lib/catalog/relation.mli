(** Base relations (tables) with the statistics the optimizer needs:
    cardinality and average row width. *)

type t = {
  name : string;  (** unique within a schema *)
  rows : float;  (** estimated cardinality *)
  row_bytes : float;  (** average row width in bytes *)
}

(** [make ~name ~rows ~row_bytes] validates and builds a relation.
    @raise Invalid_argument on nonpositive rows or row width. *)
val make : name:string -> rows:float -> row_bytes:float -> t

(** [size_gb r] is the estimated on-disk size in gigabytes. *)
val size_gb : t -> float

(** [scale r factor] multiplies the cardinality by [factor]; used to derive
    the sampled sub-tables of the paper's switch-point sweeps (e.g. a 3.4 GB
    slice of orders). *)
val scale : t -> float -> t

val pp : Format.formatter -> t -> unit
