module String_map = Map.Make (String)

type t = {
  relations : Relation.t list;
  by_name : Relation.t String_map.t;
  graph : Join_graph.t;
}

let make relations graph =
  let by_name =
    List.fold_left
      (fun acc (r : Relation.t) ->
        if String_map.mem r.name acc then
          invalid_arg ("Schema.make: duplicate relation " ^ r.name);
        String_map.add r.name r acc)
      String_map.empty relations
  in
  List.iter
    (fun (e : Join_graph.edge) ->
      if not (String_map.mem e.left by_name) then
        invalid_arg ("Schema.make: edge references unknown relation " ^ e.left);
      if not (String_map.mem e.right by_name) then
        invalid_arg ("Schema.make: edge references unknown relation " ^ e.right))
    (Join_graph.edges graph);
  { relations; by_name; graph }

let relations t = t.relations
let graph t = t.graph

let find t name =
  match String_map.find_opt name t.by_name with
  | Some r -> r
  | None -> raise Not_found

let mem t name = String_map.mem name t.by_name
let relation_names t = List.map (fun (r : Relation.t) -> r.name) t.relations

let with_relation t (r : Relation.t) =
  if not (mem t r.name) then invalid_arg ("Schema.with_relation: unknown " ^ r.name);
  let relations =
    List.map (fun (old : Relation.t) -> if old.name = r.name then r else old) t.relations
  in
  { t with relations; by_name = String_map.add r.name r t.by_name }

(* Log of the product of internal edge selectivities: each unordered pair
   counted once. Log space keeps 100-way joins finite — the raw product of
   cardinalities overflows a float around 40 relations. *)
let log_internal_selectivity t names =
  let rec pairs = function
    | [] -> 0.0
    | x :: rest ->
        let here =
          List.fold_left
            (fun acc y ->
              match Join_graph.selectivity t.graph x y with
              | Some s -> acc +. log s
              | None -> acc)
            0.0 rest
        in
        here +. pairs rest
  in
  pairs names

let join_rows t names =
  match names with
  | [] -> invalid_arg "Schema.join_rows: empty set"
  | _ ->
      let log_base =
        List.fold_left (fun acc name -> acc +. log (find t name).rows) 0.0 names
      in
      let log_rows = log_base +. log_internal_selectivity t names in
      (* exp overflows past ~709; cap at a huge finite estimate. *)
      if log_rows > 700.0 then 1e304 else Float.max 1.0 (exp log_rows)

let join_row_bytes t names =
  List.fold_left (fun acc name -> acc +. (find t name).row_bytes) 0.0 names

let join_size_gb t names =
  Raqo_util.Units.gb_of_bytes (join_rows t names *. join_row_bytes t names)

let joinable t names = Join_graph.connected t.graph names
