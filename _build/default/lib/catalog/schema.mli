(** A schema is the optimizer's view of the database: base relations plus the
    join graph, with the cardinality estimation the planners rely on. *)

type t

(** [make relations graph] validates that every edge endpoint names a known
    relation and that relation names are unique. *)
val make : Relation.t list -> Join_graph.t -> t

val relations : t -> Relation.t list
val graph : t -> Join_graph.t

(** [find t name] looks up a relation. @raise Not_found if absent. *)
val find : t -> string -> Relation.t

val mem : t -> string -> bool
val relation_names : t -> string list

(** [with_relation t r] replaces the relation named [r.name] (e.g. swap in a
    sampled, smaller orders table as the paper does for its sweeps). *)
val with_relation : t -> Relation.t -> t

(** [join_rows t names] estimates the cardinality of joining [names]:
    the product of base cardinalities times the selectivity of every join
    edge internal to the set (the textbook independence assumption). *)
val join_rows : t -> string list -> float

(** [join_row_bytes t names] is the width of the concatenated output row. *)
val join_row_bytes : t -> string list -> float

(** [join_size_gb t names] is the estimated intermediate-result size. *)
val join_size_gb : t -> string list -> float

(** [joinable t names] is true when [names] can be joined without a cartesian
    product (the induced join sub-graph is connected). *)
val joinable : t -> string list -> bool
