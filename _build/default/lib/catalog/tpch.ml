(* Cardinalities per the TPC-H spec; row widths chosen so SF-100 sizes match
   the paper's reported table sizes (lineitem ~77 GB, orders ~16.5 GB). *)
let base_tables =
  [
    ("region", 5.0, 120.0, false);
    ("nation", 25.0, 110.0, false);
    ("supplier", 10_000.0, 160.0, true);
    ("customer", 150_000.0, 180.0, true);
    ("part", 200_000.0, 155.0, true);
    ("partsupp", 800_000.0, 145.0, true);
    ("orders", 1_500_000.0, 118.0, true);
    ("lineitem", 6_000_000.0, 138.0, true);
  ]

let relations ~scale_factor =
  List.map
    (fun (name, rows, row_bytes, scales) ->
      let rows = if scales then rows *. scale_factor else rows in
      Relation.make ~name ~rows ~row_bytes)
    base_tables

(* PK-FK joins: selectivity 1/|PK side| (the textbook estimate the paper
   inherits from the benchmark spec). *)
let edges ~scale_factor =
  let cardinality name =
    match List.find_opt (fun (n, _, _, _) -> n = name) base_tables with
    | Some (_, rows, _, scales) -> if scales then rows *. scale_factor else rows
    | None -> invalid_arg ("Tpch.edges: unknown " ^ name)
  in
  let pk_fk pk fk = { Join_graph.left = fk; right = pk; selectivity = 1.0 /. cardinality pk } in
  [
    pk_fk "region" "nation";
    pk_fk "nation" "supplier";
    pk_fk "nation" "customer";
    pk_fk "customer" "orders";
    pk_fk "orders" "lineitem";
    pk_fk "part" "partsupp";
    pk_fk "supplier" "partsupp";
    pk_fk "partsupp" "lineitem";
  ]

let schema ?(scale_factor = 100.0) () =
  if scale_factor <= 0.0 then invalid_arg "Tpch.schema: scale factor must be positive";
  Schema.make (relations ~scale_factor) (Join_graph.make (edges ~scale_factor))

(* Column statistics per the TPC-H specification: uniform value ranges and
   distinct counts (keys scale with SF; categorical and range columns do
   not). Dates are days since 1992-01-01 (last order date ~2405, last ship
   date ~2526). *)
let columns ?(scale_factor = 100.0) () =
  let sf = scale_factor in
  let u table name lo hi distinct =
    Column.make ~table ~name ~histogram:(Histogram.uniform ~lo ~hi) ~distinct
  in
  Column.catalog
    [
      u "region" "r_regionkey" 0.0 4.0 5.0;
      u "nation" "n_nationkey" 0.0 24.0 25.0;
      u "nation" "n_regionkey" 0.0 4.0 5.0;
      u "supplier" "s_suppkey" 1.0 (10_000.0 *. sf) (10_000.0 *. sf);
      u "supplier" "s_nationkey" 0.0 24.0 25.0;
      u "supplier" "s_acctbal" (-999.99) 9999.99 (10_000.0 *. sf);
      u "customer" "c_custkey" 1.0 (150_000.0 *. sf) (150_000.0 *. sf);
      u "customer" "c_nationkey" 0.0 24.0 25.0;
      u "customer" "c_acctbal" (-999.99) 9999.99 (150_000.0 *. sf);
      u "customer" "c_mktsegment" 0.0 4.0 5.0;
      u "part" "p_partkey" 1.0 (200_000.0 *. sf) (200_000.0 *. sf);
      u "part" "p_size" 1.0 50.0 50.0;
      u "part" "p_retailprice" 901.0 2098.99 21_000.0;
      u "part" "p_brand" 0.0 24.0 25.0;
      u "partsupp" "ps_partkey" 1.0 (200_000.0 *. sf) (200_000.0 *. sf);
      u "partsupp" "ps_suppkey" 1.0 (10_000.0 *. sf) (10_000.0 *. sf);
      u "partsupp" "ps_availqty" 1.0 9999.0 9999.0;
      u "partsupp" "ps_supplycost" 1.0 1000.0 99_901.0;
      u "orders" "o_orderkey" 1.0 (6_000_000.0 *. sf) (1_500_000.0 *. sf);
      u "orders" "o_custkey" 1.0 (150_000.0 *. sf) (99_996.0 *. sf);
      u "orders" "o_totalprice" 857.71 555_285.16 (1_500_000.0 *. sf);
      u "orders" "o_orderdate" 0.0 2405.0 2406.0;
      u "orders" "o_orderpriority" 0.0 4.0 5.0;
      u "lineitem" "l_orderkey" 1.0 (6_000_000.0 *. sf) (1_500_000.0 *. sf);
      u "lineitem" "l_partkey" 1.0 (200_000.0 *. sf) (200_000.0 *. sf);
      u "lineitem" "l_suppkey" 1.0 (10_000.0 *. sf) (10_000.0 *. sf);
      u "lineitem" "l_quantity" 1.0 50.0 50.0;
      u "lineitem" "l_extendedprice" 901.0 104_949.5 933_900.0;
      u "lineitem" "l_discount" 0.0 0.1 11.0;
      u "lineitem" "l_shipdate" 1.0 2526.0 2526.0;
      u "lineitem" "l_returnflag" 0.0 2.0 3.0;
    ]

let q12 = [ "orders"; "lineitem" ]
let q3 = [ "customer"; "orders"; "lineitem" ]
let q2 = [ "part"; "partsupp"; "supplier"; "nation" ]
let q5 = [ "customer"; "orders"; "lineitem"; "partsupp"; "supplier"; "nation" ]

let all =
  [ "region"; "nation"; "supplier"; "customer"; "part"; "partsupp"; "orders"; "lineitem" ]

let evaluation_queries = [ ("Q12", q12); ("Q3", q3); ("Q2", q2); ("All", all) ]
