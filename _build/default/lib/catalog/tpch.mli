(** The TPC-H schema as used by the paper: same tables, join edges and
    PK-FK join selectivities as the benchmark, scalable by scale factor.
    The paper runs at SF 100 (lineitem ~77 GB, matching its Section III). *)

(** [schema ~scale_factor ()] builds the 8-table TPC-H schema. Default
    scale factor is 100. *)
val schema : ?scale_factor:float -> unit -> Schema.t

(** [columns ~scale_factor ()] is the column catalog — value ranges and
    distinct counts per the TPC-H specification — that the SQL front end
    resolves references and estimates filter selectivities against. Dates
    are encoded as days since 1992-01-01. *)
val columns : ?scale_factor:float -> unit -> Column.catalog

(** The evaluation queries of Section VII, as sets of relations to join. *)

(** Q12 simplified: orders ⋈ lineitem (single join). *)
val q12 : string list

(** Q3 simplified: customer ⋈ orders ⋈ lineitem (two joins). *)
val q3 : string list

(** Q2 simplified: part ⋈ partsupp ⋈ supplier ⋈ nation (three joins). *)
val q2 : string list

(** Q5 simplified: customer ⋈ orders ⋈ lineitem ⋈ supplier ⋈ nation ⋈
    region (five joins) — a larger preset for examples and tests beyond the
    paper's evaluation set. *)
val q5 : string list

(** All: join all eight tables. *)
val all : string list

(** [(name, relations)] for the four evaluation queries, in paper order. *)
val evaluation_queries : (string * string list) list
