lib/cluster/conditions.ml: Float Format List Resources
