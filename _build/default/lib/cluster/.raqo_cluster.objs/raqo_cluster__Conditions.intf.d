lib/cluster/conditions.mli: Format Resources
