lib/cluster/pricing.ml: Resources
