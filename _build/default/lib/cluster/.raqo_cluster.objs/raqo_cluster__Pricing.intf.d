lib/cluster/pricing.mli: Resources
