lib/cluster/queue_sim.ml: Array Float List Raqo_util
