lib/cluster/queue_sim.mli: Raqo_util
