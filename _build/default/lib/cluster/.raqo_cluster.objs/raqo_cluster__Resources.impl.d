lib/cluster/resources.ml: Format
