lib/cluster/resources.mli: Format
