type t = {
  min_containers : int;
  max_containers : int;
  container_step : int;
  min_gb : float;
  max_gb : float;
  gb_step : float;
}

let make ?(min_containers = 1) ?(max_containers = 100) ?(container_step = 1) ?(min_gb = 1.0)
    ?(max_gb = 10.0) ?(gb_step = 1.0) () =
  if min_containers <= 0 || max_containers < min_containers then
    invalid_arg "Conditions.make: bad container bounds";
  if container_step <= 0 then invalid_arg "Conditions.make: bad container step";
  if min_gb <= 0.0 || max_gb < min_gb then invalid_arg "Conditions.make: bad memory bounds";
  if gb_step <= 0.0 then invalid_arg "Conditions.make: bad memory step";
  { min_containers; max_containers; container_step; min_gb; max_gb; gb_step }

let default = make ()

let steps_containers t = ((t.max_containers - t.min_containers) / t.container_step) + 1

let steps_gb t =
  int_of_float (floor (((t.max_gb -. t.min_gb) /. t.gb_step) +. 1e-9)) + 1

let n_configs t = steps_containers t * steps_gb t

let contains t (r : Resources.t) =
  r.containers >= t.min_containers
  && r.containers <= t.max_containers
  && (r.containers - t.min_containers) mod t.container_step = 0
  && r.container_gb >= t.min_gb -. 1e-9
  && r.container_gb <= t.max_gb +. 1e-9
  &&
  let k = (r.container_gb -. t.min_gb) /. t.gb_step in
  Float.abs (k -. Float.round k) < 1e-6

let clamp t (r : Resources.t) =
  Resources.make
    ~containers:(max t.min_containers (min t.max_containers r.containers))
    ~container_gb:(Float.max t.min_gb (Float.min t.max_gb r.container_gb))

let min_config t = Resources.make ~containers:t.min_containers ~container_gb:t.min_gb
let max_config t = Resources.make ~containers:t.max_containers ~container_gb:t.max_gb

let all_configs t =
  let ngb = steps_gb t and nc = steps_containers t in
  List.concat
    (List.init ngb (fun j ->
         let gb = t.min_gb +. (float_of_int j *. t.gb_step) in
         List.init nc (fun i ->
             Resources.make
               ~containers:(t.min_containers + (i * t.container_step))
               ~container_gb:gb)))

let scale_capacity t ~containers ~gb =
  make ~min_containers:t.min_containers ~max_containers:containers
    ~container_step:t.container_step ~min_gb:t.min_gb ~max_gb:gb ~gb_step:t.gb_step ()

let pp fmt t =
  Format.fprintf fmt "containers %d..%d step %d, memory %.1f..%.1f GB step %.1f"
    t.min_containers t.max_containers t.container_step t.min_gb t.max_gb t.gb_step
