type t = { dollars_per_gb_hour : float }

let default = { dollars_per_gb_hour = 0.016 }

let gb_seconds_cost t gbs = gbs /. 3600.0 *. t.dollars_per_gb_hour

let run_cost t ~resources ~seconds =
  gb_seconds_cost t (Resources.gb_seconds resources seconds)
