(** Serverless pricing, as in the paper's monetary-cost analysis: "users only
    pay for the total container hours consumed", i.e. price is proportional
    to memory held x time held. *)

type t = {
  dollars_per_gb_hour : float;
      (** rate per GB of container memory per hour (Azure-Data-Lake-style AU pricing) *)
}

(** Default rate (order of magnitude of 2018 serverless analytics pricing). *)
val default : t

(** [run_cost t ~resources ~seconds] is the dollar cost of holding
    [resources] for [seconds]. *)
val run_cost : t -> resources:Resources.t -> seconds:float -> float

(** [gb_seconds_cost t gbs] prices raw GB·s usage. *)
val gb_seconds_cost : t -> float -> float
