module Rng = Raqo_util.Rng

type job = { arrival : float; demand : int; runtime : float }
type outcome = { job : job; start : float; queue_time : float }

type workload = {
  jobs : int;
  arrival_rate : float;
  mean_demand : int;
  runtime_shape : float;
  runtime_scale : float;
}

(* Calibrated against Figure 1's headline fractions on a 90-container
   cluster: >80% of jobs wait at least their run time, >20% at least 4x. *)
let default_workload =
  { jobs = 5000; arrival_rate = 0.5; mean_demand = 10; runtime_shape = 2.5; runtime_scale = 10.0 }

let generate rng w ~capacity =
  if capacity <= 0 then invalid_arg "Queue_sim.generate: capacity must be positive";
  let clock = ref 0.0 in
  List.init w.jobs (fun _ ->
      clock := !clock +. Rng.exponential rng ~mean:(1.0 /. w.arrival_rate);
      let demand =
        let d = 1 + int_of_float (Rng.exponential rng ~mean:(float_of_int w.mean_demand)) in
        min d capacity
      in
      let runtime = Rng.pareto rng ~shape:w.runtime_shape ~scale:w.runtime_scale in
      { arrival = !clock; demand; runtime })

(* Min-heap of (finish_time, containers) for running jobs. *)
module Heap = struct
  type t = { mutable data : (float * int) array; mutable size : int }

  let create () = { data = Array.make 64 (0.0, 0); size = 0 }
  let is_empty h = h.size = 0

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h x =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0.0, 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- x;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let peek h = h.data.(0)

  let pop h =
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
      if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    top
end

let run ~capacity jobs =
  if capacity <= 0 then invalid_arg "Queue_sim.run: capacity must be positive";
  let running = Heap.create () in
  let free = ref capacity in
  (* FIFO: each job starts at the earliest time >= max(arrival, previous
     start) at which its demand fits; we advance time by completing the
     earliest-finishing running jobs. *)
  let head_ready = ref 0.0 in
  List.map
    (fun job ->
      if job.demand > capacity then invalid_arg "Queue_sim.run: demand exceeds capacity";
      let now = ref (Float.max job.arrival !head_ready) in
      (* Release everything finished by [now]. *)
      while (not (Heap.is_empty running)) && fst (Heap.peek running) <= !now do
        let _, freed = Heap.pop running in
        free := !free + freed
      done;
      (* Wait for enough completions. *)
      while !free < job.demand do
        let finish, freed = Heap.pop running in
        free := !free + freed;
        now := Float.max !now finish
      done;
      free := !free - job.demand;
      Heap.push running (!now +. job.runtime, job.demand);
      head_ready := !now;
      { job; start = !now; queue_time = !now -. job.arrival })
    jobs

let ratios outcomes =
  Array.of_list (List.map (fun o -> o.queue_time /. o.job.runtime) outcomes)
