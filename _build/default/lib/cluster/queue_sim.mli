(** Discrete-event simulation of a contended, shared YARN-style queue.

    Substitutes for the production Microsoft trace behind the paper's
    Figure 1: jobs arrive (Poisson), demand a number of containers, run for a
    heavy-tailed (Pareto) duration, and wait FIFO until their demand fits in
    the remaining cluster capacity. The interesting output is the
    queue-time / run-time ratio distribution. *)

type job = {
  arrival : float;  (** submission time, seconds *)
  demand : int;  (** containers requested *)
  runtime : float;  (** execution time once started, seconds *)
}

type outcome = {
  job : job;
  start : float;  (** time the job actually acquired its containers *)
  queue_time : float;  (** [start - arrival] *)
}

type workload = {
  jobs : int;
  arrival_rate : float;  (** jobs per second *)
  mean_demand : int;  (** mean containers per job *)
  runtime_shape : float;  (** Pareto shape for runtimes (lower = heavier tail) *)
  runtime_scale : float;  (** Pareto scale: minimum runtime, seconds *)
}

(** A busy business-unit queue: enough load that most jobs wait. *)
val default_workload : workload

(** [generate rng w ~capacity] draws [w.jobs] jobs. Demands are geometric-ish
    around [mean_demand], capped by [capacity] so every job is feasible. *)
val generate : Raqo_util.Rng.t -> workload -> capacity:int -> job list

(** [run ~capacity jobs] simulates a FIFO queue on a cluster with [capacity]
    containers. Jobs are started strictly in arrival order; a job starts as
    soon as its demand fits. Returns outcomes in arrival order. *)
val run : capacity:int -> job list -> outcome list

(** [ratios outcomes] is queue-time / run-time per job — Figure 1's metric. *)
val ratios : outcome list -> float array
