type t = { containers : int; container_gb : float }

let make ~containers ~container_gb =
  if containers <= 0 then invalid_arg "Resources.make: containers must be positive";
  if container_gb <= 0.0 then invalid_arg "Resources.make: container_gb must be positive";
  { containers; container_gb }

let total_gb t = float_of_int t.containers *. t.container_gb
let gb_seconds t seconds = total_gb t *. seconds
let tb_seconds t seconds = gb_seconds t seconds /. 1024.0
let equal a b = a.containers = b.containers && a.container_gb = b.container_gb
let compare = compare
let pp fmt t = Format.fprintf fmt "<%d x %.1fGB>" t.containers t.container_gb
let to_string t = Format.asprintf "%a" pp t
