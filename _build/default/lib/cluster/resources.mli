(** A resource configuration in the YARN container model the paper targets:
    how many concurrent containers, and how much memory per container.
    (CPU is folded into memory sizing, as in the paper's Section III setup.) *)

type t = {
  containers : int;  (** maximum number of concurrent containers *)
  container_gb : float;  (** memory per container, in GB *)
}

(** [make ~containers ~container_gb] validates and builds a configuration.
    @raise Invalid_argument on nonpositive values. *)
val make : containers:int -> container_gb:float -> t

(** [total_gb t] is the aggregate memory of the configuration. *)
val total_gb : t -> float

(** [gb_seconds t seconds] is the resource usage of holding this
    configuration for [seconds] (GB·s) — the serverless billing unit. *)
val gb_seconds : t -> float -> float

(** [tb_seconds t seconds] is [gb_seconds] in the paper's TB·s unit. *)
val tb_seconds : t -> float -> float

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
