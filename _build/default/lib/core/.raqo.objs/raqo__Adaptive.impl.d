lib/core/adaptive.ml: Cost_based Raqo_cluster Raqo_cost Raqo_plan
