lib/core/adaptive.mli: Cost_based Raqo_cluster Raqo_plan
