lib/core/cost_based.ml: Option Raqo_catalog Raqo_cost Raqo_planner Raqo_resource Raqo_util
