lib/core/cost_based.mli: Raqo_catalog Raqo_cluster Raqo_cost Raqo_plan Raqo_planner Raqo_resource
