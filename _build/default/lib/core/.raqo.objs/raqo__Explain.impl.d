lib/core/explain.ml: Buffer Format List Printf Raqo_catalog Raqo_cluster Raqo_cost Raqo_plan Raqo_util String
