lib/core/explain.mli: Raqo_catalog Raqo_cluster Raqo_cost Raqo_plan
