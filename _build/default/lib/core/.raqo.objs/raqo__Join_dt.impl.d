lib/core/join_dt.ml: List Printf Raqo_cluster Raqo_dtree Raqo_execsim Raqo_plan Raqo_workload
