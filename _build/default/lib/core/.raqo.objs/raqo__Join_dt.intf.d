lib/core/join_dt.mli: Raqo_cluster Raqo_dtree Raqo_execsim Raqo_plan
