lib/core/models.ml: Hashtbl Join_dt Raqo_cluster Raqo_execsim Raqo_util Raqo_workload
