lib/core/models.mli: Raqo_cost Raqo_execsim
