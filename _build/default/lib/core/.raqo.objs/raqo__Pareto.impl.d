lib/core/pareto.ml: Cost_based Float Format List Option Printf Raqo_cluster Raqo_cost Raqo_plan Raqo_util Use_cases
