lib/core/pareto.mli: Cost_based Use_cases
