lib/core/robust.ml: Cost_based Float List Raqo_cluster Raqo_plan Raqo_planner
