lib/core/robust.mli: Cost_based Raqo_cluster Raqo_plan Raqo_planner
