lib/core/rule_based.ml: Join_dt Raqo_catalog Raqo_cost Raqo_plan Raqo_planner
