lib/core/rule_based.mli: Raqo_catalog Raqo_cluster Raqo_dtree Raqo_execsim Raqo_plan Raqo_planner
