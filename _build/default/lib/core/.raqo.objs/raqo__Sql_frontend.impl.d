lib/core/sql_frontend.ml: Cost_based Models Raqo_catalog Raqo_cluster Raqo_plan Raqo_sql
