lib/core/sql_frontend.mli: Cost_based Raqo_catalog Raqo_cluster Raqo_cost Raqo_plan Raqo_sql
