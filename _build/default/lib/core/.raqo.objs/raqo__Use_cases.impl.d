lib/core/use_cases.ml: Cost_based List Option Raqo_cost Raqo_plan Raqo_planner
