lib/core/use_cases.mli: Cost_based Raqo_cluster Raqo_plan Raqo_planner
