module Join_tree = Raqo_plan.Join_tree
module Conditions = Raqo_cluster.Conditions
module Plan_cost = Raqo_cost.Plan_cost

type reoptimization = {
  stale : Join_tree.joint;
  stale_cost_now : float;
  fresh : Join_tree.joint;
  fresh_cost : float;
  plan_changed : bool;
  improvement : float;
}

let reoptimize opt ~stale ~new_conditions relations =
  let opt' = Cost_based.with_conditions opt new_conditions in
  match Cost_based.optimize opt' relations with
  | None -> None
  | Some (fresh, fresh_cost) ->
      let clamped =
        Join_tree.map_annot
          (fun (impl, res) -> (impl, Conditions.clamp new_conditions res))
          stale
      in
      let stale_cost_now =
        (Plan_cost.joint (Cost_based.model opt) (Cost_based.schema opt) clamped)
          .Plan_cost.cost
      in
      let equal_annot (i1, r1) (i2, r2) =
        Raqo_plan.Join_impl.equal i1 i2 && Raqo_cluster.Resources.equal r1 r2
      in
      Some
        {
          stale;
          stale_cost_now;
          fresh;
          fresh_cost;
          plan_changed = not (Join_tree.equal_shape equal_annot stale fresh);
          improvement = (if fresh_cost > 0.0 then stale_cost_now /. fresh_cost else 1.0);
        }
