(** Adaptive RAQO (paper Sections IV and VIII): when cluster conditions
    change between optimization and execution — a load spike shrinks the
    usable cluster, or capacity frees up — re-consult the optimizer and
    compare the fresh joint plan against the stale one. *)

type reoptimization = {
  stale : Raqo_plan.Join_tree.joint;  (** plan chosen under the old conditions *)
  stale_cost_now : float;  (** the stale plan re-costed under the new conditions *)
  fresh : Raqo_plan.Join_tree.joint;  (** plan chosen under the new conditions *)
  fresh_cost : float;
  plan_changed : bool;
      (** the fresh plan differs from the original stale plan in shape,
          operators or resources *)
  improvement : float;  (** stale_cost_now / fresh_cost (>= 1 when re-optimizing helps) *)
}

(** [reoptimize opt ~stale ~new_conditions relations] re-plans under
    [new_conditions]. The stale plan's resources are clamped into the new
    conditions before re-costing (the cluster may no longer offer them).
    [None] when no feasible plan exists under the new conditions. *)
val reoptimize :
  Cost_based.t ->
  stale:Raqo_plan.Join_tree.joint ->
  new_conditions:Raqo_cluster.Conditions.t ->
  string list ->
  reoptimization option
