module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema
module Plan_cost = Raqo_cost.Plan_cost
module Op_cost = Raqo_cost.Op_cost

let joint ?(pricing = Raqo_cluster.Pricing.default) model schema plan =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Format.asprintf "Joint query/resource plan: %a\n" Join_tree.pp_joint plan);
  let step = ref 0 in
  let _ =
    Join_tree.fold_joins
      (fun () (impl, resources) left right ->
        incr step;
        let small_gb = Plan_cost.join_small_gb schema ~left ~right in
        let cost = Op_cost.predict_exn model impl ~small_gb ~resources in
        Buffer.add_string buf
          (Format.asprintf
             "  join %d: %a  [%s] ⋈ [%s]\n    build side %a, resources %a, est cost %.1f, est price $%.4f\n"
             !step Raqo_plan.Join_impl.pp impl
             (String.concat ", " left)
             (String.concat ", " right)
             Raqo_util.Units.pp_gb small_gb Raqo_cluster.Resources.pp resources cost
             (Raqo_cluster.Pricing.run_cost pricing ~resources ~seconds:cost)))
      () plan
  in
  let estimate = Plan_cost.joint model schema plan in
  Buffer.add_string buf
    (Printf.sprintf "  total: est cost %.1f, est usage %.1f GB·s, est price $%.4f\n"
       estimate.Plan_cost.cost estimate.Plan_cost.gb_seconds
       (Plan_cost.money ~pricing estimate));
  Buffer.contents buf

let joins plan =
  List.rev
    (Join_tree.fold_joins
       (fun acc annot left right -> (annot, left, right) :: acc)
       [] plan)

let diff ~before ~after =
  let buf = Buffer.create 256 in
  let order_changed =
    Join_tree.relations before <> Join_tree.relations after
    || not
         (Join_tree.equal_shape (fun _ _ -> true) before after)
  in
  if order_changed then begin
    Buffer.add_string buf
      (Format.asprintf "join order changed:\n  before: %a\n  after:  %a\n" Join_tree.pp_joint
         before Join_tree.pp_joint after)
  end
  else begin
    let changes = ref 0 in
    List.iteri
      (fun i (((bi, br), _, _), ((ai, ar), left, right)) ->
        let impl_changed = not (Raqo_plan.Join_impl.equal bi ai) in
        let res_changed = not (Raqo_cluster.Resources.equal br ar) in
        if impl_changed || res_changed then begin
          incr changes;
          Buffer.add_string buf
            (Format.asprintf "join %d ([%s] ⋈ [%s]): %a%a -> %a%a\n" (i + 1)
               (String.concat ", " left) (String.concat ", " right) Raqo_plan.Join_impl.pp bi
               Raqo_cluster.Resources.pp br Raqo_plan.Join_impl.pp ai
               Raqo_cluster.Resources.pp ar)
        end)
      (List.combine (joins before) (joins after));
    if !changes = 0 then Buffer.add_string buf "plans are identical\n"
  end;
  Buffer.contents buf
