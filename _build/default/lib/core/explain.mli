(** Human-readable explain output for joint query/resource plans — the
    paper's closing question ("how will the 'explain' command look in such
    systems?") answered concretely: per join, the operator, its input sizes,
    the resources requested, and the estimated cost and price. *)

(** [joint ?pricing model schema plan] renders a multi-line explanation. *)
val joint :
  ?pricing:Raqo_cluster.Pricing.t ->
  Raqo_cost.Op_cost.t ->
  Raqo_catalog.Schema.t ->
  Raqo_plan.Join_tree.joint ->
  string

(** [diff ~before ~after] renders what changed between two joint plans —
    join order, per-join operator, resources — for adaptive re-optimization
    reports. *)
val diff : before:Raqo_plan.Join_tree.joint -> after:Raqo_plan.Join_tree.joint -> string
