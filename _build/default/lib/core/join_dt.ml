module Join_impl = Raqo_plan.Join_impl
module Profile_runs = Raqo_workload.Profile_runs
module Dtree = Raqo_dtree

let impl_of_label = function
  | 0 -> Join_impl.Bhj
  | 1 -> Join_impl.Smj
  | l -> invalid_arg (Printf.sprintf "Join_dt.impl_of_label: %d" l)

let label_of_impl = function
  | Join_impl.Bhj -> 0
  | Join_impl.Smj -> 1

(* Figure 10: a single split on data size at the stock threshold. The
   histogram is nominal (one sample per side), as in the paper's rendering. *)
let default_tree (engine : Raqo_execsim.Engine.t) =
  Dtree.Tree.Node
    {
      feature = 0;
      threshold = engine.default_bhj_threshold_gb;
      counts = [| 1; 1 |];
      left = Dtree.Tree.Leaf { counts = [| 1; 0 |] };
      right = Dtree.Tree.Leaf { counts = [| 0; 1 |] };
    }

let training_grid (_ : Raqo_execsim.Engine.t) ~big_gb:_ =
  let small_sizes = List.init 30 (fun i -> 0.2 +. (float_of_int i *. 0.4)) in
  let configs =
    List.concat_map
      (fun containers ->
        List.map
          (fun gb ->
            Raqo_cluster.Resources.make ~containers ~container_gb:(float_of_int gb))
          [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
      [ 5; 10; 15; 20; 25; 30; 35; 40; 45 ]
  in
  (small_sizes, configs)

let train ?params ?(prune = false) engine ~big_gb =
  let small_sizes, configs = training_grid engine ~big_gb in
  let dataset = Profile_runs.classification_dataset engine ~big_gb ~small_sizes ~configs in
  let tree = Dtree.Cart.train ?params dataset in
  if prune then Dtree.Prune.prune tree else tree

let choose tree ~small_gb ~resources =
  impl_of_label
    (Dtree.Tree.predict tree (Profile_runs.dtree_features ~small_gb ~resources))

let render tree =
  Dtree.Tree.render ~feature_names:Profile_runs.dtree_feature_names
    ~label_names:Profile_runs.dtree_labels tree
