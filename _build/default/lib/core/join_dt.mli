(** Decision trees for join-implementation selection (paper Section V):
    the engines' stock data-size-only rules (Figure 10) and the
    resource-aware RAQO trees trained on the data-resource space
    (Figure 11). *)

(** [impl_of_label l] maps a dataset label index back to an operator. *)
val impl_of_label : int -> Raqo_plan.Join_impl.t

val label_of_impl : Raqo_plan.Join_impl.t -> int

(** [default_tree engine] encodes the engine's stock rule: BHJ iff the small
    side is below the (10 MB) threshold — Figure 10, independent of
    resources. *)
val default_tree : Raqo_execsim.Engine.t -> Raqo_dtree.Tree.t

(** [training_grid engine] is the sweep the RAQO trees are trained on:
    build-side sizes 0.2..12 GB against the engine's evaluation probe side,
    container sizes 1..10 GB, container counts 5..45. *)
val training_grid :
  Raqo_execsim.Engine.t ->
  big_gb:float ->
  float list * Raqo_cluster.Resources.t list

(** [train ?params ?prune engine ~big_gb] sweeps the simulator and fits a
    CART tree (optionally pruned) — the Figure 11 construction. *)
val train :
  ?params:Raqo_dtree.Cart.params ->
  ?prune:bool ->
  Raqo_execsim.Engine.t ->
  big_gb:float ->
  Raqo_dtree.Tree.t

(** [choose tree ~small_gb ~resources] runs a trained (or default) tree on
    the current data and resource characteristics. *)
val choose :
  Raqo_dtree.Tree.t ->
  small_gb:float ->
  resources:Raqo_cluster.Resources.t ->
  Raqo_plan.Join_impl.t

(** [render tree] pretty-prints with the join feature/label names. *)
val render : Raqo_dtree.Tree.t -> string
