module Profile_runs = Raqo_workload.Profile_runs

let train ?(seed = 7) (engine : Raqo_execsim.Engine.t) =
  let rng = Raqo_util.Rng.create seed in
  let small_sizes, configs = Join_dt.training_grid engine ~big_gb:77.0 in
  let grid = Profile_runs.sweep engine ~big_gb:77.0 ~small_sizes ~configs in
  (* Extra random draws densify the grid so the quadratic fit is stable. *)
  let extra =
    Profile_runs.random_sweep rng engine Raqo_cluster.Conditions.default ~big_gb:77.0
      ~n:500
  in
  Profile_runs.train_cost_model ~oom_headroom:engine.oom_headroom (grid @ extra)

let memo = Hashtbl.create 4

let memoized name engine =
  match Hashtbl.find_opt memo name with
  | Some model -> model
  | None ->
      let model = train engine in
      Hashtbl.add memo name model;
      model

let hive () = memoized "hive" Raqo_execsim.Engine.hive
let spark () = memoized "spark" Raqo_execsim.Engine.spark
