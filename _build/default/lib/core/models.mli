(** Ready-made operator cost models.

    [Raqo_cost.Op_cost.paper] carries the coefficients printed in the paper
    (faithful for the planner-overhead experiments). The models here are
    retrained against this repository's execution simulator — what the
    paper's own profiling pipeline would produce on this substrate — and
    carry a small positive prediction floor, so plan-quality experiments and
    the use-case APIs behave physically. *)

(** [train ?seed engine] sweeps the simulator over the Section V data-resource
    grid and fits the SMJ/BHJ regressions. Deterministic for a fixed seed. *)
val train : ?seed:int -> Raqo_execsim.Engine.t -> Raqo_cost.Op_cost.t

(** [hive ()] / [spark ()] are memoized {!train} results for the two engine
    profiles. *)
val hive : unit -> Raqo_cost.Op_cost.t

val spark : unit -> Raqo_cost.Op_cost.t
