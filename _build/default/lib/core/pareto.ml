module Objective = Raqo_cost.Objective

let objective (p : Use_cases.priced_plan) =
  Objective.make ~time:p.Use_cases.est_cost ~money:p.Use_cases.est_money

(* A ladder of fixed resource scales spanning the cluster conditions: each
   rung trades money for speed (more/bigger containers run faster and bill
   more), which is where the interesting Pareto points come from. *)
let resource_ladder conditions =
  let open Raqo_cluster.Conditions in
  let pick lo hi k steps =
    lo + (k * (hi - lo) / (steps - 1))
  in
  List.concat_map
    (fun i ->
      List.map
        (fun j ->
          Raqo_cluster.Resources.make
            ~containers:(pick conditions.min_containers conditions.max_containers i 5)
            ~container_gb:
              (conditions.min_gb
              +. (float_of_int j *. (conditions.max_gb -. conditions.min_gb) /. 2.0)))
        [ 0; 1; 2 ])
    [ 0; 1; 2; 3; 4 ]

let front opt relations =
  let joint_candidates =
    List.map (fun (plan, _) -> Use_cases.price opt plan) (Cost_based.candidates opt relations)
  in
  let ladder_candidates =
    List.filter_map
      (fun resources ->
        Option.map
          (fun (plan, _) -> Use_cases.price opt plan)
          (Cost_based.optimize_qo opt ~resources relations))
      (resource_ladder (Cost_based.conditions opt))
  in
  let priced = joint_candidates @ ladder_candidates in
  (* Dedup identical (time, money) points so the front is readable. *)
  let distinct =
    List.fold_left
      (fun acc p ->
        if
          List.exists
            (fun q ->
              q.Use_cases.est_cost = p.Use_cases.est_cost
              && q.Use_cases.est_money = p.Use_cases.est_money)
            acc
        then acc
        else p :: acc)
      [] priced
  in
  Objective.pareto_front (List.rev distinct) ~objective
  |> List.sort (fun a b -> compare a.Use_cases.est_cost b.Use_cases.est_cost)

let knee plans =
  match plans with
  | [] -> None
  | _ ->
      let max_by f = List.fold_left (fun acc p -> Float.max acc (f p)) 0.0 plans in
      let tmax = Float.max 1e-12 (max_by (fun p -> p.Use_cases.est_cost)) in
      let mmax = Float.max 1e-12 (max_by (fun p -> p.Use_cases.est_money)) in
      let score p =
        (p.Use_cases.est_cost /. tmax) *. (p.Use_cases.est_money /. mmax)
      in
      List.fold_left
        (fun best p ->
          match best with
          | Some b when score b <= score p -> best
          | Some _ | None -> Some p)
        None plans

let render plans =
  let rows =
    List.map
      (fun (p : Use_cases.priced_plan) ->
        [
          Format.asprintf "%a" Raqo_plan.Join_tree.pp_joint p.Use_cases.plan;
          Printf.sprintf "%.1f" p.Use_cases.est_cost;
          Printf.sprintf "$%.4f" p.Use_cases.est_money;
        ])
      plans
  in
  Raqo_util.Table_fmt.render ~headers:[ "plan"; "est cost"; "est money" ] rows
