module Coster = Raqo_planner.Coster
module Join_tree = Raqo_plan.Join_tree

type criterion = Worst_case | Expected of float list

type choice = {
  shape : Coster.shape;
  per_scenario : (Raqo_cluster.Conditions.t * Join_tree.joint * float) list;
  score : float;
}

let aggregate criterion costs =
  match criterion with
  | Worst_case -> List.fold_left Float.max Float.neg_infinity costs
  | Expected weights ->
      if List.length weights <> List.length costs then
        invalid_arg "Robust.optimize: weights must match scenarios";
      List.fold_left2 (fun acc w c -> acc +. (w *. c)) 0.0 weights costs

let optimize opt ~scenarios ?(criterion = Worst_case) relations =
  if scenarios = [] then invalid_arg "Robust.optimize: no scenarios";
  (match criterion with
  | Expected weights ->
      if List.exists (fun w -> w < 0.0) weights then
        invalid_arg "Robust.optimize: negative weight";
      let total = List.fold_left ( +. ) 0.0 weights in
      if Float.abs (total -. 1.0) > 1e-6 then
        invalid_arg "Robust.optimize: weights must sum to 1"
  | Worst_case -> ());
  (* Candidate shapes: the per-scenario nominal optima plus randomized local
     optima — a shape that is best somewhere is a natural candidate for
     being good everywhere. *)
  let scenario_opts = List.map (Cost_based.with_conditions opt) scenarios in
  let candidate_shapes =
    let from_scenarios =
      List.concat_map
        (fun o -> List.map (fun (p, _) -> Coster.shape_of p) (Cost_based.candidates o relations))
        scenario_opts
    in
    (* Dedup structurally. *)
    List.fold_left
      (fun acc s ->
        if List.exists (Join_tree.equal_shape (fun () () -> true) s) acc then acc
        else s :: acc)
      [] from_scenarios
  in
  (* Evaluate each shape under each scenario: resources re-planned there. *)
  let evaluate shape =
    let results =
      List.map
        (fun o ->
          let coster =
            Coster.raqo (Cost_based.model o) (Cost_based.schema o)
              (Cost_based.resource_planner o)
          in
          match Coster.cost_tree coster shape with
          | Some (plan, cost) -> (Cost_based.conditions o, plan, cost)
          | None ->
              (* Infeasible in this scenario: infinite cost, keep a clamped
                 placeholder plan for reporting. *)
              let placeholder =
                Join_tree.map_annot
                  (fun () ->
                    ( Raqo_plan.Join_impl.Smj,
                      Raqo_cluster.Conditions.min_config (Cost_based.conditions o) ))
                  shape
              in
              (Cost_based.conditions o, placeholder, Float.infinity))
        scenario_opts
    in
    let costs = List.map (fun (_, _, c) -> c) results in
    (results, aggregate criterion costs)
  in
  let best =
    List.fold_left
      (fun best shape ->
        let per_scenario, score = evaluate shape in
        match best with
        | Some b when b.score <= score -> best
        | Some _ | None -> Some { shape; per_scenario; score })
      None candidate_shapes
  in
  match best with
  | Some b when Float.is_finite b.score -> Some b
  | Some _ | None -> None
