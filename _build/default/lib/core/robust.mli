(** Robust RAQO — the paper's "Adaptive RAQO" agenda item taken further:
    "RAQO could also pick plans that are more resilient to changes of
    cluster condition."

    Given a set of cluster-condition scenarios (e.g. the cluster as
    promised, the cluster under a load spike), evaluate each candidate plan
    shape under every scenario — re-planning its resources per scenario —
    and pick the shape whose worst-case (or expected) cost is lowest. A
    shape that OOMs in some scenario is penalized with that scenario's
    infinite cost. *)

type criterion =
  | Worst_case  (** minimize the maximum cost across scenarios *)
  | Expected of float list
      (** minimize the probability-weighted mean; weights must match the
          scenario list and sum to ~1 *)

type choice = {
  shape : Raqo_planner.Coster.shape;  (** the resilient join order/operators are re-derived per scenario *)
  per_scenario : (Raqo_cluster.Conditions.t * Raqo_plan.Join_tree.joint * float) list;
      (** the joint plan and cost the shape gets under each scenario *)
  score : float;  (** the minimized criterion value *)
}

(** [optimize opt ~scenarios ?criterion relations] returns the most
    resilient plan shape, or [None] when no candidate is feasible in every
    required sense. Candidate shapes come from the optimizer's planner
    (plus the nominal optimum).
    @raise Invalid_argument on an empty scenario list or mismatched
    weights. *)
val optimize :
  Cost_based.t ->
  scenarios:Raqo_cluster.Conditions.t list ->
  ?criterion:criterion ->
  string list ->
  choice option
