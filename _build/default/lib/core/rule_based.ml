module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema

let choose_impls tree schema ~resources shape =
  Join_tree.map_joins
    (fun () left right ->
      let small_gb = Raqo_cost.Plan_cost.join_small_gb schema ~left ~right in
      Join_dt.choose tree ~small_gb ~resources)
    shape

let plan tree schema ~resources relations =
  let shape = Raqo_planner.Heuristics.greedy_left_deep schema relations in
  choose_impls tree schema ~resources shape

let default_plan engine schema ~resources relations =
  plan (Join_dt.default_tree engine) schema ~resources relations
