(** Rule-based RAQO (paper Section V-B): keep the engine's join order, but
    pick each join's implementation by traversing a resource-aware decision
    tree with the current cluster conditions — "we can simply plug these
    decision trees into Hive and Spark". *)

(** [choose_impls tree schema ~resources shape] assigns every join of
    [shape] an implementation via [tree], evaluated on the join's estimated
    smaller-input size and the given resources. *)
val choose_impls :
  Raqo_dtree.Tree.t ->
  Raqo_catalog.Schema.t ->
  resources:Raqo_cluster.Resources.t ->
  Raqo_planner.Coster.shape ->
  Raqo_plan.Join_tree.plain

(** [plan tree schema ~resources relations] is the full rule-based pipeline:
    the engine's stock greedy join order, implementations by the RAQO
    tree. *)
val plan :
  Raqo_dtree.Tree.t ->
  Raqo_catalog.Schema.t ->
  resources:Raqo_cluster.Resources.t ->
  string list ->
  Raqo_plan.Join_tree.plain

(** [default_plan engine schema ~resources relations] is the same pipeline
    with the stock (Figure 10) tree — the baseline rule-based RAQO is
    compared against. *)
val default_plan :
  Raqo_execsim.Engine.t ->
  Raqo_catalog.Schema.t ->
  resources:Raqo_cluster.Resources.t ->
  string list ->
  Raqo_plan.Join_tree.plain
