module Plan_cost = Raqo_cost.Plan_cost

type priced_plan = {
  plan : Raqo_plan.Join_tree.joint;
  est_cost : float;
  est_money : float;
}

let price opt plan =
  let estimate = Plan_cost.joint (Cost_based.model opt) (Cost_based.schema opt) plan in
  {
    plan;
    est_cost = estimate.Plan_cost.cost;
    est_money = Plan_cost.money estimate;
  }

let plan_for_resources opt ~resources relations =
  Cost_based.optimize_qo opt ~resources relations
  |> Option.map (fun (plan, _) -> price opt plan)

let resources_for_plan opt shape =
  let coster =
    Raqo_planner.Coster.raqo (Cost_based.model opt) (Cost_based.schema opt)
      (Cost_based.resource_planner opt)
  in
  Raqo_planner.Coster.cost_tree coster shape
  |> Option.map (fun (plan, _) -> price opt plan)

let best_joint opt relations =
  Cost_based.optimize opt relations |> Option.map (fun (plan, _) -> price opt plan)

let plan_for_price opt ~budget relations =
  if budget <= 0.0 then invalid_arg "Use_cases.plan_for_price: nonpositive budget";
  let priced = List.map (fun (plan, _) -> price opt plan) (Cost_based.candidates opt relations) in
  match priced with
  | [] -> None
  | _ -> begin
      let affordable = List.filter (fun p -> p.est_money <= budget) priced in
      match affordable with
      | _ :: _ ->
          let fastest =
            List.fold_left
              (fun best p ->
                match best with
                | Some b when b.est_cost <= p.est_cost -> best
                | Some _ | None -> Some p)
              None affordable
          in
          Option.map (fun p -> (p, true)) fastest
      | [] ->
          let cheapest =
            List.fold_left
              (fun best p ->
                match best with
                | Some b when b.est_money <= p.est_money -> best
                | Some _ | None -> Some p)
              None priced
          in
          Option.map (fun p -> (p, false)) cheapest
    end
