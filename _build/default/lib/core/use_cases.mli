(** The RAQO use cases of paper Section IV: the four directions in which a
    joint optimizer can be driven.

    - r ⇒ p: best plan for a fixed resource budget (multi-tenant quotas);
    - p ⇒ (r, c): cheapest resources (and price) for an already-chosen plan;
    - (p, r): jointly optimal plan and resources;
    - c ⇒ (p, r): best performance under a monetary cap. *)

type priced_plan = {
  plan : Raqo_plan.Join_tree.joint;
  est_cost : float;  (** model-estimated execution cost (seconds scale) *)
  est_money : float;  (** model-estimated dollars under serverless pricing *)
}

(** [plan_for_resources opt ~resources relations] — r ⇒ p. *)
val plan_for_resources :
  Cost_based.t ->
  resources:Raqo_cluster.Resources.t ->
  string list ->
  priced_plan option

(** [resources_for_plan opt shape] — p ⇒ (r, c): resource-plans each join of
    a fixed plan shape, keeping the shape's join order. *)
val resources_for_plan : Cost_based.t -> Raqo_planner.Coster.shape -> priced_plan option

(** [best_joint opt relations] — the jointly optimal (p, r). *)
val best_joint : Cost_based.t -> string list -> priced_plan option

(** [plan_for_price opt ~budget relations] — c ⇒ (p, r): among candidate
    joint plans, the fastest whose estimated dollars fit [budget]; falls
    back to the cheapest-money plan when none fits (with [within_budget =
    false]). *)
val plan_for_price :
  Cost_based.t -> budget:float -> string list -> (priced_plan * bool) option

(** [price opt plan] prices an existing joint plan. *)
val price : Cost_based.t -> Raqo_plan.Join_tree.joint -> priced_plan
