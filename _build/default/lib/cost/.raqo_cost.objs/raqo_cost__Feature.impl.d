lib/cost/feature.ml: Array Raqo_cluster
