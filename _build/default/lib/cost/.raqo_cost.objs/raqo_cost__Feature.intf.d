lib/cost/feature.mli: Raqo_cluster
