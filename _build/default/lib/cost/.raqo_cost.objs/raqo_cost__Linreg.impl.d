lib/cost/linreg.ml: Array Format Printf Raqo_util String
