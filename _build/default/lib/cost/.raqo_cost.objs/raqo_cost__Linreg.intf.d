lib/cost/linreg.mli: Format
