lib/cost/objective.ml: Format List
