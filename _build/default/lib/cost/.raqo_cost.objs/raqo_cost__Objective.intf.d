lib/cost/objective.mli: Format
