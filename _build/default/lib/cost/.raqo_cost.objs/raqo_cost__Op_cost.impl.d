lib/cost/op_cost.ml: Feature Float Linreg List Raqo_cluster Raqo_plan
