lib/cost/op_cost.mli: Feature Linreg Raqo_cluster Raqo_plan
