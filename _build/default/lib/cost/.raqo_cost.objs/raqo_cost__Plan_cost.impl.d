lib/cost/plan_cost.ml: Float Op_cost Raqo_catalog Raqo_cluster Raqo_plan
