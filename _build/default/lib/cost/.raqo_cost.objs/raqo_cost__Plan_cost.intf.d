lib/cost/plan_cost.mli: Op_cost Raqo_catalog Raqo_cluster Raqo_plan
