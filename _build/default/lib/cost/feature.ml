type space = Paper | Extended

let paper_names = [| "ss"; "ss2"; "cs"; "cs2"; "nc"; "nc2"; "cs*nc" |]

let extended_names =
  Array.append paper_names [| "1/nc"; "ss/nc"; "ss*nc"; "ss/cs" |]

let names = function
  | Paper -> paper_names
  | Extended -> extended_names

let dims space = Array.length (names space)

let base ~small_gb ~resources =
  let cs = resources.Raqo_cluster.Resources.container_gb in
  let nc = float_of_int resources.Raqo_cluster.Resources.containers in
  let ss = small_gb in
  (ss, cs, nc)

let vector_of space ~small_gb ~resources =
  let ss, cs, nc = base ~small_gb ~resources in
  let paper = [| ss; ss *. ss; cs; cs *. cs; nc; nc *. nc; cs *. nc |] in
  match space with
  | Paper -> paper
  | Extended -> Array.append paper [| 1.0 /. nc; ss /. nc; ss *. nc; ss /. cs |]

let vector ~small_gb ~resources = vector_of Paper ~small_gb ~resources

let vector_with_intercept ~small_gb ~resources =
  Array.append [| 1.0 |] (vector ~small_gb ~resources)
