(** Cost-model feature spaces.

    The paper's space (Section VI-A) uses smaller input size [ss], container
    size [cs] and number of containers [nc], augmented with non-linear
    terms: [\[ss; ss²; cs; cs²; nc; nc²; cs·nc\]].

    The paper notes the model "could be further tuned by adding more
    features"; the {!Extended} space does exactly that, adding the
    reciprocal/interaction terms ([1/nc], [ss/nc], [ss·nc], [ss/cs]) that let
    a linear model capture parallel-scaling and memory-pressure shapes. *)

type space =
  | Paper  (** the published 7-feature vector *)
  | Extended  (** paper features + 1/nc, ss/nc, ss·nc, ss/cs *)

(** [names space] is index-aligned with {!vector_of}. *)
val names : space -> string array

(** [dims space] is the vector width (Paper: 7, Extended: 11). *)
val dims : space -> int

(** [vector_of space ~small_gb ~resources] builds a feature vector. *)
val vector_of :
  space -> small_gb:float -> resources:Raqo_cluster.Resources.t -> float array

(** [vector ~small_gb ~resources] is [vector_of Paper]. *)
val vector : small_gb:float -> resources:Raqo_cluster.Resources.t -> float array

(** [vector_with_intercept ~small_gb ~resources] is [vector] with a leading
    constant 1. *)
val vector_with_intercept :
  small_gb:float -> resources:Raqo_cluster.Resources.t -> float array
