module Linalg = Raqo_util.Linalg

type t = { intercept : float; coefficients : float array }

let validate features targets =
  let rows = Array.length features in
  if rows = 0 then invalid_arg "Linreg.train: no samples";
  if Array.length targets <> rows then invalid_arg "Linreg.train: X/y size mismatch";
  let width = Array.length features.(0) in
  Array.iter
    (fun row -> if Array.length row <> width then invalid_arg "Linreg.train: ragged features")
    features

let train ?(with_intercept = true) ~features ~targets () =
  validate features targets;
  if with_intercept then begin
    let augmented = Array.map (fun row -> Array.append [| 1.0 |] row) features in
    let beta = Linalg.least_squares augmented targets in
    { intercept = beta.(0); coefficients = Array.sub beta 1 (Array.length beta - 1) }
  end
  else { intercept = 0.0; coefficients = Linalg.least_squares features targets }

let predict t x = t.intercept +. Linalg.dot t.coefficients x

let r_squared t ~features ~targets =
  validate features targets;
  let mean = Raqo_util.Stats.mean targets in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  Array.iteri
    (fun i row ->
      let y = targets.(i) in
      ss_tot := !ss_tot +. ((y -. mean) *. (y -. mean));
      let e = y -. predict t row in
      ss_res := !ss_res +. (e *. e))
    features;
  if !ss_tot = 0.0 then 1.0 else 1.0 -. (!ss_res /. !ss_tot)

let of_coefficients ?(intercept = 0.0) coefficients = { intercept; coefficients }

let pp fmt t =
  Format.fprintf fmt "intercept=%.4g coefs=[%s]" t.intercept
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.4g") t.coefficients)))
