(** Ordinary least squares regression — the paper's estimator for learning
    per-operator cost models from profile runs. *)

type t = {
  intercept : float;
  coefficients : float array;
}

(** [train ?with_intercept ~features ~targets] fits OLS coefficients.
    Every row of [features] must have equal width.
    @raise Invalid_argument on empty or ragged input. *)
val train :
  ?with_intercept:bool -> features:float array array -> targets:float array -> unit -> t

(** [predict t x] evaluates the model on a feature vector. *)
val predict : t -> float array -> float

(** [r_squared t ~features ~targets] is the coefficient of determination on
    the given set. *)
val r_squared : t -> features:float array array -> targets:float array -> float

(** [of_coefficients ?intercept coefs] wraps externally supplied weights
    (e.g. the paper's published SMJ/BHJ vectors). *)
val of_coefficients : ?intercept:float -> float array -> t

val pp : Format.formatter -> t -> unit
