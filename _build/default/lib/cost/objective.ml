type t = { time : float; money : float }

let make ~time ~money = { time; money }

let dominates a b =
  a.time <= b.time && a.money <= b.money && (a.time < b.time || a.money < b.money)

let pareto_front items ~objective =
  List.filter
    (fun x ->
      not (List.exists (fun y -> y != x && dominates (objective y) (objective x)) items))
    items

let scalarize ?(money_scale = 1000.0) ~time_weight t =
  if time_weight < 0.0 || time_weight > 1.0 then
    invalid_arg "Objective.scalarize: weight out of [0,1]";
  (time_weight *. t.time) +. ((1.0 -. time_weight) *. t.money *. money_scale)

let pp fmt t = Format.fprintf fmt "{time=%.1fs, money=$%.4f}" t.time t.money
