(** Multi-objective costs: the paper targets execution time and monetary
    cost simultaneously (its cost-based RAQO is validated against the
    Trummer–Koch multi-objective planner). *)

type t = {
  time : float;  (** estimated execution time *)
  money : float;  (** estimated dollar cost *)
}

val make : time:float -> money:float -> t

(** [dominates a b] is true when [a] is no worse than [b] on every objective
    and strictly better on at least one (Pareto dominance). *)
val dominates : t -> t -> bool

(** [pareto_front items ~objective] filters [items] down to the
    non-dominated set, preserving input order. *)
val pareto_front : 'a list -> objective:('a -> t) -> 'a list

(** [scalarize ~time_weight t] collapses to a single score:
    [time_weight * time + (1 - time_weight) * money_scaled]. Weights must lie
    in [\[0, 1\]]. [money_scale] (default 1000) converts dollars to the
    seconds scale so the two objectives are comparable. *)
val scalarize : ?money_scale:float -> time_weight:float -> t -> float

val pp : Format.formatter -> t -> unit
