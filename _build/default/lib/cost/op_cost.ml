module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources

type t = {
  space : Feature.space;
  smj : Linreg.t;
  bhj : Linreg.t;
  scan : Linreg.t;
  oom_headroom : float;
  floor : float;
}

(* The coefficient vectors printed in the paper, feature order
   [ss; ss2; cs; cs2; nc; nc2; cs*nc]. *)
let paper_smj_coefficients =
  [|
    1.62643613e+01;
    9.68774888e-01;
    1.33866542e-02;
    1.60639851e-01;
    -7.82618920e-03;
    -3.91309460e-01;
    1.10387975e-01;
  |]

let paper_bhj_coefficients =
  [|
    1.00739509e+04;
    -6.72184592e+02;
    -1.37392901e+01;
    -1.64871481e+02;
    2.44721676e-02;
    1.22360838e+00;
    -1.37319484e+02;
  |]

(* Scan: throughput model, cost ~ size / parallelism; expressed in the same
   linear feature space as a plain per-GB term (the evaluation's single scan
   implementation carries no resource trade-off of its own). *)
let paper_scan_coefficients = [| 30.0; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0 |]

let paper =
  {
    space = Feature.Paper;
    smj = Linreg.of_coefficients paper_smj_coefficients;
    bhj = Linreg.of_coefficients paper_bhj_coefficients;
    scan = Linreg.of_coefficients paper_scan_coefficients;
    oom_headroom = 1.15;
    floor = 0.0;
  }

let with_floor floor t =
  if floor < 0.0 then invalid_arg "Op_cost.with_floor: negative floor";
  { t with floor }

let bhj_feasible t ~small_gb ~resources =
  small_gb <= t.oom_headroom *. resources.Resources.container_gb

let predict t impl ~small_gb ~resources =
  let x = Feature.vector_of t.space ~small_gb ~resources in
  let clamp c = if t.floor > 0.0 then Float.max t.floor c else c in
  match impl with
  | Join_impl.Smj -> Some (clamp (Linreg.predict t.smj x))
  | Join_impl.Bhj ->
      if bhj_feasible t ~small_gb ~resources then Some (clamp (Linreg.predict t.bhj x))
      else None

let predict_exn t impl ~small_gb ~resources =
  match predict t impl ~small_gb ~resources with
  | Some c -> c
  | None -> Float.infinity

let scan_cost t ~gb ~resources =
  Linreg.predict t.scan (Feature.vector_of t.space ~small_gb:gb ~resources)

let best_impl t ~small_gb ~resources =
  List.fold_left
    (fun best impl ->
      match (predict t impl ~small_gb ~resources, best) with
      | Some c, Some (_, bc) when c >= bc -> best
      | Some c, _ -> Some (impl, c)
      | None, _ -> best)
    None Join_impl.all
