module Schema = Raqo_catalog.Schema
module Resources = Raqo_cluster.Resources
module Join_tree = Raqo_plan.Join_tree

type estimate = { cost : float; gb_seconds : float }

let join_small_gb schema ~left ~right =
  Float.min (Schema.join_size_gb schema left) (Schema.join_size_gb schema right)

let sum_joins model schema ~resources_of plan =
  Join_tree.fold_joins
    (fun acc annot left right ->
      let small_gb = join_small_gb schema ~left ~right in
      let impl, resources = resources_of annot in
      let cost = Op_cost.predict_exn model impl ~small_gb ~resources in
      {
        cost = acc.cost +. cost;
        gb_seconds =
          (if Float.is_finite cost then acc.gb_seconds +. Resources.gb_seconds resources cost
           else Float.infinity);
      })
    { cost = 0.0; gb_seconds = 0.0 }
    plan

let joint model schema plan = sum_joins model schema ~resources_of:(fun a -> a) plan

let plain model schema ~resources plan =
  sum_joins model schema ~resources_of:(fun impl -> (impl, resources)) plan

let money ?(pricing = Raqo_cluster.Pricing.default) estimate =
  Raqo_cluster.Pricing.gb_seconds_cost pricing estimate.gb_seconds
