(** Whole-plan cost estimation under a cost model: the sum of per-join
    operator costs, each join evaluated at its own resource configuration
    (paper Section VI-A). Infeasible plans cost [infinity]. *)

type estimate = {
  cost : float;  (** model cost (seconds-scale) *)
  gb_seconds : float;  (** estimated resource usage: per-join memory x cost *)
}

(** [joint model schema plan] estimates a joint query/resource plan. *)
val joint : Op_cost.t -> Raqo_catalog.Schema.t -> Raqo_plan.Join_tree.joint -> estimate

(** [plain model schema ~resources plan] estimates a conventional plan under
    one global resource configuration. *)
val plain :
  Op_cost.t ->
  Raqo_catalog.Schema.t ->
  resources:Raqo_cluster.Resources.t ->
  Raqo_plan.Join_tree.plain ->
  estimate

(** [money ?pricing estimate] prices the estimated resource usage. *)
val money : ?pricing:Raqo_cluster.Pricing.t -> estimate -> float

(** [join_small_gb schema ~left ~right] is the smaller-input feature of the
    join of the two relation sets — the data characteristic the cost model
    and the resource-plan cache key on. *)
val join_small_gb : Raqo_catalog.Schema.t -> left:string list -> right:string list -> float
