lib/dtree/cart.ml: Array Dataset List Tree
