lib/dtree/cart.mli: Dataset Tree
