lib/dtree/dataset.ml: Array
