lib/dtree/dataset.mli:
