lib/dtree/prune.ml: Array Dataset Tree
