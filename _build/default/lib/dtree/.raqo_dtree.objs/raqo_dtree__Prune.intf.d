lib/dtree/prune.mli: Tree
