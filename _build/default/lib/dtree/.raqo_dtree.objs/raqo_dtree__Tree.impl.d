lib/dtree/tree.ml: Array Buffer Dataset Printf String
