lib/dtree/tree.mli:
