type params = { max_depth : int; min_samples_split : int; min_samples_leaf : int }

let default_params = { max_depth = 64; min_samples_split = 2; min_samples_leaf = 1 }

let gini counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let t = float_of_int total in
    Array.fold_left
      (fun acc c ->
        let p = float_of_int c /. t in
        acc -. (p *. p))
      1.0 counts
  end

(* Weighted gini of a candidate split, from the two child histograms. *)
let split_impurity left_counts right_counts =
  let nl = Array.fold_left ( + ) 0 left_counts in
  let nr = Array.fold_left ( + ) 0 right_counts in
  let n = float_of_int (nl + nr) in
  ((float_of_int nl *. gini left_counts) +. (float_of_int nr *. gini right_counts)) /. n

let best_split_for_feature dataset indices feature ~min_samples_leaf =
  (* Sort the subset by this feature; sweep thresholds between distinct
     consecutive values, maintaining running left/right histograms. *)
  let sorted = Array.copy indices in
  Array.sort
    (fun a b ->
      let xa, _ = Dataset.sample dataset a and xb, _ = Dataset.sample dataset b in
      compare xa.(feature) xb.(feature))
    sorted;
  let n = Array.length sorted in
  let left = Array.make (Dataset.n_labels dataset) 0 in
  let right = Dataset.label_counts dataset sorted in
  let best = ref None in
  for i = 0 to n - 2 do
    let xi, li = Dataset.sample dataset sorted.(i) in
    let xj, _ = Dataset.sample dataset sorted.(i + 1) in
    left.(li) <- left.(li) + 1;
    right.(li) <- right.(li) - 1;
    let vi = xi.(feature) and vj = xj.(feature) in
    if vi < vj && i + 1 >= min_samples_leaf && n - i - 1 >= min_samples_leaf then begin
      let impurity = split_impurity left right in
      let threshold = (vi +. vj) /. 2.0 in
      match !best with
      | Some (_, _, bi) when bi <= impurity -> ()
      | Some _ | None -> best := Some (feature, threshold, impurity)
    end
  done;
  !best

let best_split dataset indices =
  let candidates =
    List.filter_map
      (fun f -> best_split_for_feature dataset indices f ~min_samples_leaf:1)
      (List.init (Dataset.n_features dataset) (fun f -> f))
  in
  List.fold_left
    (fun best ((_, _, gi) as cand) ->
      match best with
      | Some (_, _, bg) when bg <= gi -> best
      | Some _ | None -> Some cand)
    None candidates

let train ?(params = default_params) dataset =
  if Dataset.length dataset = 0 then invalid_arg "Cart.train: empty dataset";
  let best_split_constrained indices =
    let candidates =
      List.filter_map
        (fun f ->
          best_split_for_feature dataset indices f
            ~min_samples_leaf:params.min_samples_leaf)
        (List.init (Dataset.n_features dataset) (fun f -> f))
    in
    List.fold_left
      (fun best ((_, _, gi) as cand) ->
        match best with
        | Some (_, _, bg) when bg <= gi -> best
        | Some _ | None -> Some cand)
      None candidates
  in
  let rec grow indices depth =
    let counts = Dataset.label_counts dataset indices in
    let pure = gini counts = 0.0 in
    let too_deep = depth >= params.max_depth in
    let too_small = Array.length indices < params.min_samples_split in
    if pure || too_deep || too_small then Tree.Leaf { counts }
    else begin
      match best_split_constrained indices with
      | None -> Tree.Leaf { counts }
      | Some (feature, threshold, _impurity) ->
          (* Zero-improvement splits are kept (as scikit-learn does): deeper
             splits may still separate, e.g. XOR-shaped labels. Termination
             holds because every split strictly shrinks both sides. *)
          let goes_left i =
            let x, _ = Dataset.sample dataset i in
            x.(feature) <= threshold
          in
          let left_idx = Array.of_list (List.filter goes_left (Array.to_list indices)) in
          let right_idx =
            Array.of_list (List.filter (fun i -> not (goes_left i)) (Array.to_list indices))
          in
          Tree.Node
            {
              feature;
              threshold;
              counts;
              left = grow left_idx (depth + 1);
              right = grow right_idx (depth + 1);
            }
    end
  in
  grow (Dataset.all_indices dataset) 0

let accuracy tree dataset =
  let n = Dataset.length dataset in
  if n = 0 then invalid_arg "Cart.accuracy: empty dataset";
  let correct = ref 0 in
  for i = 0 to n - 1 do
    let x, label = Dataset.sample dataset i in
    if Tree.predict tree x = label then incr correct
  done;
  float_of_int !correct /. float_of_int n
