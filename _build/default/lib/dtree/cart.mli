(** CART training: greedy recursive partitioning by the gini criterion —
    the same algorithm the paper runs via scikit-learn's
    [DecisionTreeClassifier] to produce its Figure 11 RAQO trees. *)

type params = {
  max_depth : int;  (** stop splitting below this depth *)
  min_samples_split : int;  (** nodes smaller than this become leaves *)
  min_samples_leaf : int;  (** candidate splits leaving fewer samples on a side are rejected *)
}

(** scikit-learn-like defaults: effectively unbounded depth, split nodes of
    two or more samples. *)
val default_params : params

(** [gini counts] is the gini impurity of a label histogram:
    [1 - sum p_i^2], in [\[0, 1)]. *)
val gini : int array -> float

(** [best_split dataset indices] is the [(feature, threshold, weighted_gini)]
    of the impurity-minimizing binary split of the subset, or [None] when no
    split separates it (all features constant or all labels equal). *)
val best_split : Dataset.t -> int array -> (int * float * float) option

(** [train ?params dataset] grows a tree on the full dataset. *)
val train : ?params:params -> Dataset.t -> Tree.t

(** [accuracy tree dataset] is the fraction of samples the tree classifies
    correctly. *)
val accuracy : Tree.t -> Dataset.t -> float
