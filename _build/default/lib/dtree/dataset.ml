type t = {
  feature_names : string array;
  label_names : string array;
  samples : (float array * int) array;
}

let make ~feature_names ~label_names samples =
  let width = Array.length feature_names in
  let n_labels = Array.length label_names in
  if width = 0 then invalid_arg "Dataset.make: no features";
  if n_labels < 2 then invalid_arg "Dataset.make: need at least two labels";
  Array.iter
    (fun (x, label) ->
      if Array.length x <> width then invalid_arg "Dataset.make: ragged sample";
      if label < 0 || label >= n_labels then invalid_arg "Dataset.make: label out of range")
    samples;
  { feature_names; label_names; samples }

let length t = Array.length t.samples
let n_features t = Array.length t.feature_names
let n_labels t = Array.length t.label_names
let feature_names t = t.feature_names
let label_names t = t.label_names
let sample t i = t.samples.(i)

let label_counts t indices =
  let counts = Array.make (n_labels t) 0 in
  Array.iter
    (fun i ->
      let _, label = t.samples.(i) in
      counts.(label) <- counts.(label) + 1)
    indices;
  counts

let majority_label counts =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!best) then best := i) counts;
  !best

let all_indices t = Array.init (length t) (fun i -> i)
