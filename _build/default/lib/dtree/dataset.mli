(** Labelled training sets for decision-tree classification (numeric
    features, categorical labels), mirroring the scikit-learn input the paper
    feeds its switch-point data into. *)

type t

(** [make ~feature_names ~label_names samples] validates widths and label
    ranges. Each sample is a feature vector with a label index. *)
val make :
  feature_names:string array ->
  label_names:string array ->
  (float array * int) array ->
  t

val length : t -> int
val n_features : t -> int
val n_labels : t -> int
val feature_names : t -> string array
val label_names : t -> string array

(** [sample t i] is the [i]-th (features, label) pair. *)
val sample : t -> int -> float array * int

(** [label_counts t indices] is a histogram over labels of the subset. *)
val label_counts : t -> int array -> int array

(** [majority_label counts] is the argmax label (ties to the lower index,
    matching scikit-learn). *)
val majority_label : int array -> int

(** [all_indices t] is [0 .. length-1]. *)
val all_indices : t -> int array
