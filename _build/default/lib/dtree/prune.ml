let leaf_errors counts =
  let total = Array.fold_left ( + ) 0 counts in
  total - counts.(Dataset.majority_label counts)

let prune ?(penalty = 0.5) tree =
  let rec go node =
    match node with
    | Tree.Leaf _ -> node
    | Tree.Node n ->
        let left = go n.left and right = go n.right in
        let kept = Tree.Node { n with left; right } in
        let subtree_cost =
          float_of_int (Tree.training_errors kept)
          +. (penalty *. float_of_int (Tree.n_leaves kept))
        in
        let collapsed_cost = float_of_int (leaf_errors n.counts) +. penalty in
        if collapsed_cost <= subtree_cost then Tree.Leaf { counts = n.counts } else kept
  in
  go tree
