(** Size-based pessimistic pruning (the paper cites Mansour'97): collapse a
    subtree to a leaf whenever doing so does not increase the pessimistic
    error estimate — training errors plus a per-leaf complexity penalty. *)

(** [prune ?penalty tree] bottom-up prunes [tree]. [penalty] (default 0.5
    errors per saved leaf) is the pessimistic correction per leaf. *)
val prune : ?penalty:float -> Tree.t -> Tree.t
