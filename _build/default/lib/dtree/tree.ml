type t =
  | Leaf of { counts : int array }
  | Node of { feature : int; threshold : float; counts : int array; left : t; right : t }

let rec predict t x =
  match t with
  | Leaf { counts } -> Dataset.majority_label counts
  | Node { feature; threshold; left; right; _ } ->
      if x.(feature) <= threshold then predict left x else predict right x

let counts = function
  | Leaf { counts } -> counts
  | Node { counts; _ } -> counts

let label t = Dataset.majority_label (counts t)

let gini_of_counts counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let t = float_of_int total in
    Array.fold_left
      (fun acc c ->
        let p = float_of_int c /. t in
        acc -. (p *. p))
      1.0 counts
  end

let gini t = gini_of_counts (counts t)

let rec n_nodes = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> 1 + n_nodes left + n_nodes right

let rec n_leaves = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> n_leaves left + n_leaves right

let rec depth = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + max (depth left) (depth right)

let rec training_errors = function
  | Leaf { counts } ->
      let total = Array.fold_left ( + ) 0 counts in
      total - counts.(Dataset.majority_label counts)
  | Node { left; right; _ } -> training_errors left + training_errors right

let to_dot ~feature_names ~label_names t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph dtree {\n  node [shape=box];\n";
  let next = ref 0 in
  let fresh () =
    incr next;
    Printf.sprintf "n%d" !next
  in
  let describe counts =
    let total = Array.fold_left ( + ) 0 counts in
    Printf.sprintf "gini = %.3f\\nsamples = %d\\nvalue = [%s]\\nclass = %s"
      (gini_of_counts counts) total
      (String.concat "; " (Array.to_list (Array.map string_of_int counts)))
      label_names.(Dataset.majority_label counts)
  in
  let rec emit node =
    let id = fresh () in
    (match node with
    | Leaf { counts } ->
        Buffer.add_string buf (Printf.sprintf "  %s [label=\"%s\"];\n" id (describe counts))
    | Node { feature; threshold; counts; left; right } ->
        Buffer.add_string buf
          (Printf.sprintf "  %s [label=\"%s <= %.4g\\n%s\"];\n" id feature_names.(feature)
             threshold (describe counts));
        let lid = emit left in
        Buffer.add_string buf (Printf.sprintf "  %s -> %s [label=\"True\"];\n" id lid);
        let rid = emit right in
        Buffer.add_string buf (Printf.sprintf "  %s -> %s [label=\"False\"];\n" id rid));
    id
  in
  let _root = emit t in
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let render ~feature_names ~label_names t =
  let buf = Buffer.create 512 in
  let describe counts =
    let total = Array.fold_left ( + ) 0 counts in
    Printf.sprintf "gini=%.4f samples=%d value=[%s] class=%s"
      (gini_of_counts counts)
      total
      (String.concat "; " (Array.to_list (Array.map string_of_int counts)))
      label_names.(Dataset.majority_label counts)
  in
  let rec go indent node =
    match node with
    | Leaf { counts } -> Buffer.add_string buf (Printf.sprintf "%s%s\n" indent (describe counts))
    | Node { feature; threshold; counts; left; right } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s <= %.4g | %s\n" indent feature_names.(feature) threshold
             (describe counts));
        Buffer.add_string buf (Printf.sprintf "%s|-true:\n" indent);
        go (indent ^ "|  ") left;
        Buffer.add_string buf (Printf.sprintf "%s|-false:\n" indent);
        go (indent ^ "|  ") right
  in
  go "" t;
  Buffer.contents buf
