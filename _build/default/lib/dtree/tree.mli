(** Trained decision trees (the paper's Figures 10 and 11): internal nodes
    test [feature <= threshold] (true branch left, scikit-learn convention);
    leaves carry the class histogram seen in training. *)

type t =
  | Leaf of { counts : int array }
  | Node of { feature : int; threshold : float; counts : int array; left : t; right : t }

(** [predict t x] classifies a feature vector. *)
val predict : t -> float array -> int

(** [counts t] is the node's training histogram. *)
val counts : t -> int array

(** [label t] is the node's majority class. *)
val label : t -> int

(** [gini t] is the node's gini impurity. *)
val gini : t -> float

(** [n_nodes t] counts all nodes; [n_leaves t] just the leaves;
    [depth t] is the maximum root-to-leaf path length (leaf-only tree = 0). *)
val n_nodes : t -> int

val n_leaves : t -> int
val depth : t -> int

(** [training_errors t] is the number of training samples a leaf-majority
    vote misclassifies. *)
val training_errors : t -> int

(** [render ~feature_names ~label_names t] pretty-prints the tree in the
    style of the paper's figures (gini, samples, value, class per node). *)
val render : feature_names:string array -> label_names:string array -> t -> string

(** [to_dot ~feature_names ~label_names t] renders the tree as a Graphviz
    digraph in the layout of the paper's Figures 10/11 (true branch left). *)
val to_dot : feature_names:string array -> label_names:string array -> t -> string
