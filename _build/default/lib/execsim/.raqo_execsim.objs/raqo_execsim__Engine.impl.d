lib/execsim/engine.ml: Format
