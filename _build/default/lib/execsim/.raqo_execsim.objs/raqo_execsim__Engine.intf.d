lib/execsim/engine.mli: Format
