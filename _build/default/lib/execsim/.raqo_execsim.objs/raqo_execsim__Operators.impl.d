lib/execsim/operators.ml: Engine Float List Raqo_cluster Raqo_plan
