lib/execsim/operators.mli: Engine Raqo_cluster Raqo_plan
