lib/execsim/simulate.ml: Engine Float Operators Printf Raqo_catalog Raqo_cluster Raqo_plan
