lib/execsim/simulate.mli: Engine Operators Raqo_catalog Raqo_cluster Raqo_plan
