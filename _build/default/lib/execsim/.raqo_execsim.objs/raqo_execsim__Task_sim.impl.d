lib/execsim/task_sim.ml: Array Engine Float Operators Raqo_cluster Raqo_plan Raqo_util
