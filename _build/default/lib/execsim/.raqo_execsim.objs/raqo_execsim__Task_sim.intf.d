lib/execsim/task_sim.mli: Engine Raqo_cluster Raqo_plan Raqo_util
