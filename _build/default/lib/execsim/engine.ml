type t = {
  name : string;
  nodes : int;
  startup_s : float;
  task_overhead_s : float;
  shuffle_s_per_gb : float;
  merge_s_per_gb : float;
  sort_spill_factor : float;
  sort_mem_fraction : float;
  bcast_s_per_gb : float;
  bcast_node_weight : float;
  bcast_container_weight : float;
  build_s_per_gb : float;
  probe_s_per_gb : float;
  mem_pressure_s : float;
  mem_pressure_cap : float;
  oom_headroom : float;
  reducer_split_gb : float;
  reducer_overhead_s : float;
  default_bhj_threshold_gb : float;
  reuses_containers : bool;
}

(* Calibration anchors (Hive, orders ⋈ lineitem, 77 GB probe side, 10
   containers): SMJ ~1100 s and flat in container size; BHJ out of memory
   below 5 GB containers for a 5.1 GB build side; BHJ/SMJ switch at 7 GB
   containers; switch at ~6.4 GB build size with 9 GB containers; BHJ wins
   until the OOM cliff with 3 GB containers. *)
let hive =
  {
    name = "hive";
    nodes = 10;
    startup_s = 30.0;
    task_overhead_s = 0.5;
    shuffle_s_per_gb = 95.0;
    merge_s_per_gb = 26.0;
    sort_spill_factor = 0.06;
    sort_mem_fraction = 0.4;
    bcast_s_per_gb = 1.2;
    bcast_node_weight = 8.0;
    bcast_container_weight = 0.3;
    build_s_per_gb = 19.0;
    probe_s_per_gb = 30.0;
    mem_pressure_s = 666.0;
    mem_pressure_cap = 0.25;
    oom_headroom = 1.15;
    reducer_split_gb = 0.25;
    reducer_overhead_s = 0.02;
    default_bhj_threshold_gb = 0.01;
    reuses_containers = false;
  }

(* Spark: faster shuffle path, more usable executor memory, same 10 MB
   default broadcast threshold. *)
let spark =
  {
    name = "spark";
    nodes = 10;
    startup_s = 10.0;
    task_overhead_s = 0.3;
    shuffle_s_per_gb = 60.0;
    merge_s_per_gb = 15.0;
    sort_spill_factor = 0.08;
    sort_mem_fraction = 0.6;
    bcast_s_per_gb = 1.0;
    bcast_node_weight = 6.0;
    bcast_container_weight = 0.4;
    build_s_per_gb = 14.0;
    probe_s_per_gb = 20.0;
    mem_pressure_s = 420.0;
    mem_pressure_cap = 0.3;
    oom_headroom = 1.4;
    reducer_split_gb = 0.25;
    reducer_overhead_s = 0.015;
    default_bhj_threshold_gb = 0.01;
    reuses_containers = true;
  }

let pp fmt t = Format.fprintf fmt "engine:%s(%d nodes)" t.name t.nodes
