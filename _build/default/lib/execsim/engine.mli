(** Execution-engine profiles for the analytical simulator.

    Substitutes for the paper's physical testbed (Hive 2.0.1 on Tez / YARN
    and SparkSQL 1.6.1 on a 10-VM cluster). Each profile is a set of
    throughput and overhead constants; the [hive] profile is calibrated so
    that the Section III switch points land where the paper reports them
    (see DESIGN.md). All rates are seconds per GB unless noted. *)

type t = {
  name : string;
  nodes : int;  (** physical machines; broadcast cost is partly per-node *)
  startup_s : float;  (** fixed DAG/stage submission overhead *)
  task_overhead_s : float;  (** per-container scheduling/launch overhead *)
  shuffle_s_per_gb : float;  (** shuffle write + transfer + read, per GB per container *)
  merge_s_per_gb : float;  (** merge-scan of sorted runs *)
  sort_spill_factor : float;  (** extra shuffle cost per doubling of data over sort memory *)
  sort_mem_fraction : float;  (** fraction of container memory usable for sort buffers *)
  bcast_s_per_gb : float;  (** broadcast distribution cost unit *)
  bcast_node_weight : float;  (** per-node component of broadcast fan-out *)
  bcast_container_weight : float;  (** per-container component of broadcast fan-out *)
  build_s_per_gb : float;  (** hash-table build *)
  probe_s_per_gb : float;  (** scan + hash probe of the big side *)
  mem_pressure_s : float;  (** GC/spill penalty coefficient near the OOM cliff *)
  mem_pressure_cap : float;  (** cap of the per-GB pressure penalty *)
  oom_headroom : float;  (** BHJ feasible iff small side <= headroom x container GB *)
  reducer_split_gb : float;  (** target data per reducer when auto-deriving reducer counts *)
  reducer_overhead_s : float;  (** per-reducer scheduling overhead *)
  default_bhj_threshold_gb : float;  (** the engine's stock rule: BHJ iff small side below this *)
  reuses_containers : bool;
      (** Spark's executor model keeps containers across stages (the paper's
          footnote 2), so multi-stage plans pay startup and container-launch
          overheads once; Hive-on-Tez re-acquires per stage. *)
}

(** Hive-on-Tez profile (calibrated to the paper's Figures 3-5). *)
val hive : t

(** SparkSQL profile: faster in-memory engine, larger usable memory fraction. *)
val spark : t

val pp : Format.formatter -> t -> unit
