module Resources = Raqo_cluster.Resources
module Join_impl = Raqo_plan.Join_impl

type reducers = Auto | Fixed of int

let bhj_feasible (e : Engine.t) ~small_gb ~resources =
  small_gb <= e.oom_headroom *. resources.Resources.container_gb

(* Sorted-run spill multiplier: grows with each doubling of per-container
   shuffle data over the sort-buffer memory. *)
let spill_multiplier (e : Engine.t) ~data_gb ~(resources : Resources.t) =
  let per_container = data_gb /. float_of_int resources.containers in
  let sort_mem = e.sort_mem_fraction *. resources.container_gb in
  let doublings = log (per_container /. sort_mem) /. log 2.0 in
  1.0 +. (e.sort_spill_factor *. Float.max 0.0 doublings)

let reducer_count (e : Engine.t) ~data_gb = function
  | Auto -> max 1 (int_of_float (ceil (data_gb /. e.reducer_split_gb)))
  | Fixed n ->
      if n <= 0 then invalid_arg "Operators.reducer_count: nonpositive reducer count";
      n

(* Mis-sized reducer counts cost extra merge passes (too few: skewed, big
   partitions) or task churn (too many); modelled as a mild log penalty. *)
let reducer_multiplier (e : Engine.t) ~data_gb reducers =
  let actual = float_of_int (reducer_count e ~data_gb reducers) in
  let ideal = Float.max 1.0 (data_gb /. e.reducer_split_gb) in
  1.0 +. (0.03 *. Float.abs (log (actual /. ideal) /. log 2.0))

let smj_time (e : Engine.t) ~small_gb ~big_gb ~(resources : Resources.t) ~reducers =
  let data = small_gb +. big_gb in
  let nc = float_of_int resources.containers in
  let shuffle =
    data *. e.shuffle_s_per_gb *. spill_multiplier e ~data_gb:data ~resources /. nc
  in
  let merge = data *. e.merge_s_per_gb /. nc in
  let reducer_overhead =
    e.reducer_overhead_s *. float_of_int (reducer_count e ~data_gb:data reducers)
  in
  (e.startup_s +. (e.task_overhead_s *. nc) +. reducer_overhead
  +. ((shuffle +. merge) *. reducer_multiplier e ~data_gb:data reducers))

(* Broadcast hash join: distribute the small side (partly per-node, partly
   per-container), build a hash table in every container, stream the big side
   through. Near the memory ceiling, GC/spill pressure (capped) dominates —
   that cliff is what creates the paper's switch points. *)
let bhj_time (e : Engine.t) ~small_gb ~big_gb ~(resources : Resources.t) =
  if not (bhj_feasible e ~small_gb ~resources) then None
  else begin
    let nc = float_of_int resources.containers in
    let fanout = e.bcast_node_weight +. (e.bcast_container_weight *. nc) in
    let broadcast = small_gb *. e.bcast_s_per_gb *. fanout in
    let build = small_gb *. e.build_s_per_gb in
    let probe = big_gb *. e.probe_s_per_gb /. nc in
    let headroom = (e.oom_headroom *. resources.container_gb) -. small_gb in
    let pressure_rate =
      if headroom <= 0.0 then e.mem_pressure_cap
      else Float.min e.mem_pressure_cap (headroom ** -1.5)
    in
    let pressure = e.mem_pressure_s *. small_gb *. pressure_rate in
    Some
      (e.startup_s +. (e.task_overhead_s *. nc) +. broadcast +. build +. probe +. pressure)
  end

let join_time ?(reducers = Auto) e impl ~small_gb ~big_gb ~resources =
  if small_gb <= 0.0 || big_gb <= 0.0 then invalid_arg "Operators.join_time: nonpositive size";
  let small_gb, big_gb =
    if small_gb <= big_gb then (small_gb, big_gb) else (big_gb, small_gb)
  in
  match impl with
  | Join_impl.Smj -> Some (smj_time e ~small_gb ~big_gb ~resources ~reducers)
  | Join_impl.Bhj -> bhj_time e ~small_gb ~big_gb ~resources

let scan_time (e : Engine.t) ~gb ~(resources : Resources.t) =
  if gb <= 0.0 then invalid_arg "Operators.scan_time: nonpositive size";
  e.startup_s
  +. (e.task_overhead_s *. float_of_int resources.containers)
  +. (gb *. e.probe_s_per_gb /. float_of_int resources.containers)

let best_impl ?(reducers = Auto) e ~small_gb ~big_gb ~resources =
  let candidates =
    List.filter_map
      (fun impl ->
        match join_time ~reducers e impl ~small_gb ~big_gb ~resources with
        | Some t -> Some (impl, t)
        | None -> None)
      Join_impl.all
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      Some (List.fold_left (fun (bi, bt) (i, t) -> if t < bt then (i, t) else (bi, bt)) first rest)

let default_impl (e : Engine.t) ~small_gb =
  if small_gb <= e.default_bhj_threshold_gb then Join_impl.Bhj else Join_impl.Smj
