(** Analytical cost of executing one physical join (or scan) under a given
    resource configuration — the simulator's ground truth that profile runs,
    cost models and decision trees are derived from. *)

type reducers =
  | Auto  (** engine derives the reducer count from intermediate data size *)
  | Fixed of int  (** user-pinned reducer count (Figure 9's sweep axis) *)

(** [bhj_feasible engine ~small_gb ~resources] is false when the build side
    cannot fit in one container's memory (the OOM condition). *)
val bhj_feasible : Engine.t -> small_gb:float -> resources:Raqo_cluster.Resources.t -> bool

(** [join_time engine impl ~small_gb ~big_gb ~resources] simulates the
    execution time (seconds) of one join. [small_gb] is the build/broadcast
    side, [big_gb] the probe side; callers must pass [small_gb <= big_gb]
    sides in either order — the simulator re-orders internally so the smaller
    side is built/broadcast, as both engines do.

    Returns [None] when the operator cannot run (BHJ build side out of
    memory). [reducers] only affects the shuffle-based SMJ path. *)
val join_time :
  ?reducers:reducers ->
  Engine.t ->
  Raqo_plan.Join_impl.t ->
  small_gb:float ->
  big_gb:float ->
  resources:Raqo_cluster.Resources.t ->
  float option

(** [scan_time engine ~gb ~resources] is the time of a standalone full scan
    (the one non-join operator the evaluation considers). *)
val scan_time : Engine.t -> gb:float -> resources:Raqo_cluster.Resources.t -> float

(** [best_impl engine ~small_gb ~big_gb ~resources] is the faster feasible
    implementation with its time, or [None] when neither runs. *)
val best_impl :
  ?reducers:reducers ->
  Engine.t ->
  small_gb:float ->
  big_gb:float ->
  resources:Raqo_cluster.Resources.t ->
  (Raqo_plan.Join_impl.t * float) option

(** [default_impl engine ~small_gb] is the engine's stock rule-based choice:
    BHJ iff the small side is under the (10 MB) threshold. *)
val default_impl : Engine.t -> small_gb:float -> Raqo_plan.Join_impl.t
