module Schema = Raqo_catalog.Schema
module Resources = Raqo_cluster.Resources
module Join_tree = Raqo_plan.Join_tree

type run = { seconds : float; gb_seconds : float }

let tb_seconds run = run.gb_seconds /. 1024.0

let money ?(pricing = Raqo_cluster.Pricing.default) run =
  Raqo_cluster.Pricing.gb_seconds_cost pricing run.gb_seconds

let join_inputs schema ~left ~right =
  let l = Schema.join_size_gb schema left and r = Schema.join_size_gb schema right in
  if l <= r then (l, r) else (r, l)

exception Oom of string

let simulate_tree (engine : Engine.t) schema ~resources_of ~reducers plan =
  let stage_index = ref 0 in
  let total =
    Join_tree.fold_joins
      (fun acc annot left right ->
        let small_gb, big_gb = join_inputs schema ~left ~right in
        let impl, resources = resources_of annot in
        match Operators.join_time ?reducers engine impl ~small_gb ~big_gb ~resources with
        | Some seconds ->
            (* Executor-model engines (Spark) keep containers across stages:
               startup and container-launch overheads are paid once per
               plan, not per join (paper footnote 2). *)
            let seconds =
              if engine.reuses_containers && !stage_index > 0 then
                Float.max 0.0
                  (seconds -. engine.startup_s
                  -. (engine.task_overhead_s
                     *. float_of_int resources.Resources.containers))
              else seconds
            in
            incr stage_index;
            {
              seconds = acc.seconds +. seconds;
              gb_seconds = acc.gb_seconds +. Resources.gb_seconds resources seconds;
            }
        | None ->
            raise
              (Oom
                 (Printf.sprintf "%s out of memory: %.2f GB build side in %.1f GB containers"
                    (Raqo_plan.Join_impl.to_string impl)
                    small_gb resources.Resources.container_gb)))
      { seconds = 0.0; gb_seconds = 0.0 }
      plan
  in
  total

let guard_valid plan =
  if not (Join_tree.valid plan) then invalid_arg "Simulate: plan references a relation twice"

let run_joint engine schema plan =
  guard_valid plan;
  match simulate_tree engine schema ~resources_of:(fun a -> a) ~reducers:None plan with
  | run -> Ok run
  | exception Oom msg -> Error msg

let run_plain ?reducers engine schema ~resources plan =
  guard_valid plan;
  let resources_of impl = (impl, resources) in
  match simulate_tree engine schema ~resources_of ~reducers plan with
  | run -> Ok run
  | exception Oom msg -> Error msg
