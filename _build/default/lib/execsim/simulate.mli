(** Whole-plan execution simulation: joins execute at shuffle boundaries, one
    after another (the paper's additive model: "the total cost of a query
    plan is the sum of costs of all join operators"), each join under its own
    resource configuration. *)

type run = {
  seconds : float;  (** simulated wall-clock execution time *)
  gb_seconds : float;  (** resource usage: sum over joins of memory held x time *)
}

(** [tb_seconds run] is resource usage in the paper's TB·s unit. *)
val tb_seconds : run -> float

(** [money ?pricing run] prices the run under serverless billing. *)
val money : ?pricing:Raqo_cluster.Pricing.t -> run -> float

(** [run_joint engine schema plan] simulates a joint query/resource plan.
    Intermediate-result sizes come from the schema's cardinality model.
    [Error msg] reports an out-of-memory join. *)
val run_joint :
  Engine.t -> Raqo_catalog.Schema.t -> Raqo_plan.Join_tree.joint -> (run, string) result

(** [run_plain engine schema ~resources plan] simulates a conventional plan
    executing every join under one global resource configuration. *)
val run_plain :
  ?reducers:Operators.reducers ->
  Engine.t ->
  Raqo_catalog.Schema.t ->
  resources:Raqo_cluster.Resources.t ->
  Raqo_plan.Join_tree.plain ->
  (run, string) result

(** [join_inputs schema ~left ~right] is [(small_gb, big_gb)] for a join of
    the two intermediate results given by relation sets. *)
val join_inputs :
  Raqo_catalog.Schema.t -> left:string list -> right:string list -> float * float
