module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources
module Rng = Raqo_util.Rng

type report = {
  seconds : float;
  analytical_seconds : float;
  tasks : int;
  waves : int;
  straggler_factor : float;
}

(* Split one operator's analytical cost into the part that parallelizes over
   tasks and the fixed part (startup, scheduling, broadcast, build,
   memory-pressure — all per-stage or per-container, not per-task). The
   parallel part is exactly [analytical - fixed], so a noise-free, perfectly
   balanced task schedule reproduces the analytical time. *)
let decompose (e : Engine.t) impl ~small_gb ~big_gb ~(resources : Resources.t) =
  match Operators.join_time e impl ~small_gb ~big_gb ~resources with
  | None -> None
  | Some analytical ->
      let small_gb, big_gb =
        if small_gb <= big_gb then (small_gb, big_gb) else (big_gb, small_gb)
      in
      let tasks =
        match impl with
        | Join_impl.Smj ->
            max 1 (int_of_float (ceil ((small_gb +. big_gb) /. e.reducer_split_gb)))
        | Join_impl.Bhj -> max 1 (int_of_float (ceil (big_gb /. e.reducer_split_gb)))
      in
      let parallel =
        match impl with
        | Join_impl.Smj ->
            (* shuffle + merge are the per-task components. *)
            let data = small_gb +. big_gb in
            let nc = float_of_int resources.containers in
            analytical -. e.startup_s -. (e.task_overhead_s *. nc)
            -. (e.reducer_overhead_s *. float_of_int tasks)
            |> Float.max 0.0
            |> fun x -> Float.min x (data *. 1000.0) (* guard *)
        | Join_impl.Bhj ->
            big_gb *. e.probe_s_per_gb /. float_of_int resources.containers
      in
      let fixed = analytical -. parallel in
      Some (analytical, fixed, parallel, tasks)

(* List scheduling: each task goes to the earliest-free container. *)
let makespan durations containers =
  let free = Array.make containers 0.0 in
  Array.iter
    (fun d ->
      let slot = ref 0 in
      for i = 1 to containers - 1 do
        if free.(i) < free.(!slot) then slot := i
      done;
      free.(!slot) <- free.(!slot) +. d)
    durations;
  Array.fold_left Float.max 0.0 free

let simulate ?(noise_sigma = 0.15) rng e impl ~small_gb ~big_gb ~resources =
  if noise_sigma < 0.0 then invalid_arg "Task_sim.simulate: negative noise";
  match decompose e impl ~small_gb ~big_gb ~resources with
  | None -> None
  | Some (analytical, fixed, parallel, tasks) ->
      let nc = resources.Resources.containers in
      (* Aggregate parallel work across all containers, split evenly into
         tasks, each perturbed by lognormal noise with unit mean. *)
      let total_work = parallel *. float_of_int nc in
      let per_task = total_work /. float_of_int tasks in
      let mean_correction = exp (-0.5 *. noise_sigma *. noise_sigma) in
      let durations =
        Array.init tasks (fun _ ->
            if noise_sigma = 0.0 then per_task
            else per_task *. Rng.lognormal rng ~mu:0.0 ~sigma:noise_sigma *. mean_correction)
      in
      let span = makespan durations nc in
      (* Balance baseline uses the *drawn* durations, so the straggler
         factor (span / balanced) is >= 1 by construction. *)
      let balanced = Array.fold_left ( +. ) 0.0 durations /. float_of_int nc in
      Some
        {
          seconds = fixed +. span;
          analytical_seconds = analytical;
          tasks;
          waves = (tasks + nc - 1) / nc;
          straggler_factor = (if balanced > 0.0 then span /. balanced else 1.0);
        }
