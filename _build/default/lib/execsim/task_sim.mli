(** Task-level stage simulation: the finer-grained model behind the
    analytical operator costs. A DAG vertex (join stage) consists of tasks
    scheduled in waves over the stage's containers (the paper's "each vertex
    consists of a set of tasks that can be executed in parallel"); task
    durations carry lognormal straggler noise.

    Used to validate the analytical model: with zero noise and task counts
    divisible by the container count the two coincide; with realistic noise
    the task-level makespan exceeds the analytical time by the straggler
    factor (see the [tasksim] bench). *)

type report = {
  seconds : float;  (** simulated stage time: fixed costs + task makespan *)
  analytical_seconds : float;  (** the closed-form model's answer *)
  tasks : int;
  waves : int;  (** ceil(tasks / containers) *)
  straggler_factor : float;
      (** task makespan / perfectly-balanced makespan (>= 1) *)
}

(** [simulate ?noise_sigma rng engine impl ~small_gb ~big_gb ~resources]
    runs one join stage at task granularity. [noise_sigma] is the lognormal
    sigma of per-task duration noise (default 0.15; 0 = deterministic).
    [None] when the operator is infeasible (BHJ OOM), as in the analytical
    model. *)
val simulate :
  ?noise_sigma:float ->
  Raqo_util.Rng.t ->
  Engine.t ->
  Raqo_plan.Join_impl.t ->
  small_gb:float ->
  big_gb:float ->
  resources:Raqo_cluster.Resources.t ->
  report option
