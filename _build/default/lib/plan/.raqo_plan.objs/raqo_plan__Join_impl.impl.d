lib/plan/join_impl.ml: Format
