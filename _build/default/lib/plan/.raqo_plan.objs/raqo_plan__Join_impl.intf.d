lib/plan/join_impl.mli: Format
