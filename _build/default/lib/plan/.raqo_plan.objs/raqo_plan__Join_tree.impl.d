lib/plan/join_tree.ml: Buffer Format Join_impl List Printf Raqo_cluster String
