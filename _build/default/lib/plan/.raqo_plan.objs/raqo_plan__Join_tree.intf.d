lib/plan/join_tree.mli: Format Join_impl Raqo_cluster
