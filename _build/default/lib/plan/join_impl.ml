type t = Smj | Bhj

let all = [ Smj; Bhj ]

let to_string = function
  | Smj -> "SMJ"
  | Bhj -> "BHJ"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let equal a b = a = b
