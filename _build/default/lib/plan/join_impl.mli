(** Physical join operator implementations. The paper's study (and Hive's
    stable operator set) covers the shuffle sort-merge join and the broadcast
    hash join; shuffle hash join is excluded as in the paper
    ("not yet stable enough"). *)

type t =
  | Smj  (** shuffle sort-merge join: shuffle both sides, sort, merge *)
  | Bhj  (** broadcast hash join: replicate the small side to every container *)

(** Every implementation, in a fixed order (the planner's candidate set). *)
val all : t list

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
