lib/planner/coster.ml: Float Hashtbl List Raqo_catalog Raqo_cluster Raqo_cost Raqo_execsim Raqo_plan Raqo_resource String
