lib/planner/coster.mli: Raqo_catalog Raqo_cluster Raqo_cost Raqo_execsim Raqo_plan Raqo_resource
