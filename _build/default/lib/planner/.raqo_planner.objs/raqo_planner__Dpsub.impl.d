lib/planner/dpsub.ml: Array Coster List Option Raqo_catalog Raqo_plan
