lib/planner/dpsub.mli: Coster Raqo_catalog Raqo_plan
