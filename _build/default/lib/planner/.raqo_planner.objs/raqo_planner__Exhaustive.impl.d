lib/planner/exhaustive.ml: Array Coster Hashtbl List Raqo_catalog Raqo_plan
