lib/planner/exhaustive.mli: Coster Raqo_catalog Raqo_plan
