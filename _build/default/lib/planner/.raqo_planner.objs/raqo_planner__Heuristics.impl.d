lib/planner/heuristics.ml: Float List Raqo_catalog Raqo_execsim Raqo_plan
