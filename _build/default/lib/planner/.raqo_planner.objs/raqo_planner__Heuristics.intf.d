lib/planner/heuristics.mli: Coster Raqo_catalog Raqo_execsim Raqo_plan
