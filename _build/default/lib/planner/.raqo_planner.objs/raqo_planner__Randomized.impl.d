lib/planner/randomized.ml: Array Coster List Map Raqo_catalog Raqo_plan Raqo_util String
