lib/planner/randomized.mli: Coster Raqo_catalog Raqo_plan Raqo_util
