lib/planner/selinger.ml: Array Coster Heuristics List Option Raqo_catalog Raqo_plan
