lib/planner/selinger.mli: Coster Raqo_catalog Raqo_plan
