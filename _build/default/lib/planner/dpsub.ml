module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema

let optimize (coster : Coster.t) schema relations =
  let n = List.length relations in
  if n = 0 then invalid_arg "Dpsub.optimize: empty relation set";
  if n > 16 then invalid_arg "Dpsub.optimize: too many relations for bushy DP";
  List.iter
    (fun r -> if not (Schema.mem schema r) then invalid_arg ("Dpsub.optimize: unknown " ^ r))
    relations;
  let rels = Array.of_list relations in
  let graph = Schema.graph schema in
  (* Adjacency bitmasks: adj.(i) = peers of relation i within the query. *)
  let adj =
    Array.init n (fun i ->
        let mask = ref 0 in
        for j = 0 to n - 1 do
          if
            i <> j
            && Option.is_some (Raqo_catalog.Join_graph.selectivity graph rels.(i) rels.(j))
          then mask := !mask lor (1 lsl j)
        done;
        !mask)
  in
  let size = 1 lsl n in
  (* Connectivity of a subset, by BFS over bitmasks. *)
  let connected = Array.make size false in
  for mask = 1 to size - 1 do
    let seed = mask land -mask in
    let reach = ref seed in
    let frontier = ref seed in
    while !frontier <> 0 do
      let next = ref 0 in
      for i = 0 to n - 1 do
        if !frontier land (1 lsl i) <> 0 then next := !next lor (adj.(i) land mask)
      done;
      frontier := !next land lnot !reach;
      reach := !reach lor !next
    done;
    connected.(mask) <- !reach = mask
  done;
  let names_of mask =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (if mask land (1 lsl i) <> 0 then rels.(i) :: acc else acc)
    in
    go (n - 1) []
  in
  let crossing_edge a b =
    let rec any i =
      i < n
      && ((a land (1 lsl i) <> 0 && adj.(i) land b <> 0) || any (i + 1))
    in
    any 0
  in
  let best : (Join_tree.joint * float) option array = Array.make size None in
  for i = 0 to n - 1 do
    best.(1 lsl i) <- Some (Join_tree.Scan rels.(i), 0.0)
  done;
  for mask = 1 to size - 1 do
    if connected.(mask) && best.(mask) = None then begin
      (* Enumerate proper submasks containing the lowest bit (each unordered
         split once); the costers order build/probe sides by size, so
         mirrored splits cost the same. *)
      let low = mask land -mask in
      let sub = ref ((mask - 1) land mask) in
      while !sub <> 0 do
        let rest = mask lxor !sub in
        if
          !sub land low <> 0 && rest <> 0 && connected.(!sub) && connected.(rest)
          && crossing_edge !sub rest
        then begin
          match (best.(!sub), best.(rest)) with
          | Some (lt, lc), Some (rt, rc) -> begin
              match coster.Coster.best_join ~left:(names_of !sub) ~right:(names_of rest) with
              | Some { impl; resources; cost } ->
                  let total = lc +. rc +. cost in
                  let better =
                    match best.(mask) with
                    | Some (_, c) -> total < c
                    | None -> true
                  in
                  if better then
                    best.(mask) <- Some (Join_tree.Join ((impl, resources), lt, rt), total)
              | None -> ()
            end
          | None, _ | _, None -> ()
        end;
        sub := (!sub - 1) land mask
      done
    end
  done;
  best.(size - 1)
