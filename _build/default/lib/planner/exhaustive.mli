(** Exhaustive enumeration of bushy join trees — the test oracle the other
    planners are validated against. Exponential; refuses more than 8
    relations. *)

(** [all_shapes schema relations] enumerates every cartesian-product-free
    bushy join tree over [relations], up to commutativity of each join (the
    costers order build/probe sides by size, so mirrored trees cost the
    same). *)
val all_shapes : Raqo_catalog.Schema.t -> string list -> Coster.shape list

(** [optimize coster schema relations] is the true optimum over
    {!all_shapes}. *)
val optimize :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option
