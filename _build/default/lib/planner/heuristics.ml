module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema

let greedy_left_deep schema relations =
  match relations with
  | [] -> invalid_arg "Heuristics.greedy_left_deep: empty relation set"
  | _ ->
      let size r = Raqo_catalog.Relation.size_gb (Schema.find schema r) in
      let smallest rs =
        List.fold_left
          (fun best r ->
            match best with
            | Some b when size b <= size r -> best
            | Some _ | None -> Some r)
          None rs
      in
      let graph = Schema.graph schema in
      let joinable current r =
        Raqo_catalog.Join_graph.edges_between graph current [ r ] <> []
      in
      let start =
        match smallest relations with
        | Some r -> r
        | None -> assert false
      in
      let rec extend tree joined remaining =
        if remaining = [] then tree
        else begin
          let candidates = List.filter (joinable joined) remaining in
          (* Expand by the smallest resulting intermediate (the classic
             greedy heuristic) — expanding by smallest *table* can force
             near-cross-products through shared dimension tables. *)
          let best =
            List.fold_left
              (fun best r ->
                let grown = Schema.join_size_gb schema (r :: joined) in
                match best with
                | Some (_, b) when b <= grown -> best
                | Some _ | None -> Some (r, grown))
              None candidates
          in
          match best with
          | None -> invalid_arg "Heuristics.greedy_left_deep: relations not joinable"
          | Some (next, _) ->
              extend
                (Join_tree.Join ((), tree, Join_tree.Scan next))
                (next :: joined)
                (List.filter (fun r -> r <> next) remaining)
        end
      in
      extend (Join_tree.Scan start) [ start ]
        (List.filter (fun r -> r <> start) relations)

let default_plan engine schema relations =
  let shape = greedy_left_deep schema relations in
  Join_tree.map_joins
    (fun () left right ->
      let small_gb =
        Float.min (Schema.join_size_gb schema left) (Schema.join_size_gb schema right)
      in
      Raqo_execsim.Operators.default_impl engine ~small_gb)
    shape
