(** The "default optimizer" baseline of the paper's Section III and Figure 2:
    a size-ordered greedy left-deep join order with the engines' stock
    10 MB broadcast rule for operator selection — query planning that never
    looks at resources. *)

(** [greedy_left_deep schema relations] starts from the smallest relation
    and repeatedly joins the smallest relation connected to the current set
    (no cartesian products). *)
val greedy_left_deep : Raqo_catalog.Schema.t -> string list -> Coster.shape

(** [default_plan engine schema relations] is the stock engine plan: greedy
    left-deep order, implementations by the engine's data-size-only rule. *)
val default_plan :
  Raqo_execsim.Engine.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  Raqo_plan.Join_tree.plain
