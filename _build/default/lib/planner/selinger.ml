module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema

(* The DP core, parameterized by an optional upper bound: partial plans
   costing >= the bound are dropped (sound for nonnegative join costs).
   Returns the best full plan and the number of coster invocations. *)
let dp ?bound (coster : Coster.t) schema relations =
  let n = List.length relations in
  if n = 0 then invalid_arg "Selinger.optimize: empty relation set";
  if n > 20 then invalid_arg "Selinger.optimize: too many relations for exhaustive DP";
  List.iter
    (fun r -> if not (Schema.mem schema r) then invalid_arg ("Selinger.optimize: unknown " ^ r))
    relations;
  let invocations = ref 0 in
  let upper = ref bound in
  let rels = Array.of_list relations in
  let graph = Schema.graph schema in
  let adjacent i j =
    Option.is_some (Raqo_catalog.Join_graph.selectivity graph rels.(i) rels.(j))
  in
  let names_of mask =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (if mask land (1 lsl i) <> 0 then rels.(i) :: acc else acc)
    in
    go (n - 1) []
  in
  let size = 1 lsl n in
  (* best.(mask) = cheapest left-deep joint plan joining exactly [mask]. *)
  let best : (Join_tree.joint * float) option array = Array.make size None in
  for i = 0 to n - 1 do
    best.(1 lsl i) <- Some (Join_tree.Scan rels.(i), 0.0)
  done;
  for mask = 1 to size - 1 do
    if best.(mask) = None then begin
      for r = 0 to n - 1 do
        if mask land (1 lsl r) <> 0 then begin
          let rest = mask lxor (1 lsl r) in
          match best.(rest) with
          | None -> ()
          | Some (left_tree, left_cost) ->
              (* No cartesian products: r must join something already in. *)
              let connected =
                let rec any j =
                  j < n && ((rest land (1 lsl j) <> 0 && adjacent r j) || any (j + 1))
                in
                any 0
              in
              if connected then begin
                let left = names_of rest and right = [ rels.(r) ] in
                incr invocations;
                match coster.Coster.best_join ~left ~right with
                | None -> ()
                | Some { impl; resources; cost } ->
                    (* Negative costs break the bound argument: stop
                       pruning for the rest of the search. *)
                    if cost < 0.0 then upper := None;
                    let total = left_cost +. cost in
                    let pruned =
                      match !upper with
                      | Some u -> total >= u
                      | None -> false
                    in
                    let better =
                      (not pruned)
                      &&
                      match best.(mask) with
                      | Some (_, c) -> total < c
                      | None -> true
                    in
                    if better then
                      best.(mask) <-
                        Some
                          ( Join_tree.Join
                              ((impl, resources), left_tree, Join_tree.Scan rels.(r)),
                            total )
              end
        end
      done
    end
  done;
  (best.(size - 1), !invocations)

let optimize coster schema relations = fst (dp coster schema relations)

let optimize_pruned coster schema relations =
  (* Seed the bound with the greedy left-deep plan, when one is costable. *)
  let seed =
    match Heuristics.greedy_left_deep schema relations with
    | shape -> Coster.cost_tree coster shape
    | exception Invalid_argument _ -> None
  in
  match seed with
  | None -> dp coster schema relations
  | Some ((_, greedy_cost) as greedy) ->
      let result, invocations = dp ~bound:greedy_cost coster schema relations in
      (* The bound is strict, so the greedy plan itself may have been pruned;
         fall back to it when the DP returns nothing cheaper. *)
      let result =
        match result with
        | Some _ as r -> r
        | None -> Some greedy
      in
      (result, invocations)
