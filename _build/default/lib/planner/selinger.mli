(** System R style bottom-up dynamic programming over left-deep join trees
    (Selinger et al. 1979) — the traditional planner the paper integrates
    cost-based RAQO with. Per-join costs come from the pluggable
    {!Coster.t}, so the same DP serves plain QO and RAQO. *)

(** [optimize coster schema relations] returns the cheapest left-deep joint
    plan for joining [relations], or [None] when every ordering hits an
    infeasible join. Avoids cartesian products (every extension must share a
    join edge with the current set).

    @raise Invalid_argument when [relations] is empty, contains unknown
    names, or has more than 20 relations (the DP is exponential; the
    paper's Selinger runs cover TPC-H's 8 tables — use {!Randomized} for
    large schemas). *)
val optimize :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option

(** [optimize_pruned coster schema relations] is {!optimize} with
    branch-and-bound pruning (the paper's "prune infeasible or
    non-interesting query/resource plans early on"): the greedy left-deep
    plan seeds an upper bound, and any partial plan already costing at least
    the bound is discarded. Sound when join costs are nonnegative (the
    trained models' floor guarantees this); if a negative cost is observed,
    pruning disables itself for the remainder of the search. Returns the
    plan together with the number of costed joins (the pruning metric). *)
val optimize_pruned :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option * int
