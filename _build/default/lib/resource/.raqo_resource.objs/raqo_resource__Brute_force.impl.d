lib/resource/brute_force.ml: Counters List Raqo_cluster
