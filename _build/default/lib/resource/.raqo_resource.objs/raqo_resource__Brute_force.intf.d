lib/resource/brute_force.mli: Counters Raqo_cluster
