lib/resource/counters.ml: Format
