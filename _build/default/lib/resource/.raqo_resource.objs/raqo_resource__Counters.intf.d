lib/resource/counters.mli: Format
