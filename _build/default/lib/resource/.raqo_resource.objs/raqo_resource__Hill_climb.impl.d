lib/resource/hill_climb.ml: Array Counters Float Raqo_cluster
