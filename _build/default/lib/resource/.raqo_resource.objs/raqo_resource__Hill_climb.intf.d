lib/resource/hill_climb.mli: Counters Raqo_cluster
