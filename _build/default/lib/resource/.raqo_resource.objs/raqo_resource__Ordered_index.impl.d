lib/resource/ordered_index.ml: Array List
