lib/resource/ordered_index.mli:
