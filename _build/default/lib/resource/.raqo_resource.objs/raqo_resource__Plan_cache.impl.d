lib/resource/plan_cache.ml: Counters Float Hashtbl List Option Ordered_index Raqo_cluster
