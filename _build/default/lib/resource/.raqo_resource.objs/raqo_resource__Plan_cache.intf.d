lib/resource/plan_cache.mli: Counters Ordered_index Raqo_cluster
