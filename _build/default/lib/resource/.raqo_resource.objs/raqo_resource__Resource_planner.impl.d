lib/resource/resource_planner.ml: Brute_force Counters Hill_climb Plan_cache Raqo_cluster
