lib/resource/resource_planner.mli: Counters Plan_cache Raqo_cluster
