let search ?counters conditions cost =
  let evals = ref 0 in
  let best =
    List.fold_left
      (fun best r ->
        incr evals;
        let c = cost r in
        match best with
        | Some (_, bc) when bc <= c -> best
        | Some _ | None -> Some (r, c))
      None
      (Raqo_cluster.Conditions.all_configs conditions)
  in
  (match counters with
  | Some k ->
      k.Counters.cost_evaluations <- k.Counters.cost_evaluations + !evals;
      k.Counters.planner_invocations <- k.Counters.planner_invocations + 1
  | None -> ());
  match best with
  | Some result -> result
  | None -> invalid_arg "Brute_force.search: empty resource space"
