(** Exhaustive resource planning: evaluate the cost model on every discrete
    resource configuration the cluster offers, keep the cheapest. The
    baseline hill climbing is measured against (Figure 13). *)

(** [search ?counters conditions cost] returns the cheapest configuration and
    its cost. Ties break toward the earlier-enumerated (smaller) config.
    @raise Invalid_argument if the space is empty (cannot happen for valid
    conditions). *)
val search :
  ?counters:Counters.t ->
  Raqo_cluster.Conditions.t ->
  (Raqo_cluster.Resources.t -> float) ->
  Raqo_cluster.Resources.t * float
