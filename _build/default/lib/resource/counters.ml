type t = {
  mutable cost_evaluations : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable planner_invocations : int;
}

let create () =
  { cost_evaluations = 0; cache_hits = 0; cache_misses = 0; planner_invocations = 0 }

let reset t =
  t.cost_evaluations <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.planner_invocations <- 0

let add ~into t =
  into.cost_evaluations <- into.cost_evaluations + t.cost_evaluations;
  into.cache_hits <- into.cache_hits + t.cache_hits;
  into.cache_misses <- into.cache_misses + t.cache_misses;
  into.planner_invocations <- into.planner_invocations + t.planner_invocations

let pp fmt t =
  Format.fprintf fmt "evals=%d hits=%d misses=%d invocations=%d" t.cost_evaluations
    t.cache_hits t.cache_misses t.planner_invocations
