(** Resource-planning instrumentation: the paper's evaluation reports the
    number of resource configurations explored (cost-model evaluations) and
    cache effectiveness, so every search threads one of these. *)

type t = {
  mutable cost_evaluations : int;  (** resource configurations whose cost was computed *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable planner_invocations : int;  (** resource-planning calls (one per costed sub-plan) *)
}

val create : unit -> t
val reset : t -> unit

(** [add ~into t] accumulates [t] into [into]. *)
val add : into:t -> t -> unit

val pp : Format.formatter -> t -> unit
