lib/scheduler/capacity.ml: List Raqo_cluster
