lib/scheduler/capacity.mli: Raqo_cluster
