lib/scheduler/executor.ml: Capacity Float List Option Printf Raqo_cluster Raqo_cost Raqo_execsim Raqo_plan Raqo_resource
