lib/scheduler/executor.mli: Capacity Raqo_catalog Raqo_cluster Raqo_cost Raqo_execsim Raqo_plan
