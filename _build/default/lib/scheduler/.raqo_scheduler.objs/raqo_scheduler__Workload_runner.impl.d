lib/scheduler/workload_runner.ml: Array Float List Option Raqo_catalog Raqo_execsim Raqo_plan Raqo_planner Raqo_resource Raqo_util
