lib/scheduler/workload_runner.mli: Raqo_catalog Raqo_cluster Raqo_cost Raqo_execsim Raqo_plan Raqo_util
