module Conditions = Raqo_cluster.Conditions
module Resources = Raqo_cluster.Resources

type t = { initial : Conditions.t; changes : (float * Conditions.t) list }

let constant conditions = { initial = conditions; changes = [] }

let steps ~initial changes =
  let rec validate prev = function
    | [] -> ()
    | (t, _) :: rest ->
        if t <= prev then invalid_arg "Capacity.steps: change times must be increasing and positive";
        validate t rest
  in
  validate 0.0 changes;
  { initial; changes }

let dip ~normal ~reduced ~from_t ~until_t =
  if from_t < 0.0 || until_t <= from_t then invalid_arg "Capacity.dip: bad interval";
  if from_t = 0.0 then steps ~initial:reduced [ (until_t, normal) ]
  else steps ~initial:normal [ (from_t, reduced); (until_t, normal) ]

let at t time =
  List.fold_left
    (fun current (change_t, c) -> if time >= change_t then c else current)
    t.initial t.changes

let next_change t ~after =
  List.fold_left
    (fun found (change_t, _) ->
      match found with
      | Some _ -> found
      | None -> if change_t > after then Some change_t else None)
    None t.changes

let fits (c : Conditions.t) (r : Resources.t) =
  r.containers <= c.max_containers && r.container_gb <= c.max_gb +. 1e-9
