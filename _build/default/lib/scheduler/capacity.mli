(** Time-varying cluster capacity: what the resource manager could actually
    grant at each instant. A step function over cluster conditions — the
    dynamic environment the paper's scheduler questions are about. *)

type t

(** [constant conditions] — capacity never changes. *)
val constant : Raqo_cluster.Conditions.t -> t

(** [steps ~initial changes] — conditions are [initial] from time 0, then
    switch at each [(time, conditions)] change point. Change times must be
    positive and strictly increasing.
    @raise Invalid_argument otherwise. *)
val steps :
  initial:Raqo_cluster.Conditions.t ->
  (float * Raqo_cluster.Conditions.t) list ->
  t

(** [dip ~normal ~reduced ~from_t ~until_t] — a load spike: capacity drops
    to [reduced] during [\[from_t, until_t)]. *)
val dip :
  normal:Raqo_cluster.Conditions.t ->
  reduced:Raqo_cluster.Conditions.t ->
  from_t:float ->
  until_t:float ->
  t

(** [at t time] — the conditions in force at [time]. *)
val at : t -> float -> Raqo_cluster.Conditions.t

(** [next_change t ~after] — the first change point strictly after [after],
    if any. *)
val next_change : t -> after:float -> float option

(** [fits conditions resources] — can the resource manager grant [resources]
    under [conditions]? (Bounds only; grid alignment is the optimizer's
    concern.) *)
val fits : Raqo_cluster.Conditions.t -> Raqo_cluster.Resources.t -> bool
