lib/sql/ast.ml: Buffer Format List String
