lib/sql/ast.mli: Format
