lib/sql/lexer.ml: List Printf String Token
