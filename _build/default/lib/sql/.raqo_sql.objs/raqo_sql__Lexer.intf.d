lib/sql/lexer.mli: Token
