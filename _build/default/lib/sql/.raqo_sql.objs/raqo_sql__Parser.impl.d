lib/sql/parser.ml: Ast Lexer List Printf Token
