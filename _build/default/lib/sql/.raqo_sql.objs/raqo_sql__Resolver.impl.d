lib/sql/resolver.ml: Ast Float Format Hashtbl List Parser Printf Raqo_catalog Result Set String
