lib/sql/resolver.mli: Ast Raqo_catalog
