lib/sql/token.ml: Printf
