lib/sql/token.mli:
