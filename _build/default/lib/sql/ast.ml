type column_ref = { table : string option; column : string }
type literal = Number of float | Str of string
type operand = Col of column_ref | Lit of literal
type comparison = Eq | Neq | Lt | Le | Gt | Ge

type predicate =
  | Compare of comparison * operand * operand
  | Between of column_ref * literal * literal

type select = {
  projections : column_ref list;
  tables : (string * string option) list;
  where : predicate list;
}

let pp_column_ref fmt { table; column } =
  match table with
  | Some t -> Format.fprintf fmt "%s.%s" t column
  | None -> Format.pp_print_string fmt column

let pp_literal fmt = function
  | Number v -> Format.fprintf fmt "%g" v
  | Str s -> Format.fprintf fmt "'%s'" s

let pp_operand fmt = function
  | Col c -> pp_column_ref fmt c
  | Lit l -> pp_literal fmt l

let comparison_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp_predicate fmt = function
  | Compare (op, a, b) ->
      Format.fprintf fmt "%a %s %a" pp_operand a (comparison_string op) pp_operand b
  | Between (c, lo, hi) ->
      Format.fprintf fmt "%a BETWEEN %a AND %a" pp_column_ref c pp_literal lo pp_literal hi

let to_sql s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  (match s.projections with
  | [] -> Buffer.add_string buf "*"
  | cols ->
      Buffer.add_string buf
        (String.concat ", " (List.map (Format.asprintf "%a" pp_column_ref) cols)));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf
    (String.concat ", "
       (List.map
          (fun (name, alias) ->
            match alias with
            | Some a -> name ^ " AS " ^ a
            | None -> name)
          s.tables));
  (match s.where with
  | [] -> ()
  | preds ->
      Buffer.add_string buf " WHERE ";
      Buffer.add_string buf
        (String.concat " AND " (List.map (Format.asprintf "%a" pp_predicate) preds)));
  Buffer.contents buf
