(** Abstract syntax for the supported SQL fragment:

    {v SELECT * | col, ...
       FROM table [AS alias], ...
       [WHERE pred AND pred AND ...] [;] v}

    where a predicate is [col = col] (a join), a comparison of a column
    against a literal (a filter), or [col BETWEEN lit AND lit]. This covers
    the paper's workload: the evaluation queries are selections of joined
    TPC-H tables with optional range filters. *)

type column_ref = { table : string option; column : string }

type literal = Number of float | Str of string

type operand = Col of column_ref | Lit of literal

type comparison = Eq | Neq | Lt | Le | Gt | Ge

type predicate =
  | Compare of comparison * operand * operand
  | Between of column_ref * literal * literal

type select = {
  projections : column_ref list;  (** empty means [*] *)
  tables : (string * string option) list;  (** (table, alias) *)
  where : predicate list;  (** conjunctive *)
}

val pp_column_ref : Format.formatter -> column_ref -> unit
val pp_predicate : Format.formatter -> predicate -> unit

(** [to_sql select] prints the statement back as parseable SQL
    (parse ∘ to_sql = id, up to keyword case). *)
val to_sql : select -> string
