let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let keyword = function
  | "select" -> Some Token.Select
  | "from" -> Some Token.From
  | "where" -> Some Token.Where
  | "and" -> Some Token.And
  | "between" -> Some Token.Between
  | "as" -> Some Token.As
  | _ -> None

let tokenize input =
  let n = String.length input in
  let rec go i acc =
    if i >= n then Ok (List.rev (Token.Eof :: acc))
    else begin
      let c = input.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1) acc
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident input.[!j] do
          incr j
        done;
        let word = String.lowercase_ascii (String.sub input i (!j - i)) in
        let token =
          match keyword word with
          | Some k -> k
          | None -> Token.Ident word
        in
        go !j (token :: acc)
      end
      else if is_digit c || (c = '.' && i + 1 < n && is_digit input.[i + 1]) then begin
        let j = ref i in
        while !j < n && (is_digit input.[!j] || input.[!j] = '.') do
          incr j
        done;
        let text = String.sub input i (!j - i) in
        match float_of_string_opt text with
        | Some v -> go !j (Token.Number v :: acc)
        | None -> Error (Printf.sprintf "malformed number %S at offset %d" text i)
      end
      else begin
        match c with
        | '\'' -> begin
            match String.index_from_opt input (i + 1) '\'' with
            | Some close ->
                go (close + 1) (Token.Str (String.sub input (i + 1) (close - i - 1)) :: acc)
            | None -> Error (Printf.sprintf "unterminated string literal at offset %d" i)
          end
        | '*' -> go (i + 1) (Token.Star :: acc)
        | ',' -> go (i + 1) (Token.Comma :: acc)
        | '.' -> go (i + 1) (Token.Dot :: acc)
        | '(' -> go (i + 1) (Token.Lparen :: acc)
        | ')' -> go (i + 1) (Token.Rparen :: acc)
        | ';' -> go (i + 1) (Token.Semicolon :: acc)
        | '=' -> go (i + 1) (Token.Eq :: acc)
        | '<' ->
            if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (Token.Le :: acc)
            else if i + 1 < n && input.[i + 1] = '>' then go (i + 2) (Token.Neq :: acc)
            else go (i + 1) (Token.Lt :: acc)
        | '>' ->
            if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (Token.Ge :: acc)
            else go (i + 1) (Token.Gt :: acc)
        | '!' ->
            if i + 1 < n && input.[i + 1] = '=' then go (i + 2) (Token.Neq :: acc)
            else Error (Printf.sprintf "unexpected character '!' at offset %d" i)
        | _ -> Error (Printf.sprintf "unexpected character %C at offset %d" c i)
      end
    end
  in
  go 0 []
