(** Hand-written lexer for the SQL fragment. Case-insensitive keywords and
    identifiers (lowercased); positions reported on error. *)

(** [tokenize input] produces the token stream ending in [Eof].
    [Error message] carries the offending character offset. *)
val tokenize : string -> (Token.t list, string) result
