(* Recursive descent over the token list; a mutable cursor keeps the code
   close to the grammar. *)

exception Parse_error of string

type state = { mutable tokens : Token.t list }

let peek st =
  match st.tokens with
  | t :: _ -> t
  | [] -> Token.Eof

let advance st =
  match st.tokens with
  | _ :: rest -> st.tokens <- rest
  | [] -> ()

let expect st token =
  if Token.equal (peek st) token then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s but found %s" (Token.to_string token)
            (Token.to_string (peek st))))

let ident st =
  match peek st with
  | Token.Ident name ->
      advance st;
      name
  | t -> raise (Parse_error (Printf.sprintf "expected an identifier, found %s" (Token.to_string t)))

(* column_ref := ident [ '.' ident ] *)
let column_ref st =
  let first = ident st in
  if Token.equal (peek st) Token.Dot then begin
    advance st;
    let column = ident st in
    { Ast.table = Some first; column }
  end
  else { Ast.table = None; column = first }

let literal st =
  match peek st with
  | Token.Number v ->
      advance st;
      Ast.Number v
  | Token.Str s ->
      advance st;
      Ast.Str s
  | t -> raise (Parse_error (Printf.sprintf "expected a literal, found %s" (Token.to_string t)))

let operand st =
  match peek st with
  | Token.Number _ | Token.Str _ -> Ast.Lit (literal st)
  | Token.Ident _ -> Ast.Col (column_ref st)
  | t -> raise (Parse_error (Printf.sprintf "expected a column or literal, found %s" (Token.to_string t)))

let comparison st =
  let op =
    match peek st with
    | Token.Eq -> Ast.Eq
    | Token.Neq -> Ast.Neq
    | Token.Lt -> Ast.Lt
    | Token.Le -> Ast.Le
    | Token.Gt -> Ast.Gt
    | Token.Ge -> Ast.Ge
    | t -> raise (Parse_error (Printf.sprintf "expected a comparison, found %s" (Token.to_string t)))
  in
  advance st;
  op

(* predicate := column BETWEEN lit AND lit | operand cmp operand *)
let predicate st =
  let lhs = operand st in
  match (peek st, lhs) with
  | Token.Between, Ast.Col c ->
      advance st;
      let lo = literal st in
      expect st Token.And;
      let hi = literal st in
      Ast.Between (c, lo, hi)
  | Token.Between, Ast.Lit _ ->
      raise (Parse_error "BETWEEN requires a column on its left")
  | _ ->
      let op = comparison st in
      let rhs = operand st in
      Ast.Compare (op, lhs, rhs)

(* projections := '*' | column (',' column)* *)
let projections st =
  if Token.equal (peek st) Token.Star then begin
    advance st;
    []
  end
  else begin
    let rec more acc =
      let acc = column_ref st :: acc in
      if Token.equal (peek st) Token.Comma then begin
        advance st;
        more acc
      end
      else List.rev acc
    in
    more []
  end

(* tables := ident [AS? ident] (',' ...)* *)
let tables st =
  let one () =
    let name = ident st in
    match peek st with
    | Token.As ->
        advance st;
        (name, Some (ident st))
    | Token.Ident alias ->
        advance st;
        (name, Some alias)
    | Token.Comma | Token.Where | Token.Semicolon | Token.Eof -> (name, None)
    | t ->
        raise
          (Parse_error (Printf.sprintf "unexpected %s after table name" (Token.to_string t)))
  in
  let rec more acc =
    let acc = one () :: acc in
    if Token.equal (peek st) Token.Comma then begin
      advance st;
      more acc
    end
    else List.rev acc
  in
  more []

let where st =
  if Token.equal (peek st) Token.Where then begin
    advance st;
    let rec more acc =
      let acc = predicate st :: acc in
      if Token.equal (peek st) Token.And then begin
        advance st;
        more acc
      end
      else List.rev acc
    in
    more []
  end
  else []

let select st =
  expect st Token.Select;
  let projections = projections st in
  expect st Token.From;
  let tables = tables st in
  let where = where st in
  if Token.equal (peek st) Token.Semicolon then advance st;
  expect st Token.Eof;
  { Ast.projections; tables; where }

let parse sql =
  match Lexer.tokenize sql with
  | Error e -> Error e
  | Ok tokens -> begin
      match select { tokens } with
      | ast -> Ok ast
      | exception Parse_error msg -> Error msg
    end
