(** Recursive-descent parser for the SQL fragment (see {!Ast}). *)

(** [parse sql] lexes and parses one SELECT statement. *)
val parse : string -> (Ast.select, string) result
