type t =
  | Select
  | From
  | Where
  | And
  | Between
  | As
  | Star
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Ident of string
  | Number of float
  | Str of string
  | Semicolon
  | Eof

let to_string = function
  | Select -> "SELECT"
  | From -> "FROM"
  | Where -> "WHERE"
  | And -> "AND"
  | Between -> "BETWEEN"
  | As -> "AS"
  | Star -> "*"
  | Comma -> ","
  | Dot -> "."
  | Lparen -> "("
  | Rparen -> ")"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Ident s -> s
  | Number n -> string_of_float n
  | Str s -> Printf.sprintf "'%s'" s
  | Semicolon -> ";"
  | Eof -> "<eof>"

let equal a b = a = b
