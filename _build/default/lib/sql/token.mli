(** Tokens of the supported SQL fragment. *)

type t =
  | Select
  | From
  | Where
  | And
  | Between
  | As
  | Star
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Ident of string  (** lowercased *)
  | Number of float
  | Str of string  (** single-quoted literal, quotes stripped *)
  | Semicolon
  | Eof

val to_string : t -> string
val equal : t -> t -> bool
