lib/util/linalg.ml: Array Float
