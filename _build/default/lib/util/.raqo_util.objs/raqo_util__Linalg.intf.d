lib/util/linalg.mli:
