lib/util/rng.mli:
