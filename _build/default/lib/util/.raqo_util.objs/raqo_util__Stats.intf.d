lib/util/stats.mli:
