lib/util/table_fmt.ml: Array Float List Printf String
