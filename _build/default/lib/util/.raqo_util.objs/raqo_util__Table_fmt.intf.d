lib/util/table_fmt.mli:
