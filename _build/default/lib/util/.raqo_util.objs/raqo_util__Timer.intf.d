lib/util/timer.mli:
