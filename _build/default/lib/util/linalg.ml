let dot x y =
  if Array.length x <> Array.length y then invalid_arg "Linalg.dot: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let mat_vec a x = Array.map (fun row -> dot row x) a

let transpose a =
  let rows = Array.length a in
  if rows = 0 then [||]
  else begin
    let cols = Array.length a.(0) in
    Array.init cols (fun j -> Array.init rows (fun i -> a.(i).(j)))
  end

let mat_mul a b =
  let bt = transpose b in
  Array.map (fun row -> Array.map (fun col -> dot row col) bt) a

let solve a b =
  let n = Array.length a in
  if n = 0 || Array.length b <> n then invalid_arg "Linalg.solve: bad dimensions";
  (* Work on copies: elimination is destructive. *)
  let m = Array.map Array.copy a in
  let y = Array.copy b in
  for col = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry to the diagonal. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    if Float.abs m.(!pivot).(col) < 1e-12 then failwith "Linalg.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tmp = y.(col) in
      y.(col) <- y.(!pivot);
      y.(!pivot) <- tmp
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if factor <> 0.0 then begin
        for k = col to n - 1 do
          m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
        done;
        y.(row) <- y.(row) -. (factor *. y.(col))
      end
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let acc = ref y.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

let least_squares ?(ridge = 1e-9) xs ys =
  let rows = Array.length xs in
  if rows = 0 then invalid_arg "Linalg.least_squares: no samples";
  if Array.length ys <> rows then invalid_arg "Linalg.least_squares: X/y mismatch";
  let xt = transpose xs in
  let xtx = mat_mul xt xs in
  let dims = Array.length xtx in
  for i = 0 to dims - 1 do
    xtx.(i).(i) <- xtx.(i).(i) +. ridge
  done;
  let xty = mat_vec xt ys in
  solve xtx xty
