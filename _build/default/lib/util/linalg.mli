(** Small dense linear algebra: just enough for ordinary least squares.

    Matrices are row-major [float array array]; all rows must have equal
    length. Sizes here are tiny (the cost-model feature space is 8-wide), so
    clarity wins over blocking/vectorization. *)

(** [mat_vec a x] is the matrix-vector product [a * x]. *)
val mat_vec : float array array -> float array -> float array

(** [transpose a] is the matrix transpose. *)
val transpose : float array array -> float array array

(** [mat_mul a b] is the matrix product [a * b]. *)
val mat_mul : float array array -> float array array -> float array array

(** [solve a b] solves [a * x = b] by Gaussian elimination with partial
    pivoting. [a] is not modified.
    @raise Failure if [a] is (numerically) singular. *)
val solve : float array array -> float array -> float array

(** [least_squares xs ys] returns the OLS coefficients [beta] minimizing
    [|X beta - y|^2] via the normal equations, with a tiny ridge term for
    numerical robustness on collinear profile data.
    @param ridge regularization strength (default [1e-9]). *)
val least_squares : ?ridge:float -> float array array -> float array -> float array

(** [dot x y] is the inner product. *)
val dot : float array -> float array -> float
