type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64: fast, passes BigCrush, and trivially splittable. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next_int64 t in
  { state = s }

(* Non-negative 62-bit int. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next_nonneg t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 bits of mantissa from the top of the stream. *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let float_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.float_in_range: hi < lo";
  lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1.0 -. unit_float t in
  -.mean *. log u

let pareto t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then invalid_arg "Rng.pareto: parameters must be positive";
  let u = 1.0 -. unit_float t in
  scale /. (u ** (1.0 /. shape))

let gaussian t ~mean ~sigma =
  (* Box-Muller; u1 in (0,1] so the log is finite. *)
  let u1 = 1.0 -. unit_float t in
  let u2 = unit_float t in
  mean +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~sigma)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
