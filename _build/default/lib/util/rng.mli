(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component in the library (schema generation, randomized
    planning, queue traces) threads one of these explicitly, so that every
    experiment is reproducible from a seed. *)

type t

(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : int -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator with a decorrelated
    stream, for handing to sub-components. *)
val split : t -> t

(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive). *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [float_in_range t ~lo ~hi] is uniform in [\[lo, hi)]. *)
val float_in_range : t -> lo:float -> hi:float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [exponential t ~mean] samples an exponential distribution. *)
val exponential : t -> mean:float -> float

(** [pareto t ~shape ~scale] samples a Pareto distribution (heavy tail);
    used for synthetic job-size traces. *)
val pareto : t -> shape:float -> scale:float -> float

(** [gaussian t ~mean ~sigma] samples a normal distribution (Box-Muller). *)
val gaussian : t -> mean:float -> sigma:float -> float

(** [lognormal t ~mu ~sigma] samples exp(N(mu, sigma)) — task-duration
    noise in the task-level simulator. *)
val lognormal : t -> mu:float -> sigma:float -> float

(** [pick t arr] is a uniformly random element of [arr].
    @raise Invalid_argument on an empty array. *)
val pick : t -> 'a array -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
