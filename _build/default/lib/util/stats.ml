let require_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  require_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  require_nonempty "Stats.variance" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min_max xs =
  require_nonempty "Stats.min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let percentile xs p =
  require_nonempty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let geometric_mean xs =
  require_nonempty "Stats.geometric_mean" xs;
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geometric_mean: nonpositive sample";
        acc +. log x)
      0.0 xs
  in
  exp (acc /. float_of_int (Array.length xs))

let cdf xs ~points =
  require_nonempty "Stats.cdf" xs;
  if points < 2 then invalid_arg "Stats.cdf: need at least 2 points";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  List.init points (fun i ->
      let frac = float_of_int i /. float_of_int (points - 1) in
      let idx = int_of_float (frac *. float_of_int (n - 1)) in
      (sorted.(idx), float_of_int (idx + 1) /. float_of_int n))

let fraction_at_least xs threshold =
  require_nonempty "Stats.fraction_at_least" xs;
  let count = Array.fold_left (fun acc x -> if x >= threshold then acc + 1 else acc) 0 xs in
  float_of_int count /. float_of_int (Array.length xs)
