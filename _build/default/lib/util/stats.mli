(** Descriptive statistics over float samples. *)

(** [mean xs] is the arithmetic mean. @raise Invalid_argument on empty input. *)
val mean : float array -> float

(** [variance xs] is the population variance. *)
val variance : float array -> float

(** [stddev xs] is the population standard deviation. *)
val stddev : float array -> float

(** [min_max xs] is [(min, max)]. @raise Invalid_argument on empty input. *)
val min_max : float array -> float * float

(** [percentile xs p] for [p] in [\[0, 100\]], by linear interpolation between
    order statistics. Does not mutate [xs]. *)
val percentile : float array -> float -> float

(** [median xs] is [percentile xs 50.]. *)
val median : float array -> float

(** [geometric_mean xs] requires all samples positive. *)
val geometric_mean : float array -> float

(** [cdf xs ~points] returns [(value, fraction <= value)] pairs at [points]
    evenly spaced quantile levels, suitable for plotting a CDF. Sorted by
    value; fractions are nondecreasing in [\[0, 1\]]. *)
val cdf : float array -> points:int -> (float * float) list

(** [fraction_at_least xs threshold] is the fraction of samples [>= threshold]. *)
val fraction_at_least : float array -> float -> float
