let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let render ~headers rows =
  let ncols = List.length headers in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let render_row row =
    String.concat "  " (List.mapi (fun i cell -> pad widths.(i) cell) row)
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row headers :: sep :: List.map render_row rows)

let print ~title ~headers rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ~headers rows)

let fseries v =
  let a = Float.abs v in
  if v = 0.0 then "0"
  else if a >= 1e6 || a < 1e-3 then Printf.sprintf "%.3g" v
  else if a >= 100.0 then Printf.sprintf "%.0f" v
  else if a >= 1.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4f" v
