(** Plain-text table rendering for the benchmark harness: every figure in the
    paper is regenerated as an aligned ASCII table of its series. *)

(** [render ~headers rows] lays out [rows] under [headers] with right-padded,
    aligned columns. Rows shorter than [headers] are padded with blanks. *)
val render : headers:string list -> string list list -> string

(** [print ~title ~headers rows] renders with a title banner to stdout. *)
val print : title:string -> headers:string list -> string list list -> unit

(** [fseries v] formats a float series value compactly ("12.3", "0.004",
    "1.2e+06") for table cells. *)
val fseries : float -> string
