let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let time_ms f =
  let result, s = time f in
  (result, s *. 1000.0)

let avg_ms ~runs f =
  if runs <= 0 then invalid_arg "Timer.avg_ms: runs must be positive";
  let total = ref 0.0 in
  let result = ref None in
  for _ = 1 to runs do
    let r, ms = time_ms f in
    result := Some r;
    total := !total +. ms
  done;
  match !result with
  | Some r -> (r, !total /. float_of_int runs)
  | None -> assert false
