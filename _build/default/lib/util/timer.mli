(** Wall-clock timing for planner-overhead experiments (Figures 12-15). *)

(** [time f] runs [f ()] and returns its result with the elapsed wall-clock
    seconds. *)
val time : (unit -> 'a) -> 'a * float

(** [time_ms f] is [time f] with milliseconds, the unit the paper reports. *)
val time_ms : (unit -> 'a) -> 'a * float

(** [avg_ms ~runs f] runs [f] [runs] times and returns the last result and
    the mean elapsed milliseconds (the paper averages 3 runs). *)
val avg_ms : runs:int -> (unit -> 'a) -> 'a * float
