let gb_of_mb mb = mb /. 1024.0
let mb_of_gb gb = gb *. 1024.0
let gb_of_bytes b = b /. (1024.0 *. 1024.0 *. 1024.0)
let bytes_of_gb gb = gb *. 1024.0 *. 1024.0 *. 1024.0

let pp_gb fmt gb =
  if Float.abs gb >= 1.0 then Format.fprintf fmt "%.2f GB" gb
  else Format.fprintf fmt "%.0f MB" (mb_of_gb gb)

let pp_duration fmt seconds =
  if Float.abs seconds < 1.0 then Format.fprintf fmt "%.0f ms" (seconds *. 1000.0)
  else if Float.abs seconds < 120.0 then Format.fprintf fmt "%.1f s" seconds
  else Format.fprintf fmt "%.1f min" (seconds /. 60.0)
