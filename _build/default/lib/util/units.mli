(** Byte-size units. The whole library standardizes on gigabytes (float) for
    data and memory sizes, matching the paper's axes. *)

(** [gb_of_mb mb] converts megabytes to gigabytes. *)
val gb_of_mb : float -> float

(** [mb_of_gb gb] converts gigabytes to megabytes. *)
val mb_of_gb : float -> float

(** [gb_of_bytes b] converts bytes to gigabytes. *)
val gb_of_bytes : float -> float

(** [bytes_of_gb gb] converts gigabytes to bytes. *)
val bytes_of_gb : float -> float

(** [pp_gb fmt gb] prints a human-friendly size ("3.4 GB", "850 MB"). *)
val pp_gb : Format.formatter -> float -> unit

(** [pp_duration fmt seconds] prints "842 s" / "14.1 min" style durations. *)
val pp_duration : Format.formatter -> float -> unit
