lib/workload/profile_runs.ml: Array List Option Raqo_cluster Raqo_cost Raqo_dtree Raqo_execsim Raqo_plan Raqo_util
