lib/workload/profile_runs.mli: Raqo_cluster Raqo_cost Raqo_dtree Raqo_execsim Raqo_plan Raqo_util
