lib/workload/switch_points.ml: List Raqo_cluster Raqo_execsim Raqo_plan
