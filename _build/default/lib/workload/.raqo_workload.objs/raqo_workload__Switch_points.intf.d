lib/workload/switch_points.mli: Raqo_cluster Raqo_execsim
