module Join_impl = Raqo_plan.Join_impl
module Operators = Raqo_execsim.Operators
module Resources = Raqo_cluster.Resources
module Feature = Raqo_cost.Feature

type sample = {
  impl : Join_impl.t;
  small_gb : float;
  big_gb : float;
  resources : Resources.t;
  seconds : float;
}

let profile engine impl ~small_gb ~big_gb ~resources =
  Operators.join_time engine impl ~small_gb ~big_gb ~resources
  |> Option.map (fun seconds -> { impl; small_gb; big_gb; resources; seconds })

let sweep engine ~big_gb ~small_sizes ~configs =
  List.concat_map
    (fun small_gb ->
      List.concat_map
        (fun resources ->
          List.filter_map
            (fun impl -> profile engine impl ~small_gb ~big_gb ~resources)
            Join_impl.all)
        configs)
    small_sizes

let random_sweep rng engine conditions ~big_gb ~n =
  let open Raqo_cluster.Conditions in
  List.concat
    (List.init n (fun _ ->
         let small_gb = Raqo_util.Rng.float_in_range rng ~lo:0.2 ~hi:12.0 in
         let containers =
           Raqo_util.Rng.int_in_range rng ~lo:conditions.min_containers
             ~hi:conditions.max_containers
         in
         let container_gb =
           Raqo_util.Rng.float_in_range rng ~lo:conditions.min_gb ~hi:conditions.max_gb
         in
         let resources = Resources.make ~containers ~container_gb in
         List.filter_map
           (fun impl -> profile engine impl ~small_gb ~big_gb ~resources)
           Join_impl.all))

let regression_rows ~space samples impl =
  let rows =
    List.filter_map
      (fun s ->
        if Join_impl.equal s.impl impl then
          Some
            ( Feature.vector_of space ~small_gb:s.small_gb ~resources:s.resources,
              s.seconds )
        else None)
      samples
  in
  ( Array.of_list (List.map fst rows),
    Array.of_list (List.map snd rows) )

let train_cost_model ?(space = Feature.Extended) ?(oom_headroom = 1.15) samples =
  let fit impl =
    let features, targets = regression_rows ~space samples impl in
    if Array.length features = 0 then
      invalid_arg
        ("Profile_runs.train_cost_model: no samples for " ^ Join_impl.to_string impl);
    Raqo_cost.Linreg.train ~features ~targets ()
  in
  (* Scan: a plain per-GB throughput term, expressed in the same space so
     prediction dimensions line up. *)
  let scan_coefficients = Array.make (Feature.dims space) 0.0 in
  scan_coefficients.(0) <- 30.0;
  {
    Raqo_cost.Op_cost.space;
    smj = fit Join_impl.Smj;
    bhj = fit Join_impl.Bhj;
    scan = Raqo_cost.Linreg.of_coefficients scan_coefficients;
    oom_headroom;
    floor = 0.01;
  }

let model_fit samples (model : Raqo_cost.Op_cost.t) =
  let r2 impl linreg =
    let features, targets = regression_rows ~space:model.space samples impl in
    Raqo_cost.Linreg.r_squared linreg ~features ~targets
  in
  (r2 Join_impl.Smj model.smj, r2 Join_impl.Bhj model.bhj)

let dtree_feature_names = [| "data_gb"; "container_gb"; "containers"; "total_tasks" |]
let dtree_labels = [| "BHJ"; "SMJ" |]

let dtree_features ~small_gb ~(resources : Resources.t) =
  let total_tasks = ceil (small_gb /. 0.25) in
  [|
    small_gb;
    resources.container_gb;
    float_of_int resources.containers;
    total_tasks;
  |]

let classification_dataset engine ~big_gb ~small_sizes ~configs =
  let samples =
    List.concat_map
      (fun small_gb ->
        List.filter_map
          (fun resources ->
            match Operators.best_impl engine ~small_gb ~big_gb ~resources with
            | Some (impl, _) ->
                let label =
                  match impl with
                  | Join_impl.Bhj -> 0
                  | Join_impl.Smj -> 1
                in
                Some (dtree_features ~small_gb ~resources, label)
            | None -> None)
          configs)
      small_sizes
  in
  Raqo_dtree.Dataset.make ~feature_names:dtree_feature_names ~label_names:dtree_labels
    (Array.of_list samples)
