(** Profile runs: executing (here: simulating) joins across the data-resource
    grid to produce the training data behind the paper's learned cost models
    (Section VI-A) and RAQO decision trees (Section V-B). *)

type sample = {
  impl : Raqo_plan.Join_impl.t;
  small_gb : float;  (** smaller input size *)
  big_gb : float;  (** probe-side size *)
  resources : Raqo_cluster.Resources.t;
  seconds : float;  (** simulated execution time *)
}

(** [sweep engine ~big_gb ~small_sizes ~configs] profiles every feasible
    (implementation, size, configuration) combination. Infeasible runs (BHJ
    OOM) are skipped, as a real profiling campaign would record failures. *)
val sweep :
  Raqo_execsim.Engine.t ->
  big_gb:float ->
  small_sizes:float list ->
  configs:Raqo_cluster.Resources.t list ->
  sample list

(** [random_sweep rng engine conditions ~big_gb ~n] draws [n] random points
    from the data-resource space (small size in [0.2, 12] GB). *)
val random_sweep :
  Raqo_util.Rng.t ->
  Raqo_execsim.Engine.t ->
  Raqo_cluster.Conditions.t ->
  big_gb:float ->
  n:int ->
  sample list

(** [train_cost_model ?space ?oom_headroom samples] fits one regression per
    implementation (with intercept) and returns the operator cost model.
    Default feature space is {!Raqo_cost.Feature.Extended} — the tuned space
    that keeps predictions physical; pass [Paper] to stay in the published
    7-feature space. Needs samples of both implementations.
    @raise Invalid_argument otherwise. *)
val train_cost_model :
  ?space:Raqo_cost.Feature.space -> ?oom_headroom:float -> sample list -> Raqo_cost.Op_cost.t

(** [model_fit samples model] is per-implementation R² of [model] on
    [samples], as [(smj_r2, bhj_r2)]. *)
val model_fit : sample list -> Raqo_cost.Op_cost.t -> float * float

(** Decision-tree feature space for rule-based RAQO: data size (GB of the
    smaller relation), container size (GB), concurrent containers, and total
    task count. *)
val dtree_feature_names : string array

val dtree_labels : string array

(** [dtree_features ~small_gb ~resources] builds one feature vector. *)
val dtree_features :
  small_gb:float -> resources:Raqo_cluster.Resources.t -> float array

(** [classification_dataset engine ~big_gb ~small_sizes ~configs] labels each
    grid point with the simulator-fastest feasible implementation —
    the training set for the Figure 11 RAQO trees. *)
val classification_dataset :
  Raqo_execsim.Engine.t ->
  big_gb:float ->
  small_sizes:float list ->
  configs:Raqo_cluster.Resources.t list ->
  Raqo_dtree.Dataset.t
