module Operators = Raqo_execsim.Operators
module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources

type metric = Exec_time | Monetary

(* true when BHJ is the better choice at size [s]. *)
let bhj_wins ?reducers engine ~metric ~big_gb ~resources s =
  let weight seconds =
    match metric with
    | Exec_time -> seconds
    | Monetary -> Resources.gb_seconds resources seconds
  in
  let time impl = Operators.join_time ?reducers engine impl ~small_gb:s ~big_gb ~resources in
  match (time Join_impl.Bhj, time Join_impl.Smj) with
  | Some b, Some m -> weight b < weight m
  | Some _, None -> true
  | None, (Some _ | None) -> false

let find ?(metric = Exec_time) ?reducers engine ~big_gb ~resources ~lo ~hi () =
  if lo <= 0.0 || hi <= lo then invalid_arg "Switch_points.find: bad range";
  let wins = bhj_wins ?reducers engine ~metric ~big_gb ~resources in
  if not (wins lo) then None (* SMJ dominates even the smallest build side *)
  else if wins hi then None (* BHJ dominates the whole range *)
  else begin
    (* Grid scan for the first flip, then bisect it down to ~1 MB. *)
    let steps = 200 in
    let step = (hi -. lo) /. float_of_int steps in
    let rec first_flip i =
      if i > steps then hi
      else begin
        let s = lo +. (float_of_int i *. step) in
        if not (wins s) then s else first_flip (i + 1)
      end
    in
    let flip = first_flip 1 in
    let rec bisect lo hi =
      if hi -. lo < 0.001 then (lo +. hi) /. 2.0
      else begin
        let mid = (lo +. hi) /. 2.0 in
        if wins mid then bisect mid hi else bisect lo mid
      end
    in
    Some (bisect (flip -. step) flip)
  end

let frontier ?metric ?reducers engine ~big_gb ~configs ~lo ~hi () =
  List.map
    (fun resources ->
      (resources, find ?metric ?reducers engine ~big_gb ~resources ~lo ~hi ()))
    configs
