(** Switch-point analysis (paper Figures 4, 7, 9): for a fixed probe side and
    resource configuration, the build-side size at which the best join
    implementation flips from BHJ to SMJ. BHJ wins for small build sides;
    the flip happens either where the cost curves cross or at the BHJ
    out-of-memory cliff, whichever comes first. *)

(** How a comparison metric is derived from a simulated execution time. *)
type metric =
  | Exec_time  (** raw seconds *)
  | Monetary  (** seconds x memory held (serverless dollars) *)

(** [find ?metric ?reducers engine ~big_gb ~resources ~lo ~hi] returns the
    switch point in GB within [\[lo, hi\]], or [None] when one
    implementation dominates across the whole range. Located by grid scan
    plus bisection to ~1 MB precision. *)
val find :
  ?metric:metric ->
  ?reducers:Raqo_execsim.Operators.reducers ->
  Raqo_execsim.Engine.t ->
  big_gb:float ->
  resources:Raqo_cluster.Resources.t ->
  lo:float ->
  hi:float ->
  unit ->
  float option

(** [frontier ?metric ?reducers engine ~big_gb ~configs ~lo ~hi] computes the
    Figure 9 curves: the switch point for every configuration, [(config,
    switch)] in input order. *)
val frontier :
  ?metric:metric ->
  ?reducers:Raqo_execsim.Operators.reducers ->
  Raqo_execsim.Engine.t ->
  big_gb:float ->
  configs:Raqo_cluster.Resources.t list ->
  lo:float ->
  hi:float ->
  unit ->
  (Raqo_cluster.Resources.t * float option) list
