test/test_catalog.ml: Alcotest Float List QCheck QCheck_alcotest Raqo_catalog Raqo_util
