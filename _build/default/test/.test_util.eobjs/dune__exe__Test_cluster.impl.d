test/test_cluster.ml: Alcotest Float List Printf QCheck QCheck_alcotest Raqo_cluster Raqo_util
