test/test_cluster.mli:
