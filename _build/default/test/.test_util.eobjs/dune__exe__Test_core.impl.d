test/test_core.ml: Alcotest Float Lazy List Printf Raqo Raqo_catalog Raqo_cluster Raqo_cost Raqo_dtree Raqo_execsim Raqo_plan Raqo_planner Raqo_resource Raqo_workload String
