test/test_cost.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Raqo_catalog Raqo_cluster Raqo_cost Raqo_plan Raqo_util
