test/test_cost.mli:
