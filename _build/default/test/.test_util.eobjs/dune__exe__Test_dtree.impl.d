test/test_dtree.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Raqo_dtree String
