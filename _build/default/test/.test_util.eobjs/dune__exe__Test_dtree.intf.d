test/test_dtree.mli:
