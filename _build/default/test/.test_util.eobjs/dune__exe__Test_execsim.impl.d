test/test_execsim.ml: Alcotest Float List Printf QCheck QCheck_alcotest Raqo_catalog Raqo_cluster Raqo_execsim Raqo_plan Raqo_util Raqo_workload String
