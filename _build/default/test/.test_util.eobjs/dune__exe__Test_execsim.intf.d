test/test_execsim.mli:
