test/test_plan.ml: Alcotest Format List Printf QCheck QCheck_alcotest Raqo_cluster Raqo_dtree Raqo_plan String
