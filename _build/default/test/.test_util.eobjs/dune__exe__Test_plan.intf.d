test/test_plan.mli:
