test/test_planner.ml: Alcotest Float List Printf QCheck QCheck_alcotest Raqo_catalog Raqo_cluster Raqo_cost Raqo_execsim Raqo_plan Raqo_planner Raqo_resource Raqo_util
