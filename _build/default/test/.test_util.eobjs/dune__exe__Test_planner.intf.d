test/test_planner.mli:
