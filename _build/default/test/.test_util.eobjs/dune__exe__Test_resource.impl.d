test/test_resource.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Raqo_cluster Raqo_resource Raqo_util
