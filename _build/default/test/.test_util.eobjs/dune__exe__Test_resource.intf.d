test/test_resource.mli:
