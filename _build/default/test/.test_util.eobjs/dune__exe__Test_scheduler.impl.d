test/test_scheduler.ml: Alcotest List Printf QCheck QCheck_alcotest Raqo Raqo_catalog Raqo_cluster Raqo_execsim Raqo_plan Raqo_scheduler Raqo_util String
