test/test_scheduler.mli:
