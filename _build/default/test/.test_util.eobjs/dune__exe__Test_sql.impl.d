test/test_sql.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Raqo Raqo_catalog Raqo_plan Raqo_sql String
