test/test_sql.mli:
