test/test_util.ml: Alcotest Array Float Format Gen List QCheck QCheck_alcotest Raqo_util String
