test/test_workload.ml: Alcotest Array List Printf QCheck QCheck_alcotest Raqo_cluster Raqo_cost Raqo_dtree Raqo_execsim Raqo_plan Raqo_util Raqo_workload
