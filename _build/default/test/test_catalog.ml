(* Tests for Raqo_catalog: relations, join graphs, schemas and cardinality
   estimation, the TPC-H instance, random schema generation, queries. *)

module Relation = Raqo_catalog.Relation
module Join_graph = Raqo_catalog.Join_graph
module Schema = Raqo_catalog.Schema
module Tpch = Raqo_catalog.Tpch
module Random_schema = Raqo_catalog.Random_schema
module Query = Raqo_catalog.Query
module Rng = Raqo_util.Rng

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------- Relation *)

let test_relation_size () =
  let r = Relation.make ~name:"t" ~rows:1024.0 ~row_bytes:(1024.0 *. 1024.0) in
  check_float "1 GB" 1.0 (Relation.size_gb r)

let test_relation_rejects_bad () =
  Alcotest.check_raises "rows" (Invalid_argument "Relation.make: rows must be positive")
    (fun () -> ignore (Relation.make ~name:"t" ~rows:0.0 ~row_bytes:10.0));
  Alcotest.check_raises "bytes"
    (Invalid_argument "Relation.make: row_bytes must be positive") (fun () ->
      ignore (Relation.make ~name:"t" ~rows:10.0 ~row_bytes:(-1.0)))

let test_relation_scale () =
  let r = Relation.make ~name:"t" ~rows:100.0 ~row_bytes:10.0 in
  let r2 = Relation.scale r 0.5 in
  check_float "rows scaled" 50.0 r2.Relation.rows;
  check_float "bytes unchanged" 10.0 r2.Relation.row_bytes

(* ----------------------------------------------------------- Join_graph *)

let small_graph () =
  Join_graph.make
    [
      { Join_graph.left = "a"; right = "b"; selectivity = 0.1 };
      { Join_graph.left = "b"; right = "c"; selectivity = 0.01 };
    ]

let test_graph_selectivity_symmetric () =
  let g = small_graph () in
  Alcotest.(check (option (float 1e-12))) "a-b" (Some 0.1) (Join_graph.selectivity g "a" "b");
  Alcotest.(check (option (float 1e-12))) "b-a" (Some 0.1) (Join_graph.selectivity g "b" "a");
  Alcotest.(check (option (float 1e-12))) "a-c" None (Join_graph.selectivity g "a" "c")

let test_graph_rejects_self_edge () =
  Alcotest.check_raises "self" (Invalid_argument "Join_graph.make: self-edge") (fun () ->
      ignore (Join_graph.make [ { Join_graph.left = "a"; right = "a"; selectivity = 0.5 } ]))

let test_graph_rejects_duplicate () =
  Alcotest.check_raises "dup" (Invalid_argument "Join_graph.make: duplicate edge")
    (fun () ->
      ignore
        (Join_graph.make
           [
             { Join_graph.left = "a"; right = "b"; selectivity = 0.5 };
             { Join_graph.left = "b"; right = "a"; selectivity = 0.2 };
           ]))

let test_graph_rejects_bad_selectivity () =
  Alcotest.check_raises "sel" (Invalid_argument "Join_graph.make: selectivity out of (0,1]")
    (fun () ->
      ignore (Join_graph.make [ { Join_graph.left = "a"; right = "b"; selectivity = 0.0 } ]))

let test_graph_neighbors () =
  let g = small_graph () in
  Alcotest.(check (list string)) "b's neighbors" [ "a"; "c" ]
    (List.sort compare (Join_graph.neighbors g "b"))

let test_graph_edges_between () =
  let g = small_graph () in
  Alcotest.(check int) "one crossing edge" 1
    (List.length (Join_graph.edges_between g [ "a"; "b" ] [ "c" ]));
  Alcotest.(check int) "no crossing edge" 0
    (List.length (Join_graph.edges_between g [ "a" ] [ "c" ]))

let test_graph_connected () =
  let g = small_graph () in
  Alcotest.(check bool) "abc connected" true (Join_graph.connected g [ "a"; "b"; "c" ]);
  Alcotest.(check bool) "ac disconnected" false (Join_graph.connected g [ "a"; "c" ]);
  Alcotest.(check bool) "singleton connected" true (Join_graph.connected g [ "a" ]);
  Alcotest.(check bool) "empty connected" true (Join_graph.connected g [])

(* --------------------------------------------------------------- Schema *)

let tiny_schema () =
  let relations =
    [
      Relation.make ~name:"a" ~rows:1000.0 ~row_bytes:100.0;
      Relation.make ~name:"b" ~rows:100.0 ~row_bytes:50.0;
      Relation.make ~name:"c" ~rows:10.0 ~row_bytes:10.0;
    ]
  in
  Schema.make relations (small_graph ())

let test_schema_find () =
  let s = tiny_schema () in
  check_float "rows of b" 100.0 (Schema.find s "b").Relation.rows;
  Alcotest.(check bool) "mem" true (Schema.mem s "c");
  Alcotest.(check bool) "not mem" false (Schema.mem s "zz")

let test_schema_rejects_duplicate_relation () =
  Alcotest.check_raises "dup" (Invalid_argument "Schema.make: duplicate relation a")
    (fun () ->
      ignore
        (Schema.make
           [
             Relation.make ~name:"a" ~rows:1.0 ~row_bytes:1.0;
             Relation.make ~name:"a" ~rows:2.0 ~row_bytes:1.0;
           ]
           (Join_graph.make [])))

let test_schema_rejects_unknown_edge () =
  Alcotest.check_raises "edge" (Invalid_argument "Schema.make: edge references unknown relation b")
    (fun () ->
      ignore
        (Schema.make
           [ Relation.make ~name:"a" ~rows:1.0 ~row_bytes:1.0 ]
           (Join_graph.make [ { Join_graph.left = "a"; right = "b"; selectivity = 0.5 } ])))

let test_schema_join_rows_pair () =
  let s = tiny_schema () in
  (* |a ⋈ b| = 1000 * 100 * 0.1 = 10000 *)
  check_float "a⋈b rows" 10_000.0 (Schema.join_rows s [ "a"; "b" ]);
  (* joining all three multiplies both selectivities *)
  check_float "a⋈b⋈c rows" (1000.0 *. 100.0 *. 10.0 *. 0.1 *. 0.01)
    (Schema.join_rows s [ "a"; "b"; "c" ])

let test_schema_join_rows_single () =
  let s = tiny_schema () in
  check_float "single" 10.0 (Schema.join_rows s [ "c" ])

let test_schema_join_rows_floor () =
  (* Estimates never drop below one row. *)
  let relations =
    [
      Relation.make ~name:"x" ~rows:2.0 ~row_bytes:8.0;
      Relation.make ~name:"y" ~rows:2.0 ~row_bytes:8.0;
    ]
  in
  let g = Join_graph.make [ { Join_graph.left = "x"; right = "y"; selectivity = 0.001 } ] in
  let s = Schema.make relations g in
  check_float "floored at 1" 1.0 (Schema.join_rows s [ "x"; "y" ])

let test_schema_join_row_bytes () =
  let s = tiny_schema () in
  check_float "widths add" 150.0 (Schema.join_row_bytes s [ "a"; "b" ])

let test_schema_with_relation () =
  let s = tiny_schema () in
  let s2 = Schema.with_relation s (Relation.make ~name:"b" ~rows:7.0 ~row_bytes:50.0) in
  check_float "replaced" 7.0 (Schema.find s2 "b").Relation.rows;
  check_float "original untouched" 100.0 (Schema.find s "b").Relation.rows

let test_schema_joinable () =
  let s = tiny_schema () in
  Alcotest.(check bool) "a,b joinable" true (Schema.joinable s [ "a"; "b" ]);
  Alcotest.(check bool) "a,c not joinable" false (Schema.joinable s [ "a"; "c" ])

(* ----------------------------------------------------------------- TPCH *)

let test_tpch_has_8_tables () =
  let s = Tpch.schema () in
  Alcotest.(check int) "8 relations" 8 (List.length (Schema.relations s))

let test_tpch_sf100_sizes () =
  let s = Tpch.schema () in
  (* The paper's SF-100 setup: lineitem ~77 GB. *)
  let li = Relation.size_gb (Schema.find s "lineitem") in
  Alcotest.(check bool) "lineitem ~77 GB" true (li > 70.0 && li < 85.0);
  let orders = Relation.size_gb (Schema.find s "orders") in
  Alcotest.(check bool) "orders ~16.5 GB" true (orders > 14.0 && orders < 19.0)

let test_tpch_scale_factor_scales_facts_not_nation () =
  let s1 = Tpch.schema ~scale_factor:1.0 () in
  let s100 = Tpch.schema ~scale_factor:100.0 () in
  check_float "lineitem scales 100x"
    (100.0 *. (Schema.find s1 "lineitem").Relation.rows)
    (Schema.find s100 "lineitem").Relation.rows;
  check_float "nation fixed" (Schema.find s1 "nation").Relation.rows
    (Schema.find s100 "nation").Relation.rows

let test_tpch_pk_fk_join_cardinality () =
  let s = Tpch.schema () in
  (* lineitem ⋈ orders on the FK: |result| = |lineitem|. *)
  check_float "fk join preserves fact table"
    (Schema.find s "lineitem").Relation.rows
    (Schema.join_rows s [ "orders"; "lineitem" ])

let test_tpch_queries_joinable () =
  let s = Tpch.schema () in
  List.iter
    (fun (name, rels) ->
      Alcotest.(check bool) (name ^ " joinable") true (Schema.joinable s rels))
    Tpch.evaluation_queries

let test_tpch_all_has_every_table () =
  Alcotest.(check int) "8 relations in All" 8 (List.length Tpch.all)

let test_tpch_rejects_bad_sf () =
  Alcotest.check_raises "sf" (Invalid_argument "Tpch.schema: scale factor must be positive")
    (fun () -> ignore (Tpch.schema ~scale_factor:0.0 ()))

(* -------------------------------------------------------- Random_schema *)

let test_random_schema_table_count () =
  let rng = Rng.create 42 in
  let s = Random_schema.generate rng ~tables:25 in
  Alcotest.(check int) "25 tables" 25 (List.length (Schema.relations s))

let test_random_schema_within_paper_bounds () =
  let rng = Rng.create 43 in
  let s = Random_schema.generate rng ~tables:40 in
  List.iter
    (fun (r : Relation.t) ->
      Alcotest.(check bool) "rows in [100K,2M]" true (r.rows >= 100_000.0 && r.rows <= 2_000_000.0);
      Alcotest.(check bool) "bytes in [100,200]" true (r.row_bytes >= 100.0 && r.row_bytes <= 200.0))
    (Schema.relations s)

let test_random_schema_connected () =
  let rng = Rng.create 44 in
  let s = Random_schema.generate rng ~tables:60 in
  Alcotest.(check bool) "whole schema joinable" true
    (Schema.joinable s (Schema.relation_names s))

let test_random_schema_deterministic () =
  let s1 = Random_schema.generate (Rng.create 7) ~tables:10 in
  let s2 = Random_schema.generate (Rng.create 7) ~tables:10 in
  List.iter2
    (fun (a : Relation.t) (b : Relation.t) ->
      Alcotest.(check string) "names" a.name b.name;
      check_float "rows" a.rows b.rows)
    (Schema.relations s1) (Schema.relations s2)

let test_random_query_connected () =
  let rng = Rng.create 45 in
  let s = Random_schema.generate rng ~tables:30 in
  for joins = 1 to 20 do
    let rels = Random_schema.query rng s ~joins in
    Alcotest.(check int) "size" (joins + 1) (List.length rels);
    Alcotest.(check bool) "joinable" true (Schema.joinable s rels)
  done

let test_random_query_rejects_oversize () =
  let rng = Rng.create 46 in
  let s = Random_schema.generate rng ~tables:3 in
  Alcotest.check_raises "too many"
    (Invalid_argument "Random_schema.query: more joins than relations") (fun () ->
      ignore (Random_schema.query rng s ~joins:5))

let prop_random_schema_always_connected =
  QCheck.Test.make ~name:"random schemas are connected" ~count:30
    QCheck.(pair (int_range 1 50) (int_range 2 50))
    (fun (seed, tables) ->
      let s = Random_schema.generate (Rng.create seed) ~tables in
      Schema.joinable s (Schema.relation_names s))

(* ---------------------------------------------------------------- Query *)

let test_query_make_valid () =
  let s = Tpch.schema () in
  let q = Query.make ~name:"q3" s Tpch.q3 in
  Alcotest.(check int) "2 joins" 2 (Query.n_joins q)

let test_query_rejects_unknown () =
  let s = Tpch.schema () in
  Alcotest.check_raises "unknown" (Invalid_argument "Query.make: unknown relation zz")
    (fun () -> ignore (Query.make ~name:"bad" s [ "orders"; "zz" ]))

let test_query_rejects_duplicates () =
  let s = Tpch.schema () in
  Alcotest.check_raises "dup" (Invalid_argument "Query.make: duplicate relations")
    (fun () -> ignore (Query.make ~name:"bad" s [ "orders"; "orders" ]))

let test_query_rejects_cartesian () =
  let s = Tpch.schema () in
  Alcotest.check_raises "cartesian"
    (Invalid_argument "Query.make: relations of bad are not joinable (cartesian product)")
    (fun () -> ignore (Query.make ~name:"bad" s [ "region"; "orders" ]))

let test_query_rejects_empty () =
  let s = Tpch.schema () in
  Alcotest.check_raises "empty" (Invalid_argument "Query.make: empty relation set")
    (fun () -> ignore (Query.make ~name:"bad" s []))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "raqo_catalog"
    [
      ( "relation",
        [
          Alcotest.test_case "size in GB" `Quick test_relation_size;
          Alcotest.test_case "rejects bad inputs" `Quick test_relation_rejects_bad;
          Alcotest.test_case "scale" `Quick test_relation_scale;
        ] );
      ( "join_graph",
        [
          Alcotest.test_case "selectivity is symmetric" `Quick test_graph_selectivity_symmetric;
          Alcotest.test_case "rejects self edges" `Quick test_graph_rejects_self_edge;
          Alcotest.test_case "rejects duplicates" `Quick test_graph_rejects_duplicate;
          Alcotest.test_case "rejects bad selectivity" `Quick test_graph_rejects_bad_selectivity;
          Alcotest.test_case "neighbors" `Quick test_graph_neighbors;
          Alcotest.test_case "edges between sets" `Quick test_graph_edges_between;
          Alcotest.test_case "connectivity" `Quick test_graph_connected;
        ] );
      ( "schema",
        [
          Alcotest.test_case "find/mem" `Quick test_schema_find;
          Alcotest.test_case "rejects duplicate relations" `Quick
            test_schema_rejects_duplicate_relation;
          Alcotest.test_case "rejects unknown edge endpoints" `Quick
            test_schema_rejects_unknown_edge;
          Alcotest.test_case "join cardinality (pair and triple)" `Quick
            test_schema_join_rows_pair;
          Alcotest.test_case "join cardinality (single)" `Quick test_schema_join_rows_single;
          Alcotest.test_case "cardinality floored at 1" `Quick test_schema_join_rows_floor;
          Alcotest.test_case "join row widths add" `Quick test_schema_join_row_bytes;
          Alcotest.test_case "with_relation replaces" `Quick test_schema_with_relation;
          Alcotest.test_case "joinable" `Quick test_schema_joinable;
        ] );
      ( "tpch",
        [
          Alcotest.test_case "8 tables" `Quick test_tpch_has_8_tables;
          Alcotest.test_case "SF-100 sizes match the paper" `Quick test_tpch_sf100_sizes;
          Alcotest.test_case "SF scales facts, not nation" `Quick
            test_tpch_scale_factor_scales_facts_not_nation;
          Alcotest.test_case "PK-FK join cardinality" `Quick test_tpch_pk_fk_join_cardinality;
          Alcotest.test_case "evaluation queries joinable" `Quick test_tpch_queries_joinable;
          Alcotest.test_case "All joins every table" `Quick test_tpch_all_has_every_table;
          Alcotest.test_case "rejects bad scale factor" `Quick test_tpch_rejects_bad_sf;
        ] );
      ( "random_schema",
        [
          Alcotest.test_case "table count" `Quick test_random_schema_table_count;
          Alcotest.test_case "paper's size bounds" `Quick test_random_schema_within_paper_bounds;
          Alcotest.test_case "connected" `Quick test_random_schema_connected;
          Alcotest.test_case "deterministic from seed" `Quick test_random_schema_deterministic;
          Alcotest.test_case "random queries connected" `Quick test_random_query_connected;
          Alcotest.test_case "rejects oversized queries" `Quick test_random_query_rejects_oversize;
        ]
        @ qsuite [ prop_random_schema_always_connected ] );
      ( "query",
        [
          Alcotest.test_case "valid query" `Quick test_query_make_valid;
          Alcotest.test_case "rejects unknown relation" `Quick test_query_rejects_unknown;
          Alcotest.test_case "rejects duplicates" `Quick test_query_rejects_duplicates;
          Alcotest.test_case "rejects cartesian products" `Quick test_query_rejects_cartesian;
          Alcotest.test_case "rejects empty" `Quick test_query_rejects_empty;
        ] );
    ]
