(* Tests for Raqo_dtree: datasets, gini, CART training, prediction, pruning,
   rendering. *)

module Dataset = Raqo_dtree.Dataset
module Tree = Raqo_dtree.Tree
module Cart = Raqo_dtree.Cart
module Prune = Raqo_dtree.Prune

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let mk samples =
  Dataset.make ~feature_names:[| "x"; "y" |] ~label_names:[| "A"; "B" |]
    (Array.of_list samples)

(* -------------------------------------------------------------- Dataset *)

let test_dataset_basics () =
  let d = mk [ ([| 1.0; 2.0 |], 0); ([| 3.0; 4.0 |], 1) ] in
  Alcotest.(check int) "length" 2 (Dataset.length d);
  Alcotest.(check int) "features" 2 (Dataset.n_features d);
  Alcotest.(check int) "labels" 2 (Dataset.n_labels d);
  let x, l = Dataset.sample d 1 in
  check_float "x" 3.0 x.(0);
  Alcotest.(check int) "label" 1 l

let test_dataset_rejects_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Dataset.make: ragged sample") (fun () ->
      ignore (mk [ ([| 1.0 |], 0) ]))

let test_dataset_rejects_bad_label () =
  Alcotest.check_raises "label" (Invalid_argument "Dataset.make: label out of range")
    (fun () -> ignore (mk [ ([| 1.0; 1.0 |], 2) ]))

let test_dataset_label_counts () =
  let d = mk [ ([| 1.; 1. |], 0); ([| 2.; 2. |], 1); ([| 3.; 3. |], 1) ] in
  Alcotest.(check (array int)) "counts" [| 1; 2 |]
    (Dataset.label_counts d (Dataset.all_indices d))

let test_majority_ties_to_lower () =
  Alcotest.(check int) "tie" 0 (Dataset.majority_label [| 3; 3 |]);
  Alcotest.(check int) "clear" 1 (Dataset.majority_label [| 1; 5 |])

(* ----------------------------------------------------------------- Gini *)

let test_gini_pure () = check_float "pure" 0.0 (Cart.gini [| 10; 0 |])
let test_gini_balanced () = check_float "50/50" 0.5 (Cart.gini [| 5; 5 |])
let test_gini_empty () = check_float "empty" 0.0 (Cart.gini [| 0; 0 |])

let test_gini_three_way () =
  check_float "uniform over 3" (1.0 -. (3.0 /. 9.0)) (Cart.gini [| 2; 2; 2 |])

let prop_gini_bounds =
  QCheck.Test.make ~name:"gini in [0, 1)" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 6) (int_range 0 50))
    (fun counts ->
      let g = Cart.gini (Array.of_list counts) in
      g >= 0.0 && g < 1.0)

(* ------------------------------------------------------------ Best split *)

let test_best_split_separable () =
  let d = mk [ ([| 1.0; 0.0 |], 0); ([| 2.0; 0.0 |], 0); ([| 8.0; 0.0 |], 1); ([| 9.0; 0.0 |], 1) ] in
  match Cart.best_split d (Dataset.all_indices d) with
  | Some (feature, threshold, impurity) ->
      Alcotest.(check int) "splits on x" 0 feature;
      Alcotest.(check bool) "threshold between clusters" true
        (threshold > 2.0 && threshold < 8.0);
      check_float "perfect split" 0.0 impurity
  | None -> Alcotest.fail "split exists"

let test_best_split_none_when_constant () =
  let d = mk [ ([| 1.0; 1.0 |], 0); ([| 1.0; 1.0 |], 1) ] in
  Alcotest.(check bool) "no split on constant features" true
    (Cart.best_split d (Dataset.all_indices d) = None)

let test_best_split_picks_better_feature () =
  (* y separates perfectly, x does not. *)
  let d =
    mk
      [
        ([| 1.0; 0.0 |], 0); ([| 2.0; 0.0 |], 0);
        ([| 1.5; 10.0 |], 1); ([| 2.5; 10.0 |], 1);
      ]
  in
  match Cart.best_split d (Dataset.all_indices d) with
  | Some (feature, _, impurity) ->
      Alcotest.(check int) "splits on y" 1 feature;
      check_float "perfect" 0.0 impurity
  | None -> Alcotest.fail "split exists"

(* ----------------------------------------------------------------- CART *)

let test_cart_pure_input_is_leaf () =
  let d = mk [ ([| 1.0; 1.0 |], 0); ([| 2.0; 2.0 |], 0) ] in
  match Cart.train d with
  | Tree.Leaf _ -> ()
  | Tree.Node _ -> Alcotest.fail "expected leaf"

let test_cart_separable_is_perfect () =
  let d =
    mk
      [
        ([| 1.0; 5.0 |], 0); ([| 2.0; 6.0 |], 0); ([| 1.5; 5.5 |], 0);
        ([| 8.0; 1.0 |], 1); ([| 9.0; 2.0 |], 1); ([| 8.5; 1.5 |], 1);
      ]
  in
  let t = Cart.train d in
  check_float "accuracy 1" 1.0 (Cart.accuracy t d);
  Alcotest.(check int) "no training errors" 0 (Tree.training_errors t)

let test_cart_max_depth_limits () =
  (* XOR labels need depth 2; capping at 1 leaves errors. *)
  let d =
    mk
      [
        ([| 0.0; 0.0 |], 0); ([| 1.0; 1.0 |], 0);
        ([| 0.0; 1.0 |], 1); ([| 1.0; 0.0 |], 1);
      ]
  in
  let deep = Cart.train d in
  check_float "deep solves xor" 1.0 (Cart.accuracy deep d);
  let shallow = Cart.train ~params:{ Cart.default_params with Cart.max_depth = 1 } d in
  Alcotest.(check bool) "depth capped" true (Tree.depth shallow <= 1)

let test_cart_min_samples_leaf () =
  let d =
    mk [ ([| 1.0; 0.0 |], 0); ([| 2.0; 0.0 |], 0); ([| 3.0; 0.0 |], 1) ]
  in
  let t = Cart.train ~params:{ Cart.default_params with Cart.min_samples_leaf = 2 } d in
  (* Any split would leave a 1-sample side; must be a leaf. *)
  match t with
  | Tree.Leaf _ -> ()
  | Tree.Node _ -> Alcotest.fail "expected leaf under min_samples_leaf=2"

let test_cart_rejects_empty () =
  let d = mk [] in
  Alcotest.check_raises "empty" (Invalid_argument "Cart.train: empty dataset") (fun () ->
      ignore (Cart.train d))

let test_predict_follows_thresholds () =
  let t =
    Tree.Node
      {
        feature = 0;
        threshold = 5.0;
        counts = [| 2; 2 |];
        left = Tree.Leaf { counts = [| 2; 0 |] };
        right = Tree.Leaf { counts = [| 0; 2 |] };
      }
  in
  Alcotest.(check int) "left on <=" 0 (Tree.predict t [| 5.0; 0.0 |]);
  Alcotest.(check int) "right on >" 1 (Tree.predict t [| 5.1; 0.0 |])

let test_tree_metrics () =
  let t =
    Tree.Node
      {
        feature = 0;
        threshold = 1.0;
        counts = [| 3; 1 |];
        left = Tree.Leaf { counts = [| 3; 0 |] };
        right = Tree.Leaf { counts = [| 0; 1 |] };
      }
  in
  Alcotest.(check int) "nodes" 3 (Tree.n_nodes t);
  Alcotest.(check int) "leaves" 2 (Tree.n_leaves t);
  Alcotest.(check int) "depth" 1 (Tree.depth t);
  Alcotest.(check int) "label" 0 (Tree.label t);
  check_float "gini" 0.375 (Tree.gini t)

let test_render_contains_paper_fields () =
  let t =
    Tree.Node
      {
        feature = 0;
        threshold = 0.01;
        counts = [| 1; 1 |];
        left = Tree.Leaf { counts = [| 1; 0 |] };
        right = Tree.Leaf { counts = [| 0; 1 |] };
      }
  in
  let s = Tree.render ~feature_names:[| "data_gb"; "y" |] ~label_names:[| "BHJ"; "SMJ" |] t in
  List.iter
    (fun needle ->
      let contains =
        let n = String.length needle and h = String.length s in
        let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("contains " ^ needle) true contains)
    [ "data_gb"; "gini="; "samples="; "value="; "class=BHJ"; "class=SMJ" ]

(* ---------------------------------------------------------------- Prune *)

let test_prune_collapses_redundant () =
  (* Both children predict the same class: pruning merges them. *)
  let t =
    Tree.Node
      {
        feature = 0;
        threshold = 1.0;
        counts = [| 5; 1 |];
        left = Tree.Leaf { counts = [| 3; 1 |] };
        right = Tree.Leaf { counts = [| 2; 0 |] };
      }
  in
  match Prune.prune t with
  | Tree.Leaf { counts } -> Alcotest.(check (array int)) "kept counts" [| 5; 1 |] counts
  | Tree.Node _ -> Alcotest.fail "expected collapse"

let test_prune_keeps_useful_split () =
  let t =
    Tree.Node
      {
        feature = 0;
        threshold = 1.0;
        counts = [| 5; 5 |];
        left = Tree.Leaf { counts = [| 5; 0 |] };
        right = Tree.Leaf { counts = [| 0; 5 |] };
      }
  in
  match Prune.prune t with
  | Tree.Node _ -> ()
  | Tree.Leaf _ -> Alcotest.fail "useful split must survive"

let prop_prune_never_grows =
  QCheck.Test.make ~name:"pruning never increases node count" ~count:50
    QCheck.(list_of_size Gen.(int_range 4 40) (pair (pair (float_range 0. 10.) (float_range 0. 10.)) bool))
    (fun samples ->
      let data = List.map (fun ((x, y), b) -> ([| x; y |], if b then 1 else 0)) samples in
      let d = mk data in
      let t = Cart.train d in
      Tree.n_nodes (Prune.prune t) <= Tree.n_nodes t)

let prop_cart_accuracy_on_separable =
  QCheck.Test.make ~name:"CART is perfect on linearly separated labels" ~count:50
    QCheck.(list_of_size Gen.(int_range 4 40) (float_range 0.0 10.0))
    (fun xs ->
      let data = List.map (fun x -> ([| x; 0.0 |], if x > 5.0 then 1 else 0)) xs in
      let d = mk data in
      Cart.accuracy (Cart.train d) d = 1.0)

let prop_cart_depth_bounded =
  QCheck.Test.make ~name:"CART respects max_depth" ~count:50
    QCheck.(list_of_size Gen.(int_range 4 60) (pair (float_range 0. 10.) bool))
    (fun samples ->
      let data = List.map (fun (x, b) -> ([| x; x *. 0.5 |], if b then 1 else 0)) samples in
      let d = mk data in
      let t = Cart.train ~params:{ Cart.default_params with Cart.max_depth = 3 } d in
      Tree.depth t <= 3)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "raqo_dtree"
    [
      ( "dataset",
        [
          Alcotest.test_case "basics" `Quick test_dataset_basics;
          Alcotest.test_case "rejects ragged" `Quick test_dataset_rejects_ragged;
          Alcotest.test_case "rejects bad labels" `Quick test_dataset_rejects_bad_label;
          Alcotest.test_case "label counts" `Quick test_dataset_label_counts;
          Alcotest.test_case "majority ties to lower index" `Quick test_majority_ties_to_lower;
        ] );
      ( "gini",
        [
          Alcotest.test_case "pure node" `Quick test_gini_pure;
          Alcotest.test_case "balanced node" `Quick test_gini_balanced;
          Alcotest.test_case "empty node" `Quick test_gini_empty;
          Alcotest.test_case "three-way uniform" `Quick test_gini_three_way;
        ]
        @ qsuite [ prop_gini_bounds ] );
      ( "split",
        [
          Alcotest.test_case "separable data splits perfectly" `Quick test_best_split_separable;
          Alcotest.test_case "constant features: no split" `Quick
            test_best_split_none_when_constant;
          Alcotest.test_case "picks the better feature" `Quick test_best_split_picks_better_feature;
        ] );
      ( "cart",
        [
          Alcotest.test_case "pure input is a leaf" `Quick test_cart_pure_input_is_leaf;
          Alcotest.test_case "perfect on separable" `Quick test_cart_separable_is_perfect;
          Alcotest.test_case "max_depth limits (xor)" `Quick test_cart_max_depth_limits;
          Alcotest.test_case "min_samples_leaf" `Quick test_cart_min_samples_leaf;
          Alcotest.test_case "rejects empty" `Quick test_cart_rejects_empty;
          Alcotest.test_case "predict follows thresholds" `Quick test_predict_follows_thresholds;
          Alcotest.test_case "tree metrics" `Quick test_tree_metrics;
          Alcotest.test_case "render has the paper's fields" `Quick
            test_render_contains_paper_fields;
        ]
        @ qsuite [ prop_cart_accuracy_on_separable; prop_cart_depth_bounded ] );
      ( "prune",
        [
          Alcotest.test_case "collapses redundant splits" `Quick test_prune_collapses_redundant;
          Alcotest.test_case "keeps useful splits" `Quick test_prune_keeps_useful_split;
        ]
        @ qsuite [ prop_prune_never_grows ] );
    ]
