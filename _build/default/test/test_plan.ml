(* Tests for Raqo_plan: join-tree structure, traversals, annotations,
   rendering and DOT export. *)

module Join_tree = Raqo_plan.Join_tree
module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources

let res nc gb = Resources.make ~containers:nc ~container_gb:gb

(* ((a SMJ b) BHJ (c SMJ d)) — a bushy tree exercising every traversal. *)
let bushy =
  Join_tree.Join
    ( Join_impl.Bhj,
      Join_tree.Join (Join_impl.Smj, Join_tree.Scan "a", Join_tree.Scan "b"),
      Join_tree.Join (Join_impl.Smj, Join_tree.Scan "c", Join_tree.Scan "d") )

let left_deep =
  Join_tree.Join
    ( Join_impl.Smj,
      Join_tree.Join (Join_impl.Bhj, Join_tree.Scan "a", Join_tree.Scan "b"),
      Join_tree.Scan "c" )

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------ structure *)

let test_relations_left_to_right () =
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c"; "d" ] (Join_tree.relations bushy)

let test_n_joins () =
  Alcotest.(check int) "bushy" 3 (Join_tree.n_joins bushy);
  Alcotest.(check int) "scan" 0 (Join_tree.n_joins (Join_tree.Scan "x"))

let test_valid () =
  Alcotest.(check bool) "bushy valid" true (Join_tree.valid bushy);
  let dup = Join_tree.Join (Join_impl.Smj, Join_tree.Scan "a", Join_tree.Scan "a") in
  Alcotest.(check bool) "duplicate invalid" false (Join_tree.valid dup)

let test_left_deep () =
  Alcotest.(check bool) "left-deep" true (Join_tree.left_deep left_deep);
  Alcotest.(check bool) "bushy is not" false (Join_tree.left_deep bushy);
  Alcotest.(check bool) "scan is" true (Join_tree.left_deep (Join_tree.Scan "x"))

let test_fold_joins_bottom_up () =
  (* Bottom-up, left before right: children's annotations appear before the
     parent's, and each call sees the correct subtree relation sets. *)
  let visits =
    List.rev
      (Join_tree.fold_joins (fun acc impl left right -> (impl, left, right) :: acc) [] bushy)
  in
  match visits with
  | [ (i1, l1, r1); (i2, l2, r2); (i3, l3, r3) ] ->
      Alcotest.(check bool) "first is left child" true (Join_impl.equal i1 Join_impl.Smj);
      Alcotest.(check (list string)) "l1" [ "a" ] l1;
      Alcotest.(check (list string)) "r1" [ "b" ] r1;
      Alcotest.(check bool) "second is right child" true (Join_impl.equal i2 Join_impl.Smj);
      Alcotest.(check (list string)) "l2" [ "c" ] l2;
      Alcotest.(check (list string)) "r2" [ "d" ] r2;
      Alcotest.(check bool) "root last" true (Join_impl.equal i3 Join_impl.Bhj);
      Alcotest.(check (list string)) "l3" [ "a"; "b" ] l3;
      Alcotest.(check (list string)) "r3" [ "c"; "d" ] r3
  | _ -> Alcotest.fail "three joins"

let test_map_annot_and_annotations () =
  let flipped =
    Join_tree.map_annot
      (function Join_impl.Smj -> Join_impl.Bhj | Join_impl.Bhj -> Join_impl.Smj)
      bushy
  in
  Alcotest.(check (list string)) "annotations flipped" [ "BHJ"; "BHJ"; "SMJ" ]
    (List.map Join_impl.to_string (Join_tree.annotations flipped))

let test_map_joins_sees_subtrees () =
  let sized =
    Join_tree.map_joins (fun _ left right -> List.length left + List.length right) bushy
  in
  Alcotest.(check (list int)) "sizes bottom-up" [ 2; 2; 4 ] (Join_tree.annotations sized)

let test_strip () =
  let joint = Join_tree.map_annot (fun impl -> (impl, res 2 2.0)) bushy in
  Alcotest.(check bool) "strip recovers plain" true
    (Join_tree.equal_shape Join_impl.equal (Join_tree.strip joint) bushy)

let test_equal_shape () =
  Alcotest.(check bool) "same" true (Join_tree.equal_shape Join_impl.equal bushy bushy);
  Alcotest.(check bool) "differs from left-deep" false
    (Join_tree.equal_shape Join_impl.equal bushy left_deep);
  let other_impl = Join_tree.map_annot (fun _ -> Join_impl.Smj) bushy in
  Alcotest.(check bool) "annotation differences count" false
    (Join_tree.equal_shape Join_impl.equal bushy other_impl)

(* ------------------------------------------------------------ rendering *)

let test_pp_plain () =
  Alcotest.(check string) "expression form" "((a BHJ b) SMJ c)"
    (Format.asprintf "%a" Join_tree.pp_plain left_deep)

let test_pp_joint () =
  let joint = Join_tree.Join ((Join_impl.Smj, res 10 3.0), Join_tree.Scan "a", Join_tree.Scan "b") in
  Alcotest.(check string) "joint form" "(a SMJ<10 x 3.0GB> b)"
    (Format.asprintf "%a" Join_tree.pp_joint joint)

let test_render_indented () =
  let s = Join_tree.render_indented Join_impl.pp left_deep in
  Alcotest.(check bool) "has joins" true (contains "Join SMJ" s && contains "Join BHJ" s);
  Alcotest.(check bool) "has scans" true (contains "Scan a" s && contains "Scan c" s)

let test_to_dot_structure () =
  let s = Join_tree.to_dot Join_impl.pp bushy in
  Alcotest.(check bool) "digraph" true (contains "digraph plan" s);
  (* 4 scans + 3 joins = 7 nodes; 6 edges. *)
  let count needle =
    let rec go i acc =
      if i + String.length needle > String.length s then acc
      else if String.sub s i (String.length needle) = needle then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "scan boxes" 4 (count "shape=box");
  Alcotest.(check int) "join nodes" 3 (count "shape=ellipse");
  Alcotest.(check int) "edges" 6 (count "->")

let test_dtree_to_dot () =
  let t =
    Raqo_dtree.Tree.Node
      {
        feature = 0;
        threshold = 0.01;
        counts = [| 1; 1 |];
        left = Raqo_dtree.Tree.Leaf { counts = [| 1; 0 |] };
        right = Raqo_dtree.Tree.Leaf { counts = [| 0; 1 |] };
      }
  in
  let s = Raqo_dtree.Tree.to_dot ~feature_names:[| "data_gb" |] ~label_names:[| "BHJ"; "SMJ" |] t in
  Alcotest.(check bool) "digraph" true (contains "digraph dtree" s);
  Alcotest.(check bool) "true branch" true (contains "label=\"True\"" s);
  Alcotest.(check bool) "false branch" true (contains "label=\"False\"" s);
  Alcotest.(check bool) "feature" true (contains "data_gb" s)

(* ------------------------------------------------------------ join_impl *)

let test_join_impl_all () =
  Alcotest.(check int) "two implementations" 2 (List.length Join_impl.all);
  Alcotest.(check (list string)) "names" [ "SMJ"; "BHJ" ]
    (List.map Join_impl.to_string Join_impl.all)

let prop_map_annot_preserves_structure =
  QCheck.Test.make ~name:"map_annot preserves relations and join count" ~count:50
    QCheck.(int_range 1 8)
    (fun n ->
      (* A left-deep chain over n relations. *)
      let rec build i acc =
        if i > n then acc
        else
          build (i + 1)
            (Join_tree.Join (Join_impl.Smj, acc, Join_tree.Scan (Printf.sprintf "t%d" i)))
      in
      let t = build 1 (Join_tree.Scan "t0") in
      let mapped = Join_tree.map_annot (fun _ -> Join_impl.Bhj) t in
      Join_tree.relations mapped = Join_tree.relations t
      && Join_tree.n_joins mapped = Join_tree.n_joins t)

let () =
  Alcotest.run "raqo_plan"
    [
      ( "structure",
        [
          Alcotest.test_case "relations left to right" `Quick test_relations_left_to_right;
          Alcotest.test_case "join count" `Quick test_n_joins;
          Alcotest.test_case "validity" `Quick test_valid;
          Alcotest.test_case "left-deep recognition" `Quick test_left_deep;
          Alcotest.test_case "fold_joins order and subtree sets" `Quick
            test_fold_joins_bottom_up;
          Alcotest.test_case "map_annot / annotations" `Quick test_map_annot_and_annotations;
          Alcotest.test_case "map_joins sees subtrees" `Quick test_map_joins_sees_subtrees;
          Alcotest.test_case "strip" `Quick test_strip;
          Alcotest.test_case "equal_shape" `Quick test_equal_shape;
        ]
        @ [ QCheck_alcotest.to_alcotest prop_map_annot_preserves_structure ] );
      ( "rendering",
        [
          Alcotest.test_case "pp plain" `Quick test_pp_plain;
          Alcotest.test_case "pp joint" `Quick test_pp_joint;
          Alcotest.test_case "indented render" `Quick test_render_indented;
          Alcotest.test_case "plan DOT export" `Quick test_to_dot_structure;
          Alcotest.test_case "decision-tree DOT export" `Quick test_dtree_to_dot;
        ] );
      ( "join_impl",
        [ Alcotest.test_case "implementation set" `Quick test_join_impl_all ] );
    ]
