(* Tests for the SQL front end: histograms and column stats (catalog),
   lexer, parser, resolver, and the end-to-end Sql_frontend pipeline. *)

module Histogram = Raqo_catalog.Histogram
module Column = Raqo_catalog.Column
module Tpch = Raqo_catalog.Tpch
module Schema = Raqo_catalog.Schema
module Token = Raqo_sql.Token
module Lexer = Raqo_sql.Lexer
module Ast = Raqo_sql.Ast
module Parser = Raqo_sql.Parser
module Resolver = Raqo_sql.Resolver

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------- Histogram *)

let test_hist_uniform_lt () =
  let h = Histogram.uniform ~lo:0.0 ~hi:100.0 in
  check_float "below" 0.0 (Histogram.selectivity_lt h (-5.0));
  check_float "mid" 0.25 (Histogram.selectivity_lt h 25.0);
  check_float "above" 1.0 (Histogram.selectivity_lt h 200.0)

let test_hist_directions_sum () =
  let h = Histogram.uniform ~lo:0.0 ~hi:10.0 in
  check_float "lt + ge = 1" 1.0 (Histogram.selectivity_lt h 3.0 +. Histogram.selectivity_ge h 3.0);
  check_float "le + gt = 1" 1.0 (Histogram.selectivity_le h 7.0 +. Histogram.selectivity_gt h 7.0)

let test_hist_between () =
  let h = Histogram.uniform ~lo:0.0 ~hi:10.0 in
  check_float "quarter" 0.25 (Histogram.selectivity_between h ~lo:2.5 ~hi:5.0);
  check_float "empty" 0.0 (Histogram.selectivity_between h ~lo:5.0 ~hi:2.0);
  check_float "whole" 1.0 (Histogram.selectivity_between h ~lo:(-1.0) ~hi:11.0)

let test_hist_eq () =
  let h = Histogram.uniform ~lo:0.0 ~hi:10.0 in
  check_float "in range" 0.2 (Histogram.selectivity_eq h ~distinct:5.0 4.0);
  check_float "out of range" 0.0 (Histogram.selectivity_eq h ~distinct:5.0 40.0)

let test_hist_of_samples_equi_depth () =
  (* Skewed samples: bucket boundaries follow quantiles, so estimates track
     the data distribution within one bucket's resolution (1/20 here). *)
  let samples = Array.init 100 (fun i -> if i < 90 then float_of_int i else 1000.0) in
  let h = Histogram.of_samples ~buckets:20 samples in
  let at85 = Histogram.selectivity_lt h 85.0 in
  Alcotest.(check bool) (Printf.sprintf "85%% below 85 (got %.2f)" at85) true
    (Float.abs (at85 -. 0.85) < 0.06);
  let at500 = Histogram.selectivity_lt h 500.0 in
  Alcotest.(check bool) (Printf.sprintf "~90%% below 500 (got %.2f)" at500) true
    (Float.abs (at500 -. 0.90) < 0.06)

let test_hist_rejects_bad () =
  Alcotest.check_raises "bounds" (Invalid_argument "Histogram.of_bounds: need at least 2 bounds")
    (fun () -> ignore (Histogram.of_bounds [| 1.0 |]));
  Alcotest.check_raises "order"
    (Invalid_argument "Histogram.of_bounds: bounds must be nondecreasing") (fun () ->
      ignore (Histogram.of_bounds [| 2.0; 1.0 |]))

let prop_hist_lt_monotone =
  QCheck.Test.make ~name:"selectivity_lt is monotone" ~count:100
    QCheck.(triple (float_range 0.0 50.0) (float_range 0.0 100.0) (float_range 0.0 100.0))
    (fun (lo, a, b) ->
      let h = Histogram.uniform ~lo ~hi:(lo +. 60.0) in
      let x = Float.min a b and y = Float.max a b in
      Histogram.selectivity_lt h x <= Histogram.selectivity_lt h y +. 1e-9)

(* ---------------------------------------------------------------- Column *)

let columns = Tpch.columns ()

let test_column_find_qualified () =
  match Column.find columns ~table:"orders" "o_totalprice" with
  | Ok c -> Alcotest.(check string) "table" "orders" c.Column.table
  | Error e -> Alcotest.fail e

let test_column_find_bare () =
  match Column.find columns "l_quantity" with
  | Ok c -> Alcotest.(check string) "table" "lineitem" c.Column.table
  | Error e -> Alcotest.fail e

let test_column_find_unknown () =
  match Column.find columns "bananas" with
  | Error msg -> Alcotest.(check string) "msg" "unknown column bananas" msg
  | Ok _ -> Alcotest.fail "should not resolve"

let test_column_rejects_bad_distinct () =
  Alcotest.check_raises "distinct" (Invalid_argument "Column.make: nonpositive distinct count")
    (fun () ->
      ignore
        (Column.make ~table:"t" ~name:"c" ~histogram:(Histogram.uniform ~lo:0.0 ~hi:1.0)
           ~distinct:0.0))

(* ----------------------------------------------------------------- Lexer *)

let tokens_exn s =
  match Lexer.tokenize s with
  | Ok ts -> ts
  | Error e -> Alcotest.fail e

let test_lexer_basic () =
  Alcotest.(check (list string)) "select star"
    [ "SELECT"; "*"; "FROM"; "orders"; "<eof>" ]
    (List.map Token.to_string (tokens_exn "SELECT * FROM orders"))

let test_lexer_case_insensitive () =
  Alcotest.(check bool) "keywords fold" true
    (tokens_exn "select" = tokens_exn "SeLeCt")

let test_lexer_operators () =
  Alcotest.(check (list string)) "ops"
    [ "<"; "<="; ">"; ">="; "="; "<>"; "<>"; "<eof>" ]
    (List.map Token.to_string (tokens_exn "< <= > >= = <> !="))

let test_lexer_numbers_strings () =
  match tokens_exn "42 3.14 'BUILDING'" with
  | [ Token.Number a; Token.Number b; Token.Str s; Token.Eof ] ->
      check_float "int" 42.0 a;
      check_float "float" 3.14 b;
      Alcotest.(check string) "string" "BUILDING" s
  | _ -> Alcotest.fail "unexpected tokens"

let test_lexer_errors () =
  (match Lexer.tokenize "select #" with
  | Error msg -> Alcotest.(check bool) "char error" true (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected error");
  match Lexer.tokenize "'unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

(* ---------------------------------------------------------------- Parser *)

let parse_exn s =
  match Parser.parse s with
  | Ok ast -> ast
  | Error e -> Alcotest.fail e

let test_parse_star () =
  let ast = parse_exn "select * from orders, lineitem" in
  Alcotest.(check int) "no projections" 0 (List.length ast.Ast.projections);
  Alcotest.(check (list string)) "tables" [ "orders"; "lineitem" ]
    (List.map fst ast.Ast.tables)

let test_parse_projections () =
  let ast = parse_exn "select o_orderkey, l.l_quantity from orders, lineitem l" in
  Alcotest.(check int) "two projections" 2 (List.length ast.Ast.projections);
  match ast.Ast.projections with
  | [ a; b ] ->
      Alcotest.(check (option string)) "bare" None a.Ast.table;
      Alcotest.(check (option string)) "qualified" (Some "l") b.Ast.table
  | _ -> Alcotest.fail "two projections"

let test_parse_aliases () =
  let ast = parse_exn "select * from orders as o, lineitem l" in
  Alcotest.(check (list (pair string (option string)))) "aliases"
    [ ("orders", Some "o"); ("lineitem", Some "l") ]
    ast.Ast.tables

let test_parse_where_conjunction () =
  let ast =
    parse_exn
      "select * from customer, orders, lineitem where c_custkey = o_custkey and \
       l_orderkey = o_orderkey and l_quantity < 24"
  in
  Alcotest.(check int) "three predicates" 3 (List.length ast.Ast.where)

let test_parse_between () =
  let ast = parse_exn "select * from lineitem where l_shipdate between 100 and 400" in
  match ast.Ast.where with
  | [ Ast.Between (c, Ast.Number lo, Ast.Number hi) ] ->
      Alcotest.(check string) "col" "l_shipdate" c.Ast.column;
      check_float "lo" 100.0 lo;
      check_float "hi" 400.0 hi
  | _ -> Alcotest.fail "expected a BETWEEN predicate"

let test_parse_literal_on_left () =
  let ast = parse_exn "select * from lineitem where 24 > l_quantity" in
  match ast.Ast.where with
  | [ Ast.Compare (Ast.Gt, Ast.Lit (Ast.Number _), Ast.Col _) ] -> ()
  | _ -> Alcotest.fail "expected literal-left comparison"

let test_parse_trailing_semicolon () =
  ignore (parse_exn "select * from orders;")

let test_parse_errors () =
  List.iter
    (fun sql ->
      match Parser.parse sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "should not parse: %s" sql)
    [
      "select from orders";
      "select * orders";
      "select * from";
      "select * from orders where";
      "select * from orders where o_totalprice <";
      "select * from orders where between 1 and 2";
      "select * from orders extra garbage +";
      "";
    ]

let test_to_sql_roundtrip_corpus () =
  List.iter
    (fun sql ->
      let once = parse_exn sql in
      let printed = Ast.to_sql once in
      match Parser.parse printed with
      | Ok twice ->
          if twice <> once then Alcotest.failf "round-trip changed: %s -> %s" sql printed
      | Error e -> Alcotest.failf "reprinted SQL does not parse (%s): %s" e printed)
    [
      "select * from orders";
      "select * from orders, lineitem where o_orderkey = l_orderkey";
      "select o_orderkey, l.l_quantity from orders o, lineitem as l where o.o_orderkey = l.l_orderkey and l.l_quantity < 24";
      "select * from lineitem where l_shipdate between 100 and 400 and l_discount <= 0.05";
      "select * from customer where c_mktsegment = 'BUILDING'";
      "select * from lineitem where 24 > l_quantity";
    ]

let prop_parser_never_crashes =
  (* Random token soup: the parser must answer Ok or Error, never raise. *)
  QCheck.Test.make ~name:"parser is total on random input" ~count:300
    QCheck.(string_of_size Gen.(int_range 0 60))
    (fun s ->
      match Parser.parse s with
      | Ok _ | Error _ -> true)

let prop_parser_never_crashes_on_sqlish =
  (* SQL-ish fragments assembled from real tokens are more likely to reach
     deep parser states. *)
  QCheck.Test.make ~name:"parser is total on token soup" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 15) (int_range 0 14))
    (fun ids ->
      let vocab =
        [| "select"; "from"; "where"; "and"; "between"; "*"; ","; "."; "="; "<"; "orders";
           "l_quantity"; "42"; "'x'"; "as" |]
      in
      let s = String.concat " " (List.map (fun i -> vocab.(i)) ids) in
      match Parser.parse s with
      | Ok _ | Error _ -> true)

(* -------------------------------------------------------------- Resolver *)

let schema = Tpch.schema ()

let analyze_exn sql =
  match Resolver.analyze schema columns sql with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let test_resolve_paper_query () =
  let a = analyze_exn "select * from orders, lineitem where o_orderkey = l_orderkey" in
  Alcotest.(check (list string)) "relations" [ "orders"; "lineitem" ] a.Resolver.relations;
  Alcotest.(check int) "one join" 1 (List.length a.Resolver.join_predicates);
  List.iter (fun (_, s) -> check_float "unfiltered" 1.0 s) a.Resolver.table_selectivity

let test_resolve_filter_scales_schema () =
  (* o_totalprice < 172000 selects ~31% of orders: the paper's 5.1 GB sample
     written declaratively. *)
  let a =
    analyze_exn
      "select * from orders, lineitem where o_orderkey = l_orderkey and o_totalprice < 172000"
  in
  let sel = List.assoc "orders" a.Resolver.table_selectivity in
  Alcotest.(check bool) (Printf.sprintf "selectivity ~0.31 (got %.3f)" sel) true
    (sel > 0.29 && sel < 0.33);
  let scaled = (Schema.find a.Resolver.schema "orders").Raqo_catalog.Relation.rows in
  let original = (Schema.find schema "orders").Raqo_catalog.Relation.rows in
  check_float ~eps:1e-6 "rows scaled" (original *. sel) scaled;
  (* lineitem untouched. *)
  check_float "lineitem unscaled"
    (Schema.find schema "lineitem").Raqo_catalog.Relation.rows
    (Schema.find a.Resolver.schema "lineitem").Raqo_catalog.Relation.rows

let test_resolve_aliases () =
  let a =
    analyze_exn
      "select o.o_orderkey from orders o, lineitem l where o.o_orderkey = l.l_orderkey"
  in
  Alcotest.(check int) "one join" 1 (List.length a.Resolver.join_predicates)

let test_resolve_between_filter () =
  let a =
    analyze_exn
      "select * from orders, lineitem where o_orderkey = l_orderkey and l_shipdate \
       between 1 and 1263"
  in
  let sel = List.assoc "lineitem" a.Resolver.table_selectivity in
  Alcotest.(check bool) (Printf.sprintf "half of shipdates (got %.3f)" sel) true
    (sel > 0.45 && sel < 0.55)

let test_resolve_multiple_filters_multiply () =
  let a =
    analyze_exn
      "select * from lineitem where l_quantity < 25.5 and l_discount <= 0.05"
  in
  let sel = List.assoc "lineitem" a.Resolver.table_selectivity in
  (* quantity < 25.5 is (25.5-1)/49 = 0.5; discount <= 0.05 is 0.5. *)
  check_float ~eps:0.02 "product" 0.25 sel

let test_resolve_errors () =
  List.iter
    (fun (sql, fragment) ->
      match Resolver.analyze schema columns sql with
      | Error msg ->
          let contains =
            let n = String.length fragment and h = String.length msg in
            let rec go i = i + n <= h && (String.sub msg i n = fragment || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) (Printf.sprintf "%S in %S" fragment msg) true contains
      | Ok _ -> Alcotest.failf "should not resolve: %s" sql)
    [
      ("select * from nowhere", "unknown table");
      ("select * from orders where bananas < 3", "unknown column");
      ("select * from orders, orders where o_orderkey = o_orderkey", "twice in FROM");
      ("select * from region, orders where r_regionkey = o_custkey", "no join edge");
      ("select * from orders, lineitem where o_orderkey < l_orderkey", "only equality joins");
      ("select * from orders where o_orderkey = o_custkey", "same table");
      ("select * from orders, lineitem", "cartesian");
      ("select * from orders where 1 = 2", "literals");
      ( "select * from orders, lineitem where o_orderkey = l_orderkey and c_acctbal < 0",
        "not in FROM" );
      ("select c_custkey from orders", "not in FROM");
    ]

let test_resolve_unqualified_unique_prefix () =
  (* TPC-H columns have table-unique prefixes: bare names resolve. *)
  let a =
    analyze_exn
      "select * from customer, orders, lineitem where c_custkey = o_custkey and \
       l_orderkey = o_orderkey"
  in
  Alcotest.(check int) "two joins" 2 (List.length a.Resolver.join_predicates)

(* ---------------------------------------------------------- Sql_frontend *)

let test_frontend_end_to_end () =
  match
    Raqo.Sql_frontend.plan_tpch
      "select * from orders, lineitem where o_orderkey = l_orderkey"
  with
  | Ok p ->
      Alcotest.(check bool) "valid plan" true (Raqo_plan.Join_tree.valid p.Raqo.Sql_frontend.plan);
      Alcotest.(check bool) "finite cost" true (Float.is_finite p.Raqo.Sql_frontend.est_cost)
  | Error e -> Alcotest.fail e

let test_frontend_filter_changes_plan_cost () =
  let cost sql =
    match Raqo.Sql_frontend.plan_tpch sql with
    | Ok p -> p.Raqo.Sql_frontend.est_cost
    | Error e -> Alcotest.fail e
  in
  let unfiltered = cost "select * from orders, lineitem where o_orderkey = l_orderkey" in
  let filtered =
    cost
      "select * from orders, lineitem where o_orderkey = l_orderkey and o_totalprice < 172000"
  in
  Alcotest.(check bool)
    (Printf.sprintf "filtered %.1f < unfiltered %.1f" filtered unfiltered)
    true (filtered < unfiltered)

let test_frontend_reports_sql_errors () =
  match Raqo.Sql_frontend.plan_tpch "select * from nowhere" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should fail"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "raqo_sql"
    [
      ( "histogram",
        [
          Alcotest.test_case "uniform lt" `Quick test_hist_uniform_lt;
          Alcotest.test_case "directions sum to 1" `Quick test_hist_directions_sum;
          Alcotest.test_case "between" `Quick test_hist_between;
          Alcotest.test_case "equality" `Quick test_hist_eq;
          Alcotest.test_case "equi-depth from samples" `Quick test_hist_of_samples_equi_depth;
          Alcotest.test_case "rejects bad bounds" `Quick test_hist_rejects_bad;
        ]
        @ qsuite [ prop_hist_lt_monotone ] );
      ( "column",
        [
          Alcotest.test_case "qualified lookup" `Quick test_column_find_qualified;
          Alcotest.test_case "bare lookup via unique name" `Quick test_column_find_bare;
          Alcotest.test_case "unknown column" `Quick test_column_find_unknown;
          Alcotest.test_case "rejects bad distinct" `Quick test_column_rejects_bad_distinct;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "basic tokens" `Quick test_lexer_basic;
          Alcotest.test_case "case-insensitive keywords" `Quick test_lexer_case_insensitive;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "numbers and strings" `Quick test_lexer_numbers_strings;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "select star" `Quick test_parse_star;
          Alcotest.test_case "projections" `Quick test_parse_projections;
          Alcotest.test_case "aliases" `Quick test_parse_aliases;
          Alcotest.test_case "WHERE conjunctions" `Quick test_parse_where_conjunction;
          Alcotest.test_case "BETWEEN" `Quick test_parse_between;
          Alcotest.test_case "literal on the left" `Quick test_parse_literal_on_left;
          Alcotest.test_case "trailing semicolon" `Quick test_parse_trailing_semicolon;
          Alcotest.test_case "rejects malformed input" `Quick test_parse_errors;
          Alcotest.test_case "to_sql round-trips" `Quick test_to_sql_roundtrip_corpus;
        ]
        @ qsuite [ prop_parser_never_crashes; prop_parser_never_crashes_on_sqlish ] );
      ( "resolver",
        [
          Alcotest.test_case "the paper's join query" `Quick test_resolve_paper_query;
          Alcotest.test_case "filters scale the schema" `Quick
            test_resolve_filter_scales_schema;
          Alcotest.test_case "aliases" `Quick test_resolve_aliases;
          Alcotest.test_case "BETWEEN filters" `Quick test_resolve_between_filter;
          Alcotest.test_case "filters multiply" `Quick test_resolve_multiple_filters_multiply;
          Alcotest.test_case "error catalogue" `Quick test_resolve_errors;
          Alcotest.test_case "bare columns via unique prefixes" `Quick
            test_resolve_unqualified_unique_prefix;
        ] );
      ( "frontend",
        [
          Alcotest.test_case "SQL to joint plan" `Quick test_frontend_end_to_end;
          Alcotest.test_case "filters reduce plan cost" `Quick
            test_frontend_filter_changes_plan_cost;
          Alcotest.test_case "propagates SQL errors" `Quick test_frontend_reports_sql_errors;
        ] );
    ]
