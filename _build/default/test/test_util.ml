(* Unit and property tests for Raqo_util: RNG, statistics, linear algebra,
   units, table rendering, timers. *)

module Rng = Raqo_util.Rng
module Stats = Raqo_util.Stats
module Linalg = Raqo_util.Linalg
module Units = Raqo_util.Units
module Table_fmt = Raqo_util.Table_fmt
module Timer = Raqo_util.Timer

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1.0 +. Float.abs a +. Float.abs b)

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  let b = Rng.copy a in
  let x = Rng.int a 1000 in
  let y = Rng.int b 1000 in
  Alcotest.(check int) "copy continues from same state" x y

let test_rng_split_decorrelates () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000) in
  let ys = List.init 10 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 13 in
    Alcotest.(check bool) "in [0,13)" true (x >= 0 && x < 13)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_range_inclusive () =
  let rng = Rng.create 11 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 2000 do
    let x = Rng.int_in_range rng ~lo:3 ~hi:5 in
    Alcotest.(check bool) "in [3,5]" true (x >= 3 && x <= 5);
    if x = 3 then seen_lo := true;
    if x = 5 then seen_hi := true
  done;
  Alcotest.(check bool) "lo reachable" true !seen_lo;
  Alcotest.(check bool) "hi reachable" true !seen_hi

let test_rng_float_bounds () =
  let rng = Rng.create 13 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 17 in
  let xs = Array.init 20_000 (fun _ -> Rng.exponential rng ~mean:4.0) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 4" true (Float.abs (m -. 4.0) < 0.2)

let test_rng_pareto_min () =
  let rng = Rng.create 19 in
  for _ = 1 to 1000 do
    let x = Rng.pareto rng ~shape:1.5 ~scale:10.0 in
    Alcotest.(check bool) "pareto >= scale" true (x >= 10.0)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 23 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick_member () =
  let rng = Rng.create 29 in
  let arr = [| 2; 4; 8 |] in
  for _ = 1 to 100 do
    let x = Rng.pick rng arr in
    Alcotest.(check bool) "member" true (Array.exists (( = ) x) arr)
  done

(* ---------------------------------------------------------------- Stats *)

let test_mean_simple () = check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty input") (fun () ->
      ignore (Stats.mean [||]))

let test_variance_constant () = check_float "variance" 0.0 (Stats.variance [| 5.0; 5.0; 5.0 |])
let test_variance_known () =
  check_float "variance of {1,3,5}" (8.0 /. 3.0) (Stats.variance [| 1.0; 3.0; 5.0 |])

let test_stddev_known () =
  check_float "stddev of {2,4,4,4,5,5,7,9}" 2.0 (Stats.stddev [| 2.;4.;4.;4.;5.;5.;7.;9. |])

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi

let test_percentile_endpoints () =
  let xs = [| 10.0; 20.0; 30.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p100" 30.0 (Stats.percentile xs 100.0);
  check_float "p50" 20.0 (Stats.percentile xs 50.0)

let test_percentile_interpolates () =
  check_float "p25 of 0..3" 0.75 (Stats.percentile [| 0.0; 1.0; 2.0; 3.0 |] 25.0)

let test_percentile_unsorted_input () =
  check_float "median unsorted" 20.0 (Stats.median [| 30.0; 10.0; 20.0 |])

let test_geometric_mean () = check_float "gmean" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |])

let test_geometric_mean_rejects_nonpositive () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geometric_mean: nonpositive sample") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_cdf_shape () =
  let pts = Stats.cdf [| 5.0; 1.0; 3.0; 2.0; 4.0 |] ~points:5 in
  Alcotest.(check int) "5 points" 5 (List.length pts);
  let fracs = List.map snd pts in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "fractions nondecreasing" true (nondecreasing fracs);
  check_float "last fraction is 1" 1.0 (List.nth fracs 4)

let test_fraction_at_least () =
  check_float "half >= 3" 0.5 (Stats.fraction_at_least [| 1.0; 2.0; 3.0; 4.0 |] 3.0)

let prop_percentile_within_range =
  QCheck.Test.make ~name:"percentile stays within [min,max]" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 40) (float_range (-100.) 100.)) (float_range 0. 100.))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Stats.percentile arr p in
      let lo, hi = Stats.min_max arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 40) (float_range (-1000.) 1000.))
    (fun xs ->
      let arr = Array.of_list xs in
      let m = Stats.mean arr in
      let lo, hi = Stats.min_max arr in
      m >= lo -. 1e-6 && m <= hi +. 1e-6)

(* --------------------------------------------------------------- Linalg *)

let test_dot () = check_float "dot" 32.0 (Linalg.dot [| 1.;2.;3. |] [| 4.;5.;6. |])

let test_dot_mismatch () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Linalg.dot: length mismatch")
    (fun () -> ignore (Linalg.dot [| 1.0 |] [| 1.0; 2.0 |]))

let test_mat_vec () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let y = Linalg.mat_vec a [| 1.; 1. |] in
  check_float "row0" 3.0 y.(0);
  check_float "row1" 7.0 y.(1)

let test_transpose () =
  let t = Linalg.transpose [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  Alcotest.(check int) "rows" 3 (Array.length t);
  check_float "t(0,1)" 4.0 t.(0).(1);
  check_float "t(2,0)" 3.0 t.(2).(0)

let test_mat_mul_identity () =
  let a = [| [| 2.; 1. |]; [| 0.; 3. |] |] in
  let id = [| [| 1.; 0. |]; [| 0.; 1. |] |] in
  let p = Linalg.mat_mul a id in
  check_float "p(0,0)" 2.0 p.(0).(0);
  check_float "p(1,1)" 3.0 p.(1).(1)

let test_solve_2x2 () =
  let a = [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Linalg.solve a [| 5.; 10. |] in
  check_float ~eps:1e-9 "x0" 1.0 x.(0);
  check_float ~eps:1e-9 "x1" 3.0 x.(1)

let test_solve_needs_pivoting () =
  (* Zero on the initial diagonal forces a row swap. *)
  let a = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Linalg.solve a [| 2.; 3. |] in
  check_float "x0" 3.0 x.(0);
  check_float "x1" 2.0 x.(1)

let test_solve_singular () =
  let a = [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" (Failure "Linalg.solve: singular matrix") (fun () ->
      ignore (Linalg.solve a [| 1.; 2. |]))

let test_least_squares_exact () =
  (* Planted linear relation is recovered exactly on noiseless data. *)
  let xs = [| [| 1.; 2. |]; [| 2.; 1. |]; [| 3.; 3. |]; [| 0.; 1. |] |] in
  let beta_true = [| 2.5; -1.5 |] in
  let ys = Array.map (fun row -> Linalg.dot row beta_true) xs in
  let beta = Linalg.least_squares xs ys in
  check_float ~eps:1e-6 "b0" beta_true.(0) beta.(0);
  check_float ~eps:1e-6 "b1" beta_true.(1) beta.(1)

let prop_solve_roundtrip =
  (* solve(A, A x) = x for random diagonally dominant A. *)
  QCheck.Test.make ~name:"solve . mat_vec = id (diag dominant)" ~count:100
    QCheck.(list_of_size (Gen.return 9) (float_range (-1.0) 1.0))
    (fun cells ->
      let c = Array.of_list cells in
      let a =
        Array.init 3 (fun i ->
            Array.init 3 (fun j ->
                if i = j then 10.0 +. c.((3 * i) + j) else c.((3 * i) + j)))
      in
      let x = [| 1.0; -2.0; 0.5 |] in
      let b = Linalg.mat_vec a x in
      let x' = Linalg.solve a b in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) x x')

let prop_least_squares_recovers =
  QCheck.Test.make ~name:"least squares recovers planted coefficients" ~count:50
    QCheck.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (b0, b1) ->
      let xs =
        Array.init 20 (fun i ->
            [| float_of_int (i mod 5); float_of_int (i / 5) +. 0.5 |])
      in
      let ys = Array.map (fun row -> (b0 *. row.(0)) +. (b1 *. row.(1))) xs in
      let beta = Linalg.least_squares xs ys in
      Float.abs (beta.(0) -. b0) < 1e-4 && Float.abs (beta.(1) -. b1) < 1e-4)

(* ---------------------------------------------------------------- Units *)

let test_units_roundtrip () =
  check_float "mb->gb->mb" 850.0 (Units.mb_of_gb (Units.gb_of_mb 850.0));
  check_float "gb->bytes->gb" 3.4 (Units.gb_of_bytes (Units.bytes_of_gb 3.4))

let test_pp_gb () =
  Alcotest.(check string) "gb" "3.40 GB" (Format.asprintf "%a" Units.pp_gb 3.4);
  Alcotest.(check string) "mb" "512 MB" (Format.asprintf "%a" Units.pp_gb 0.5)

let test_pp_duration () =
  Alcotest.(check string) "ms" "500 ms" (Format.asprintf "%a" Units.pp_duration 0.5);
  Alcotest.(check string) "s" "42.0 s" (Format.asprintf "%a" Units.pp_duration 42.0);
  Alcotest.(check string) "min" "2.5 min" (Format.asprintf "%a" Units.pp_duration 150.0)

(* ------------------------------------------------------------ Table_fmt *)

let test_table_alignment () =
  let s = Table_fmt.render ~headers:[ "a"; "bb" ] [ [ "xxx"; "y" ]; [ "z"; "wwww" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* All lines equal width after right-padding. *)
  match lines with
  | header :: _ ->
      List.iter
        (fun l -> Alcotest.(check int) "width" (String.length header) (String.length l))
        lines
  | [] -> Alcotest.fail "no lines"

let test_table_pads_short_rows () =
  let s = Table_fmt.render ~headers:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_fseries () =
  Alcotest.(check string) "zero" "0" (Table_fmt.fseries 0.0);
  Alcotest.(check string) "small" "0.0001" (Table_fmt.fseries 1e-4);
  Alcotest.(check string) "mid" "12.35" (Table_fmt.fseries 12.349);
  Alcotest.(check string) "big" "1.23e+06" (Table_fmt.fseries 1_234_000.0)

(* ---------------------------------------------------------------- Timer *)

let test_timer_returns_result () =
  let r, ms = Timer.time_ms (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check bool) "nonnegative" true (ms >= 0.0)

let test_timer_avg_runs () =
  let count = ref 0 in
  let r, _ = Timer.avg_ms ~runs:5 (fun () -> incr count; !count) in
  Alcotest.(check int) "ran 5 times" 5 !count;
  Alcotest.(check int) "last result" 5 r

let test_timer_rejects_zero_runs () =
  Alcotest.check_raises "zero runs" (Invalid_argument "Timer.avg_ms: runs must be positive")
    (fun () -> ignore (Timer.avg_ms ~runs:0 (fun () -> ())))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "raqo_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic from seed" `Quick test_rng_deterministic;
          Alcotest.test_case "different seeds differ" `Quick test_rng_different_seeds;
          Alcotest.test_case "copy is independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split decorrelates" `Quick test_rng_split_decorrelates;
          Alcotest.test_case "int stays in bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects bound 0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "range inclusive both ends" `Quick test_rng_range_inclusive;
          Alcotest.test_case "float stays in bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential has right mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pareto respects scale" `Quick test_rng_pareto_min;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick returns members" `Quick test_rng_pick_member;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean_simple;
          Alcotest.test_case "mean rejects empty" `Quick test_mean_empty;
          Alcotest.test_case "variance of constants is 0" `Quick test_variance_constant;
          Alcotest.test_case "variance known value" `Quick test_variance_known;
          Alcotest.test_case "stddev known value" `Quick test_stddev_known;
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "percentile endpoints" `Quick test_percentile_endpoints;
          Alcotest.test_case "percentile interpolates" `Quick test_percentile_interpolates;
          Alcotest.test_case "median of unsorted input" `Quick test_percentile_unsorted_input;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "geometric mean rejects <= 0" `Quick
            test_geometric_mean_rejects_nonpositive;
          Alcotest.test_case "cdf shape" `Quick test_cdf_shape;
          Alcotest.test_case "fraction_at_least" `Quick test_fraction_at_least;
        ]
        @ qsuite [ prop_percentile_within_range; prop_mean_between_min_max ] );
      ( "linalg",
        [
          Alcotest.test_case "dot product" `Quick test_dot;
          Alcotest.test_case "dot rejects mismatch" `Quick test_dot_mismatch;
          Alcotest.test_case "mat_vec" `Quick test_mat_vec;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "mat_mul by identity" `Quick test_mat_mul_identity;
          Alcotest.test_case "solve 2x2" `Quick test_solve_2x2;
          Alcotest.test_case "solve needs pivoting" `Quick test_solve_needs_pivoting;
          Alcotest.test_case "solve rejects singular" `Quick test_solve_singular;
          Alcotest.test_case "least squares exact recovery" `Quick test_least_squares_exact;
        ]
        @ qsuite [ prop_solve_roundtrip; prop_least_squares_recovers ] );
      ( "units",
        [
          Alcotest.test_case "roundtrips" `Quick test_units_roundtrip;
          Alcotest.test_case "pp_gb" `Quick test_pp_gb;
          Alcotest.test_case "pp_duration" `Quick test_pp_duration;
        ] );
      ( "table_fmt",
        [
          Alcotest.test_case "column alignment" `Quick test_table_alignment;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "fseries formatting" `Quick test_fseries;
        ] );
      ( "timer",
        [
          Alcotest.test_case "returns result" `Quick test_timer_returns_result;
          Alcotest.test_case "avg runs n times" `Quick test_timer_avg_runs;
          Alcotest.test_case "rejects zero runs" `Quick test_timer_rejects_zero_runs;
        ] );
    ]
