(* Tests for Raqo_workload: profile runs, trained cost models, decision-tree
   datasets, switch-point analysis. *)

module Profile_runs = Raqo_workload.Profile_runs
module Switch_points = Raqo_workload.Switch_points
module Engine = Raqo_execsim.Engine
module Operators = Raqo_execsim.Operators
module Resources = Raqo_cluster.Resources
module Conditions = Raqo_cluster.Conditions
module Join_impl = Raqo_plan.Join_impl
module Op_cost = Raqo_cost.Op_cost
module Rng = Raqo_util.Rng

let hive = Engine.hive
let res nc gb = Resources.make ~containers:nc ~container_gb:gb

(* ----------------------------------------------------------- Profile runs *)

let small_sweep () =
  Profile_runs.sweep hive ~big_gb:77.0
    ~small_sizes:[ 1.0; 3.0; 5.0; 8.0 ]
    ~configs:[ res 10 3.0; res 10 9.0; res 40 3.0; res 40 9.0 ]

let test_sweep_covers_feasible_grid () =
  let samples = small_sweep () in
  (* 4 sizes x 4 configs x SMJ always = 16 SMJ samples; BHJ only where
     feasible. *)
  let smj = List.filter (fun s -> Join_impl.equal s.Profile_runs.impl Join_impl.Smj) samples in
  Alcotest.(check int) "SMJ everywhere" 16 (List.length smj);
  let bhj = List.filter (fun s -> Join_impl.equal s.Profile_runs.impl Join_impl.Bhj) samples in
  Alcotest.(check bool) "BHJ skips OOM cells" true (List.length bhj < 16);
  Alcotest.(check bool) "some BHJ cells" true (List.length bhj > 0)

let test_sweep_times_match_simulator () =
  List.iter
    (fun (s : Profile_runs.sample) ->
      match
        Operators.join_time hive s.impl ~small_gb:s.small_gb ~big_gb:s.big_gb
          ~resources:s.resources
      with
      | Some t -> Alcotest.(check (float 1e-9)) "same time" t s.Profile_runs.seconds
      | None -> Alcotest.fail "sample recorded for infeasible run")
    (small_sweep ())

let test_random_sweep_within_conditions () =
  let rng = Rng.create 11 in
  let samples = Profile_runs.random_sweep rng hive Conditions.default ~big_gb:77.0 ~n:50 in
  Alcotest.(check bool) "nonempty" true (samples <> []);
  List.iter
    (fun (s : Profile_runs.sample) ->
      Alcotest.(check bool) "containers in bounds" true
        (s.resources.Resources.containers >= 1 && s.resources.Resources.containers <= 100);
      Alcotest.(check bool) "size in sweep range" true
        (s.small_gb >= 0.2 && s.small_gb <= 12.0))
    samples

(* ------------------------------------------------------ Cost-model training *)

let trained () =
  let sizes = List.init 12 (fun i -> 0.5 +. float_of_int i) in
  let configs =
    List.concat_map (fun nc -> List.map (fun gb -> res nc (float_of_int gb)) [ 2; 4; 6; 8; 10 ])
      [ 5; 10; 20; 40 ]
  in
  let samples = Profile_runs.sweep hive ~big_gb:77.0 ~small_sizes:sizes ~configs in
  (samples, Profile_runs.train_cost_model samples)

let test_trained_model_fits_well () =
  let samples, model = trained () in
  let r2_smj, r2_bhj = Profile_runs.model_fit samples model in
  Alcotest.(check bool) (Printf.sprintf "SMJ R2 %.3f > 0.9" r2_smj) true (r2_smj > 0.9);
  Alcotest.(check bool) (Printf.sprintf "BHJ R2 %.3f > 0.9" r2_bhj) true (r2_bhj > 0.9)

let test_trained_model_orders_impls_correctly () =
  (* The trained model must reproduce the Section III switch direction:
     BHJ cheaper at (10 cont, 10 GB), SMJ cheaper at (40 cont, 3 GB) for a
     5.1 GB build side. *)
  let _, model = trained () in
  let best r =
    match Op_cost.best_impl model ~small_gb:5.1 ~resources:r with
    | Some (impl, _) -> impl
    | None -> Alcotest.fail "feasible"
  in
  Alcotest.(check bool) "BHJ at big containers" true
    (Join_impl.equal (best (res 10 10.0)) Join_impl.Bhj);
  Alcotest.(check bool) "SMJ at high parallelism" true
    (Join_impl.equal (best (res 40 3.0)) Join_impl.Smj)

let test_trained_model_has_floor () =
  let _, model = trained () in
  Alcotest.(check (float 1e-12)) "floor" 0.01 model.Op_cost.floor

let test_train_requires_both_impls () =
  let only_smj =
    List.filter
      (fun s -> Join_impl.equal s.Profile_runs.impl Join_impl.Smj)
      (small_sweep ())
  in
  Alcotest.check_raises "missing BHJ"
    (Invalid_argument "Profile_runs.train_cost_model: no samples for BHJ") (fun () ->
      ignore (Profile_runs.train_cost_model only_smj))

let test_paper_space_training_works () =
  let samples, _ = trained () in
  let model = Profile_runs.train_cost_model ~space:Raqo_cost.Feature.Paper samples in
  let r2_smj, _ = Profile_runs.model_fit samples model in
  (* The paper's 7-feature quadratic space fits worse than Extended but
     still learns the broad shape. *)
  Alcotest.(check bool) (Printf.sprintf "paper-space R2 %.3f > 0.5" r2_smj) true (r2_smj > 0.5)

(* --------------------------------------------------- Classification data *)

let test_classification_dataset_labels_match_simulator () =
  let d =
    Profile_runs.classification_dataset hive ~big_gb:77.0 ~small_sizes:[ 1.0; 5.0; 9.0 ]
      ~configs:[ res 10 3.0; res 10 9.0; res 40 3.0 ]
  in
  Alcotest.(check int) "9 cells" 9 (Raqo_dtree.Dataset.length d);
  for i = 0 to Raqo_dtree.Dataset.length d - 1 do
    let x, label = Raqo_dtree.Dataset.sample d i in
    let resources = res (int_of_float x.(2)) x.(1) in
    match Operators.best_impl hive ~small_gb:x.(0) ~big_gb:77.0 ~resources with
    | Some (impl, _) ->
        let expected = match impl with Join_impl.Bhj -> 0 | Join_impl.Smj -> 1 in
        Alcotest.(check int) "label matches simulator" expected label
    | None -> Alcotest.fail "feasible"
  done

let test_dtree_features_layout () =
  let x = Profile_runs.dtree_features ~small_gb:2.0 ~resources:(res 10 3.0) in
  Alcotest.(check int) "4 features" 4 (Array.length x);
  Alcotest.(check (float 1e-9)) "data" 2.0 x.(0);
  Alcotest.(check (float 1e-9)) "container gb" 3.0 x.(1);
  Alcotest.(check (float 1e-9)) "containers" 10.0 x.(2);
  Alcotest.(check (float 1e-9)) "tasks" 8.0 x.(3)

(* ----------------------------------------------------------- Switch points *)

let test_switch_point_fig3a () =
  (* At 10 containers varying container size for a 5.1 GB build side the
     switch is in container size; here we fix resources and vary data, so
     check the Fig 4(a) anchors instead: ~3.45 GB at 3 GB containers
     (OOM-bound), ~6.4 GB at 9 GB containers (cost crossover). *)
  (match Switch_points.find hive ~big_gb:77.0 ~resources:(res 10 3.0) ~lo:0.5 ~hi:12.0 () with
  | Some s -> Alcotest.(check bool) (Printf.sprintf "3 GB: %.2f in [3.2,3.7]" s) true (s >= 3.2 && s <= 3.7)
  | None -> Alcotest.fail "switch expected");
  match Switch_points.find hive ~big_gb:77.0 ~resources:(res 10 9.0) ~lo:0.5 ~hi:12.0 () with
  | Some s -> Alcotest.(check bool) (Printf.sprintf "9 GB: %.2f in [5.8,7.2]" s) true (s >= 5.8 && s <= 7.2)
  | None -> Alcotest.fail "switch expected"

let test_switch_point_none_when_smj_dominates () =
  (* Tiny containers and high parallelism: SMJ wins everywhere above lo. *)
  match Switch_points.find hive ~big_gb:77.0 ~resources:(res 100 1.0) ~lo:1.0 ~hi:12.0 () with
  | None -> ()
  | Some s -> Alcotest.failf "unexpected switch at %.2f" s

let test_switch_point_monetary_equals_time_at_fixed_resources () =
  (* Money = time x memory: at fixed resources both metrics flip at the same
     size (the paper's Fig 7 observation). *)
  let r = res 10 9.0 in
  let t = Switch_points.find hive ~big_gb:77.0 ~resources:r ~lo:0.5 ~hi:12.0 () in
  let m =
    Switch_points.find ~metric:Switch_points.Monetary hive ~big_gb:77.0 ~resources:r ~lo:0.5
      ~hi:12.0 ()
  in
  match (t, m) with
  | Some a, Some b -> Alcotest.(check (float 0.01)) "same switch" a b
  | _ -> Alcotest.fail "both metrics have a switch"

let test_switch_point_bisection_precision () =
  match Switch_points.find hive ~big_gb:77.0 ~resources:(res 10 3.0) ~lo:0.5 ~hi:12.0 () with
  | Some s ->
      (* Around the reported point the winner must actually flip. *)
      let wins x =
        match
          ( Operators.join_time hive Join_impl.Bhj ~small_gb:x ~big_gb:77.0
              ~resources:(res 10 3.0),
            Operators.join_time hive Join_impl.Smj ~small_gb:x ~big_gb:77.0
              ~resources:(res 10 3.0) )
        with
        | Some b, Some m -> b < m
        | None, _ -> false
        | Some _, None -> true
      in
      Alcotest.(check bool) "BHJ just below" true (wins (s -. 0.05));
      Alcotest.(check bool) "SMJ just above" true (not (wins (s +. 0.05)))
  | None -> Alcotest.fail "switch expected"

let test_switch_point_rejects_bad_range () =
  Alcotest.check_raises "range" (Invalid_argument "Switch_points.find: bad range")
    (fun () ->
      ignore (Switch_points.find hive ~big_gb:77.0 ~resources:(res 1 1.0) ~lo:5.0 ~hi:2.0 ()))

let test_frontier_shape () =
  let configs = [ res 10 3.0; res 10 6.0; res 10 9.0 ] in
  let front = Switch_points.frontier hive ~big_gb:77.0 ~configs ~lo:0.5 ~hi:12.0 () in
  Alcotest.(check int) "one row per config" 3 (List.length front);
  (* Bigger containers admit bigger broadcasts: the switch frontier is
     nondecreasing in container size (Fig 9's headline shape). *)
  let values = List.filter_map snd front in
  Alcotest.(check int) "all have switches" 3 (List.length values);
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 0.01 && nondecreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "nondecreasing in container size" true (nondecreasing values)

let prop_switch_point_within_range =
  QCheck.Test.make ~name:"switch points stay within the probed range" ~count:50
    QCheck.(pair (int_range 5 45) (int_range 2 10))
    (fun (nc, gb) ->
      match
        Switch_points.find hive ~big_gb:77.0 ~resources:(res nc (float_of_int gb)) ~lo:0.5
          ~hi:12.0 ()
      with
      | Some s -> s >= 0.5 && s <= 12.0
      | None -> true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "raqo_workload"
    [
      ( "profile_runs",
        [
          Alcotest.test_case "sweep covers the feasible grid" `Quick
            test_sweep_covers_feasible_grid;
          Alcotest.test_case "recorded times match the simulator" `Quick
            test_sweep_times_match_simulator;
          Alcotest.test_case "random sweep respects conditions" `Quick
            test_random_sweep_within_conditions;
        ] );
      ( "training",
        [
          Alcotest.test_case "trained model fits (R2 > 0.9)" `Quick test_trained_model_fits_well;
          Alcotest.test_case "trained model orders implementations" `Quick
            test_trained_model_orders_impls_correctly;
          Alcotest.test_case "trained model carries a floor" `Quick test_trained_model_has_floor;
          Alcotest.test_case "training needs both implementations" `Quick
            test_train_requires_both_impls;
          Alcotest.test_case "paper feature space trains too" `Quick
            test_paper_space_training_works;
        ] );
      ( "classification",
        [
          Alcotest.test_case "labels match the simulator" `Quick
            test_classification_dataset_labels_match_simulator;
          Alcotest.test_case "feature layout" `Quick test_dtree_features_layout;
        ] );
      ( "switch_points",
        [
          Alcotest.test_case "Fig 4a anchors" `Quick test_switch_point_fig3a;
          Alcotest.test_case "None when SMJ dominates" `Quick
            test_switch_point_none_when_smj_dominates;
          Alcotest.test_case "monetary switch = time switch at fixed resources" `Quick
            test_switch_point_monetary_equals_time_at_fixed_resources;
          Alcotest.test_case "bisection brackets the flip" `Quick
            test_switch_point_bisection_precision;
          Alcotest.test_case "rejects bad ranges" `Quick test_switch_point_rejects_bad_range;
          Alcotest.test_case "Fig 9 frontier shape" `Quick test_frontier_shape;
        ]
        @ qsuite [ prop_switch_point_within_range ] );
    ]
