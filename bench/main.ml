(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md for the per-experiment index and EXPERIMENTS.md
   for paper-vs-measured numbers).

   Run all figures:      dune exec bench/main.exe
   Run a selection:      dune exec bench/main.exe -- fig3 fig13
   Include micro-benches: dune exec bench/main.exe -- all micro
   Full-resolution 15b:  dune exec bench/main.exe -- fig15b-full *)

module Engine = Raqo_execsim.Engine
module Operators = Raqo_execsim.Operators
module Simulate = Raqo_execsim.Simulate
module Resources = Raqo_cluster.Resources
module Conditions = Raqo_cluster.Conditions
module Queue_sim = Raqo_cluster.Queue_sim
module Join_impl = Raqo_plan.Join_impl
module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema
module Relation = Raqo_catalog.Relation
module Tpch = Raqo_catalog.Tpch
module Switch_points = Raqo_workload.Switch_points
module Counters = Raqo_resource.Counters
module Rng = Raqo_util.Rng
module Stats = Raqo_util.Stats
module Table = Raqo_util.Table_fmt
module Timer = Raqo_util.Timer

let hive = Engine.hive
let spark = Engine.spark
let res nc gb = Resources.make ~containers:nc ~container_gb:gb
let f = Table.fseries

(* TPC-H with the orders table sampled down, as the paper does for its
   switch-point experiments ("we adjusted the smaller table size orders"). *)
let tpch = Tpch.schema ()

let tpch_orders_gb gb =
  let orders = Schema.find tpch "orders" in
  Schema.with_relation tpch (Relation.scale orders (gb /. Relation.size_gb orders))

let join_time engine impl ~s ~b r =
  Operators.join_time engine impl ~small_gb:s ~big_gb:b ~resources:r

let cell = function
  | Some t -> f t
  | None -> "OOM"

let note fmt = Printf.printf ("  note: " ^^ fmt ^^ "\n")

(* ------------------------------------------------------------------ Fig 1 *)

let fig1 () =
  let rng = Rng.create 1 in
  let capacity = 90 in
  let jobs = Queue_sim.generate rng Queue_sim.default_workload ~capacity in
  let ratios = Queue_sim.ratios (Queue_sim.run ~capacity jobs) in
  let thresholds = [ 0.01; 0.1; 0.5; 1.0; 2.0; 4.0; 10.0; 100.0 ] in
  let rows =
    List.map
      (fun t -> [ f t; f (Stats.fraction_at_least ratios t) ])
      thresholds
  in
  Table.print ~title:"Figure 1: CDF of queue-time / run-time on a contended cluster"
    ~headers:[ "ratio >="; "fraction of jobs" ]
    rows;
  note "paper: >80%% of jobs wait at least their run time; >20%% wait at least 4x";
  note "measured: %.0f%% wait >= 1x, %.0f%% wait >= 4x"
    (100.0 *. Stats.fraction_at_least ratios 1.0)
    (100.0 *. Stats.fraction_at_least ratios 4.0)

(* ------------------------------------------------------------------ Fig 2 *)

let fig2 () =
  List.iter
    (fun (engine : Engine.t) ->
      let schema = tpch_orders_gb 5.1 in
      let s, b = Simulate.join_inputs schema ~left:[ "orders" ] ~right:[ "lineitem" ] in
      let configs =
        List.concat_map
          (fun nc -> List.map (fun cs -> res nc cs) [ 3.0; 5.0; 7.0; 9.0 ])
          [ 10; 20; 30; 40 ]
      in
      let default_impl = Operators.default_impl engine ~small_gb:s in
      let rows =
        List.filter_map
          (fun r ->
            match
              ( join_time engine default_impl ~s ~b r,
                Operators.best_impl engine ~small_gb:s ~big_gb:b ~resources:r )
            with
            | Some dt, Some (impl, jt) ->
                Some
                  [
                    Resources.to_string r;
                    f dt;
                    f (Resources.tb_seconds r dt);
                    Join_impl.to_string impl;
                    f jt;
                    f (Resources.tb_seconds r jt);
                    f (dt /. jt);
                  ]
            | None, _ | _, None -> None)
          configs
      in
      Table.print
        ~title:
          (Printf.sprintf
             "Figure 2 (%s): default optimizer vs joint query & resource choice \
              (orders 5.1 GB ⋈ lineitem)"
             engine.Engine.name)
        ~headers:
          [ "config"; "default s"; "default TB·s"; "joint impl"; "joint s"; "joint TB·s"; "speedup" ]
        rows;
      let speedups =
        List.filter_map
          (fun row -> match List.nth_opt row 6 with Some x -> float_of_string_opt x | None -> None)
          rows
      in
      let arr = Array.of_list speedups in
      if Array.length arr > 0 then
        note "%s: default plan up to %.2fx slower (paper: up to 2x)" engine.Engine.name
          (snd (Stats.min_max arr)))
    [ hive; spark ]

(* ------------------------------------------------------------------ Fig 3 *)

let fig3 () =
  let b = 77.0 in
  let rows_a =
    List.map
      (fun cs ->
        let r = res 10 cs in
        [ f cs; cell (join_time hive Join_impl.Smj ~s:5.1 ~b r);
          cell (join_time hive Join_impl.Bhj ~s:5.1 ~b r) ])
      [ 2.;3.;4.;5.;6.;7.;8.;9.;10. ]
  in
  Table.print
    ~title:"Figure 3(a): SMJ vs BHJ over container size (5.1 GB orders, 10 containers)"
    ~headers:[ "container GB"; "SMJ s"; "BHJ s" ] rows_a;
  note "paper: BHJ OOM below 5 GB; switch at 7 GB; SMJ stable across sizes";
  let rows_b =
    List.map
      (fun nc ->
        let r = res nc 3.0 in
        [ string_of_int nc; cell (join_time hive Join_impl.Smj ~s:3.4 ~b r);
          cell (join_time hive Join_impl.Bhj ~s:3.4 ~b r) ])
      [ 5; 10; 15; 20; 25; 30; 35; 40; 45 ]
  in
  Table.print
    ~title:"Figure 3(b): SMJ vs BHJ over container count (3.4 GB orders, 3 GB containers)"
    ~headers:[ "containers"; "SMJ s"; "BHJ s" ] rows_b;
  note "paper: BHJ wins below ~20 containers; SMJ ~2x faster at 40"

(* ------------------------------------------------------------------ Fig 4 *)

let fig4 () =
  let b = 77.0 in
  let sizes = [ 0.5; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 10.0; 12.0 ] in
  let sweep title configs =
    let rows =
      List.map
        (fun s ->
          string_of_float s
          :: List.concat_map
               (fun r ->
                 [ cell (join_time hive Join_impl.Smj ~s ~b r);
                   cell (join_time hive Join_impl.Bhj ~s ~b r) ])
               configs)
        sizes
    in
    let headers =
      "orders GB"
      :: List.concat_map
           (fun r -> [ "SMJ " ^ Resources.to_string r; "BHJ " ^ Resources.to_string r ])
           configs
    in
    Table.print ~title ~headers rows
  in
  sweep "Figure 4(a): varying data size at 3 GB vs 9 GB containers (10 containers)"
    [ res 10 3.0; res 10 9.0 ];
  sweep "Figure 4(b): varying data size at 10 vs 40 containers (9 GB containers)"
    [ res 10 9.0; res 40 9.0 ];
  let sw r =
    match Switch_points.find hive ~big_gb:b ~resources:r ~lo:0.3 ~hi:12.0 () with
    | Some s -> Printf.sprintf "%.2f GB" s
    | None -> "none in range"
  in
  note "switch points: 10x3GB -> %s (paper 3.4, OOM-bound); 10x9GB -> %s (paper 6.4)"
    (sw (res 10 3.0)) (sw (res 10 9.0));
  note "switch points: 10x9GB -> %s vs 40x9GB -> %s (paper: moves with container count)"
    (sw (res 10 9.0)) (sw (res 40 9.0))

(* ------------------------------------------------------------------ Fig 5 *)

(* Plan 1: (lineitem BHJ orders) BHJ customer — both joins broadcast.
   Plan 2: (orders BHJ customer) SMJ lineitem — different join order. *)
let fig5_plans =
  let plan1 =
    Join_tree.Join
      ( Join_impl.Bhj,
        Join_tree.Join (Join_impl.Bhj, Join_tree.Scan "lineitem", Join_tree.Scan "orders"),
        Join_tree.Scan "customer" )
  in
  let plan2 =
    Join_tree.Join
      ( Join_impl.Smj,
        Join_tree.Join (Join_impl.Bhj, Join_tree.Scan "orders", Join_tree.Scan "customer"),
        Join_tree.Scan "lineitem" )
  in
  (plan1, plan2)

let fig5 () =
  let plan1, plan2 = fig5_plans in
  let run schema r plan =
    match Simulate.run_plain hive schema ~resources:r plan with
    | Ok run -> Some run.Simulate.seconds
    | Error _ -> None
  in
  let schema_a = tpch_orders_gb 0.85 in
  let rows_a =
    List.map
      (fun cs ->
        let r = res 10 cs in
        [ f cs; cell (run schema_a r plan1); cell (run schema_a r plan2) ])
      [ 2.;3.;4.;5.;6.;7.;8.;9.;10. ]
  in
  Table.print
    ~title:"Figure 5(a): join orders over container size (orders 850 MB, 10 containers)"
    ~headers:[ "container GB"; "plan1 (BHJ,BHJ) s"; "plan2 (BHJ,SMJ) s" ] rows_a;
  note "paper: plan 1 OOM below ~6 GB containers, then better across the board";
  let schema_b = tpch_orders_gb 0.425 in
  let rows_b =
    List.map
      (fun nc ->
        let r = res nc 4.0 in
        [ string_of_int nc; cell (run schema_b r plan1); cell (run schema_b r plan2) ])
      [ 5; 10; 15; 20; 25; 30; 35; 40; 45 ]
  in
  Table.print
    ~title:"Figure 5(b): join orders over container count (orders 425 MB, 4 GB containers)"
    ~headers:[ "containers"; "plan1 (BHJ,BHJ) s"; "plan2 (BHJ,SMJ) s" ] rows_b;
  note "paper: plan 2 overtakes plan 1 at ~32 containers"

(* ------------------------------------------------------------------ Fig 6 *)

let fig6 () =
  let b = 77.0 in
  let money r t = Resources.gb_seconds r t /. 1024.0 in
  let rows_a =
    List.map
      (fun cs ->
        let r = res 10 cs in
        let m impl s = Option.map (money r) (join_time hive impl ~s ~b r) in
        [ f cs; cell (m Join_impl.Smj 5.1); cell (m Join_impl.Bhj 5.1) ])
      [ 2.;3.;4.;5.;6.;7.;8.;9.;10. ]
  in
  Table.print
    ~title:"Figure 6(a): monetary cost (TB·s) over container size (5.1 GB orders, 10 cont.)"
    ~headers:[ "container GB"; "SMJ TB·s"; "BHJ TB·s" ] rows_a;
  let rows_b =
    List.map
      (fun nc ->
        let r = res nc 3.0 in
        let m impl s = Option.map (money r) (join_time hive impl ~s ~b r) in
        [ string_of_int nc; cell (m Join_impl.Smj 3.4); cell (m Join_impl.Bhj 3.4) ])
      [ 5; 10; 15; 20; 25; 30; 35; 40; 45 ]
  in
  Table.print
    ~title:"Figure 6(b): monetary cost (TB·s) over container count (3.4 GB orders, 3 GB)"
    ~headers:[ "containers"; "SMJ TB·s"; "BHJ TB·s" ] rows_b;
  note "paper: either impl can be the cost-effective one; absolute money scales with memory"

(* ------------------------------------------------------------------ Fig 7 *)

let fig7 () =
  let b = 77.0 in
  let configs = [ res 10 3.0; res 10 9.0; res 10 6.0; res 40 3.0; res 40 9.0 ] in
  let rows =
    List.map
      (fun r ->
        let sw metric =
          match Switch_points.find ~metric hive ~big_gb:b ~resources:r ~lo:0.3 ~hi:12.0 () with
          | Some s -> f s
          | None -> "none"
        in
        [ Resources.to_string r; sw Switch_points.Exec_time; sw Switch_points.Monetary ])
      configs
  in
  Table.print
    ~title:"Figure 7: monetary vs execution-time switch points over data size"
    ~headers:[ "config"; "time switch GB"; "money switch GB" ] rows;
  note
    "paper: 'the switching points remain the same, the absolute monetary values change' — \
     at fixed resources money = time x memory, so the columns coincide"

(* ------------------------------------------------------------------ Fig 9 *)

let fig9 () =
  List.iter
    (fun (engine : Engine.t) ->
      let combos =
        [
          (10, Operators.Fixed 200, "<10,200>");
          (10, Operators.Fixed 1000, "<10,1000>");
          (10, Operators.Auto, "<10,auto>");
          (40, Operators.Fixed 200, "<40,200>");
          (40, Operators.Auto, "<40,auto>");
        ]
      in
      let sizes = [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. ] in
      let rows =
        List.map
          (fun cs ->
            f cs
            :: List.map
                 (fun (nc, reducers, _) ->
                   match
                     Switch_points.find ~reducers engine ~big_gb:77.0 ~resources:(res nc cs)
                       ~lo:0.05 ~hi:14.0 ()
                   with
                   | Some s -> f (s *. 1024.0) (* MB, as in the paper's figure *)
                   | None -> "-")
                 combos)
          sizes
      in
      Table.print
        ~title:
          (Printf.sprintf
             "Figure 9 (%s): BHJ/SMJ switch point (MB of smaller relation) across \
              <containers, reducers> and container size"
             engine.Engine.name)
        ~headers:("cont. GB" :: List.map (fun (_, _, l) -> l) combos @ [ "default rule" ])
        (List.map (fun row -> row @ [ f (engine.Engine.default_bhj_threshold_gb *. 1024.0) ]) rows);
      note "%s: default rule (10 MB) is far below every resource-aware switch point"
        engine.Engine.name)
    [ hive; spark ]

(* ----------------------------------------------------------- Fig 10 & 11 *)

let fig10 () =
  List.iter
    (fun (engine : Engine.t) ->
      Printf.printf "\n== Figure 10 (%s): default join-implementation decision tree ==\n"
        engine.Engine.name;
      print_string (Raqo.Join_dt.render (Raqo.Join_dt.default_tree engine)))
    [ hive; spark ]

let fig11 () =
  List.iter
    (fun (engine : Engine.t) ->
      let tree = Raqo.Join_dt.train ~prune:true engine ~big_gb:77.0 in
      Printf.printf
        "\n== Figure 11 (%s): RAQO decision tree (CART on the data-resource sweep) ==\n"
        engine.Engine.name;
      Printf.printf "nodes=%d leaves=%d depth=%d\n" (Raqo_dtree.Tree.n_nodes tree)
        (Raqo_dtree.Tree.n_leaves tree) (Raqo_dtree.Tree.depth tree);
      (* The full tree is large; print the top levels like the paper's figure. *)
      let rec truncate depth t =
        if depth = 0 then Raqo_dtree.Tree.Leaf { counts = Raqo_dtree.Tree.counts t }
        else begin
          match t with
          | Raqo_dtree.Tree.Leaf _ -> t
          | Raqo_dtree.Tree.Node n ->
              Raqo_dtree.Tree.Node
                { n with left = truncate (depth - 1) n.left; right = truncate (depth - 1) n.right }
        end
      in
      print_string (Raqo.Join_dt.render (truncate 3 tree));
      note "paper: RAQO trees branch on container size and counts, not just data size")
    [ hive; spark ]

(* ----------------------------------------------------------------- Fig 12 *)

let model = lazy (Raqo.Models.hive ())

let make_opt ?kind ?cache ?lookup ?resource_strategy ?(conditions = Conditions.default) () =
  Raqo.Cost_based.create ?kind ?cache ?lookup ?resource_strategy ~model:(Lazy.force model)
    ~conditions tpch

let time_planner ?(runs = 3) opt query =
  let ms_total = ref 0.0 in
  let evals = ref 0 in
  for _ = 1 to runs do
    Raqo.Cost_based.reset opt;
    let _, ms = Timer.time_ms (fun () -> Raqo.Cost_based.optimize opt query) in
    ms_total := !ms_total +. ms;
    evals := Counters.cost_evaluations (Raqo.Cost_based.counters opt)
  done;
  (!ms_total /. float_of_int runs, !evals)

let fig12 () =
  let kinds = [ ("FastRandomized", Raqo.Cost_based.Fast_randomized); ("Selinger", Raqo.Cost_based.Selinger) ] in
  let rows =
    List.concat_map
      (fun (kname, kind) ->
        List.map
          (fun (qname, rels) ->
            let qo = make_opt ~kind () in
            let fixed = res 10 5.0 in
            let qo_ms =
              let total = ref 0.0 in
              for _ = 1 to 3 do
                let _, ms = Timer.time_ms (fun () -> Raqo.Cost_based.optimize_qo qo ~resources:fixed rels) in
                total := !total +. ms
              done;
              !total /. 3.0
            in
            let raqo_opt = make_opt ~kind ~cache:false () in
            let raqo_ms, evals = time_planner raqo_opt rels in
            [ kname; qname; f qo_ms; f raqo_ms; string_of_int evals ])
          Tpch.evaluation_queries)
      kinds
  in
  Table.print
    ~title:
      "Figure 12: planner runtime, QO vs RAQO (hill climbing, no cache), on TPC-H \
       (100 containers x 10 GB = 1000 resource configurations)"
    ~headers:[ "planner"; "query"; "QO ms"; "RAQO ms"; "resource configs explored" ]
    rows;
  note "paper: RAQO adds resource-planning overhead but stays within milliseconds"

(* ----------------------------------------------------------------- Fig 13 *)

let fig13 () =
  let rows =
    List.map
      (fun (qname, rels) ->
        let bf = make_opt ~resource_strategy:Raqo_resource.Resource_planner.Brute_force ~cache:false () in
        let hc = make_opt ~cache:false () in
        let bf_ms, bf_evals = time_planner bf rels in
        let hc_ms, hc_evals = time_planner hc rels in
        (* Plan quality: does the local search pay anything in plan cost? *)
        let cost_of opt =
          Raqo.Cost_based.reset opt;
          match Raqo.Cost_based.optimize opt rels with
          | Some (_, c) -> c
          | None -> Float.nan
        in
        let bf_cost = cost_of bf and hc_cost = cost_of hc in
        [
          qname;
          string_of_int bf_evals;
          string_of_int hc_evals;
          f (float_of_int bf_evals /. float_of_int (max 1 hc_evals));
          f bf_ms;
          f hc_ms;
          f (hc_cost /. bf_cost);
        ])
      Tpch.evaluation_queries
  in
  Table.print
    ~title:"Figure 13: hill climbing vs brute-force resource planning (Selinger, TPC-H)"
    ~headers:[ "query"; "BF configs"; "HC configs"; "BF/HC"; "BF ms"; "HC ms"; "HC/BF plan cost" ]
    rows;
  note "paper: hill climbing explores ~4x fewer resource configurations";
  note "plan-quality column: 1.00 means the local optimum is the global one"

(* ----------------------------------------------------------------- Fig 14 *)

let fig14 () =
  (* The paper sweeps 1e-5..0.1 GB; our TPC-H intermediate sizes are spread
     GBs apart, so the graded regime sits at GB-scale thresholds. *)
  let thresholds = [ 0.0; 1e-4; 1e-2; 0.1; 1.0; 5.0 ] in
  let measure variant =
    let opt =
      match variant with
      | `Plain -> make_opt ~cache:false ()
      | `Nn t -> make_opt ~cache:true ~lookup:(Raqo_resource.Plan_cache.Nearest_neighbor t) ()
      | `Wa t -> make_opt ~cache:true ~lookup:(Raqo_resource.Plan_cache.Weighted_average t) ()
    in
    time_planner opt Tpch.all
  in
  let plain_ms, plain_evals = measure `Plain in
  let rows =
    List.map
      (fun t ->
        let nn_ms, nn_evals = measure (`Nn t) in
        let wa_ms, wa_evals = measure (`Wa t) in
        [
          f t;
          string_of_int plain_evals;
          string_of_int nn_evals;
          string_of_int wa_evals;
          f plain_ms;
          f nn_ms;
          f wa_ms;
        ])
      thresholds
  in
  Table.print
    ~title:"Figure 14: resource-plan caching on TPC-H All (hill climbing underneath)"
    ~headers:
      [ "delta GB"; "HC configs"; "HC+NN configs"; "HC+WA configs"; "HC ms"; "NN ms"; "WA ms" ]
    rows;
  note "paper: caching grows more effective with the threshold, up to ~10x fewer configs"

(* ----------------------------------------------------------------- Fig 15 *)

let fig15a () =
  let rng = Rng.create 2024 in
  let schema = Raqo_catalog.Random_schema.generate rng ~tables:100 in
  let params = { Raqo_planner.Randomized.iterations = 10; max_no_improve = 15 } in
  let mk ?cache ?lookup () =
    Raqo.Cost_based.create ~kind:Raqo.Cost_based.Fast_randomized ~randomized_params:params
      ?cache ?lookup ~model:(Lazy.force model) ~conditions:Conditions.default schema
  in
  let sizes = [ 2; 5; 10; 20; 40; 60; 80; 100 ] in
  let queries =
    List.map (fun n -> (n, Raqo_catalog.Random_schema.query rng schema ~joins:(n - 1))) sizes
  in
  let rows =
    List.map
      (fun (n, rels) ->
        let qo = mk () in
        let qo_ms =
          let _, ms =
            Timer.avg_ms ~runs:3 (fun () ->
                Raqo.Cost_based.optimize_qo qo ~resources:(res 10 5.0) rels)
          in
          ms
        in
        let raqo = mk ~cache:false () in
        let raqo_ms, _ = time_planner raqo rels in
        let cached = mk ~cache:true ~lookup:(Raqo_resource.Plan_cache.Nearest_neighbor 0.05) () in
        let cached_ms, _ = time_planner cached rels in
        [ string_of_int n; f qo_ms; f raqo_ms; f cached_ms ])
      queries
  in
  Table.print
    ~title:
      "Figure 15(a): scalability with schema size (100-table random schema, FastRandomized)"
    ~headers:[ "query size (#tables)"; "QO ms"; "RAQO ms"; "RAQO+cache ms" ]
    rows;
  let ratios col =
    List.filter_map
      (fun row ->
        match (float_of_string_opt (List.nth row col), float_of_string_opt (List.nth row 1)) with
        | Some v, Some q when q > 0.0 -> Some (v /. q)
        | _ -> None)
      rows
  in
  let avg xs = if xs = [] then 0.0 else Stats.mean (Array.of_list xs) in
  note "paper: cached RAQO ~6x faster than uncached, ~1.29x over plain QO";
  note "measured: RAQO/QO avg %.2fx, RAQO+cache/QO avg %.2fx" (avg (ratios 2)) (avg (ratios 3))

let fig15b ~full () =
  let rng = Rng.create 2024 in
  let schema = Raqo_catalog.Random_schema.generate rng ~tables:100 in
  let rels = Schema.relation_names schema in
  let params = { Raqo_planner.Randomized.iterations = 5; max_no_improve = 8 } in
  let container_scales = [ 100; 1_000; 10_000; 100_000 ] in
  let gb_scales = if full then [ 100.0 ] else [ 10.0; 40.0; 70.0; 100.0 ] in
  let rows =
    List.concat_map
      (fun max_containers ->
        List.map
          (fun max_gb ->
            (* The paper keeps allocation granularity at 1 container; that
               makes hill climbs across a 100K-container axis very long, so
               the default run scales the step with the cluster (pass
               fig15b-full for step 1). *)
            let container_step =
              if full then 1 else max 1 (max_containers / 100)
            in
            let conditions =
              Conditions.make ~max_containers ~container_step ~max_gb ~gb_step:10.0
                ~min_gb:10.0 ()
            in
            (* The paper's published cost model descends in container count
               without an interior optimum, so its hill climbs walk to the
               cluster boundary — that is what makes planner overhead grow
               with cluster size in Figure 15(b). Our retrained model has an
               interior optimum and stays flat; use the paper's coefficients
               here for fidelity. *)
            let mk () =
              Raqo.Cost_based.create ~kind:Raqo.Cost_based.Fast_randomized
                ~randomized_params:params ~cache:true
                ~lookup:(Raqo_resource.Plan_cache.Nearest_neighbor 0.05)
                ~model:Raqo_cost.Op_cost.paper ~conditions schema
            in
            let runs = if full then 1 else 2 in
            (* Per-query caching: reset between runs. *)
            let per_query = mk () in
            let per_query_ms, evals = time_planner ~runs per_query rels in
            (* Across-query caching: successive queries keep the cache. *)
            let across = mk () in
            ignore (Raqo.Cost_based.optimize across rels);
            let across_ms =
              let _, ms = Timer.avg_ms ~runs (fun () -> Raqo.Cost_based.optimize across rels) in
              ms
            in
            [
              string_of_int max_containers;
              f max_gb;
              f per_query_ms;
              f across_ms;
              string_of_int evals;
            ])
          gb_scales)
      container_scales
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Figure 15(b): scalability with cluster size, 100-table join (FastRandomized, %s)"
         (if full then "1-container allocation steps" else "allocation step = capacity/100"))
    ~headers:
      [ "max containers"; "max GB"; "RAQO ms (per-query cache)"; "RAQO ms (across-query cache)"; "configs" ]
    rows;
  note "paper: overhead negligible to 1K containers, ~5x beyond 10K; across-query caching ~30%% faster there"

(* ------------------------------------------------- Ablations (extensions) *)

(* Left-deep (Selinger) vs bushy (DPsub) vs randomized, all with resource
   planning in the loop — the "explore the query/resource search space"
   agenda item. *)
let ablation_bushy () =
  let m = Lazy.force model in
  let row schema qname rels =
    let planner () = Raqo_resource.Resource_planner.create Conditions.default in
    let run optimize =
      let coster = Raqo_planner.Coster.raqo m schema (planner ()) in
      let result, ms = Timer.time_ms (fun () -> optimize coster) in
      match result with
      | Some (_, cost) -> (cost, ms)
      | None -> (Float.nan, ms)
    in
    let ld_cost, ld_ms = run (fun c -> Raqo_planner.Selinger.optimize c schema rels) in
    let bu_cost, bu_ms = run (fun c -> Raqo_planner.Dpsub.optimize c schema rels) in
    let rnd_cost, rnd_ms =
      run (fun c -> Raqo_planner.Randomized.optimize (Rng.create 42) c schema rels)
    in
    [
      qname; f ld_cost; f ld_ms; f bu_cost; f bu_ms; f rnd_cost; f rnd_ms;
      f (ld_cost /. bu_cost);
    ]
  in
  let tpch_rows = List.map (fun (q, rels) -> row tpch q rels) Tpch.evaluation_queries in
  (* Random schemas have richer join graphs where bushy trees can win. *)
  let random_rows =
    List.map
      (fun seed ->
        let rng = Rng.create seed in
        let schema = Raqo_catalog.Random_schema.generate rng ~tables:8 in
        (* Scale the generator's 100K-2M-row tables into the multi-GB regime
           where operator choice matters. *)
        let schema =
          List.fold_left
            (fun s r -> Schema.with_relation s (Relation.scale r 100.0))
            schema (Schema.relations schema)
        in
        row schema (Printf.sprintf "rand-%d" seed) (Schema.relation_names schema))
      [ 3; 7; 21; 42 ]
  in
  Table.print
    ~title:"Ablation: left-deep vs bushy vs randomized plan spaces (RAQO costing)"
    ~headers:
      [ "query"; "left-deep cost"; "ms"; "bushy cost"; "ms"; "randomized cost"; "ms"; "LD/bushy" ]
    (tpch_rows @ random_rows);
  note
    "bushy DP never loses; left-deep matches it here (per-join cost keys on the build side, \
     which a best left-deep order matches), while the randomized planner misses some optima \
     on random graphs"

(* Scheduler policies under a capacity dip — "should it delay the job, fail
   it, or pick alternatives at runtime?" *)
let ablation_sched () =
  let m = Lazy.force model in
  let schema = tpch_orders_gb 5.1 in
  let roomy = Conditions.make ~max_containers:100 ~max_gb:10.0 () in
  let reduced = Conditions.make ~max_containers:20 ~max_gb:3.0 () in
  let opt = Raqo.Cost_based.create ~model:m ~conditions:roomy schema in
  match Raqo.Cost_based.optimize opt Tpch.q3 with
  | None -> print_endline "ablation_sched: no plan"
  | Some (plan, _) ->
      let capacity =
        Raqo_scheduler.Capacity.dip ~normal:roomy ~reduced ~from_t:1.0 ~until_t:2000.0
      in
      let policies =
        [
          ("Wait", Raqo_scheduler.Executor.Wait None);
          ("Wait(500s timeout)", Raqo_scheduler.Executor.Wait (Some 500.0));
          ("Fail", Raqo_scheduler.Executor.Fail);
          ("Downscale", Raqo_scheduler.Executor.Downscale);
          ("Reoptimize", Raqo_scheduler.Executor.Reoptimize);
        ]
      in
      let rows =
        List.map
          (fun (name, policy) ->
            match
              Raqo_scheduler.Executor.run ~policy hive ~model:m schema ~capacity plan
            with
            | Raqo_scheduler.Executor.Completed { finish; total_wait; gb_seconds; stages } ->
                let adapted = List.exists (fun s -> s.Raqo_scheduler.Executor.adapted) stages in
                [
                  name; "completed"; f finish; f total_wait; f (gb_seconds /. 1024.0);
                  (if adapted then "yes" else "no");
                ]
            | Raqo_scheduler.Executor.Failed { at_time; reason; _ } ->
                [ name; "FAILED"; f at_time; "-"; "-"; reason ])
          policies
      in
      Table.print
        ~title:
          "Ablation: DAG-scheduler policies under a capacity dip (Q3 planned for the full \
           cluster; cluster drops to 20 x 3 GB during [1, 2000) s)"
        ~headers:[ "policy"; "outcome"; "finish s"; "waited s"; "TB·s"; "adapted" ]
        rows;
      note "adaptive policies complete during the dip; waiting pays the dip length"

(* Sorted array vs B+-tree plan-cache index at growing sizes — the paper's
   CSB+-tree suggestion quantified. *)
let ablation_cacheidx () =
  let sizes = [ 1_000; 10_000; 100_000 ] in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun backend ->
            let name =
              match backend with
              | Raqo_resource.Ordered_index.Sorted_array -> "sorted array"
              | Raqo_resource.Ordered_index.Btree -> "B+-tree"
            in
            let idx = Raqo_resource.Ordered_index.create backend in
            let (), insert_ms =
              Timer.time_ms (fun () ->
                  for i = 1 to n do
                    Raqo_resource.Ordered_index.insert idx
                      (float_of_int ((i * 7919) mod 1_000_003))
                      i
                  done)
            in
            let (), lookup_ms =
              Timer.time_ms (fun () ->
                  for i = 1 to 10_000 do
                    ignore
                      (Raqo_resource.Ordered_index.within idx
                         ~center:(float_of_int ((i * 131) mod 1_000_003))
                         ~radius:50.0)
                  done)
            in
            [
              string_of_int n; name; f insert_ms; f (insert_ms /. float_of_int n *. 1e6);
              f (lookup_ms /. 10.0);
            ])
          [ Raqo_resource.Ordered_index.Sorted_array; Raqo_resource.Ordered_index.Btree ])
      sizes
  in
  Table.print
    ~title:"Ablation: plan-cache index backends (random inserts + 10k range lookups)"
    ~headers:[ "entries"; "backend"; "insert total ms"; "insert ns/op"; "lookup µs/op" ]
    rows;
  note "the sorted array's O(n) insert shifting loses to the B+-tree as the cache grows"

(* Robust vs nominal plans under a condition shift. *)
let ablation_robust () =
  let m = Lazy.force model in
  let schema = tpch_orders_gb 5.1 in
  let roomy = Conditions.make ~max_containers:12 ~max_gb:10.0 () in
  let tight = Conditions.make ~max_containers:40 ~max_gb:4.0 () in
  let opt =
    Raqo.Cost_based.create ~kind:Raqo.Cost_based.Fast_randomized ~model:m ~conditions:roomy
      schema
  in
  let shape_cost conditions shape =
    let o = Raqo.Cost_based.with_conditions opt conditions in
    let coster =
      Raqo_planner.Coster.raqo (Raqo.Cost_based.model o) (Raqo.Cost_based.schema o)
        (Raqo.Cost_based.resource_planner o)
    in
    match Raqo_planner.Coster.cost_tree coster shape with
    | Some (_, c) -> c
    | None -> Float.infinity
  in
  match
    ( Raqo.Cost_based.optimize opt Tpch.all,
      Raqo.Robust.optimize opt ~scenarios:[ roomy; tight ] Tpch.all )
  with
  | Some (nominal, _), Some robust ->
      let nshape = Raqo_planner.Coster.shape_of nominal in
      let rows =
        [
          [
            "nominal (roomy-optimal)";
            f (shape_cost roomy nshape);
            f (shape_cost tight nshape);
            f (Float.max (shape_cost roomy nshape) (shape_cost tight nshape));
          ];
          [
            "robust (worst-case)";
            f (shape_cost roomy robust.Raqo.Robust.shape);
            f (shape_cost tight robust.Raqo.Robust.shape);
            f robust.Raqo.Robust.score;
          ];
        ]
      in
      Table.print
        ~title:
          "Ablation: robust RAQO — plan shapes evaluated under the promised (12 x 10 GB) \
           and spiked (40 x 4 GB) cluster (TPC-H All)"
        ~headers:[ "plan"; "cost @roomy"; "cost @tight"; "worst case" ]
        rows;
      let same =
        Raqo_plan.Join_tree.equal_shape (fun () () -> true) nshape robust.Raqo.Robust.shape
      in
      if same then note "the nominal shape is already worst-case optimal on this instance"
      else note "the robust shape trades optimum-cost for worst-case cost"
  | _ -> print_endline "ablation_robust: planning failed"

(* The time-money Pareto front for TPC-H All. *)
let ablation_pareto () =
  let m = Lazy.force model in
  let opt =
    Raqo.Cost_based.create ~kind:Raqo.Cost_based.Fast_randomized
      ~randomized_params:{ Raqo_planner.Randomized.iterations = 20; max_no_improve = 30 }
      ~model:m ~conditions:Conditions.default tpch
  in
  let front = Raqo.Pareto.front opt Tpch.all in
  let rows =
    List.map
      (fun (p : Raqo.Use_cases.priced_plan) ->
        let marker =
          match Raqo.Pareto.knee front with
          | Some k when k == p -> "<- knee"
          | Some _ | None -> ""
        in
        [ f p.Raqo.Use_cases.est_cost; Printf.sprintf "$%.4f" p.Raqo.Use_cases.est_money; marker ])
      front
  in
  Table.print
    ~title:"Ablation: time-money Pareto front of joint plans (TPC-H All, randomized planner)"
    ~headers:[ "est cost"; "est money"; "" ]
    rows;
  note "%d candidate plans collapse to a %d-point front" 20 (List.length front)

(* Branch-and-bound pruning in the Selinger DP — "identify and prune
   infeasible or non-interesting query/resource plans early on". *)
let ablation_pruning () =
  let m = Lazy.force model in
  let row schema qname rels =
    let planner () = Raqo_resource.Resource_planner.create Conditions.default in
    let count coster =
      let calls = ref 0 in
      ( {
          Raqo_planner.Coster.best_join =
            (fun ~left ~right ->
              incr calls;
              coster.Raqo_planner.Coster.best_join ~left ~right);
          name = "counting";
        },
        calls )
    in
    let base_coster () = Raqo_planner.Coster.raqo m schema (planner ()) in
    let unpruned_coster, unpruned_calls = count (base_coster ()) in
    let unpruned =
      match Raqo_planner.Selinger.optimize unpruned_coster schema rels with
      | Some (_, c) -> c
      | None -> Float.nan
    in
    let pruned_coster, pruned_calls = count (base_coster ()) in
    let pruned_result, _ = Raqo_planner.Selinger.optimize_pruned pruned_coster schema rels in
    let pruned =
      match pruned_result with
      | Some (_, c) -> c
      | None -> Float.nan
    in
    [
      qname;
      string_of_int !unpruned_calls;
      string_of_int !pruned_calls;
      f (float_of_int !unpruned_calls /. float_of_int (max 1 !pruned_calls));
      f (pruned /. unpruned);
    ]
  in
  let tpch_rows = List.map (fun (q, rels) -> row tpch q rels) Tpch.evaluation_queries in
  let random_rows =
    List.map
      (fun seed ->
        let rng = Rng.create seed in
        let schema = Raqo_catalog.Random_schema.generate rng ~tables:10 in
        let schema =
          List.fold_left
            (fun s r -> Schema.with_relation s (Relation.scale r 100.0))
            schema (Schema.relations schema)
        in
        row schema (Printf.sprintf "rand-%d (10 tables)" seed) (Schema.relation_names schema))
      [ 3; 7 ]
  in
  Table.print
    ~title:
      "Ablation: branch-and-bound pruning in the Selinger DP (greedy plan seeds the bound; \
       RAQO costing)"
    ~headers:[ "query"; "joins costed (plain)"; "joins costed (pruned)"; "saving"; "cost ratio" ]
    (tpch_rows @ random_rows);
  note "cost ratio 1.00: pruning is exact under the floored (nonnegative) cost model";
  note
    "the bound's greedy seed costs n-1 joins itself, so pruning only pays on rich join \
     graphs (the random schemas); TPC-H's snowflake admits too few orders to prune"

(* Task-level vs analytical stage model: how much do stragglers and wave
   quantization bend the closed-form operator costs the optimizer plans
   with? *)
let ablation_tasksim () =
  let rng = Rng.create 5 in
  let rows =
    List.concat_map
      (fun nc ->
        List.map
          (fun sigma ->
            (* Average over several draws for stable factors. *)
            let runs = 25 in
            let factors = ref [] and deltas = ref [] in
            for _ = 1 to runs do
              match
                Raqo_execsim.Task_sim.simulate ~noise_sigma:sigma rng hive Join_impl.Smj
                  ~small_gb:3.4 ~big_gb:77.0 ~resources:(res nc 3.0)
              with
              | Some r ->
                  factors := r.Raqo_execsim.Task_sim.straggler_factor :: !factors;
                  deltas :=
                    (r.Raqo_execsim.Task_sim.seconds
                    /. r.Raqo_execsim.Task_sim.analytical_seconds)
                    :: !deltas
              | None -> ()
            done;
            let avg xs = Stats.mean (Array.of_list xs) in
            [
              string_of_int nc;
              f sigma;
              f (avg !factors);
              f (avg !deltas);
            ])
          [ 0.0; 0.15; 0.3; 0.5 ])
      [ 5; 10; 20; 40 ]
  in
  Table.print
    ~title:
      "Ablation: task-level stage simulation vs the analytical model (SMJ, 3.4 GB ⋈ 77 GB, \
       3 GB containers; 25 draws per cell)"
    ~headers:[ "containers"; "task noise σ"; "straggler factor"; "task-level / analytical" ]
    rows;
  note
    "at realistic noise the analytical model the optimizer plans with stays within a few \
     percent of the task-level ground truth"

(* A 200-query workload on a shared FIFO cluster: the Figure 2 comparison
   lifted to workload scale, where faster plans also drain the queue. *)
let ablation_workload () =
  let m = Lazy.force model in
  let rng = Rng.create 11 in
  let submissions =
    Raqo_scheduler.Workload_runner.generate rng ~n:200 ~arrival_rate:0.002 tpch
  in
  let approaches =
    [
      ( "default two-step (10 x 3 GB guess)",
        Raqo_scheduler.Workload_runner.default_planner hive ~resources:(res 10 3.0) );
      ( "default two-step (40 x 9 GB guess)",
        Raqo_scheduler.Workload_runner.default_planner hive ~resources:(res 40 9.0) );
      ( "RAQO (per-query cache)",
        Raqo_scheduler.Workload_runner.raqo_planner ~cache_across_queries:false ~model:m
          ~conditions:Conditions.default () );
      ( "RAQO (across-query cache)",
        Raqo_scheduler.Workload_runner.raqo_planner ~cache_across_queries:true ~model:m
          ~conditions:Conditions.default () );
    ]
  in
  let rows =
    List.map
      (fun (name, planner) ->
        let s, _ = Raqo_scheduler.Workload_runner.run hive tpch submissions ~planner in
        [
          name;
          string_of_int s.Raqo_scheduler.Workload_runner.completed;
          f (s.Raqo_scheduler.Workload_runner.makespan /. 3600.0);
          f s.Raqo_scheduler.Workload_runner.mean_latency;
          f s.Raqo_scheduler.Workload_runner.p95_latency;
          f s.Raqo_scheduler.Workload_runner.total_tb_seconds;
          f s.Raqo_scheduler.Workload_runner.total_plan_ms;
        ])
      approaches
  in
  Table.print
    ~title:
      "Workload: 200 TPC-H queries with random filters, FIFO on a shared cluster \
       (100 x 10 GB conditions)"
    ~headers:
      [ "approach"; "done"; "makespan h"; "mean lat s"; "p95 lat s"; "TB·s"; "plan ms total" ]
    rows;
  note
    "joint optimization pays planner milliseconds to save cluster hours; queue effects \
     compound the per-query gains"

(* -------------------------------------------------------------------- par *)

(* Timings recorded for --json output: figure wall times plus the par
   section's labeled samples. *)
let json_samples : (string * float) list ref = ref []
let sample name seconds = json_samples := (name, seconds) :: !json_samples

(* Bump when the JSON shape changes; cross-PR comparison scripts key on it. *)
let json_schema_version = 2

(* Identify the benchmarked tree so a BENCH_PRn.json artifact is traceable
   to a commit. Best-effort: "unknown" outside a git checkout. *)
let git_describe () =
  match
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = In_channel.input_line ic in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, Some line when String.trim line <> "" -> Some (String.trim line)
    | _ -> None
  with
  | Some describe -> describe
  | None | (exception _) -> "unknown"

let write_json path =
  let oc = open_out path in
  let entries =
    List.rev_map
      (fun (name, seconds) ->
        Printf.sprintf "    {\"name\": %S, \"seconds\": %.6f}" name seconds)
      !json_samples
  in
  Printf.fprintf oc "{\n  \"schema_version\": %d,\n  \"commit\": %S,\n  \"figures\": [\n%s\n  ]\n}\n"
    json_schema_version (git_describe ())
    (String.concat ",\n" entries);
  close_out oc;
  Printf.printf "wrote %d timing samples to %s\n" (List.length entries) path

(* Sequential vs pooled planning. On a single-CPU host the pooled runs show
   domain overhead rather than speedup; the point of the table is the
   identical plan costs (determinism) and the trend as cores appear. *)
let par_bench () =
  let m = Lazy.force model in
  let rng = Rng.create 7 in
  let schema = Raqo_catalog.Random_schema.generate rng ~tables:24 in
  let rels = Raqo_catalog.Random_schema.query rng schema ~joins:11 in
  let params = { Raqo_planner.Randomized.iterations = 16; max_no_improve = 30 } in
  let mk () =
    Raqo.Cost_based.create ~kind:Raqo.Cost_based.Fast_randomized ~randomized_params:params
      ~cache:false ~model:m ~conditions:Conditions.default schema
  in
  let cost_of = function Some (_, c) -> f c | None -> "-" in
  let seq_result = ref None in
  let _, seq_ms =
    Timer.avg_ms ~runs:3 (fun () -> seq_result := Raqo.Cost_based.optimize (mk ()) rels)
  in
  sample "par:randomized:seq" (seq_ms /. 1000.0);
  let rand_rows =
    [ "randomized"; "seq"; f seq_ms; "1.00"; cost_of !seq_result ]
    :: List.map
         (fun jobs ->
           Raqo_par.Pool.with_pool ~jobs (fun pool ->
               let result = ref None in
               let _, ms =
                 Timer.avg_ms ~runs:3 (fun () ->
                     result := Raqo.Cost_based.optimize_par (mk ()) pool rels)
               in
               sample (Printf.sprintf "par:randomized:jobs=%d" jobs) (ms /. 1000.0);
               [
                 "randomized";
                 Printf.sprintf "%d domains" jobs;
                 f ms;
                 f (seq_ms /. ms);
                 cost_of !result;
               ]))
         [ 1; 2; 4 ]
  in
  (* Brute-force grid search over a deliberately large configuration space. *)
  let grid =
    Conditions.make ~max_containers:400 ~max_gb:16.0 ~gb_step:0.5 ()
  in
  let grid_cost (r : Resources.t) =
    Raqo_cost.Op_cost.predict_exn m Join_impl.Smj ~small_gb:3.4 ~resources:r
  in
  let bf_seq = ref (res 1 1.0, 0.0) in
  let _, bf_seq_ms =
    Timer.avg_ms ~runs:3 (fun () -> bf_seq := Raqo_resource.Brute_force.search grid grid_cost)
  in
  sample "par:brute-force:seq" (bf_seq_ms /. 1000.0);
  let bf_rows =
    [ "brute force"; "seq"; f bf_seq_ms; "1.00"; f (snd !bf_seq) ]
    :: List.map
         (fun jobs ->
           Raqo_par.Pool.with_pool ~jobs (fun pool ->
               let result = ref (res 1 1.0, 0.0) in
               let _, ms =
                 Timer.avg_ms ~runs:3 (fun () ->
                     result := Raqo_resource.Brute_force.search_par pool grid grid_cost)
               in
               sample (Printf.sprintf "par:brute-force:jobs=%d" jobs) (ms /. 1000.0);
               [
                 "brute force";
                 Printf.sprintf "%d domains" jobs;
                 f ms;
                 f (bf_seq_ms /. ms);
                 f (snd !result);
               ]))
         [ 1; 2; 4 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Parallel planning: randomized restarts (12-relation query, 16 restarts) and \
          brute-force grid search (%d configs) across domain pools (host has %d cores)"
         (List.length (Conditions.all_configs grid))
         (Domain.recommended_domain_count ()))
    ~headers:[ "task"; "pool"; "ms"; "speedup"; "best cost" ]
    (rand_rows @ bf_rows);
  (* The memoizing coster: same plans, fewer best-join evaluations. *)
  let memo_rows =
    List.map
      (fun (qname, rels) ->
        let evals memoize =
          let opt =
            Raqo.Cost_based.create ~memoize ~cache:false ~model:m
              ~conditions:Conditions.default tpch
          in
          match Raqo.Cost_based.optimize opt rels with
          | Some (_, c) -> (Counters.cost_evaluations (Raqo.Cost_based.counters opt), c)
          | None -> (0, Float.nan)
        in
        let plain_evals, plain_cost = evals false in
        let memo_evals, memo_cost = evals true in
        [
          qname;
          string_of_int plain_evals;
          string_of_int memo_evals;
          f (float_of_int plain_evals /. float_of_int (max 1 memo_evals));
          (if Float.equal plain_cost memo_cost then "yes" else "NO");
        ])
      Tpch.evaluation_queries
  in
  Table.print
    ~title:"Memoizing coster: resource configs explored, Selinger on TPC-H (hill climbing)"
    ~headers:[ "query"; "plain evals"; "memoized evals"; "saving"; "same plan cost" ]
    memo_rows;
  note "restart fan-out and grid partitioning return bit-identical plans at any pool size"

(* ---------------------------------------------------------------- scaling *)

(* Planner scaling on the interned mask core: string-keyed reference DP vs
   mask-based DP (both memoized) on synthetic 8/10/12-relation chains and
   stars, plus branch-and-bound vs exhaustive resource-search evaluation
   counts. The masked timings include interning the context, as production
   admission does. *)
let scaling () =
  let m = Lazy.force model in
  let synthetic ~shape n =
    let name i = Printf.sprintf "r%02d" i in
    let rels =
      List.init n (fun i ->
          Relation.make ~name:(name i)
            ~rows:(1e6 /. float_of_int (i + 1))
            ~row_bytes:100.0)
    in
    let edge a b =
      { Raqo_catalog.Join_graph.left = name a; right = name b; selectivity = 0.001 }
    in
    let edges =
      match shape with
      | `Chain -> List.init (n - 1) (fun i -> edge i (i + 1))
      | `Star -> List.init (n - 1) (fun i -> edge 0 (i + 1))
    in
    (Schema.make rels (Raqo_catalog.Join_graph.make edges), List.init n name)
  in
  let shape_name = function `Chain -> "chain" | `Star -> "star" in
  let cost_of = function Some (_, c) -> f c | None -> "-" in
  let runs = 20 in
  let rows =
    List.concat_map
      (fun (planner, reference, masked) ->
        List.concat_map
          (fun shape ->
            List.map
              (fun n ->
                let schema, rels = synthetic ~shape n in
                (* Warm memos on both sides: the timed region is repeated
                   re-planning (the adaptive re-optimization loop), where
                   the string side pays key construction and string hashing
                   per lookup and the mask side an array load. *)
                let sc =
                  Raqo_planner.Coster.memoize
                    (Raqo_planner.Coster.fixed m schema (res 10 5.0))
                in
                let ctx = Raqo_catalog.Interned.make schema rels in
                let mc =
                  Raqo_planner.Coster.memoize_masked ctx
                    (Raqo_planner.Coster.fixed_masked m ctx (res 10 5.0))
                in
                let ref_result = ref (reference sc schema rels) in
                let _, ref_ms =
                  Timer.avg_ms ~runs (fun () -> ref_result := reference sc schema rels)
                in
                let masked_result = ref (masked mc ctx) in
                let _, masked_ms =
                  Timer.avg_ms ~runs (fun () -> masked_result := masked mc ctx)
                in
                let tag suffix ms =
                  sample
                    (Printf.sprintf "scaling:%s:%s:n=%d:%s" planner (shape_name shape)
                       n suffix)
                    (ms /. 1000.0)
                in
                tag "string" ref_ms;
                tag "masked" masked_ms;
                let same =
                  match (!ref_result, !masked_result) with
                  | Some (_, a), Some (_, b) -> Float.equal a b
                  | None, None -> true
                  | _ -> false
                in
                [
                  planner;
                  shape_name shape;
                  string_of_int n;
                  f ref_ms;
                  f masked_ms;
                  f (ref_ms /. masked_ms);
                  (if same then cost_of !ref_result else "DIFFERENT");
                ])
              [ 8; 10; 12 ])
          [ `Chain; `Star ])
      [
        ("selinger", Raqo_planner.Selinger.optimize_reference,
         Raqo_planner.Selinger.optimize_masked);
        ("dpsub", Raqo_planner.Dpsub.optimize_reference,
         Raqo_planner.Dpsub.optimize_masked);
      ]
  in
  Table.print
    ~title:
      "Planner scaling: string-keyed reference vs interned mask core (both memoized; \
       masked time includes interning)"
    ~headers:[ "planner"; "shape"; "n"; "string ms"; "masked ms"; "speedup"; "cost" ]
    rows;
  (* Branch-and-bound resource search vs the exhaustive grid, on the paper's
     default 1000-config cluster. The paper-space model is the one with a
     monotone region bound (the extended space has none and falls back to
     the exhaustive scan). Counts are recorded as pseudo-samples. *)
  let pm = Raqo_cost.Op_cost.with_floor 0.01 Raqo_cost.Op_cost.paper in
  let exhaustive_evals = ref 0 and pruned_evals = ref 0 in
  let prune_rows =
    List.concat_map
      (fun impl ->
        List.map
          (fun small_gb ->
            let cost r =
              Raqo_cost.Op_cost.predict_exn pm impl ~small_gb ~resources:r
            in
            let bound =
              Option.get (Raqo_cost.Op_cost.region_lower_bound pm impl ~small_gb)
            in
            let ke = Counters.create () and kp = Counters.create () in
            let _, ce = Raqo_resource.Brute_force.search ~counters:ke Conditions.default cost in
            let _, cp =
              Raqo_resource.Brute_force.search_pruned ~counters:kp Conditions.default
                ~bound cost
            in
            exhaustive_evals := !exhaustive_evals + Counters.cost_evaluations ke;
            pruned_evals := !pruned_evals + Counters.cost_evaluations kp;
            [
              Join_impl.to_string impl;
              f small_gb;
              string_of_int (Counters.cost_evaluations ke);
              string_of_int (Counters.cost_evaluations kp);
              f
                (float_of_int (Counters.cost_evaluations ke)
                /. float_of_int (max 1 (Counters.cost_evaluations kp)));
              (if Float.equal ce cp then "yes" else "NO");
            ])
          [ 0.1; 0.5; 2.0; 3.4; 6.0; 8.0 ])
      Join_impl.all
  in
  Table.print
    ~title:
      "Pruned resource search: cost evaluations, branch-and-bound vs exhaustive \
       (1000-config grid)"
    ~headers:[ "impl"; "small GB"; "exhaustive"; "pruned"; "saving"; "same cost" ]
    prune_rows;
  sample "scaling:pruned-evals:exhaustive" (float_of_int !exhaustive_evals);
  sample "scaling:pruned-evals:pruned" (float_of_int !pruned_evals);
  note "masked speedup and pruning saving are this PR's acceptance metrics (>=3x, >=5x)"

(* ----------------------------------------------------------------- kernel *)

(* Compiled cost kernels vs the scalar model: full-grid evaluation on 20x20
   and 60x60 resource grids (the searches are bit-identical, so the speedup
   column is pure evaluation mechanics), a steady-state allocation probe, and
   per-planner end-to-end planning times with kernels on vs --no-kernel. The
   paper-space model is used throughout — the extended feature space refuses
   to compile and would measure the scalar path twice. *)
let kernel_bench () =
  let pm = Raqo_cost.Op_cost.with_floor 0.01 Raqo_cost.Op_cost.paper in
  let module Kernel = Raqo_cost.Kernel in
  let module Brute_force = Raqo_resource.Brute_force in
  let scratch = Kernel.create_scratch () in
  let grids =
    [
      ("20x20", Conditions.make ~max_containers:20 ~max_gb:20.0 ());
      ("60x60", Conditions.make ~max_containers:60 ~max_gb:60.0 ());
    ]
  in
  let small_gb = 2.0 in
  let sweep_runs = 100 in
  let speed60 = ref [] in
  let sweep_rows =
    List.concat_map
      (fun (gname, c) ->
        List.map
          (fun impl ->
            let cost r = Raqo_cost.Op_cost.predict_exn pm impl ~small_gb ~resources:r in
            let kernel = Option.get (Kernel.make pm impl ~small_gb) in
            let iname = Join_impl.to_string impl in
            (* Warm both paths (and the scratch buffer) before timing. *)
            let scalar_result = ref (Brute_force.search c cost) in
            let kernel_result = ref (Brute_force.search_kernel c ~kernel ~scratch) in
            let _, scalar_ms =
              Timer.avg_ms ~runs:sweep_runs (fun () ->
                  scalar_result := Brute_force.search c cost)
            in
            let _, kernel_ms =
              Timer.avg_ms ~runs:sweep_runs (fun () ->
                  kernel_result := Brute_force.search_kernel c ~kernel ~scratch)
            in
            (* Steady-state allocation probe: minor words per warm grid sweep
               (the search wrappers box one result tuple on top of this). *)
            Kernel.ensure scratch (Conditions.n_configs c);
            let buf = Kernel.buffer scratch in
            let before = Gc.minor_words () in
            for _ = 1 to sweep_runs do
              Kernel.sweep kernel c buf
            done;
            let words_per_sweep =
              (Gc.minor_words () -. before) /. float_of_int sweep_runs
            in
            let tag suffix v =
              sample (Printf.sprintf "kernel:sweep:%s:%s:%s" gname iname suffix) v
            in
            tag "scalar" (scalar_ms /. 1000.0);
            tag "kernel" (kernel_ms /. 1000.0);
            tag "minor-words-per-sweep" words_per_sweep;
            if gname = "60x60" then speed60 := (scalar_ms /. kernel_ms) :: !speed60;
            [
              gname;
              iname;
              f scalar_ms;
              f kernel_ms;
              f (scalar_ms /. kernel_ms);
              f words_per_sweep;
              (if !scalar_result = !kernel_result then "yes" else "DIFFERENT");
            ])
          Join_impl.all)
      grids
  in
  Table.print
    ~title:
      "Grid evaluation: scalar predict per config vs compiled kernel sweep \
       (identical search results)"
    ~headers:
      [ "grid"; "impl"; "scalar ms"; "kernel ms"; "speedup"; "alloc w/sweep"; "same" ]
    sweep_rows;
  (* End-to-end: joint optimization of a TPC-H query, kernels on vs off, per
     resource-search strategy. Same plans and costs either way (the oracle
     and tests enforce bit-identity); only the planning time moves. *)
  let e2e_runs = 10 in
  let e2e_rows =
    List.map
      (fun (sname, strategy, pruned) ->
        let time kernel =
          let opt =
            Raqo.Cost_based.create ~resource_strategy:strategy ~pruned ~cache:false
              ~kernel ~model:pm ~conditions:Conditions.default tpch
          in
          let result = ref (Raqo.Cost_based.optimize opt Tpch.q5) in
          let _, ms =
            Timer.avg_ms ~runs:e2e_runs (fun () ->
                result := Raqo.Cost_based.optimize opt Tpch.q5)
          in
          (ms, Option.map snd !result)
        in
        let on_ms, on_cost = time true in
        let off_ms, off_cost = time false in
        sample (Printf.sprintf "kernel:e2e:%s:on" sname) (on_ms /. 1000.0);
        sample (Printf.sprintf "kernel:e2e:%s:off" sname) (off_ms /. 1000.0);
        [
          sname;
          f off_ms;
          f on_ms;
          f (off_ms /. on_ms);
          (if on_cost = off_cost then "yes" else "DIFFERENT");
        ])
      [
        ("hill-climb", Raqo_resource.Resource_planner.Hill_climb, false);
        ("brute-force", Raqo_resource.Resource_planner.Brute_force, false);
        ("pruned", Raqo_resource.Resource_planner.Brute_force, true);
      ]
  in
  Table.print
    ~title:"End-to-end joint planning (TPC-H Q5): --no-kernel vs compiled kernels"
    ~headers:[ "strategy"; "scalar ms"; "kernel ms"; "speedup"; "same cost" ]
    e2e_rows;
  let worst60 = List.fold_left Float.min Float.infinity !speed60 in
  sample "kernel:sweep:60x60:min-speedup" worst60;
  note "acceptance: 60x60 grid evaluation >=3x (measured min %.1fx), 0 words/sweep"
    worst60

(* -------------------------------------------------------------------- obs *)

(* Observability overhead: every instrumented hot site pays one Atomic.get
   and a branch when the subsystem is off, so the disabled column should sit
   within noise of the uninstrumented PR-4 numbers (the CI gate compares
   kernel/scaling samples against BENCH_PR4.json). The enabled column bounds
   the cost of live counters and span recording. *)
let obs_bench () =
  let pm = Raqo_cost.Op_cost.with_floor 0.01 Raqo_cost.Op_cost.paper in
  let module Kernel = Raqo_cost.Kernel in
  let c = Conditions.make ~max_containers:60 ~max_gb:60.0 () in
  let kernel = Option.get (Kernel.make pm Join_impl.Bhj ~small_gb:2.0) in
  let scratch = Kernel.create_scratch () in
  Kernel.ensure scratch (Conditions.n_configs c);
  let buf = Kernel.buffer scratch in
  let sweep () = Kernel.sweep kernel c buf in
  let coster = Raqo_planner.Coster.fixed pm tpch (res 10 5.0) in
  let plan () = ignore (Raqo_planner.Selinger.optimize coster tpch Tpch.q5) in
  let search () = ignore (Raqo_resource.Brute_force.search_kernel c ~kernel ~scratch) in
  let saved = Raqo_obs.Obs.enabled () in
  let measure name runs fn =
    (* Warm inside each flag state (the first timed pass otherwise pays heap
       growth and page-fault warm-up, dwarfing the instrumentation delta);
       clear the rings afterwards so repeated sections never wrap
       mid-measurement. *)
    let time v =
      Raqo_obs.Obs.with_enabled v (fun () ->
          for _ = 1 to max 3 (runs / 10) do
            fn ()
          done;
          let _, ms = Timer.avg_ms ~runs fn in
          ms)
    in
    (* Alternate states and keep the per-state minimum: long-running drift
       (heap growth, frequency scaling) otherwise flatters whichever state
       is timed last. *)
    let off_ms = ref infinity and on_ms = ref infinity in
    for _ = 1 to 3 do
      off_ms := Float.min !off_ms (time false);
      on_ms := Float.min !on_ms (time true)
    done;
    let off_ms = !off_ms and on_ms = !on_ms in
    Raqo_obs.Trace.clear ();
    sample (Printf.sprintf "obs:%s:off" name) (off_ms /. 1000.0);
    sample (Printf.sprintf "obs:%s:on" name) (on_ms /. 1000.0);
    [ name; f off_ms; f on_ms; f (on_ms /. off_ms) ]
  in
  let rows =
    [
      measure "kernel-sweep-60x60" 200 sweep;
      measure "brute-force-search-kernel" 200 search;
      measure "selinger-q5" 100 plan;
    ]
  in
  Raqo_obs.Obs.set_enabled saved;
  Table.print
    ~title:"Observability overhead: instrumented hot paths, subsystem off vs on"
    ~headers:[ "workload"; "obs off ms"; "obs on ms"; "on/off" ] rows;
  note "acceptance: obs-off kernel/scaling samples regress <5%% vs BENCH_PR4.json"

(* ------------------------------------------------------------------- memo *)

(* The parallel shared-memo DP: two views of the same machinery. The DP
   phase alone times optimize_par_masked against sequential optimize_masked
   with fixed mask costers (the O(3^n) enumeration the memo table
   parallelizes); end-to-end times Cost_based.optimize_par against
   Cost_based.optimize with the full RAQO coster stack — interning, forked
   resource planners, kernels, and caches included. Plans per second is the
   headline unit. As in the par section, a single-CPU host shows domain
   overhead rather than speedup; the bit-identical column is the
   determinism check and must read "yes" at every pool size, and the
   speedup acceptance gates read these samples on multi-core CI. *)
let memo_bench () =
  let m = Lazy.force model in
  let jobs_list = [ 1; 2; 4; 8 ] in
  (* Min-of-3: the DP is deterministic, so the minimum is the least-noisy
     estimate of the true cost on a shared runner. *)
  let min_ms fn =
    let best = ref infinity and result = ref None in
    for _ = 1 to 3 do
      let r, ms = Timer.time_ms fn in
      result := Some r;
      best := Float.min !best ms
    done;
    (Option.get !result, !best)
  in
  let random_query n =
    let rng = Rng.create (600 + n) in
    let schema = Raqo_catalog.Random_schema.generate rng ~tables:n in
    (schema, Schema.relation_names schema)
  in
  let row phase n pool ms speedup identical =
    [
      phase;
      string_of_int n;
      pool;
      f ms;
      f (1000.0 /. ms);
      f speedup;
      (if identical then "yes" else "NO");
    ]
  in
  let dp_rows =
    List.concat_map
      (fun n ->
        let schema, rels = random_query n in
        let ctx = Raqo_catalog.Interned.make schema rels in
        let coster () = Raqo_planner.Coster.fixed_masked m ctx (res 10 5.0) in
        let seq, seq_ms =
          min_ms (fun () -> Raqo_planner.Dpsub.optimize_masked (coster ()) ctx)
        in
        sample (Printf.sprintf "memo:dp:n=%d:seq" n) (seq_ms /. 1000.0);
        row "dp" n "seq" seq_ms 1.0 true
        :: List.map
             (fun jobs ->
               Raqo_par.Pool.with_pool ~jobs (fun pool ->
                   let result, ms =
                     min_ms (fun () ->
                         Raqo_planner.Dpsub.optimize_par_masked ~coster pool ctx)
                   in
                   sample (Printf.sprintf "memo:dp:n=%d:jobs=%d" n jobs) (ms /. 1000.0);
                   row "dp" n
                     (Printf.sprintf "%d domains" jobs)
                     ms (seq_ms /. ms) (result = seq)))
             jobs_list)
      [ 12; 14; 16 ]
  in
  let e2e_rows =
    List.concat_map
      (fun n ->
        let schema, rels = random_query n in
        let mk () =
          Raqo.Cost_based.create ~kind:Raqo.Cost_based.Bushy_dp ~model:m
            ~conditions:Conditions.default schema
        in
        let seq, seq_ms = min_ms (fun () -> Raqo.Cost_based.optimize (mk ()) rels) in
        sample (Printf.sprintf "memo:e2e:n=%d:seq" n) (seq_ms /. 1000.0);
        row "end-to-end" n "seq" seq_ms 1.0 true
        :: List.map
             (fun jobs ->
               Raqo_par.Pool.with_pool ~jobs (fun pool ->
                   let result, ms =
                     min_ms (fun () -> Raqo.Cost_based.optimize_par (mk ()) pool rels)
                   in
                   sample (Printf.sprintf "memo:e2e:n=%d:jobs=%d" n jobs) (ms /. 1000.0);
                   row "end-to-end" n
                     (Printf.sprintf "%d domains" jobs)
                     ms (seq_ms /. ms) (result = seq)))
             jobs_list)
      [ 14; 16 ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "Parallel shared-memo DPsub on random sparse schemas: DP phase (fixed costers) \
          and end-to-end joint planning (RAQO costers); host has %d cores"
         (Domain.recommended_domain_count ()))
    ~headers:[ "phase"; "n"; "pool"; "ms"; "plans/s"; "speedup"; "bit-identical" ]
    (dp_rows @ e2e_rows);
  note "every pool size returns the sequential plan bit-for-bit (memo determinism)";
  note
    "acceptance on multi-core CI: >=2x end-to-end and >=3x DP-phase at 4 domains on \
     >=14-relation queries"

(* --------------------------------------------------------------- adaptive *)

(* Runtime adaptive re-optimization: a static plan optimized from an
   error-perturbed estimate schema is executed against the ground truth,
   re-planning the remaining join graph at every stage boundary whose
   observed cardinality contradicts its estimate (lib/adaptive). Rows sweep
   the lognormal error magnitude; the pool column fans the mid-flight
   re-plans out over the shared-memo DP (bit-identical reports at every pool
   size — the "same" column). Static latency, adaptive latency, and the
   adaptive run's wall time (every re-plan included) are recorded as JSON
   samples for cross-PR comparison. *)
let adaptive_bench () =
  let module Adaptive = Raqo_adaptive.Adaptive_exec in
  let module Estimation_error = Raqo_execsim.Estimation_error in
  let pm = Raqo_cost.Op_cost.with_floor 0.01 Raqo_cost.Op_cost.paper in
  let rng = Rng.create 77 in
  let truth =
    let schema = Raqo_catalog.Random_schema.generate rng ~tables:12 in
    (* Scale the generator's 100K–2M-row tables into the multi-GB regime
       where the BHJ/SMJ choice (what re-planning flips) matters. *)
    List.fold_left
      (fun s r -> Schema.with_relation s (Relation.scale r 100.0))
      schema (Schema.relations schema)
  in
  let rels = Raqo_catalog.Random_schema.query rng truth ~joins:8 in
  let conditions =
    Conditions.make ~min_containers:2 ~max_containers:16 ~container_step:2
      ~min_gb:1.0 ~max_gb:8.0 ~gb_step:1.0 ()
  in
  let rows =
    List.concat_map
      (fun sigma ->
        let error =
          Estimation_error.make (Estimation_error.Lognormal sigma)
            ~seed:(700 + int_of_float (sigma *. 100.0))
        in
        let estimates = Estimation_error.perturb error truth in
        let opt =
          Raqo.Cost_based.create ~kind:Raqo.Cost_based.Bushy_dp ~cache:false
            ~model:pm ~conditions estimates
        in
        let reference = ref None in
        List.map
          (fun jobs ->
            let adapt pool =
              Raqo.Cost_based.reset opt;
              Timer.time_ms (fun () ->
                  Raqo.Cost_based.optimize_adaptive ?pool ~engine:spark ~truth
                    opt rels)
            in
            let result, ms =
              if jobs <= 1 then adapt None
              else
                Raqo_par.Pool.with_pool ~jobs (fun pool -> adapt (Some pool))
            in
            let pool_label = if jobs <= 1 then "seq" else Printf.sprintf "%d domains" jobs in
            match result with
            | None -> [ f sigma; pool_label; "-"; "-"; "-"; "-"; "-"; f ms; "-" ]
            | Some (r, _) ->
                if jobs <= 1 then reference := Some r;
                let static_s = Adaptive.latency r.Adaptive.static_outcome in
                let adaptive_s = Adaptive.latency r.Adaptive.adaptive_outcome in
                let tag suffix v =
                  sample
                    (Printf.sprintf "adaptive:sigma=%g:jobs=%d:%s" sigma jobs suffix)
                    v
                in
                tag "static-latency" static_s;
                tag "adaptive-latency" adaptive_s;
                tag "wall" (ms /. 1000.0);
                [
                  f sigma;
                  pool_label;
                  f static_s;
                  f adaptive_s;
                  Printf.sprintf "%.1f%%" (100.0 *. (1.0 -. (adaptive_s /. static_s)));
                  string_of_int r.Adaptive.replans;
                  string_of_int r.Adaptive.switches;
                  f ms;
                  (match !reference with
                  | Some reference -> if r = reference then "yes" else "NO"
                  | None -> "-");
                ])
          [ 1; 4; 8 ])
      [ 0.25; 0.5; 1.0 ]
  in
  Table.print
    ~title:
      "Adaptive re-optimization: static vs adaptive latency under lognormal \
       estimation error (12-table random schema, 9-relation query, Spark, bushy DP)"
    ~headers:
      [ "sigma"; "pool"; "static s"; "adaptive s"; "saved"; "replans"; "switches";
        "wall ms"; "same" ]
    rows;
  note "never-worse guard: the saved column is nonnegative on every row (oracle-enforced)";
  note "every pool size produces the sequential report bit-for-bit (shared-memo determinism)"

(* ------------------------------------------------------------------ micro *)

let micro () =
  let open Bechamel in
  let cost_eval =
    let m = Lazy.force model in
    let r = res 40 5.0 in
    Test.make ~name:"cost-model eval"
      (Staged.stage (fun () ->
           Raqo_cost.Op_cost.predict_exn m Join_impl.Smj ~small_gb:3.3 ~resources:r))
  in
  let hill_climb =
    let bowlish (r : Resources.t) =
      let dn = float_of_int (r.containers - 42) and dg = r.container_gb -. 6.0 in
      (dn *. dn) +. (10.0 *. dg *. dg)
    in
    Test.make ~name:"hill climb (1000-config space)"
      (Staged.stage (fun () -> Raqo_resource.Hill_climb.plan Conditions.default bowlish))
  in
  let cache =
    let c = Raqo_resource.Plan_cache.create () in
    for i = 1 to 256 do
      Raqo_resource.Plan_cache.insert c ~key:"k" ~data_gb:(float_of_int i) (res i 1.0)
    done;
    Test.make ~name:"cache lookup (NN, 256 entries)"
      (Staged.stage (fun () ->
           Raqo_resource.Plan_cache.find c ~key:"k" ~data_gb:77.7
             (Raqo_resource.Plan_cache.Nearest_neighbor 1.0)))
  in
  let selinger =
    let coster = Raqo_planner.Coster.fixed (Lazy.force model) tpch (res 10 5.0) in
    Test.make ~name:"Selinger DP on TPC-H All"
      (Staged.stage (fun () -> Raqo_planner.Selinger.optimize coster tpch Tpch.all))
  in
  let simulate =
    Test.make ~name:"simulated join execution"
      (Staged.stage (fun () ->
           Operators.join_time hive Join_impl.Smj ~small_gb:5.1 ~big_gb:77.0
             ~resources:(res 10 5.0)))
  in
  let tests =
    Test.make_grouped ~name:"micro" [ cost_eval; hill_climb; cache; selinger; simulate ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> Table.fseries x
        | Some [] | None -> "?"
      in
      rows := [ name; ns ] :: !rows)
    results;
  Table.print ~title:"Micro-benchmarks (Bechamel OLS)" ~headers:[ "operation"; "ns/run" ]
    (List.sort compare !rows)

(* ------------------------------------------------------------------ main *)

(* ------------------------------------------------------------------ serve *)

(* Sustained-throughput bench for the resident optimizer ("planner as a
   service"). An open-loop heavy-tailed trace (Queue_sim arrivals) is played
   against the server on a virtual clock: arrivals advance it to their trace
   timestamps, each planning wave advances it by the wave's measured wall
   time. Sojourn latency (completion - arrival on that clock) gives p50/p99;
   plans/sec is requests over busy (planning) time. Every served response is
   diffed against the one-shot path — the "identical" column is the
   bit-identity contract. A second segment offers a burst far beyond the
   admission bound and shows load shedding: typed rejections, bounded queue,
   server still planning afterwards. *)
let serve_bench () =
  let module Sv = Raqo_server.Engine in
  let module Pr = Raqo_server.Protocol in
  let module Tg = Raqo_server.Trace_gen in
  let requests = 240 in
  (* Offered load well above the single-domain service rate (~2k plans/s):
     the queue backlogs, waves fill to [batch], and extra domains turn into
     throughput instead of idling on one-request waves. *)
  let trace = Tg.generate ~seed:17 ~arrival_rate:8000.0 ~requests () in
  let reference = Hashtbl.create requests in
  let (), oneshot_s =
    Timer.time (fun () ->
        List.iter
          (fun (_arrival, (req : Pr.request)) ->
            Hashtbl.replace reference req.Pr.id
              (Pr.response_to_json (Sv.oneshot req)))
          trace)
  in
  sample "serve:oneshot" oneshot_s;
  let arrival_of = Hashtbl.create requests in
  List.iter
    (fun (a, (req : Pr.request)) -> Hashtbl.replace arrival_of req.Pr.id a)
    trace;
  let run_jobs jobs =
    let config =
      { Sv.default_config with jobs; queue_capacity = 512; batch = max 8 (4 * jobs) }
    in
    let engine = Sv.create ~config () in
    let clock = ref 0.0 and busy = ref 0.0 in
    let latencies = ref [] and identical = ref true in
    let pending = ref trace in
    let rec admit_due () =
      match !pending with
      | (a, req) :: rest when a <= !clock ->
          pending := rest;
          (* capacity 512 >> trace size: nothing is shed in this segment *)
          assert (Sv.submit engine req = None);
          admit_due ()
      | _ -> ()
    in
    let rec loop () =
      admit_due ();
      if Sv.queue_depth engine = 0 then (
        match !pending with
        | [] -> ()
        | (a, _) :: _ ->
            (* idle: jump the virtual clock to the next arrival *)
            clock := Float.max !clock a;
            loop ())
      else begin
        let wave, wall = Timer.time (fun () -> Sv.process_wave engine) in
        busy := !busy +. wall;
        clock := !clock +. wall;
        List.iter
          (fun ((req : Pr.request), response) ->
            latencies := (!clock -. Hashtbl.find arrival_of req.Pr.id) :: !latencies;
            if Pr.response_to_json response <> Hashtbl.find reference req.Pr.id then
              identical := false)
          wave;
        loop ()
      end
    in
    loop ();
    Sv.shutdown engine;
    let lat = Array.of_list !latencies in
    let hits = Raqo_resource.Shared_plan_cache.hits (Sv.cache engine) in
    sample (Printf.sprintf "serve:jobs=%d" jobs) !busy;
    [
      string_of_int jobs;
      f (float_of_int requests /. !busy);
      f (1000.0 *. Stats.percentile lat 50.0);
      f (1000.0 *. Stats.percentile lat 99.0);
      f !clock;
      string_of_int hits;
      (if !identical then "yes" else "NO");
    ]
  in
  Table.print
    ~title:
      (Printf.sprintf
         "resident server: %d-request heavy-tailed trace (8k req/s offered, saturating), \
          virtual clock — responses diffed against the one-shot path"
         requests)
    ~headers:
      [ "domains"; "plans/s"; "p50 ms"; "p99 ms"; "makespan s"; "cache hits"; "identical" ]
    (List.map run_jobs [ 1; 4; 8 ]);
  (* Overload: a burst 4x the admission bound, offered in three slams with a
     single wave between each — the queue must stay bounded, the overflow
     must come back as typed 'overloaded' rejections, and the server must
     keep planning afterwards. *)
  let overload_rows, overload_s =
    Timer.time (fun () ->
        let config = { Sv.default_config with jobs = 2; queue_capacity = 16; batch = 8 } in
        let engine = Sv.create ~config () in
        let burst = List.map snd (Tg.generate ~seed:23 ~requests:96 ()) in
        let offered = List.length burst in
        let max_depth = ref 0 in
        let rejections = ref 0 in
        let planned = ref 0 in
        List.iter
          (fun slam ->
            List.iter
              (fun req ->
                (match Sv.submit engine req with
                | None -> ()
                | Some (Pr.Rejected { reason = Pr.Overloaded; _ }) -> incr rejections
                | Some _ -> failwith "unexpected rejection reason");
                max_depth := max !max_depth (Sv.queue_depth engine))
              slam;
            planned := !planned + List.length (Sv.process_wave engine))
          (Raqo_par.Pool.chunks 3 burst);
        planned := !planned + List.length (Sv.drain engine);
        (* still alive: a fresh request after the storm must still plan *)
        let alive =
          match
            Sv.plan_request engine
              (List.hd (List.map snd (Tg.generate ~seed:29 ~requests:1 ())))
          with
          | Pr.Planned _ -> true
          | Pr.Rejected _ | Pr.Health_ok _ | Pr.Allocated _ -> false
        in
        Sv.shutdown engine;
        [
          [
            string_of_int offered;
            "16";
            string_of_int !max_depth;
            string_of_int !rejections;
            string_of_int !planned;
            (if !planned + !rejections = offered then "yes" else "NO");
            (if alive then "yes" else "NO");
          ];
        ])
  in
  sample "serve:overload" overload_s;
  Table.print
    ~title:"overload shedding: burst of 96 against a 16-deep admission queue (2 domains)"
    ~headers:
      [ "offered"; "bound"; "max depth"; "rejected"; "planned"; "accounted"; "alive" ]
    overload_rows

(* --------------------------------------------------------------- rewrite *)

(* Rewrite-driven search shrinking (lib/rewrite): the same count-star query
   planned end-to-end with the logical rewrite pass off vs on. Schemas are
   synthetic star / chain / clique shapes seeded with exactly-absorbable
   relations (power-of-two rows so rows * selectivity folds to 1.0 bitwise):
   the star's even dimensions and the chain's unreferenced tail are FK
   leaves, the clique carries single-row constants. Absorption shrinks the
   instance the enumerator sees, so the exact DP enumerates far fewer
   connected subgraphs and the randomized planner walks a smaller move
   space — while the never-worse guarantee keeps the plan cost <= the
   unrewritten one. DPsub rows stay within its 20-relation cap; star and
   clique at scale use the randomized planner (a 20-relation star already
   has ~0.5M connected subsets). *)
let rewrite_bench () =
  let module Rewrite = Raqo_rewrite.Rewrite in
  let module Join_graph = Raqo_catalog.Join_graph in
  let m = Lazy.force model in
  let min_ms fn =
    let best = ref infinity and result = ref None in
    for _ = 1 to 3 do
      let r, ms = Timer.time_ms fn in
      result := Some r;
      best := Float.min !best ms
    done;
    (Option.get !result, !best)
  in
  let rel name rows = Relation.make ~name ~rows ~row_bytes:128.0 in
  let edge l r s = { Join_graph.left = l; right = r; selectivity = s } in
  (* Star: big fact, n-1 dimensions; even-index dims are absorbable FK
     leaves (65536 rows, sel 1/65536), odd ones survive and get narrowed. *)
  let star n =
    let dim i = Printf.sprintf "d%d" i in
    let dims =
      List.init (n - 1) (fun i ->
          rel (dim i) (if i mod 2 = 0 then 65536.0 else 65537.0))
    in
    let edges = List.init (n - 1) (fun i -> edge "fact" (dim i) (1.0 /. 65536.0)) in
    let schema =
      Schema.make (rel "fact" 16_777_216.0 :: dims) (Join_graph.make edges)
    in
    (schema, { Rewrite.filters = []; referenced = Some [ "fact" ] })
  in
  (* Chain: the referenced front third is dense, the unreferenced tail is a
     cascade of FK leaves — each absorption exposes the next. *)
  let chain n =
    let name i = Printf.sprintf "t%d" i in
    let front = n / 3 in
    let rels =
      List.init n (fun i ->
          rel (name i) (if i < front then 1_048_576.0 else 65536.0))
    in
    let edges =
      List.init (n - 1) (fun i ->
          edge (name i) (name (i + 1))
            (if i + 1 >= front then 1.0 /. 65536.0 else 1e-4))
    in
    let schema = Schema.make rels (Join_graph.make edges) in
    let referenced = List.init front name in
    (schema, { Rewrite.filters = []; referenced = Some referenced })
  in
  (* Clique: every other relation is a single-row constant (absorbed by the
     constant rule; a clique minus any vertex stays connected). *)
  let clique n =
    let name i = Printf.sprintf "c%d" i in
    let is_const i = i mod 2 = 0 in
    let rels =
      List.init n (fun i -> rel (name i) (if is_const i then 1.0 else 1_048_576.0))
    in
    let edges =
      List.concat_map
        (fun i ->
          List.filter_map
            (fun j ->
              if j <= i then None
              else
                let s =
                  if is_const i || is_const j then 1.0 else 1.0 /. 1_048_576.0
                in
                Some (edge (name i) (name j) s))
            (List.init n Fun.id))
        (List.init n Fun.id)
    in
    let schema = Schema.make rels (Join_graph.make edges) in
    let referenced =
      List.filter_map
        (fun i -> if is_const i then None else Some (name i))
        (List.init n Fun.id)
    in
    (schema, { Rewrite.filters = []; referenced = Some referenced })
  in
  let planner_for shape n =
    match shape with
    | "chain" when n <= 20 -> (Raqo.Cost_based.Bushy_dp, "dpsub")
    | "star" when n <= 16 -> (Raqo.Cost_based.Bushy_dp, "dpsub")
    | _ -> (Raqo.Cost_based.Fast_randomized, "randomized")
  in
  let rows =
    List.concat_map
      (fun (shape, make) ->
        List.map
          (fun n ->
            let schema, hints = make n in
            let rels = Schema.relation_names schema in
            let kind, pname = planner_for shape n in
            let run rewrite =
              let opt =
                Raqo.Cost_based.create ~kind ~rewrite ~rewrite_hints:hints
                  ~model:m ~conditions:Conditions.default schema
              in
              let result, ms =
                min_ms (fun () ->
                    Raqo.Cost_based.reset opt;
                    Raqo.Cost_based.optimize opt rels)
              in
              ( result,
                ms,
                Counters.cost_evaluations (Raqo.Cost_based.counters opt),
                Raqo.Cost_based.rewrite_report opt )
            in
            let off, off_ms, off_evals, _ = run false in
            let on, on_ms, on_evals, report = run true in
            sample (Printf.sprintf "rewrite:%s:n=%d:off" shape n) (off_ms /. 1000.0);
            sample (Printf.sprintf "rewrite:%s:n=%d:on" shape n) (on_ms /. 1000.0);
            let removed =
              match report with Some r -> r.Rewrite.removed | None -> 0
            in
            let never_worse =
              match (on, off) with
              | Some (_, a), Some (_, b) -> if a <= b then "yes" else "NO"
              | _ -> "-"
            in
            [
              shape;
              string_of_int n;
              pname;
              f off_ms;
              f on_ms;
              f (off_ms /. on_ms);
              string_of_int removed;
              string_of_int off_evals;
              string_of_int on_evals;
              never_worse;
            ])
          [ 16; 20; 24 ])
      [ ("star", star); ("chain", chain); ("clique", clique) ]
  in
  Table.print
    ~title:
      "logical rewrite memo: end-to-end planning with the rewrite pass off vs on \
       (count-star queries over absorbable star/chain/clique schemas)"
    ~headers:
      [
        "shape"; "n"; "planner"; "off ms"; "on ms"; "speedup"; "removed";
        "evals off"; "evals on"; "cost <="
      ]
    rows;
  note "rewrite runs inside optimize: 'on ms' includes the rewrite pass itself";
  note "'removed' counts relations absorbed before enumeration; 'cost <=' checks \
        the never-worse guarantee on this row's plans";
  note "acceptance: >=2x end-to-end speedup on >=20-relation schemas"

(* ------------------------------------------------------------------ alloc *)

(* The workload allocator: N concurrent queries (TPC-H evaluation set,
   heavy-tailed arrivals), one global container budget of 3N, frontier
   search exact vs randomized at 1/4/8 surface-building domains. Three
   contracts per row: surfaces/frontiers are bit-identical at any domain
   count, the randomized frontier's best makespan never beats the exact one
   (exact dominates), and the global allocation beats independent per-query
   planning (greedy caps, FIFO queueing) on total dollars or makespan. *)
let alloc_bench () =
  let module Allocator = Raqo_alloc.Allocator in
  let module Workload = Raqo_alloc.Workload in
  let m = Lazy.force model in
  (* Compact grid: 16 container steps x 6 GB steps keeps N=128 surface
     sweeps and the exact DP's (budget+1) layers tractable in CI. *)
  let conditions = Conditions.make ~max_containers:16 ~max_gb:6.0 () in
  let eval_queries = Array.of_list Tpch.evaluation_queries in
  let specs n =
    let rng = Rng.create (41 + n) in
    let arrivals = Workload.arrivals rng ~n ~rate:0.02 ~capacity:(3 * n) in
    List.init n (fun i ->
        let qname, rels = eval_queries.(i mod Array.length eval_queries) in
        {
          Workload.name = Printf.sprintf "q%d:%s" (i + 1) qname;
          relations = rels;
          tenant = Printf.sprintf "t%d" (i mod 2);
          weight = float_of_int (1 + (i mod 2));
          arrival = arrivals.(i);
          slo = None;
        })
  in
  let plan rels =
    let opt = Raqo.Cost_based.create ~model:m ~conditions tpch in
    Option.map fst (Raqo.Cost_based.optimize opt rels)
  in
  let build ?pool n =
    Workload.queries ?pool ~model:m ~conditions ~schema:tpch ~plan (specs n)
  in
  let rows = ref [] in
  List.iter
    (fun n ->
      let budget = 3 * n in
      let fairness = 0.5 in
      let reference = build n in
      let independent = Allocator.independent ~budget reference in
      List.iter
        (fun jobs ->
          let queries, build_s =
            Timer.time (fun () ->
                if jobs > 1 then
                  Raqo_par.Pool.with_pool ~jobs (fun pool -> build ~pool n)
                else build n)
          in
          (* Contract 1: pooled surface building is bit-identical. *)
          assert (Array.length queries = Array.length reference);
          Array.iteri
            (fun i (q : Allocator.query) ->
              assert (
                Raqo_alloc.Surface.latencies q.Allocator.surface
                = Raqo_alloc.Surface.latencies reference.(i).Allocator.surface))
            queries;
          sample (Printf.sprintf "alloc:n%d:build:j%d" n jobs) build_s;
          List.iter
            (fun (want, want_name) ->
              let outcome, search_s =
                Timer.time (fun () ->
                    Allocator.search ~want ~seed:23 ~budget ~fairness queries)
              in
              sample (Printf.sprintf "alloc:n%d:%s:j%d" n want_name jobs) search_s;
              let frontier = outcome.Allocator.frontier in
              let best f =
                List.fold_left (fun acc p -> Float.min acc (f p)) infinity frontier
              in
              let best_makespan = best (fun (p : Allocator.point) -> p.Allocator.makespan) in
              let best_dollars = best (fun (p : Allocator.point) -> p.Allocator.dollars) in
              (* Contract 3: the global allocation beats independent
                 per-query planning on dollars or makespan. *)
              let beats =
                best_dollars < independent.Allocator.dollars
                || best_makespan < independent.Allocator.makespan
              in
              assert beats;
              let worst f =
                List.fold_left
                  (fun acc p -> Float.max acc (f p))
                  0.0
                  (independent :: outcome.Allocator.equal_split :: frontier)
              in
              let ref_makespan = 1.01 *. worst (fun (p : Allocator.point) -> p.Allocator.makespan)
              and ref_dollars = 1.01 *. worst (fun (p : Allocator.point) -> p.Allocator.dollars) in
              let hv points = Allocator.hypervolume ~ref_makespan ~ref_dollars points in
              let hv_frontier = hv frontier and hv_independent = hv [ independent ] in
              rows :=
                [
                  string_of_int n;
                  want_name;
                  Allocator.mode_name outcome.Allocator.mode;
                  string_of_int jobs;
                  string_of_int (List.length frontier);
                  f best_makespan;
                  f independent.Allocator.makespan;
                  f best_dollars;
                  f independent.Allocator.dollars;
                  (if hv_independent > 0.0 then f (hv_frontier /. hv_independent)
                   else "inf");
                  f (1000.0 *. (build_s +. search_s));
                  (if beats then "yes" else "NO");
                ]
                :: !rows)
            [ (Allocator.Want_exact, "exact"); (Allocator.Want_randomized, "rand") ])
        [ 1; 4; 8 ])
    [ 8; 32; 128 ];
  Table.print
    ~title:
      "Workload allocator: global budget 3N across N concurrent queries \
       (frontier search vs independent per-query planning)"
    ~headers:
      [
        "N"; "want"; "ran"; "jobs"; "frontier"; "best mk s"; "indep mk s";
        "best $"; "indep $"; "hv ratio"; "ms"; "beats";
      ]
    (List.rev !rows);
  note "'ran' is the search that actually executed (exact falls back to the \
        randomized search when a DP layer overflows its state bound)";
  note "surfaces and frontiers are asserted bit-identical at 1/4/8 domains";
  note "acceptance: every row beats independent per-query planning on total \
        dollars or makespan ('beats' reads yes)"

let figures =
  [
    ("fig1", "queue-time/run-time CDF", fig1);
    ("fig2", "default vs joint optimization, Hive & Spark", fig2);
    ("fig3", "SMJ vs BHJ over resources", fig3);
    ("fig4", "switch points over data and resources", fig4);
    ("fig5", "join orders over resources", fig5);
    ("fig6", "monetary cost over resources", fig6);
    ("fig7", "monetary switch points", fig7);
    ("fig9", "switch-point frontier, Hive & Spark", fig9);
    ("fig10", "default decision trees", fig10);
    ("fig11", "RAQO decision trees", fig11);
    ("fig12", "planner runtimes QO vs RAQO", fig12);
    ("fig13", "hill climbing vs brute force", fig13);
    ("fig14", "resource-plan caching", fig14);
    ("fig15a", "scalability with schema size", fig15a);
    ("fig15b", "scalability with cluster size", fig15b ~full:false);
    ("bushy", "ablation: left-deep vs bushy vs randomized", ablation_bushy);
    ("sched", "ablation: DAG-scheduler policies under a capacity dip", ablation_sched);
    ("cacheidx", "ablation: plan-cache index backends", ablation_cacheidx);
    ("robust", "ablation: robust vs nominal plans", ablation_robust);
    ("pareto", "ablation: time-money Pareto front", ablation_pareto);
    ("workload", "workload-scale RAQO vs the two-step default", ablation_workload);
    ("tasksim", "ablation: task-level vs analytical stage model", ablation_tasksim);
    ("pruning", "ablation: branch-and-bound pruning in the DP", ablation_pruning);
    ("par", "parallel planning: domain pools and the memoizing coster", par_bench);
    ("scaling", "planner scaling: interned mask core and pruned resource search", scaling);
    ("kernel", "compiled cost kernels vs the scalar model", kernel_bench);
    ("obs", "observability overhead: instrumented hot paths off vs on", obs_bench);
    ("memo", "parallel shared-memo DPsub: domains over interned masks", memo_bench);
    ("adaptive", "runtime adaptive re-optimization under estimation error", adaptive_bench);
    ("serve", "resident server: sustained throughput, latency, and load shedding", serve_bench);
    ("rewrite", "logical rewrite memo: search shrinking before enumeration", rewrite_bench);
    ("alloc", "workload allocator: Pareto frontier vs independent planning", alloc_bench);
  ]

(* Pull "--json FILE" out of the argument list, leaving figure names. *)
let rec split_json_arg = function
  | [] -> (None, [])
  | "--json" :: path :: rest ->
      let _, names = split_json_arg rest in
      (Some path, names)
  | [ "--json" ] ->
      prerr_endline "bench: --json needs a file argument";
      exit 2
  | arg :: rest ->
      let json, names = split_json_arg rest in
      (json, arg :: names)

(* The sections that exist only as argument names, not in [figures]. *)
let special_sections =
  [
    ("all", "every figure section above (the default with no arguments)");
    ("micro", "Bechamel micro-benchmarks");
    ("fig15b-full", "Figure 15(b) with 1-container allocation steps (slow)");
  ]

let list_sections oc =
  List.iter (fun (n, d, _) -> Printf.fprintf oc "  %-12s %s\n" n d) figures;
  List.iter (fun (n, d) -> Printf.fprintf oc "  %-12s %s\n" n d) special_sections;
  Printf.fprintf oc "  %-12s %s\n" "--json FILE"
    "write per-figure wall times (and labeled samples) as JSON"

let () =
  let json_path, args = split_json_arg (List.tl (Array.to_list Sys.argv)) in
  (* Refuse unknown section names outright: a typo that silently skipped a
     section used to produce a truncated BENCH_PRn.json that the schema gate
     accepted. *)
  let known name =
    List.exists (fun (n, _, _) -> n = name) figures
    || List.mem_assoc name special_sections
  in
  (match List.filter (fun a -> not (known a)) args with
  | [] -> ()
  | unknown ->
      Printf.eprintf "bench: unknown section%s: %s\navailable sections:\n"
        (if List.length unknown = 1 then "" else "s")
        (String.concat " " unknown);
      list_sections stderr;
      exit 2);
  let run_all = args = [] || List.mem "all" args in
  List.iter
    (fun (name, _desc, run) ->
      if run_all || List.mem name args then begin
        let _, s = Timer.time run in
        sample name s;
        Printf.printf "  [%s completed in %.1f s]\n%!" name s
      end)
    figures;
  if List.mem "fig15b-full" args then begin
    let _, s = Timer.time (fig15b ~full:true) in
    sample "fig15b-full" s
  end;
  if List.mem "micro" args then begin
    let _, s = Timer.time micro in
    sample "micro" s
  end;
  Option.iter write_json json_path
