(* raqo: command-line front end for the RAQO optimizer.

   Subcommands:
     plan    — optimize a TPC-H-schema query jointly over plans and resources
     switch  — locate the BHJ/SMJ switch point for a resource configuration
     tree    — print the default or trained join-implementation decision tree
     queue   — simulate a contended cluster queue and print wait statistics
     allocate — split a global container budget across concurrent queries
                on the Pareto frontier of makespan, dollars, SLO violations
     fuzz    — differential fuzzing of the planners against each other
     trace   — run a traced joint planning and summarize its spans
     metrics — run the evaluation queries and dump the metrics registry
     serve   — resident optimizer: line-delimited JSON requests over stdio/TCP

   Unknown subcommands are rejected up front with the command listing and
   exit code 2 (same contract as the bench runner's unknown sections). *)

open Cmdliner

(* --trace FILE: shared across the planning subcommands. Turns the
   observability layer on for the whole run and dumps the span rings as
   Chrome trace_event JSON on the way out. *)
let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Enable observability and write a Chrome trace_event JSON trace of the run \
               to $(docv) (open it in chrome://tracing or https://ui.perfetto.dev).")

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      Raqo_obs.Obs.set_enabled true;
      let result = f () in
      Raqo_obs.Export.write_chrome_trace path;
      Printf.printf "trace: %d spans written to %s\n" (Raqo_obs.Trace.recorded ()) path;
      result

let engine_of_string = function
  | "hive" -> Ok Raqo_execsim.Engine.hive
  | "spark" -> Ok Raqo_execsim.Engine.spark
  | s -> Error (`Msg (Printf.sprintf "unknown engine %S (expected hive or spark)" s))

let engine_conv = Arg.conv (engine_of_string, fun fmt e -> Raqo_execsim.Engine.pp fmt e)

let engine_arg =
  Arg.(value & opt engine_conv Raqo_execsim.Engine.hive & info [ "engine" ] ~docv:"ENGINE"
         ~doc:"Execution engine profile: hive or spark.")

let containers_arg =
  Arg.(value & opt int 100 & info [ "max-containers" ] ~docv:"N"
         ~doc:"Cluster condition: maximum concurrent containers.")

let memory_arg =
  Arg.(value & opt float 10.0 & info [ "max-gb" ] ~docv:"GB"
         ~doc:"Cluster condition: maximum container memory in GB.")

let conditions max_containers max_gb =
  Raqo_cluster.Conditions.make ~max_containers ~max_gb ()

let jobs_opt_arg =
  Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
         ~doc:"Planning domains. With the randomized planner, restarts run on a pool of \
               $(docv) domains (results are identical to --jobs 1 for a fixed seed); with \
               the dpsub planner, DP levels fan out over a shared memo table (also \
               bit-identical at any pool size); with workload batches, queries are \
               planned concurrently.")

let no_kernel_arg =
  Arg.(value & flag & info [ "no-kernel" ]
         ~doc:"Disable compiled cost kernels: resource search evaluates the scalar cost \
               model per configuration instead of sweeping a precompiled grid. Plans, \
               costs, and counters are identical either way (the kernels are bit-exact); \
               this is a debugging escape hatch.")

let no_rewrite_arg =
  Arg.(value & flag & info [ "no-rewrite" ]
         ~doc:"Disable the logical rewrite pass (predicate pushdown, FK/constant relation \
               absorption, projection narrowing) that shrinks the join set before \
               enumeration. Rewritten plans are never costlier than unrewritten ones; \
               this flag exists to compare against the pre-rewrite search.")

let print_rewrite_report (r : Raqo_rewrite.Rewrite.report) =
  if r.Raqo_rewrite.Rewrite.changed then begin
    Printf.printf "rewrite:";
    List.iter
      (fun (rule, n) -> Printf.printf " %s=%d" rule n)
      (Raqo_rewrite.Rewrite.fired r);
    Printf.printf " (relations removed: %d)\n" r.Raqo_rewrite.Rewrite.removed;
    List.iter
      (fun (gone, into) -> Printf.printf "  absorbed %s into %s\n" gone into)
      r.Raqo_rewrite.Rewrite.absorbed
  end
  else print_endline "rewrite: no rules fired"

(* --adaptive / --est-error: runtime adaptive re-optimization. *)

let est_error_conv =
  Arg.conv
    ( (fun s ->
        match Raqo_execsim.Estimation_error.of_string s with
        | Ok t -> Ok t
        | Error m -> Error (`Msg m)),
      fun fmt t -> Format.pp_print_string fmt (Raqo_execsim.Estimation_error.to_string t) )

let est_error_arg =
  Arg.(value & opt est_error_conv Raqo_execsim.Estimation_error.exact
       & info [ "est-error" ] ~docv:"DIST:SEED"
           ~doc:"Seeded cardinality-estimation error the planner sees (the simulator keeps \
                 the truth): none (default), or lognormal, skew, correlated as \
                 DIST:SEED or DIST=MAG:SEED — e.g. lognormal:42, skew=0.5:7.")

let adaptive_arg =
  Arg.(value & flag & info [ "adaptive" ]
         ~doc:"Execute the plan adaptively: materialize at stage boundaries, observe true \
               intermediate sizes, and re-plan the remaining join graph whenever an \
               observation contradicts its estimate (see --est-error). Prints the static \
               and adaptive simulated outcomes side by side; adaptive is never worse.")

let print_adaptive_report (r : Raqo_adaptive.Adaptive_exec.report) =
  let module A = Raqo_adaptive.Adaptive_exec in
  Printf.printf "static plan (from estimates): %s\n"
    (Format.asprintf "%a" A.pp_outcome r.A.static_outcome);
  Printf.printf "adaptive execution:           %s\n"
    (Format.asprintf "%a" A.pp_outcome r.A.adaptive_outcome);
  Printf.printf "re-plans: %d  switches: %d  failed re-plans: %d  switch cost: %.2f s\n"
    r.A.replans r.A.switches r.A.failed_replans r.A.replan_cost_s;
  (match (r.A.static_outcome, r.A.adaptive_outcome) with
  | A.Done { seconds = s; _ }, A.Done { seconds = a; _ } when s > 0.0 && a < s ->
      Printf.printf "adaptive saved %.1f s (%.1f%%)\n" (s -. a) (100.0 *. (s -. a) /. s)
  | A.Oom _, A.Done _ -> print_endline "adaptive rescued a run the static plan fails (OOM)"
  | _ -> ());
  print_endline "stages (adaptive run):";
  List.iter
    (fun (s : A.stage) ->
      Printf.printf "  %2d  %-4s %-12s %8.1f s  est %11.3e rows, observed %11.3e%s%s\n"
        s.A.index
        (Raqo_plan.Join_impl.to_string s.A.impl)
        (Raqo_cluster.Resources.to_string s.A.resources)
        s.A.seconds s.A.est_rows s.A.observed_rows
        (if s.A.replanned then "  [re-planned" else "")
        (if s.A.switched then ", switched]" else if s.A.replanned then "]" else ""))
    r.A.stages

(* ------------------------------------------------------------------ plan *)

let plan_cmd =
  let relations_arg =
    Arg.(value & pos_all string Raqo_catalog.Tpch.q3 & info [] ~docv:"RELATION"
           ~doc:"TPC-H relations to join (default: customer orders lineitem).")
  in
  let planner_arg =
    Arg.(value
         & opt
             (enum [ ("selinger", `Selinger); ("randomized", `Randomized); ("dpsub", `Dpsub) ])
             `Selinger
         & info [ "planner" ] ~docv:"PLANNER" ~doc:"Join-order planner.")
  in
  let mode_arg =
    Arg.(value & opt (enum [ ("raqo", `Raqo); ("qo", `Qo) ]) `Raqo & info [ "mode" ]
           ~docv:"MODE"
           ~doc:"raqo = joint query and resource optimization; qo = plan only, at the \
                 fixed resources given by --containers/--gb.")
  in
  let fixed_containers =
    Arg.(value & opt int 10 & info [ "containers" ] ~docv:"N"
           ~doc:"Fixed container count for --mode qo.")
  in
  let fixed_gb =
    Arg.(value & opt float 5.0 & info [ "gb" ] ~docv:"GB"
           ~doc:"Fixed container memory for --mode qo.")
  in
  let sql_arg =
    Arg.(value & opt (some string) None & info [ "sql" ] ~docv:"SQL"
           ~doc:"Optimize a SQL query against the TPC-H catalog instead of a relation list, \
                 e.g. \"select * from orders, lineitem where o_orderkey = l_orderkey and \
                 o_totalprice < 172000\".")
  in
  let run relations planner mode max_containers max_gb nc gb sql jobs no_kernel no_rewrite
      engine adaptive est_error trace =
    with_trace trace @@ fun () ->
    let schema = Raqo_catalog.Tpch.schema () in
    let model = Raqo.Models.hive () in
    let kind =
      match planner with
      | `Selinger -> Raqo.Cost_based.Selinger
      | `Randomized -> Raqo.Cost_based.Fast_randomized
      | `Dpsub -> Raqo.Cost_based.Bushy_dp
    in
    let conditions = conditions max_containers max_gb in
    match sql with
    | Some sql -> begin
        let plan_sql pool =
          Raqo.Sql_frontend.plan ~kind ~kernel:(not no_kernel) ~rewrite:(not no_rewrite)
            ?pool
            ?adaptive:(if adaptive then Some (engine, est_error) else None)
            ~model ~conditions ~schema ~columns:(Raqo_catalog.Tpch.columns ()) sql
        in
        match
          if jobs > 1 then
            Raqo_par.Pool.with_pool ~jobs (fun pool -> plan_sql (Some pool))
          else plan_sql None
        with
        | Ok planned ->
            List.iter
              (fun (table, s) ->
                if s < 1.0 then
                  Printf.printf "filter selectivity on %s: %.4f\n" table s)
              planned.Raqo.Sql_frontend.analyzed.Raqo_sql.Resolver.table_selectivity;
            (match planned.Raqo.Sql_frontend.rewrite with
            | Some r when r.Raqo_rewrite.Rewrite.changed -> print_rewrite_report r
            | _ -> ());
            print_string
              (Raqo.Explain.joint model
                 planned.Raqo.Sql_frontend.analyzed.Raqo_sql.Resolver.schema
                 planned.Raqo.Sql_frontend.plan);
            (match planned.Raqo.Sql_frontend.adaptive with
            | Some report ->
                print_newline ();
                print_adaptive_report report
            | None -> ())
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
      end
    | None -> begin
        match Raqo_catalog.Query.make ~name:"cli" schema relations with
        | exception Invalid_argument msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
        | _ when adaptive -> begin
            (* The TPC-H catalog is the ground truth; the planner sees it
               only through the requested estimation error. *)
            let estimates = Raqo_execsim.Estimation_error.perturb est_error schema in
            let opt =
              Raqo.Cost_based.create ~kind ~kernel:(not no_kernel)
                ~rewrite:(not no_rewrite) ~model ~conditions estimates
            in
            let result =
              if jobs > 1 then
                Raqo_par.Pool.with_pool ~jobs (fun pool ->
                    Raqo.Cost_based.optimize_adaptive ~pool ~engine ~truth:schema opt
                      relations)
              else Raqo.Cost_based.optimize_adaptive ~engine ~truth:schema opt relations
            in
            match result with
            | Some (report, _est_cost) ->
                print_string
                  (Raqo.Explain.joint model estimates
                     report.Raqo_adaptive.Adaptive_exec.static_plan);
                print_newline ();
                print_adaptive_report report
            | None ->
                print_endline "no feasible plan";
                exit 2
          end
        | _ ->
            let opt =
              Raqo.Cost_based.create ~kind ~kernel:(not no_kernel)
                ~rewrite:(not no_rewrite) ~model ~conditions schema
            in
            let result =
              match mode with
              | `Raqo when jobs > 1 ->
                  Raqo_par.Pool.with_pool ~jobs (fun pool ->
                      Raqo.Cost_based.optimize_par opt pool relations)
              | `Raqo -> Raqo.Cost_based.optimize opt relations
              | `Qo ->
                  Raqo.Cost_based.optimize_qo opt
                    ~resources:(Raqo_cluster.Resources.make ~containers:nc ~container_gb:gb)
                    relations
            in
            (match result with
            | Some (plan, _) ->
                print_string (Raqo.Explain.joint model schema plan);
                let k = Raqo.Cost_based.counters opt in
                Printf.printf "resource configurations explored: %d (cache hits %d)\n"
                  (Raqo_resource.Counters.cost_evaluations k)
                  (Raqo_resource.Counters.cache_hits k)
            | None ->
                print_endline "no feasible plan";
                exit 2)
      end
  in
  let term =
    Term.(const run $ relations_arg $ planner_arg $ mode_arg $ containers_arg $ memory_arg
          $ fixed_containers $ fixed_gb $ sql_arg $ jobs_opt_arg $ no_kernel_arg
          $ no_rewrite_arg $ engine_arg $ adaptive_arg $ est_error_arg $ trace_arg)
  in
  Cmd.v (Cmd.info "plan" ~doc:"Jointly optimize a TPC-H query's plan and resources") term

(* ---------------------------------------------------------------- switch *)

let switch_cmd =
  let nc_arg = Arg.(value & opt int 10 & info [ "containers" ] ~docv:"N" ~doc:"Containers.") in
  let gb_arg = Arg.(value & opt float 3.0 & info [ "gb" ] ~docv:"GB" ~doc:"Container memory.") in
  let big_arg = Arg.(value & opt float 77.0 & info [ "big-gb" ] ~docv:"GB" ~doc:"Probe-side size.") in
  let run engine nc gb big =
    let resources = Raqo_cluster.Resources.make ~containers:nc ~container_gb:gb in
    match
      Raqo_workload.Switch_points.find engine ~big_gb:big ~resources ~lo:0.05 ~hi:14.0 ()
    with
    | Some s ->
        Printf.printf
          "BHJ/SMJ switch point at %d x %.1f GB (probe %.0f GB): %.2f GB build side\n" nc gb
          big s
    | None -> print_endline "no switch point in [0.05, 14] GB (one implementation dominates)"
  in
  Cmd.v
    (Cmd.info "switch" ~doc:"Locate the BHJ/SMJ switch point for a resource configuration")
    Term.(const run $ engine_arg $ nc_arg $ gb_arg $ big_arg)

(* ------------------------------------------------------------------ tree *)

let tree_cmd =
  let kind_arg =
    Arg.(value & opt (enum [ ("default", `Default); ("raqo", `Raqo) ]) `Raqo
           & info [ "kind" ] ~doc:"default = the engine's stock rule; raqo = trained tree.")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of text.")
  in
  let run engine kind dot =
    let tree =
      match kind with
      | `Default -> Raqo.Join_dt.default_tree engine
      | `Raqo -> Raqo.Join_dt.train ~prune:true engine ~big_gb:77.0
    in
    if dot then
      print_string
        (Raqo_dtree.Tree.to_dot
           ~feature_names:Raqo_workload.Profile_runs.dtree_feature_names
           ~label_names:Raqo_workload.Profile_runs.dtree_labels tree)
    else print_string (Raqo.Join_dt.render tree)
  in
  Cmd.v
    (Cmd.info "tree" ~doc:"Print a join-implementation decision tree (paper Figs 10/11)")
    Term.(const run $ engine_arg $ kind_arg $ dot_arg)

(* ---------------------------------------------------------------- pareto *)

let relations_pos =
  Arg.(value & pos_all string Raqo_catalog.Tpch.q3 & info [] ~docv:"RELATION"
         ~doc:"TPC-H relations to join (default: customer orders lineitem).")

let pareto_cmd =
  let run relations max_containers max_gb no_kernel =
    let schema = Raqo_catalog.Tpch.schema () in
    let opt =
      Raqo.Cost_based.create ~kind:Raqo.Cost_based.Fast_randomized
        ~kernel:(not no_kernel) ~model:(Raqo.Models.hive ())
        ~conditions:(conditions max_containers max_gb) schema
    in
    let front = Raqo.Pareto.front opt relations in
    print_string (Raqo.Pareto.render front);
    print_newline ();
    match Raqo.Pareto.knee front with
    | Some k ->
        Format.printf "knee: %a (est cost %.1f, $%.4f)\n" Raqo_plan.Join_tree.pp_joint
          k.Raqo.Use_cases.plan k.Raqo.Use_cases.est_cost k.Raqo.Use_cases.est_money
    | None -> print_endline "empty front"
  in
  Cmd.v
    (Cmd.info "pareto" ~doc:"Print the time-money Pareto front of joint plans")
    Term.(const run $ relations_pos $ containers_arg $ memory_arg $ no_kernel_arg)

(* ---------------------------------------------------------------- robust *)

let robust_cmd =
  let spike_containers =
    Arg.(value & opt int 10 & info [ "spike-containers" ] ~docv:"N"
           ~doc:"Containers left during the spike scenario.")
  in
  let spike_gb =
    Arg.(value & opt float 3.0 & info [ "spike-gb" ] ~docv:"GB"
           ~doc:"Container memory left during the spike scenario.")
  in
  let run relations max_containers max_gb sc sgb no_kernel =
    let schema = Raqo_catalog.Tpch.schema () in
    let normal = conditions max_containers max_gb in
    let spiked = conditions sc sgb in
    let opt =
      Raqo.Cost_based.create ~kind:Raqo.Cost_based.Fast_randomized
        ~kernel:(not no_kernel) ~model:(Raqo.Models.hive ()) ~conditions:normal schema
    in
    match Raqo.Robust.optimize opt ~scenarios:[ normal; spiked ] relations with
    | Some choice ->
        Printf.printf "most resilient plan shape (worst-case cost %.1f):\n"
          choice.Raqo.Robust.score;
        List.iter
          (fun (cond, plan, cost) ->
            Format.printf "  under [%a]:\n    %a  (cost %.1f)\n" Raqo_cluster.Conditions.pp
              cond Raqo_plan.Join_tree.pp_joint plan cost)
          choice.Raqo.Robust.per_scenario
    | None ->
        print_endline "no plan shape is feasible in every scenario";
        exit 2
  in
  Cmd.v
    (Cmd.info "robust"
       ~doc:"Pick the plan shape most resilient to a cluster-condition spike")
    Term.(const run $ relations_pos $ containers_arg $ memory_arg $ spike_containers
          $ spike_gb $ no_kernel_arg)

(* ----------------------------------------------------------------- queue *)

let queue_cmd =
  let capacity_arg =
    Arg.(value & opt int 90 & info [ "capacity" ] ~docv:"N" ~doc:"Cluster containers.")
  in
  let jobs_arg = Arg.(value & opt int 5000 & info [ "jobs" ] ~docv:"N" ~doc:"Jobs to simulate.") in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let run capacity jobs seed =
    let rng = Raqo_util.Rng.create seed in
    let w = { Raqo_cluster.Queue_sim.default_workload with Raqo_cluster.Queue_sim.jobs } in
    let outcomes =
      Raqo_cluster.Queue_sim.run ~capacity (Raqo_cluster.Queue_sim.generate rng w ~capacity)
    in
    let ratios = Raqo_cluster.Queue_sim.ratios outcomes in
    Printf.printf "jobs: %d, cluster capacity: %d containers\n" jobs capacity;
    List.iter
      (fun t ->
        Printf.printf "  queue/run ratio >= %-6g : %5.1f%% of jobs\n" t
          (100.0 *. Raqo_util.Stats.fraction_at_least ratios t))
      [ 0.01; 0.1; 1.0; 4.0; 10.0; 100.0 ];
    Printf.printf "median ratio: %.2f\n" (Raqo_util.Stats.median ratios)
  in
  Cmd.v
    (Cmd.info "queue" ~doc:"Simulate a contended cluster queue (paper Fig 1)")
    Term.(const run $ capacity_arg $ jobs_arg $ seed_arg)

(* ------------------------------------------------------------------ fuzz *)

let fuzz_cmd =
  let seeds_arg =
    Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to fuzz.")
  in
  let start_arg =
    Arg.(value & opt int 1 & info [ "start" ] ~docv:"SEED"
           ~doc:"First seed (seeds $(docv) .. $(docv)+N-1 are checked).")
  in
  let tables_arg =
    Arg.(value & opt int Raqo_verify.Oracle.default_tables & info [ "tables" ] ~docv:"N"
           ~doc:"Tables in each random schema.")
  in
  let joins_arg =
    Arg.(value & opt int Raqo_verify.Oracle.default_joins & info [ "joins" ] ~docv:"N"
           ~doc:"Joins per random query (the query has at most $(docv)+1 relations).")
  in
  let fuzz_jobs_arg =
    Arg.(value & opt int 4 & info [ "jobs" ] ~docv:"N"
           ~doc:"Maximum pool size for the parallel-vs-sequential oracle arms; pool sizes \
                 in {2, 4, $(docv)} up to $(docv) are exercised (1 disables them).")
  in
  let fuzz_adaptive_arg =
    Arg.(value & flag & info [ "adaptive" ]
           ~doc:"Fuzz the runtime-adaptive executor instead: for each seed, plan from \
                 error-perturbed estimates across every error distribution and check the \
                 zero-error-identity and never-worse oracles; failures shrink to a minimal \
                 query plus a single failing DIST=MAG:SEED error pattern.")
  in
  let run seeds start tables joins max_jobs adaptive trace =
    let jobs =
      List.sort_uniq compare (List.filter (fun j -> j >= 2 && j <= max_jobs) [ 2; 4; max_jobs ])
    in
    (* Compute the exit code inside [with_trace] so the trace is flushed
       before the process exits. *)
    let code =
      with_trace trace (fun () ->
          Raqo_verify.Fuzz.main ~tables ~joins ~jobs ~adaptive ~start ~seeds ())
    in
    exit code
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz the planners against the invariant checker and cross-planner oracle, \
             shrinking any failure to a minimal printed repro")
    Term.(const run $ seeds_arg $ start_arg $ tables_arg $ joins_arg $ fuzz_jobs_arg
          $ fuzz_adaptive_arg $ trace_arg)

(* ----------------------------------------------------------------- trace *)

let trace_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Also write the Chrome trace_event JSON to $(docv).")
  in
  let planner_arg =
    Arg.(value
         & opt
             (enum [ ("selinger", `Selinger); ("randomized", `Randomized); ("dpsub", `Dpsub) ])
             `Selinger
         & info [ "planner" ] ~docv:"PLANNER" ~doc:"Join-order planner.")
  in
  let random_arg =
    Arg.(value & opt (some int) None & info [ "random" ] ~docv:"N"
           ~doc:"Ignore the RELATION arguments and plan a seeded random $(docv)-relation \
                 schema (the same generator the fuzz and memo benches use) — TPC-H tops \
                 out at 8 relations, so this is how to watch the dpsub levels fan out on \
                 bigger queries.")
  in
  let run relations planner random max_containers max_gb jobs no_kernel no_rewrite engine
      adaptive est_error out =
    Raqo_obs.Obs.set_enabled true;
    let kind =
      match planner with
      | `Selinger -> Raqo.Cost_based.Selinger
      | `Randomized -> Raqo.Cost_based.Fast_randomized
      | `Dpsub -> Raqo.Cost_based.Bushy_dp
    in
    (* Brute-force resource search and the paper-space model so the trace
       shows the full nesting: planner span -> resource-search spans ->
       kernel sweeps. (The trained models are extended-space, for which
       [Kernel.make] refuses to compile; see kernel.mli.) *)
    let model = Raqo_cost.Op_cost.with_floor 0.01 Raqo_cost.Op_cost.paper in
    let truth, relations =
      match random with
      | Some n ->
          let rng = Raqo_util.Rng.create (600 + n) in
          let s = Raqo_catalog.Random_schema.generate rng ~tables:n in
          (s, Raqo_catalog.Schema.relation_names s)
      | None -> (Raqo_catalog.Tpch.schema (), relations)
    in
    (* Under --adaptive the planner sees only the perturbed estimates; the
       adaptive executor's re-plan spans then join the summary table. *)
    let schema =
      if adaptive then Raqo_execsim.Estimation_error.perturb est_error truth else truth
    in
    (* Random schemas carry no SQL projections, so give the rewriter the
       count-star hint (nothing projected): FK-leaf and constant-bound
       absorption plus width narrowing all become applicable, which is
       exactly what the rewrite walkthrough wants to watch. TPC-H relation
       lists keep the no-op hints — every relation counts as referenced. *)
    let rewrite_hints =
      match random with
      | Some _ -> { Raqo_rewrite.Rewrite.filters = []; referenced = Some [] }
      | None -> Raqo_rewrite.Rewrite.no_hints
    in
    let opt =
      Raqo.Cost_based.create ~kind
        ~resource_strategy:Raqo_resource.Resource_planner.Brute_force
        ~kernel:(not no_kernel) ~rewrite:(not no_rewrite) ~rewrite_hints ~model
        ~conditions:(conditions max_containers max_gb)
        schema
    in
    let result =
      if jobs > 1 then
        Raqo_par.Pool.with_pool ~jobs (fun pool ->
            Raqo.Cost_based.optimize_par opt pool relations)
      else Raqo.Cost_based.optimize opt relations
    in
    match result with
    | None ->
        print_endline "no feasible plan";
        exit 2
    | Some (plan, cost) ->
        Printf.printf "joint plan for [%s]: est cost %.3g\n" (String.concat " " relations)
          cost;
        (match Raqo.Cost_based.rewrite_report opt with
        | Some r -> print_rewrite_report r
        | None -> ());
        print_newline ();
        if adaptive then begin
          let report =
            Raqo_adaptive.Adaptive_exec.run ~engine ~model
              ~conditions:(conditions max_containers max_gb)
              ~truth ~estimates:schema plan
          in
          print_adaptive_report report;
          print_newline ()
        end;
        print_string (Raqo_obs.Export.span_summary (Raqo_obs.Trace.events ()));
        (match out with
        | Some path ->
            Raqo_obs.Export.write_chrome_trace path;
            Printf.printf "\ntrace: %d spans written to %s\n" (Raqo_obs.Trace.recorded ())
              path
        | None -> ())
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one traced joint planning and print a per-span summary table")
    Term.(const run $ relations_pos $ planner_arg $ random_arg $ containers_arg
          $ memory_arg $ jobs_opt_arg $ no_kernel_arg $ no_rewrite_arg $ engine_arg
          $ adaptive_arg $ est_error_arg $ out_arg)

(* --------------------------------------------------------------- metrics *)

let metrics_cmd =
  let prometheus_arg =
    Arg.(value & flag & info [ "prometheus" ]
           ~doc:"Emit Prometheus text exposition instead of a table.")
  in
  let run max_containers max_gb no_kernel prometheus =
    Raqo_obs.Obs.set_enabled true;
    (* Drive every instrumented layer once: plan each TPC-H evaluation query
       jointly, sharing one optimizer so the plan cache sees reuse. The
       paper-space model keeps the kernel path live (kernel counters would
       read zero under the extended-space trained models). *)
    let model = Raqo_cost.Op_cost.with_floor 0.01 Raqo_cost.Op_cost.paper in
    let opt =
      Raqo.Cost_based.create
        ~resource_strategy:Raqo_resource.Resource_planner.Brute_force
        ~kernel:(not no_kernel) ~model
        ~conditions:(conditions max_containers max_gb)
        (Raqo_catalog.Tpch.schema ())
    in
    List.iter
      (fun (_, relations) -> ignore (Raqo.Cost_based.optimize opt relations))
      Raqo_catalog.Tpch.evaluation_queries;
    (* Also drive the resident server against the process-wide registry, so
       the dump covers the serve path: shared-plan-cache hits/misses/
       evictions and the admission counters. A tiny queue forces a few typed
       rejections; the drained requests come from the standard trace mix. *)
    let server_config =
      {
        Raqo_server.Engine.default_config with
        jobs = 1;
        queue_capacity = 8;
        kernel = not no_kernel;
        conditions = conditions max_containers max_gb;
      }
    in
    let server =
      Raqo_server.Engine.create ~config:server_config
        ~registry:Raqo_obs.Metrics.default ()
    in
    let requests = List.map snd (Raqo_server.Trace_gen.generate ~requests:12 ()) in
    List.iter (fun req -> ignore (Raqo_server.Engine.submit server req)) requests;
    ignore (Raqo_server.Engine.drain server);
    Raqo_server.Engine.shutdown server;
    if prometheus then print_string (Raqo_obs.Export.prometheus ())
    else begin
      Printf.printf
        "metrics after planning %d TPC-H evaluation queries and serving %d requests:\n\n"
        (List.length Raqo_catalog.Tpch.evaluation_queries)
        (List.length requests);
      print_string (Raqo_obs.Export.metrics_table ())
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Plan the TPC-H evaluation queries with observability on and dump the \
             metrics registry")
    Term.(const run $ containers_arg $ memory_arg $ no_kernel_arg $ prometheus_arg)

(* ----------------------------------------------------------------- serve *)

let serve_cmd =
  let port_arg =
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT"
           ~doc:"Listen on 127.0.0.1:$(docv) (TCP, one connection at a time; 0 picks an \
                 ephemeral port, logged to stderr). Default: serve stdin/stdout.")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue-capacity" ] ~docv:"N"
           ~doc:"Admission bound: requests beyond $(docv) pending are rejected with a \
                 typed 'overloaded' response instead of queueing unboundedly.")
  in
  let batch_arg =
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"N"
           ~doc:"Requests planned concurrently per wave on the domain pool.")
  in
  let cache_capacity_arg =
    Arg.(value & opt int 4096 & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Shared plan-cache entry bound (LRU, split across shards); 0 = unbounded.")
  in
  let shards_arg =
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N"
           ~doc:"Stripe count of the shared plan cache.")
  in
  let max_connections_arg =
    Arg.(value & opt (some int) None & info [ "max-connections" ] ~docv:"N"
           ~doc:"With --port: exit after serving $(docv) connections (smoke tests).")
  in
  let tenant_quota_arg =
    Arg.(value & opt (some int) None & info [ "tenant-quota" ] ~docv:"N"
           ~doc:"Per-tenant queue-depth bound: a tenant with $(docv) requests already \
                 pending gets a typed 'overloaded' rejection naming it, even while the \
                 global queue has room. Default: no per-tenant quota.")
  in
  let gen_trace_arg =
    Arg.(value & opt (some int) None & info [ "gen-trace" ] ~docv:"N"
           ~doc:"Instead of serving, print $(docv) heavy-tailed trace requests (one JSON \
                 per line, ready to pipe back into 'raqo serve') and exit.")
  in
  let arrival_rate_arg =
    Arg.(value & opt float 2.0 & info [ "arrival-rate" ] ~docv:"R"
           ~doc:"With --gen-trace: Poisson arrival rate (requests/second) of the trace.")
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Trace generator seed.")
  in
  let oneshot_arg =
    Arg.(value & flag & info [ "oneshot" ]
           ~doc:"Plan each stdin request on a fresh single-job engine (cold cache, fresh \
                 registry) — the reference the smoke test diffs served responses against; \
                 byte-identical answers are the contract.")
  in
  let run port jobs queue_capacity tenant_quota batch cache_capacity shards no_kernel
      no_rewrite max_containers max_gb max_connections gen_trace arrival_rate seed
      oneshot trace =
    match gen_trace with
    | Some n ->
        List.iter
          (fun (_arrival, req) ->
            print_endline (Raqo_server.Protocol.request_to_json req))
          (Raqo_server.Trace_gen.generate ~seed ~arrival_rate ~requests:n ())
    | None ->
        let config =
          {
            Raqo_server.Engine.jobs;
            queue_capacity;
            tenant_quota;
            batch;
            cache_capacity = (if cache_capacity <= 0 then None else Some cache_capacity);
            cache_shards = shards;
            kernel = not no_kernel;
            rewrite = not no_rewrite;
            scale_factor = 100.0;
            conditions = conditions max_containers max_gb;
          }
        in
        if oneshot then begin
          let rec loop () =
            match In_channel.input_line In_channel.stdin with
            | None -> ()
            | Some line when String.trim line = "" -> loop ()
            | Some line ->
                let response =
                  match Raqo_server.Protocol.parse_line line with
                  | Error message ->
                      Raqo_server.Protocol.Rejected
                        { id = None; reason = Raqo_server.Protocol.Bad_request; message }
                  | Ok (Raqo_server.Protocol.Health { id }) ->
                      Raqo_server.Engine.oneshot_health ~config ~id ()
                  | Ok (Raqo_server.Protocol.Allocate areq) ->
                      Raqo_server.Engine.oneshot_allocate ~config areq
                  | Ok (Raqo_server.Protocol.Request req) ->
                      Raqo_server.Engine.oneshot ~config req
                in
                print_endline (Raqo_server.Protocol.response_to_json response);
                loop ()
          in
          loop ()
        end
        else
          with_trace trace @@ fun () ->
          let engine = Raqo_server.Engine.create ~config () in
          Fun.protect
            ~finally:(fun () -> Raqo_server.Engine.shutdown engine)
            (fun () ->
              match port with
              | Some port -> Raqo_server.Serve.serve_tcp ?max_connections engine ~port
              | None -> Raqo_server.Serve.serve_stdio engine)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Resident optimizer: plan line-delimited JSON requests over stdio or TCP, \
             with a sharded cross-query plan cache and bounded-queue admission control")
    Term.(const run $ port_arg $ jobs_opt_arg $ queue_arg $ tenant_quota_arg $ batch_arg
          $ cache_capacity_arg $ shards_arg $ no_kernel_arg $ no_rewrite_arg
          $ containers_arg $ memory_arg $ max_connections_arg $ gen_trace_arg
          $ arrival_rate_arg $ seed_arg $ oneshot_arg $ trace_arg)

(* -------------------------------------------------------------- workload *)

let workload_cmd =
  let n_arg = Arg.(value & opt int 100 & info [ "queries" ] ~docv:"N" ~doc:"Queries to simulate.") in
  let seed_arg = Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let run n seed max_containers max_gb jobs trace =
    with_trace trace @@ fun () ->
    let schema = Raqo_catalog.Tpch.schema () in
    let engine = Raqo_execsim.Engine.hive in
    let model = Raqo.Models.hive () in
    let rng = Raqo_util.Rng.create seed in
    let submissions =
      Raqo_scheduler.Workload_runner.generate rng ~n ~arrival_rate:0.002 schema
    in
    let conditions = conditions max_containers max_gb in
    let print_summary name (s : Raqo_scheduler.Workload_runner.summary) =
      Printf.printf
        "%-32s done %3d  makespan %7.1f h  mean lat %8.0f s  p95 %8.0f s  %8.0f TB·s  planning %6.1f ms\n"
        name s.Raqo_scheduler.Workload_runner.completed
        (s.Raqo_scheduler.Workload_runner.makespan /. 3600.0)
        s.Raqo_scheduler.Workload_runner.mean_latency
        s.Raqo_scheduler.Workload_runner.p95_latency
        s.Raqo_scheduler.Workload_runner.total_tb_seconds
        s.Raqo_scheduler.Workload_runner.total_plan_ms
    in
    let show name planner =
      let s, _ = Raqo_scheduler.Workload_runner.run engine schema submissions ~planner in
      print_summary name s
    in
    Printf.printf "%d queries, FIFO on a shared cluster (%s)\n\n" n
      (Format.asprintf "%a" Raqo_cluster.Conditions.pp conditions);
    show "default two-step (10 x 3 GB)"
      (Raqo_scheduler.Workload_runner.default_planner engine
         ~resources:(Raqo_cluster.Resources.make ~containers:10 ~container_gb:3.0));
    show "RAQO"
      (Raqo_scheduler.Workload_runner.raqo_planner ~model ~conditions ());
    if jobs > 1 then
      Raqo_par.Pool.with_pool ~jobs (fun pool ->
          let s, _ =
            Raqo_scheduler.Workload_runner.run_batch ~pool engine ~model ~conditions schema
              submissions
          in
          print_summary (Printf.sprintf "RAQO (batch, %d domains)" jobs) s)
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Compare RAQO vs the two-step default on a query workload")
    Term.(const run $ n_arg $ seed_arg $ containers_arg $ memory_arg $ jobs_opt_arg
          $ trace_arg)

(* -------------------------------------------------------------- allocate *)

let allocate_cmd =
  let module Allocator = Raqo_alloc.Allocator in
  let module Surface = Raqo_alloc.Surface in
  let module Pricing = Raqo_cluster.Pricing in
  let n_arg =
    Arg.(value & opt int 8 & info [ "queries" ] ~docv:"N"
           ~doc:"Concurrent queries in the workload (cycled from the TPC-H evaluation \
                 set).")
  in
  let budget_arg =
    Arg.(value & opt int 24 & info [ "budget" ] ~docv:"N"
           ~doc:"Global container budget the joint allocation must fit in.")
  in
  let seed_arg =
    Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed for arrivals, spot swings, and the randomized search.")
  in
  let objective_arg =
    Arg.(value
         & opt (enum [ ("makespan", `Makespan); ("cost", `Cost); ("balanced", `Balanced) ])
             `Balanced
         & info [ "objective" ] ~docv:"OBJ"
             ~doc:"Which frontier point to recommend: makespan, cost, or balanced. The \
                   whole frontier is always printed.")
  in
  let fairness_arg =
    Arg.(value & opt float 0.0 & info [ "fairness" ] ~docv:"F"
           ~doc:"Weighted-tenant fairness floor in [0,1]: each query is guaranteed \
                 $(docv) times its weight share of the budget; 0 (default) lets the \
                 frontier starve queries freely.")
  in
  let search_arg =
    Arg.(value
         & opt (enum [ ("exact", `Exact); ("randomized", `Randomized); ("auto", `Auto) ])
             `Auto
         & info [ "search" ] ~docv:"MODE"
             ~doc:"Frontier search: exact Pareto DP, seeded randomized local search, or \
                   auto (exact when the DP is small enough).")
  in
  let slo_arg =
    Arg.(value & opt (some float) None & info [ "slo" ] ~docv:"SECONDS"
           ~doc:"Apply a per-query latency SLO: the frontier's third objective counts \
                 queries finishing slower than $(docv). Default: no SLOs.")
  in
  let tenants_arg =
    Arg.(value & opt int 2 & info [ "tenants" ] ~docv:"N"
           ~doc:"Spread queries round-robin over $(docv) tenants t0..t(N-1) with weights \
                 1..N (heavier tenants get larger fairness floors).")
  in
  let arrival_rate_arg =
    Arg.(value & opt float 0.01 & info [ "arrival-rate" ] ~docv:"R"
           ~doc:"Heavy-tailed (Poisson) arrival rate, queries/second.")
  in
  let spot_arg =
    Arg.(value & flag & info [ "spot" ]
           ~doc:"Price GB-time on a seeded spot schedule (piecewise-constant multipliers \
                 in [0.5,2.0) over the first two hours) instead of the flat on-demand \
                 rate — shifting work across price segments now trades makespan against \
                 dollars.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Also write the frontier and baselines as JSON to $(docv).")
  in
  let run n budget seed objective fairness search slo tenants arrival_rate spot json_path
      max_containers max_gb jobs no_kernel trace =
    with_trace trace @@ fun () ->
    (* The argv prescan already rejected out-of-range literals; this backstop
       covers values smuggled past it (e.g. via a response file). *)
    if fairness < 0.0 || fairness > 1.0 then begin
      Printf.eprintf "raqo: invalid value %g for --fairness (want a number in [0,1])\n"
        fairness;
      exit 2
    end;
    if n < 1 || budget < 1 || tenants < 1 || arrival_rate <= 0.0 then begin
      Printf.eprintf
        "raqo: --queries, --budget, --tenants must be >= 1 and --arrival-rate > 0\n";
      exit 2
    end;
    let schema = Raqo_catalog.Tpch.schema () in
    let model = Raqo.Models.hive () in
    let conditions = conditions max_containers max_gb in
    let rng = Raqo_util.Rng.create seed in
    let arrivals = Raqo_alloc.Workload.arrivals rng ~n ~rate:arrival_rate ~capacity:budget in
    let pool_queries = Array.of_list Raqo_catalog.Tpch.evaluation_queries in
    let specs =
      List.init n (fun i ->
          let qname, rels = pool_queries.(i mod Array.length pool_queries) in
          {
            Raqo_alloc.Workload.name = Printf.sprintf "q%d:%s" (i + 1) qname;
            relations = rels;
            tenant = Printf.sprintf "t%d" (i mod tenants);
            weight = float_of_int (1 + (i mod tenants));
            arrival = arrivals.(i);
            slo;
          })
    in
    let plan rels =
      (* Fresh optimizer per query: private scratch, so pooled planning is
         race-free and bit-identical to sequential. *)
      let opt = Raqo.Cost_based.create ~kernel:(not no_kernel) ~model ~conditions schema in
      Option.map fst (Raqo.Cost_based.optimize opt rels)
    in
    let queries =
      let build pool =
        Raqo_alloc.Workload.queries ?pool ~use_kernel:(not no_kernel) ~model ~conditions
          ~schema ~plan specs
      in
      if jobs > 1 then Raqo_par.Pool.with_pool ~jobs (fun pool -> build (Some pool))
      else build None
    in
    if Array.length queries = 0 then begin
      print_endline "no feasible queries under the given cluster conditions";
      exit 2
    end;
    let pricing =
      if spot then
        Pricing.spot
          ~swings:
            (Pricing.random_swings (Raqo_util.Rng.create (seed + 1)) ~horizon:7200.0
               ~segments:6)
          Pricing.default
      else Pricing.flat Pricing.default
    in
    let want =
      match search with
      | `Exact -> Allocator.Want_exact
      | `Randomized -> Allocator.Want_randomized
      | `Auto -> Allocator.Auto
    in
    let outcome = Allocator.search ~want ~pricing ~seed ~budget ~fairness queries in
    let chosen =
      let best score =
        match outcome.Allocator.frontier with
        | [] -> outcome.Allocator.equal_split
        | p :: rest ->
            List.fold_left (fun acc q -> if score q < score acc then q else acc) p rest
      in
      match objective with
      | `Makespan -> best (fun (p : Allocator.point) -> p.Allocator.makespan)
      | `Cost -> best (fun (p : Allocator.point) -> p.Allocator.dollars)
      | `Balanced ->
          best (fun (p : Allocator.point) ->
              p.Allocator.makespan +. (1000.0 *. p.Allocator.dollars)
              +. (1000.0 *. float_of_int p.Allocator.violations))
    in
    let independent = Allocator.independent ~pricing ~budget queries in
    let objective_name =
      match objective with
      | `Makespan -> "makespan"
      | `Cost -> "cost"
      | `Balanced -> "balanced"
    in
    let alloc_string (p : Allocator.point) =
      "["
      ^ String.concat " " (Array.to_list (Array.map string_of_int p.Allocator.alloc))
      ^ "]"
    in
    Printf.printf
      "workload: %d queries over %d tenants, budget %d containers, fairness %.2f%s\n"
      (Array.length queries) tenants budget fairness
      (if spot then ", spot pricing" else "");
    Printf.printf "search: %s (%d allocations evaluated)\n\n"
      (Allocator.mode_name outcome.Allocator.mode)
      outcome.Allocator.evaluated;
    Printf.printf "Pareto frontier (%d points):\n"
      (List.length outcome.Allocator.frontier);
    Printf.printf "   #   makespan     dollars  slo-viol  allocation\n";
    List.iteri
      (fun i (p : Allocator.point) ->
        Printf.printf "  %2d %8.1f s  $%9.4f  %8d  %s%s\n" (i + 1) p.Allocator.makespan
          p.Allocator.dollars p.Allocator.violations (alloc_string p)
          (if p == chosen then "   <- chosen (" ^ objective_name ^ ")" else ""))
      outcome.Allocator.frontier;
    let print_point name (p : Allocator.point) =
      Printf.printf "  %-28s %8.1f s  $%9.4f  %8d  %s\n" name p.Allocator.makespan
        p.Allocator.dollars p.Allocator.violations (alloc_string p)
    in
    Printf.printf "\nbaselines:\n";
    print_point "equal split" outcome.Allocator.equal_split;
    print_point "independent (FIFO, greedy)" independent;
    (* Reference corner just past the worst of everything on the table, so
       every point contributes volume and the ratios are comparable. *)
    let all_points =
      independent :: outcome.Allocator.equal_split :: outcome.Allocator.frontier
    in
    let worst f = List.fold_left (fun acc p -> Float.max acc (f p)) 0.0 all_points in
    let ref_makespan = 1.01 *. worst (fun (p : Allocator.point) -> p.Allocator.makespan)
    and ref_dollars = 1.01 *. worst (fun (p : Allocator.point) -> p.Allocator.dollars) in
    Printf.printf
      "\nhypervolume (worst-corner ref): frontier %.3g, equal split %.3g, independent %.3g\n"
      (Allocator.hypervolume ~ref_makespan ~ref_dollars outcome.Allocator.frontier)
      (Allocator.hypervolume ~ref_makespan ~ref_dollars [ outcome.Allocator.equal_split ])
      (Allocator.hypervolume ~ref_makespan ~ref_dollars [ independent ]);
    Printf.printf "\nchosen allocation (%s):\n" objective_name;
    Printf.printf "  query                    tenant  weight  arrival  containers   latency\n";
    Array.iteri
      (fun i (q : Allocator.query) ->
        let cap = chosen.Allocator.alloc.(i) in
        Printf.printf "  %-24s %-7s %6.1f %7.1fs  %10d %8.1fs%s\n" q.Allocator.name
          q.Allocator.tenant q.Allocator.weight q.Allocator.arrival cap
          (Surface.latency_at q.Allocator.surface cap)
          (match q.Allocator.slo with
          | Some s when Surface.latency_at q.Allocator.surface cap > s -> "  [SLO MISS]"
          | _ -> ""))
      queries;
    match json_path with
    | None -> ()
    | Some path ->
        let module Json = Raqo_server.Json in
        let point_json (p : Allocator.point) =
          Json.Obj
            [
              ("makespan", Json.Num p.Allocator.makespan);
              ("dollars", Json.Num p.Allocator.dollars);
              ("violations", Json.Num (float_of_int p.Allocator.violations));
              ( "containers",
                Json.List
                  (Array.to_list
                     (Array.map (fun c -> Json.Num (float_of_int c)) p.Allocator.alloc))
              );
            ]
        in
        let doc =
          Json.Obj
            [
              ("queries", Json.Num (float_of_int (Array.length queries)));
              ("budget", Json.Num (float_of_int budget));
              ("fairness", Json.Num fairness);
              ("search", Json.Str (Allocator.mode_name outcome.Allocator.mode));
              ("objective", Json.Str objective_name);
              ( "frontier",
                Json.List (List.map point_json outcome.Allocator.frontier) );
              ("chosen", point_json chosen);
              ("equal_split", point_json outcome.Allocator.equal_split);
              ("independent", point_json independent);
            ]
        in
        Out_channel.with_open_text path (fun oc ->
            output_string oc (Json.to_string doc);
            output_char oc '\n');
        Printf.printf "\nwrote %s\n" path
  in
  Cmd.v
    (Cmd.info "allocate"
       ~doc:"Globally allocate a container budget across concurrent queries on the \
             Pareto frontier of makespan, dollars, and SLO violations")
    Term.(const run $ n_arg $ budget_arg $ seed_arg $ objective_arg $ fairness_arg
          $ search_arg $ slo_arg $ tenants_arg $ arrival_rate_arg $ spot_arg $ json_arg
          $ containers_arg $ memory_arg $ jobs_opt_arg $ no_kernel_arg $ trace_arg)

let commands =
  [
    plan_cmd;
    switch_cmd;
    tree_cmd;
    queue_cmd;
    pareto_cmd;
    robust_cmd;
    workload_cmd;
    allocate_cmd;
    fuzz_cmd;
    trace_cmd;
    metrics_cmd;
    serve_cmd;
  ]

let () =
  (* Reject unknown subcommands up front with the listing and exit 2 —
     cmdliner's own unknown-command path exits 124, and a typo'd subcommand
     silently matching nothing is how stale scripts rot. *)
  (match Array.to_list Sys.argv with
  | _ :: name :: _
    when String.length name > 0
         && name.[0] <> '-'
         && (not (List.mem name [ "help" ]))
         && not (List.exists (fun c -> Cmd.name c = name) commands) ->
      Printf.eprintf "raqo: unknown command %S. Available commands:\n" name;
      List.iter (fun c -> Printf.eprintf "  %s\n" (Cmd.name c)) commands;
      Printf.eprintf "Run 'raqo --help' for details.\n";
      exit 2
  | _ -> ());
  (* Same contract for enumerated option values: an unknown --planner or
     --est-error exits 2 with the valid choices, instead of cmdliner's
     generic usage error (exit 124). Both --flag VALUE and --flag=VALUE
     spellings are caught. *)
  let option_values flag =
    let prefix = flag ^ "=" in
    let plen = String.length prefix in
    let rec go acc = function
      | [] -> List.rev acc
      | a :: rest when a = flag -> (
          match rest with v :: rest' -> go (v :: acc) rest' | [] -> List.rev acc)
      | a :: rest when String.length a > plen && String.sub a 0 plen = prefix ->
          go (String.sub a plen (String.length a - plen) :: acc) rest
      | _ :: rest -> go acc rest
    in
    go [] (Array.to_list Sys.argv)
  in
  let reject_invalid flag ~valid ~choices =
    List.iter
      (fun v ->
        if not (valid v) then begin
          Printf.eprintf "raqo: invalid value %S for %s. Valid choices:\n" v flag;
          List.iter (fun c -> Printf.eprintf "  %s\n" c) choices;
          exit 2
        end)
      (option_values flag)
  in
  reject_invalid "--planner"
    ~valid:(fun v -> List.mem v [ "selinger"; "randomized"; "dpsub" ])
    ~choices:[ "selinger"; "randomized"; "dpsub" ];
  reject_invalid "--objective"
    ~valid:(fun v -> List.mem v [ "makespan"; "cost"; "balanced" ])
    ~choices:[ "makespan"; "cost"; "balanced" ];
  reject_invalid "--search"
    ~valid:(fun v -> List.mem v [ "exact"; "randomized"; "auto" ])
    ~choices:[ "exact"; "randomized"; "auto" ];
  reject_invalid "--fairness"
    ~valid:(fun v ->
      match float_of_string_opt v with
      | Some f -> f >= 0.0 && f <= 1.0
      | None -> false)
    ~choices:[ "a number in [0,1], e.g. 0.5" ];
  reject_invalid "--est-error"
    ~valid:(fun v -> Result.is_ok (Raqo_execsim.Estimation_error.of_string v))
    ~choices:
      [
        "none (exact estimates, the default)";
        "lognormal:SEED        e.g. lognormal:42";
        "skew=MAG:SEED         e.g. skew=0.5:7";
        "correlated:SEED       (DIST:SEED or DIST=MAG:SEED forms)";
      ];
  let info =
    Cmd.info "raqo" ~version:"1.0.0"
      ~doc:"Resource and query optimization (RAQO) for big data systems"
  in
  exit (Cmd.eval (Cmd.group info commands))
