(* Quickstart: build the TPC-H catalog, train a cost model, and ask RAQO for
   a joint query/resource plan for TPC-H Q3.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. The catalog: TPC-H at scale factor 100, as in the paper. *)
  let schema = Raqo_catalog.Tpch.schema () in
  Printf.printf "Catalog: %d relations\n"
    (List.length (Raqo_catalog.Schema.relations schema));
  List.iter
    (fun r -> Format.printf "  %a\n" Raqo_catalog.Relation.pp r)
    (Raqo_catalog.Schema.relations schema);

  (* 2. A cost model, trained on simulated profile runs of the Hive engine
     (the paper trains the same regressions on real profile runs). *)
  let model = Raqo.Models.hive () in

  (* 3. Current cluster conditions from the resource manager: up to 100
     containers of up to 10 GB. *)
  let conditions = Raqo_cluster.Conditions.default in
  Format.printf "\nCluster conditions: %a\n" Raqo_cluster.Conditions.pp conditions;

  (* 4. RAQO: one optimizer call returns plan AND resources. *)
  let opt = Raqo.Cost_based.create ~model ~conditions schema in
  let query = Raqo_catalog.Tpch.q3 in
  Printf.printf "\nQuery: join(%s)\n\n" (String.concat ", " query);
  match Raqo.Cost_based.optimize opt query with
  | Some (plan, cost) ->
      print_string (Raqo.Explain.joint model schema plan);
      Printf.printf "\nModel cost: %.1f\n" cost;
      (* 5. Ground truth: run the joint plan on the execution simulator. *)
      (match Raqo_execsim.Simulate.run_joint Raqo_execsim.Engine.hive schema plan with
      | Ok run ->
          Printf.printf "Simulated execution: %.0f s, %.2f TB·s, $%.4f\n"
            run.Raqo_execsim.Simulate.seconds
            (Raqo_execsim.Simulate.tb_seconds run)
            (Raqo_execsim.Simulate.money run)
      | Error e -> Printf.printf "Simulation failed: %s\n" e);
      let k = Raqo.Cost_based.counters opt in
      Printf.printf "Planner explored %d resource configurations (%d cache hits)\n"
        (Raqo_resource.Counters.cost_evaluations k)
          (Raqo_resource.Counters.cache_hits k);

      (* 6. Or start from SQL: the WHERE clause scales the statistics the
         optimizer plans with (here: the paper's 5.1 GB orders sample). *)
      print_endline "\nThe same, declaratively:";
      let sql =
        "select * from orders, lineitem where o_orderkey = l_orderkey and o_totalprice < 172000"
      in
      Printf.printf "  %s\n" sql;
      (match Raqo.Sql_frontend.plan_tpch sql with
      | Ok planned ->
          Format.printf "  -> %a (est cost %.1f)\n" Raqo_plan.Join_tree.pp_joint
            planned.Raqo.Sql_frontend.plan planned.Raqo.Sql_frontend.est_cost
      | Error e -> Printf.printf "  SQL error: %s\n" e)
  | None -> print_endline "No feasible plan."
