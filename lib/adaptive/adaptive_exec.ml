module Schema = Raqo_catalog.Schema
module Interned = Raqo_catalog.Interned
module Join_tree = Raqo_plan.Join_tree
module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources
module Engine = Raqo_execsim.Engine
module Operators = Raqo_execsim.Operators
module Simulate = Raqo_execsim.Simulate
module Coster = Raqo_planner.Coster
module Dpsub = Raqo_planner.Dpsub
module Resource_planner = Raqo_resource.Resource_planner

type outcome =
  | Done of { seconds : float; gb_seconds : float }
  | Oom of { stage : int; reason : string }

type stage = {
  index : int;
  impl : Join_impl.t;
  resources : Resources.t;
  build : string list;
  probe : string list;
  small_gb : float;
  big_gb : float;
  seconds : float;
  est_rows : float;
  observed_rows : float;
  replanned : bool;
  switched : bool;
}

type report = {
  static_plan : Join_tree.joint;
  static_outcome : outcome;
  adaptive_plan : Join_tree.joint;
  adaptive_outcome : outcome;
  stages : stage list;
  replans : int;
  switches : int;
  failed_replans : int;
  replan_cost_s : float;
}

(* Plan installation on the critical path when a switch commits. The
   re-optimization itself (milliseconds on the kernel path) overlaps the
   materialization barrier the finished stage already paid for. *)
let default_replan_cost_s = 0.05

let latency = function Done { seconds; _ } -> seconds | Oom _ -> infinity

let pp_outcome fmt = function
  | Done { seconds; gb_seconds } ->
      Format.fprintf fmt "done in %.1f s (%.0f GB-s)" seconds gb_seconds
  | Oom { stage; reason } -> Format.fprintf fmt "failed at stage %d: %s" stage reason

(* The in-flight plan: executed subtrees are leaves carrying their base
   relation set (for true sizes) and the joint subtree they ran as (for
   stitching the executed plan back together). *)
type mat = { leaf : Remaining.leaf; built : Join_tree.joint }

type node =
  | Leaf of mat
  | Node of { annot : Join_impl.t * Resources.t; left : node; right : node }

let rec of_joint = function
  | Join_tree.Scan r ->
      Leaf { leaf = Remaining.leaf_of_bases [ r ]; built = Join_tree.Scan r }
  | Join_tree.Join (annot, l, r) -> Node { annot; left = of_joint l; right = of_joint r }

let rec to_joint = function
  | Leaf { built; _ } -> built
  | Node { annot; left; right } -> Join_tree.Join (annot, to_joint left, to_joint right)

(* Base relations under a node, in the executor's left-to-right order — the
   exact name sequence [Schema.join_rows]/[join_size_gb] will fold over, so
   projection and execution see bit-equal sizes. *)
let rec bases_of = function
  | Leaf { leaf; _ } -> leaf.Remaining.bases
  | Node { left; right; _ } -> bases_of left @ bases_of right

let rec leaves_of = function
  | Leaf m -> [ m ]
  | Node { left; right; _ } -> leaves_of left @ leaves_of right

(* One stage's simulated latency, replicating Simulate.simulate_tree:
   engines that keep containers across stages (Spark) pay startup and
   container launch once per run, so every stage but the first is
   amortized — including stages installed by a mid-flight re-plan. *)
let stage_seconds (engine : Engine.t) ~index impl ~small_gb ~big_gb ~resources =
  match Operators.join_time engine impl ~small_gb ~big_gb ~resources with
  | None -> None
  | Some seconds ->
      Some
        (if engine.reuses_containers && index > 0 then
           Float.max 0.0
             (seconds -. engine.startup_s
             -. (engine.task_overhead_s *. float_of_int resources.Resources.containers))
         else seconds)

(* Find the first executable join — post-order, so the first Node whose
   children are both leaves — and return its stage descriptor plus the tree
   with that join collapsed into a materialized leaf. *)
let rec step = function
  | Leaf _ -> None
  | Node { annot; left = Leaf l; right = Leaf r } ->
      let bases = l.leaf.Remaining.bases @ r.leaf.Remaining.bases in
      let joined =
        Leaf
          {
            leaf = Remaining.leaf_of_bases bases;
            built = Join_tree.Join (annot, l.built, r.built);
          }
      in
      Some ((annot, l.leaf.Remaining.bases, r.leaf.Remaining.bases, bases), joined)
  | Node ({ left; right; _ } as n) -> begin
      match step left with
      | Some (st, left') -> Some (st, Node { n with left = left' })
      | None -> begin
          match step right with
          | Some (st, right') -> Some (st, Node { n with right = right' })
          | None -> None
        end
    end

(* Project a remainder's completion time by re-playing the exact float
   additions execution will perform, starting from the actual running clock
   and stage index. [None] = some stage is infeasible under the true sizes.
   This is what makes never-worse a bitwise fact rather than a tolerance:
   the chosen remainder's projection IS its execution, float for float. *)
let project engine truth node ~index ~clock ~gb =
  let rec go node index clock gb =
    match node with
    | Leaf _ -> Some (index, clock, gb)
    | Node { annot = impl, resources; left; right } -> begin
        match go left index clock gb with
        | None -> None
        | Some (index, clock, gb) -> begin
            match go right index clock gb with
            | None -> None
            | Some (index, clock, gb) -> begin
                let small_gb, big_gb =
                  Simulate.join_inputs truth ~left:(bases_of left) ~right:(bases_of right)
                in
                match stage_seconds engine ~index impl ~small_gb ~big_gb ~resources with
                | None -> None
                | Some s ->
                    Some (index + 1, clock +. s, gb +. Resources.gb_seconds resources s)
              end
          end
      end
  in
  go node index clock gb

(* The remaining join graph never outgrows the mask-based DP here: DPsub
   itself caps at 20 relations, far below the 62-relation mask limit. *)
let max_replan_relations = min Interned.max_relations Dpsub.max_relations

let m_replans = Raqo_obs.Metrics.counter "raqo_adaptive_replans_total"
let m_switches = Raqo_obs.Metrics.counter "raqo_adaptive_switches_total"
let m_failed = Raqo_obs.Metrics.counter "raqo_adaptive_failed_replans_total"

(* Re-optimize the remaining join graph: collapse the in-flight tree's
   leaves into a remaining schema (true statistics on materialized
   intermediates, estimates elsewhere) and run the kernel-backed bushy DP
   over its interned masks — through the shared-memo parallel sweep with
   per-worker forked resource planners when a pool is available. *)
let replan ?pool ~kernel ~fault ~model ~conditions ~truth ~estimates tree =
  let leaves = leaves_of tree in
  let n = List.length leaves in
  if n < 2 || n > max_replan_relations then None
  else begin
    let recs = List.map (fun m -> m.leaf) leaves in
    let names = List.map (fun (l : Remaining.leaf) -> l.Remaining.name) recs in
    match Interned.make (Remaining.of_leaves ~truth ~estimates recs) names with
    | exception Invalid_argument _ -> None
    | ctx -> begin
        let rp = Resource_planner.create ~kernel conditions in
        let result =
          match pool with
          | Some pool ->
              Dpsub.optimize_par_masked
                ~coster:(fun () ->
                  fault (Coster.raqo_masked model ctx (Resource_planner.fork rp)))
                pool ctx
          | None -> Dpsub.optimize_masked (fault (Coster.raqo_masked model ctx rp)) ctx
        in
        match result with
        | None -> None
        | Some (joint, _est_cost) ->
            let table = Hashtbl.create (2 * n) in
            List.iter (fun m -> Hashtbl.replace table m.leaf.Remaining.name m) leaves;
            let rec to_node = function
              | Join_tree.Scan name -> Leaf (Hashtbl.find table name)
              | Join_tree.Join (annot, l, r) ->
                  Node { annot; left = to_node l; right = to_node r }
            in
            Some (to_node joint)
      end
  end

let oom_reason impl ~small_gb ~resources =
  Printf.sprintf "%s out of memory: %.2f GB build side in %.1f GB containers"
    (Join_impl.to_string impl) small_gb resources.Resources.container_gb

(* Execute the in-flight tree to completion. [adapt] gates the boundary
   re-optimization; with it off this is exactly Simulate.run_joint's
   accounting, stage by stage, float by float. *)
let exec ?pool ~replan_cost_s ~kernel ~fault ~engine ~model ~conditions ~truth ~estimates
    ~adapt tree0 =
  let obs_on = Raqo_obs.Obs.enabled () in
  let rec loop tree index clock gb stages replans switches failed =
    match step tree with
    | None ->
        ( Done { seconds = clock; gb_seconds = gb },
          to_joint tree,
          List.rev stages,
          replans,
          switches,
          failed )
    | Some (((impl, resources), build, probe, joined_bases), tree') -> begin
        let small_gb, big_gb = Simulate.join_inputs truth ~left:build ~right:probe in
        match stage_seconds engine ~index impl ~small_gb ~big_gb ~resources with
        | None ->
            ( Oom { stage = index; reason = oom_reason impl ~small_gb ~resources },
              to_joint tree,
              List.rev stages,
              replans,
              switches,
              failed )
        | Some seconds -> begin
            let clock = clock +. seconds in
            let gb = gb +. Resources.gb_seconds resources seconds in
            let est_rows = Schema.join_rows estimates joined_bases in
            let observed_rows = Schema.join_rows truth joined_bases in
            let index = index + 1 in
            let remaining = match tree' with Leaf _ -> false | Node _ -> true in
            let stage ~replanned ~switched =
              {
                index = index - 1;
                impl;
                resources;
                build;
                probe;
                small_gb;
                big_gb;
                seconds;
                est_rows;
                observed_rows;
                replanned;
                switched;
              }
            in
            (* The materialization boundary: re-plan only when observation
               contradicts the estimate. Bit-equality is the trigger on
               purpose — under zero error both numbers come from the same
               arithmetic on the same schema, so no re-plan ever fires and
               the adaptive run stays bit-identical to the static one. *)
            if not (adapt && remaining && observed_rows <> est_rows) then
              loop tree' index clock gb (stage ~replanned:false ~switched:false :: stages)
                replans switches failed
            else begin
              if obs_on then Raqo_obs.Metrics.Counter.inc m_replans;
              let span = Raqo_obs.Trace.start "adaptive/replan" in
              let candidate, failed =
                match
                  replan ?pool ~kernel ~fault ~model ~conditions ~truth ~estimates tree'
                with
                | candidate -> (candidate, failed)
                | exception _ ->
                    (* A planner fault mid-re-optimization: fall back to the
                       remaining static plan. The shared-memo DP released any
                       claimed entries before re-raising, so the pool and the
                       next boundary's re-plan stay usable. *)
                    if obs_on then Raqo_obs.Metrics.Counter.inc m_failed;
                    (None, failed + 1)
              in
              Raqo_obs.Trace.finish span;
              let replans = replans + 1 in
              match candidate with
              | None ->
                  loop tree' index clock gb
                    (stage ~replanned:true ~switched:false :: stages)
                    replans switches failed
              | Some cand -> begin
                  let incumbent = project engine truth tree' ~index ~clock ~gb in
                  let challenger =
                    project engine truth cand ~index ~clock:(clock +. replan_cost_s) ~gb
                  in
                  let switch =
                    match (challenger, incumbent) with
                    | Some (_, c, _), Some (_, i, _) -> c < i
                    | Some _, None -> true (* rescue: incumbent OOMs under truth *)
                    | None, _ -> false
                  in
                  if switch then begin
                    if obs_on then Raqo_obs.Metrics.Counter.inc m_switches;
                    loop cand index (clock +. replan_cost_s) gb
                      (stage ~replanned:true ~switched:true :: stages)
                      replans (switches + 1) failed
                  end
                  else
                    loop tree' index clock gb
                      (stage ~replanned:true ~switched:false :: stages)
                      replans switches failed
                end
            end
          end
      end
  in
  loop tree0 0 0.0 0.0 [] 0 0 0

let run ?pool ?(replan_cost_s = default_replan_cost_s) ?(kernel = true)
    ?(fault = fun (c : Coster.masked) -> c) ~engine ~model ~conditions ~truth ~estimates
    static =
  if not (Join_tree.valid static) then
    invalid_arg "Adaptive_exec.run: plan references a relation twice";
  List.iter
    (fun r ->
      if not (Schema.mem truth r) then
        invalid_arg ("Adaptive_exec.run: relation unknown to the truth schema: " ^ r);
      if not (Schema.mem estimates r) then
        invalid_arg ("Adaptive_exec.run: relation unknown to the estimate schema: " ^ r))
    (Join_tree.relations static);
  let span = Raqo_obs.Trace.start "adaptive/run" in
  let static_outcome, _, _, _, _, _ =
    exec ?pool ~replan_cost_s ~kernel ~fault ~engine ~model ~conditions ~truth ~estimates
      ~adapt:false (of_joint static)
  in
  let adaptive_outcome, adaptive_plan, stages, replans, switches, failed_replans =
    exec ?pool ~replan_cost_s ~kernel ~fault ~engine ~model ~conditions ~truth ~estimates
      ~adapt:true (of_joint static)
  in
  Raqo_obs.Trace.finish span;
  {
    static_plan = static;
    static_outcome;
    adaptive_plan;
    adaptive_outcome;
    stages;
    replans;
    switches;
    failed_replans;
    replan_cost_s;
  }
