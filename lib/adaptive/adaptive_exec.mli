(** Runtime adaptive re-optimization: execute a joint plan stage by stage
    against the ground-truth schema, observe each materialized intermediate's
    true size at the stage boundary, and — whenever the observation diverges
    from the estimate — re-invoke the kernel-backed bushy DP
    ({!Raqo_planner.Dpsub}, over the interned masks of the remaining join
    graph, on the shared-memo parallel sweep when a pool is given) to
    re-plan everything not yet executed, flipping join implementations and
    re-sizing containers mid-flight.

    {2 The differential never-worse guard}

    A re-planned candidate replaces the incumbent remainder only when the
    switch provably helps: both remainders are costed by the same
    deterministic stage simulation the executor itself runs (true sizes,
    container-reuse amortization, accumulated onto the *actual* running
    clock in execution order), and the candidate must win strictly after
    absorbing [replan_cost_s] — the plan-installation charge a switch puts
    on the critical path. Re-planning itself runs on the driver during the
    materialization barrier the finished stage already paid for, so a
    rejected candidate costs nothing.

    Two theorems follow, and the {!Raqo_verify} oracle checks both bitwise:

    - {b Zero-error identity.} When [estimates] is [truth] (physically —
      {!Raqo_execsim.Estimation_error.Exact} guarantees it), every
      observation matches its estimate bit-for-bit, no re-plan ever fires,
      and the adaptive run is bit-identical to the static one: same plan,
      same latency float.
    - {b Never-worse.} The projected total latency (clock so far plus the
      incumbent remainder, summed in execution order) starts exactly at the
      static latency and only ever decreases — executing a stage re-plays
      the same float additions the projection made, and a switch strictly
      lowers the projection. Hence [adaptive.seconds <= static.seconds] as
      plain floats, re-planning cost included, on every seed. A failed
      static run (OOM under truth) counts as infinite latency; the adaptive
      run may rescue it by switching away before launching the doomed
      stage. *)

type outcome =
  | Done of { seconds : float; gb_seconds : float }
  | Oom of { stage : int; reason : string }
      (** the [stage]-th join (0-based, execution order) was infeasible
          under the true sizes *)

type stage = {
  index : int;  (** execution order, 0-based across the whole run *)
  impl : Raqo_plan.Join_impl.t;
  resources : Raqo_cluster.Resources.t;
  build : string list;  (** base relations under the left (build) input *)
  probe : string list;
  small_gb : float;  (** true input sizes, smaller side first *)
  big_gb : float;
  seconds : float;  (** simulated stage latency, amortization applied *)
  est_rows : float;  (** what the estimates predicted for this output *)
  observed_rows : float;  (** what materialization actually produced *)
  replanned : bool;  (** a re-optimization ran at the boundary after this stage *)
  switched : bool;  (** ... and its candidate beat the incumbent remainder *)
}

type report = {
  static_plan : Raqo_plan.Join_tree.joint;
  static_outcome : outcome;
      (** the plan executed as-is — bit-identical to
          {!Raqo_execsim.Simulate.run_joint} on the truth schema *)
  adaptive_plan : Raqo_plan.Join_tree.joint;
      (** the plan actually executed, re-planned subtrees stitched in *)
  adaptive_outcome : outcome;
  stages : stage list;  (** adaptive run, execution order *)
  replans : int;  (** re-optimizations attempted *)
  switches : int;  (** candidates that displaced the incumbent *)
  failed_replans : int;  (** re-optimizations that raised and fell back *)
  replan_cost_s : float;
}

val default_replan_cost_s : float

(** [run ~engine ~model ~conditions ~truth ~estimates static] simulates
    [static] (planned from [estimates]) twice against [truth]: once as-is
    and once adaptively.

    [pool] fans each re-plan out over the shared-memo parallel DP with
    per-worker forked resource planners — bit-identical reports at any pool
    size. [kernel] (default true) is forwarded to the per-replan
    {!Raqo_resource.Resource_planner}. [fault] wraps every re-planning
    coster (the oracle's fault-injection seam): a coster that raises makes
    the re-plan fall back to the incumbent remainder, counted in
    [failed_replans], with no memo claim left stranded and the pool still
    usable. [replan_cost_s] is the switch charge described above.

    Queries whose remaining join graph exceeds the DPsub cap simply stop
    re-planning (counted as attempts, never as switches).
    @raise Invalid_argument when [static] is invalid or mentions relations
    unknown to [truth] or [estimates]. *)
val run :
  ?pool:Raqo_par.Pool.t ->
  ?replan_cost_s:float ->
  ?kernel:bool ->
  ?fault:(Raqo_planner.Coster.masked -> Raqo_planner.Coster.masked) ->
  engine:Raqo_execsim.Engine.t ->
  model:Raqo_cost.Op_cost.t ->
  conditions:Raqo_cluster.Conditions.t ->
  truth:Raqo_catalog.Schema.t ->
  estimates:Raqo_catalog.Schema.t ->
  Raqo_plan.Join_tree.joint ->
  report

(** [latency outcome] is the outcome's seconds, [infinity] for a failure —
    the ordering the never-worse guarantee is stated in. *)
val latency : outcome -> float

val pp_outcome : Format.formatter -> outcome -> unit
