module Schema = Raqo_catalog.Schema
module Relation = Raqo_catalog.Relation
module Join_graph = Raqo_catalog.Join_graph
module Join_tree = Raqo_plan.Join_tree

type leaf = { name : string; bases : string list }

type t = { schema : Schema.t; leaves : leaf list; tree : Join_tree.joint }

let leaf_of_bases bases =
  match bases with
  | [] -> invalid_arg "Remaining.leaf_of_bases: empty base set"
  | [ r ] -> { name = r; bases }
  | _ -> { name = String.concat "+" (List.sort compare bases); bases }

(* Statistics for one leaf: a materialized intermediate carries its *true*
   (observed) cardinality and width; an un-executed base keeps whatever the
   estimate schema claims about it. *)
let leaf_relation ~truth ~estimates leaf =
  match leaf.bases with
  | [ r ] -> Schema.find estimates r
  | bases ->
      Relation.make ~name:leaf.name ~rows:(Schema.join_rows truth bases)
        ~row_bytes:(Schema.join_row_bytes truth bases)

let of_leaves ~truth ~estimates leaves =
  let relations = List.map (leaf_relation ~truth ~estimates) leaves in
  let graph = Schema.graph estimates in
  (* Cross-leaf edges: the product of every surviving estimate-side edge
     between the two base sets — the independence assumption restricted to
     the remaining query, which is exactly what the original estimate of the
     union would have multiplied in. *)
  let rec cross acc = function
    | [] -> acc
    | a :: rest ->
        let acc =
          List.fold_left
            (fun acc b ->
              match Join_graph.edges_between graph a.bases b.bases with
              | [] -> acc
              | edges ->
                  let selectivity =
                    List.fold_left
                      (fun s (e : Join_graph.edge) -> s *. e.selectivity)
                      1.0 edges
                  in
                  { Join_graph.left = a.name; right = b.name; selectivity } :: acc)
            acc rest
        in
        cross acc rest
  in
  Schema.make relations (Join_graph.make (List.rev (cross [] leaves)))

let collapse ~truth ~estimates plan ~executed =
  if executed < 0 then invalid_arg "Remaining.collapse: negative executed count";
  if executed >= Join_tree.n_joins plan then None
  else begin
    (* Stages run bottom-up, left before right — post-order. A subtree is
       fully executed iff its root join's post-order index is below
       [executed]: children always precede their parent. *)
    let rec go tree idx =
      match tree with
      | Join_tree.Scan r -> (`Leaf [ r ], idx)
      | Join_tree.Join (annot, l, r) ->
          let ln, idx = go l idx in
          let rn, idx = go r idx in
          let mine = idx in
          let idx = idx + 1 in
          if mine < executed then begin
            match (ln, rn) with
            | `Leaf lb, `Leaf rb -> (`Leaf (lb @ rb), idx)
            | _ ->
                (* Unreachable: post-order indices of a subtree are
                   contiguous, so an executed parent implies executed
                   children. *)
                assert false
          end
          else (`Node (annot, ln, rn), idx)
    in
    let top, _ = go plan 0 in
    let leaves = ref [] in
    let rec rebuild = function
      | `Leaf bases ->
          let leaf = leaf_of_bases bases in
          leaves := leaf :: !leaves;
          Join_tree.Scan leaf.name
      | `Node (annot, l, r) ->
          let l = rebuild l in
          let r = rebuild r in
          Join_tree.Join (annot, l, r)
    in
    let tree = rebuild top in
    let leaves = List.rev !leaves in
    Some { schema = of_leaves ~truth ~estimates leaves; leaves; tree }
  end
