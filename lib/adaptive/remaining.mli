(** The *remaining* join graph at a stage boundary: executed subtrees of a
    joint plan collapse into pseudo-relations whose statistics come from the
    ground truth (they were just materialized and measured), while
    not-yet-joined base relations keep their (possibly erroneous) estimates.
    The kernel-backed planner then re-optimizes this smaller query exactly
    like any other — DPsub over its interned masks.

    Collapsing is exact for the cost model: a pseudo-relation's row count is
    [Schema.join_rows] of its base set and cross-leaf selectivities multiply
    the surviving edges, so joining collapsed leaves estimates the same
    cardinalities as the original join expression over their union. *)

type leaf = {
  name : string;  (** pseudo-relation name ("a+b") or the base name itself *)
  bases : string list;  (** underlying base relations, tree order *)
}

type t = {
  schema : Raqo_catalog.Schema.t;
      (** collapsed schema: truth statistics on materialized leaves,
          estimate statistics on un-executed bases, estimate selectivities
          on every surviving cross edge *)
  leaves : leaf list;  (** left-to-right leaves of the remaining plan *)
  tree : Raqo_plan.Join_tree.joint;  (** incumbent remaining plan over leaf names *)
}

(** [of_leaves ~truth ~estimates leaves] builds the collapsed schema alone,
    for callers that carry their own remaining tree.
    @raise Invalid_argument on duplicate leaf names or unknown bases. *)
val of_leaves :
  truth:Raqo_catalog.Schema.t ->
  estimates:Raqo_catalog.Schema.t ->
  leaf list ->
  Raqo_catalog.Schema.t

(** [leaf_of_bases bases] names a leaf: the base itself for singletons,
    the bases joined with ["+"] otherwise. *)
val leaf_of_bases : string list -> leaf

(** [collapse ~truth ~estimates plan ~executed] collapses the first
    [executed] joins of [plan] (in the executor's bottom-up, left-then-right
    stage order) into pseudo-leaves. [None] when nothing remains
    ([executed >= n_joins]). [executed = 0] yields the plan unchanged over
    its base relations.
    @raise Invalid_argument on negative [executed]. *)
val collapse :
  truth:Raqo_catalog.Schema.t ->
  estimates:Raqo_catalog.Schema.t ->
  Raqo_plan.Join_tree.joint ->
  executed:int ->
  t option
