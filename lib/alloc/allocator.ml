module Pricing = Raqo_cluster.Pricing
module Queue_sim = Raqo_cluster.Queue_sim
module Rng = Raqo_util.Rng
module M = Raqo_obs.Metrics

type query = {
  name : string;
  tenant : string;
  weight : float;
  arrival : float;
  slo : float option;
  surface : Surface.t;
}

type point = { alloc : int array; makespan : float; dollars : float; violations : int }
type mode = Exact | Randomized

type outcome = {
  mode : mode;
  frontier : point list;
  equal_split : point;
  evaluated : int;
}

let mode_name = function Exact -> "exact" | Randomized -> "randomized"

let m_evaluations = M.counter "raqo_alloc_evaluations_total"
let m_exact_states = M.counter "raqo_alloc_exact_states_total"
let m_moves = M.counter "raqo_alloc_moves_total"
let m_frontier = M.counter "raqo_alloc_frontier_points_total"

let obs_on () = Raqo_obs.Obs.enabled ()

(* Weak (<= everywhere) and strict Pareto dominance over the three
   objectives; allocations are compared on exact floats — every objective is
   a deterministic function of the allocation. *)
let covers a b = a.makespan <= b.makespan && a.dollars <= b.dollars && a.violations <= b.violations
let dominates a b = covers a b && (a.makespan < b.makespan || a.dollars < b.dollars || a.violations < b.violations)

let query ?(tenant = "default") ?(weight = 1.0) ?(arrival = 0.0) ?slo ~name surface =
  if weight <= 0.0 then invalid_arg "Allocator.query: weight must be positive";
  if arrival < 0.0 then invalid_arg "Allocator.query: arrival must be >= 0";
  (match slo with
  | Some s when s <= 0.0 -> invalid_arg "Allocator.query: slo must be positive"
  | _ -> ());
  { name; tenant; weight; arrival; slo; surface }

let evaluate ?(pricing = Pricing.flat Pricing.default) queries alloc =
  if Array.length alloc <> Array.length queries then
    invalid_arg "Allocator.evaluate: allocation arity mismatch";
  if obs_on () then M.Counter.inc m_evaluations;
  let makespan = ref 0.0 and dollars = ref 0.0 and violations = ref 0 in
  Array.iteri
    (fun i q ->
      let latency = Surface.latency_at q.surface alloc.(i) in
      let finish = q.arrival +. latency in
      if finish > !makespan then makespan := finish;
      dollars :=
        !dollars
        +. Pricing.spot_cost pricing
             ~gb_seconds:(Surface.gb_seconds_at q.surface alloc.(i))
             ~start:q.arrival ~finish;
      match q.slo with Some s when latency > s -> incr violations | _ -> ())
    queries;
  { alloc = Array.copy alloc; makespan = !makespan; dollars = !dollars; violations = !violations }

(* ---------- fairness floors ---------- *)

(* Each query is guaranteed [fairness] x its weight share of the budget
   (rounded down onto its cap grid, never below the grid minimum):
   [fairness = 0] is pure efficiency, [fairness = 1] a full weighted
   max-min split. *)
let floors ~budget ~fairness queries =
  if fairness < 0.0 || fairness > 1.0 then
    invalid_arg "Allocator: fairness must be in [0, 1]";
  if budget < 1 then invalid_arg "Allocator: budget must be >= 1";
  let total_weight = Array.fold_left (fun acc q -> acc +. q.weight) 0.0 queries in
  let floors =
    Array.map
      (fun q ->
        let share = fairness *. q.weight /. total_weight *. float_of_int budget in
        Surface.cap_floor q.surface (int_of_float share))
      queries
  in
  if Array.fold_left ( + ) 0 floors > budget then
    invalid_arg "Allocator: budget below the minimum per-query allocations";
  floors

(* Round-robin one grid step per query per pass until neither budget nor cap
   headroom lets anyone grow — the naive "equal split" every-query-alike
   baseline (and the randomized search's first start). *)
let equal_split_alloc ~budget ~floors queries =
  let alloc = Array.copy floors in
  let remaining = ref (budget - Array.fold_left ( + ) 0 alloc) in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    Array.iteri
      (fun i q ->
        let step = Surface.cap_step q.surface in
        if alloc.(i) + step <= Surface.max_cap q.surface && step <= !remaining then begin
          alloc.(i) <- alloc.(i) + step;
          remaining := !remaining - step;
          progressed := true
        end)
      queries
  done;
  alloc

let equal_split ?pricing ~budget ~fairness queries =
  let floors = floors ~budget ~fairness queries in
  evaluate ?pricing queries (equal_split_alloc ~budget ~floors queries)

(* ---------- frontier filtering ---------- *)

let compare_points a b =
  let c = Float.compare a.makespan b.makespan in
  if c <> 0 then c
  else
    let c = Float.compare a.dollars b.dollars in
    if c <> 0 then c
    else
      let c = compare a.violations b.violations in
      if c <> 0 then c else compare a.alloc b.alloc

(* Non-dominated subset, duplicates (same objective vector) collapsed onto
   the lexicographically-smallest allocation, sorted by makespan. *)
let frontier_of points =
  let sorted = List.sort_uniq compare_points points in
  let keep p =
    List.for_all
      (fun q -> q == p || not (covers q p) || (covers p q && compare_points p q < 0))
      sorted
  in
  let front = List.filter keep sorted in
  if obs_on () then M.Counter.add m_frontier (List.length front);
  front

(* ---------- exact Pareto DP ---------- *)

exception Too_large

type partial = { pm : float; pd : float; pv : int; chosen : int list }

(* Per-(query, cap) contribution, precomputed so the DP inner loop is pure
   arithmetic. *)
let choices ?(pricing = Pricing.flat Pricing.default) ~budget ~floor q =
  Surface.caps q.surface
  |> Array.to_list
  |> List.filter_map (fun c ->
         if c < floor || c > budget then None
         else
           let latency = Surface.latency_at q.surface c in
           let finish = q.arrival +. latency in
           let dollars =
             Pricing.spot_cost pricing
               ~gb_seconds:(Surface.gb_seconds_at q.surface c)
               ~start:q.arrival ~finish
           in
           let violations = match q.slo with Some s when latency > s -> 1 | _ -> 0 in
           Some (c, finish, dollars, violations))
  |> Array.of_list

let p_covers a b = a.pm <= b.pm && a.pd <= b.pd && a.pv <= b.pv

(* Exact tri-objective DP over (query prefix, containers used): each cell
   keeps the non-dominated partial vectors only. Pruning is lossless because
   every objective accumulates monotonically (max for makespan, sums for
   dollars and violations): a dominated prefix stays dominated under any
   common extension. *)
let exact ?(max_states = 500_000) ?pricing ~budget ~fairness queries =
  Raqo_obs.Trace.with_ ~name:"alloc/exact" @@ fun () ->
  let n = Array.length queries in
  let floors = floors ~budget ~fairness queries in
  let suffix = Array.make (n + 1) 0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) + floors.(i)
  done;
  let states = ref 0 and evaluated = ref 0 in
  let dp = Array.make (budget + 1) [] in
  dp.(0) <- [ { pm = 0.0; pd = 0.0; pv = 0; chosen = [] } ];
  try
    for i = 0 to n - 1 do
      let opts = choices ?pricing ~budget ~floor:floors.(i) queries.(i) in
      let ndp = Array.make (budget + 1) [] in
      states := 0;
      for b = 0 to budget do
        match dp.(b) with
        | [] -> ()
        | parts ->
            Array.iter
              (fun (c, finish, dollars, violations) ->
                if b + c + suffix.(i + 1) <= budget then begin
                  let cell = b + c in
                  List.iter
                    (fun p ->
                      incr evaluated;
                      let np =
                        {
                          pm = Float.max p.pm finish;
                          pd = p.pd +. dollars;
                          pv = p.pv + violations;
                          chosen = c :: p.chosen;
                        }
                      in
                      if not (List.exists (fun q -> p_covers q np) ndp.(cell)) then begin
                        let kept = List.filter (fun q -> not (p_covers np q)) ndp.(cell) in
                        states := !states - (List.length ndp.(cell) - List.length kept) + 1;
                        ndp.(cell) <- np :: kept;
                        if !states > max_states then raise Too_large
                      end)
                    parts
                end)
              opts
      done;
      Array.blit ndp 0 dp 0 (budget + 1)
    done;
    if obs_on () then M.Counter.add m_exact_states !states;
    let points =
      Array.to_list dp
      |> List.concat_map
           (List.map (fun p ->
                {
                  alloc = Array.of_list (List.rev p.chosen);
                  makespan = p.pm;
                  dollars = p.pd;
                  violations = p.pv;
                }))
    in
    if obs_on () then M.Counter.add m_evaluations !evaluated;
    Some
      {
        mode = Exact;
        frontier = frontier_of points;
        equal_split =
          evaluate ?pricing queries (equal_split_alloc ~budget ~floors queries);
        evaluated = !evaluated;
      }
  with Too_large -> None

(* ---------- seeded randomized local search ---------- *)

let random_fill rng ~budget ~floors queries =
  let n = Array.length queries in
  let alloc = Array.copy floors in
  let remaining = ref (budget - Array.fold_left ( + ) 0 alloc) in
  let stuck = ref 0 in
  while !stuck < 2 * n && !remaining > 0 do
    let i = Rng.int rng n in
    let step = Surface.cap_step queries.(i).surface in
    if alloc.(i) + step <= Surface.max_cap queries.(i).surface && step <= !remaining then begin
      alloc.(i) <- alloc.(i) + step;
      remaining := !remaining - step;
      stuck := 0
    end
    else incr stuck
  done;
  alloc

(* Multi-restart greedy local search over container-transfer moves, seeded
   from the equal split (so the reported frontier's best makespan can never
   exceed the naive baseline's) and from random feasible allocations, each
   restart descending a randomly weighted scalarization. Every evaluated
   allocation lands in the archive; the frontier is the archive's
   non-dominated subset. Fully deterministic for a fixed seed. *)
let randomized ?(restarts = 8) ?(moves = 256) ?pricing ~seed ~budget ~fairness queries =
  Raqo_obs.Trace.with_ ~name:"alloc/randomized" @@ fun () ->
  let n = Array.length queries in
  let floors = floors ~budget ~fairness queries in
  let rng = Rng.create seed in
  let archive = ref [] and evaluated = ref 0 in
  let eval alloc =
    incr evaluated;
    let p = evaluate ?pricing queries alloc in
    archive := p :: !archive;
    p
  in
  let es_alloc = equal_split_alloc ~budget ~floors queries in
  let es = eval es_alloc in
  for restart = 0 to restarts - 1 do
    let wt = Rng.float rng 1.0 in
    let wv = Rng.float rng 100.0 in
    let score p =
      (wt *. p.makespan)
      +. ((1.0 -. wt) *. 1000.0 *. p.dollars)
      +. (wv *. float_of_int p.violations)
    in
    let current =
      if restart = 0 then Array.copy es_alloc else random_fill rng ~budget ~floors queries
    in
    let used = ref (Array.fold_left ( + ) 0 current) in
    let best = ref (score (eval current)) in
    for _ = 1 to moves do
      if obs_on () then M.Counter.inc m_moves;
      let i = Rng.int rng n and j = Rng.int rng n in
      let si = Surface.cap_step queries.(i).surface in
      let sj = Surface.cap_step queries.(j).surface in
      let can_shrink = current.(i) - si >= floors.(i) in
      let can_grow cost = current.(j) + sj <= Surface.max_cap queries.(j).surface && !used + cost <= budget in
      let delta =
        match Rng.int rng 3 with
        | 0 when i <> j && can_shrink && can_grow (sj - si) -> Some (-si, sj)
        | 1 when can_grow sj -> Some (0, sj)
        | 2 when can_shrink -> Some (-si, 0)
        | _ -> None
      in
      match delta with
      | None -> ()
      | Some (di, dj) ->
          current.(i) <- current.(i) + di;
          current.(j) <- current.(j) + dj;
          used := !used + di + dj;
          let s = score (eval current) in
          if s < !best then best := s
          else begin
            current.(i) <- current.(i) - di;
            current.(j) <- current.(j) - dj;
            used := !used - di - dj
          end
    done
  done;
  { mode = Randomized; frontier = frontier_of !archive; equal_split = es; evaluated = !evaluated }

(* ---------- mode dispatch ---------- *)

(* A cheap upper bound on the exact DP's inner-loop breadth, used by [Auto]
   to decide whether exhaustive search is affordable. *)
let exact_work ~budget queries =
  let max_caps =
    Array.fold_left (fun acc q -> max acc (Array.length (Surface.caps q.surface))) 0 queries
  in
  Array.length queries * (budget + 1) * max_caps

type want = Want_exact | Want_randomized | Auto

let want_of_string = function
  | "exact" -> Some Want_exact
  | "randomized" -> Some Want_randomized
  | "auto" -> Some Auto
  | _ -> None

let want_names = [ "exact"; "randomized"; "auto" ]

let search ?(want = Auto) ?max_states ?restarts ?moves ?pricing ~seed ~budget ~fairness
    queries =
  let fallback () = randomized ?restarts ?moves ?pricing ~seed ~budget ~fairness queries in
  match want with
  | Want_randomized -> fallback ()
  | Want_exact -> (
      match exact ?max_states ?pricing ~budget ~fairness queries with
      | Some outcome -> outcome
      | None -> fallback ())
  | Auto ->
      if exact_work ~budget queries <= 200_000 then
        match exact ?max_states ?pricing ~budget ~fairness queries with
        | Some outcome -> outcome
        | None -> fallback ()
      else fallback ()

(* ---------- independent (per-query) baseline ---------- *)

(* What today's one-query-at-a-time pipeline would do: every query asks for
   its standalone preferred cap and the cluster runs them FIFO through
   {!Raqo_cluster.Queue_sim} — later arrivals queue instead of sharing. SLO
   violations count queueing against the response time. *)
let independent ?(pricing = Pricing.flat Pricing.default) ~budget queries =
  let n = Array.length queries in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = Float.compare queries.(a).arrival queries.(b).arrival in
      if c <> 0 then c else compare a b)
    order;
  let alloc = Array.make n 0 in
  let jobs =
    Array.to_list order
    |> List.map (fun i ->
           let q = queries.(i) in
           let cap = min (Surface.preferred_cap q.surface) budget in
           alloc.(i) <- cap;
           {
             Queue_sim.arrival = q.arrival;
             demand = cap;
             runtime = Surface.latency_at q.surface cap;
           })
  in
  let outcomes = Queue_sim.run ~capacity:budget jobs in
  let makespan = ref 0.0 and dollars = ref 0.0 and violations = ref 0 in
  List.iteri
    (fun k (o : Queue_sim.outcome) ->
      let i = order.(k) in
      let q = queries.(i) in
      let finish = o.start +. o.job.runtime in
      if finish > !makespan then makespan := finish;
      dollars :=
        !dollars
        +. Pricing.spot_cost pricing
             ~gb_seconds:(Surface.gb_seconds_at q.surface alloc.(i))
             ~start:o.start ~finish;
      match q.slo with
      | Some s when finish -. q.arrival > s -> incr violations
      | _ -> ())
    outcomes;
  { alloc; makespan = !makespan; dollars = !dollars; violations = !violations }

(* ---------- hypervolume ---------- *)

(* 2D hypervolume of the (makespan, dollars) projection w.r.t. a reference
   corner — the staircase area the frontier dominates. *)
let hypervolume ~ref_makespan ~ref_dollars points =
  let kept =
    List.filter (fun p -> p.makespan < ref_makespan && p.dollars < ref_dollars) points
    |> List.sort compare_points
  in
  let hv = ref 0.0 and last_d = ref ref_dollars in
  List.iter
    (fun p ->
      if p.dollars < !last_d then begin
        hv := !hv +. ((ref_makespan -. p.makespan) *. (!last_d -. p.dollars));
        last_d := p.dollars
      end)
    kept;
  !hv
