(** Workload-level global resource allocation on the Pareto frontier.

    Given N concurrent queries — each already jointly planned per-query and
    summarized by a {!Surface} — and a finite cluster container budget, the
    allocator searches *joint* allocations (one container cap per query, all
    running concurrently, caps summing to at most the budget) and exposes
    the Pareto frontier of three objectives:

    - makespan: the latest completion time [max (arrival + latency(cap))];
    - dollars: total spot-priced GB·s over each query's execution window;
    - SLO violations: queries whose latency exceeds their deadline.

    Two search modes share one evaluation and one frontier filter: an exact
    tri-objective DP over (query prefix, containers used) whose per-cell
    dominance pruning is lossless (every objective accumulates
    monotonically), and a seeded randomized local search for workloads too
    large to enumerate — multi-restart greedy descent over randomly weighted
    scalarizations, archiving every visited allocation. The randomized mode
    always starts from the naive equal split, so its frontier's best
    makespan never exceeds the baseline's; the differential oracle
    ({!Raqo_verify}'s [check_alloc]) holds exact to dominate-or-equal
    randomized on every seed. *)

type query = {
  name : string;
  tenant : string;
  weight : float;  (** tenant weight for fairness floors (positive) *)
  arrival : float;  (** submission time, seconds *)
  slo : float option;  (** latency deadline, seconds *)
  surface : Surface.t;
}

(** One joint allocation and its objective vector. [alloc.(i)] is query
    [i]'s container cap, index-aligned with the query array. *)
type point = { alloc : int array; makespan : float; dollars : float; violations : int }

type mode = Exact | Randomized

type outcome = {
  mode : mode;  (** the search that actually ran *)
  frontier : point list;  (** non-dominated, sorted by makespan ascending *)
  equal_split : point;  (** the naive equal-split baseline *)
  evaluated : int;  (** allocations (exact: partial extensions) evaluated *)
}

val mode_name : mode -> string

(** [query ~name surface] builds a workload entry (defaults: tenant
    ["default"], weight 1, arrival 0, no SLO).
    @raise Invalid_argument on nonpositive weight/SLO or negative arrival. *)
val query :
  ?tenant:string ->
  ?weight:float ->
  ?arrival:float ->
  ?slo:float ->
  name:string ->
  Surface.t ->
  query

(** [evaluate ?pricing queries alloc] prices one allocation (default
    pricing: flat {!Raqo_cluster.Pricing.default}). *)
val evaluate : ?pricing:Raqo_cluster.Pricing.schedule -> query array -> int array -> point

(** Weak and strict Pareto dominance over (makespan, dollars, violations). *)
val covers : point -> point -> bool

val dominates : point -> point -> bool

(** [floors ~budget ~fairness queries] is each query's guaranteed container
    floor: [fairness] (in [\[0, 1\]]) times its weight share of the budget,
    rounded down onto its cap grid and never below the grid minimum.
    @raise Invalid_argument when the floors exceed the budget. *)
val floors : budget:int -> fairness:float -> query array -> int array

(** [equal_split ?pricing ~budget ~fairness queries] prices the naive
    baseline: round-robin grid steps until budget or caps run out. *)
val equal_split :
  ?pricing:Raqo_cluster.Pricing.schedule -> budget:int -> fairness:float -> query array -> point

(** [exact ?max_states ?pricing ~budget ~fairness queries] runs the exact
    Pareto DP; [None] when a DP layer's non-dominated state count exceeds
    [max_states] (default 500k) — callers fall back to {!randomized}. *)
val exact :
  ?max_states:int ->
  ?pricing:Raqo_cluster.Pricing.schedule ->
  budget:int ->
  fairness:float ->
  query array ->
  outcome option

(** [randomized ?restarts ?moves ?pricing ~seed ~budget ~fairness queries]
    runs the seeded local search (defaults: 8 restarts, 256 moves each).
    Deterministic for a fixed seed. *)
val randomized :
  ?restarts:int ->
  ?moves:int ->
  ?pricing:Raqo_cluster.Pricing.schedule ->
  seed:int ->
  budget:int ->
  fairness:float ->
  query array ->
  outcome

(** The CLI/server search selector: [Auto] runs the exact DP when its work
    bound is small and the randomized search otherwise; [Want_exact] falls
    back to randomized only on state overflow. *)
type want = Want_exact | Want_randomized | Auto

val want_of_string : string -> want option
val want_names : string list

val search :
  ?want:want ->
  ?max_states:int ->
  ?restarts:int ->
  ?moves:int ->
  ?pricing:Raqo_cluster.Pricing.schedule ->
  seed:int ->
  budget:int ->
  fairness:float ->
  query array ->
  outcome

(** [independent ?pricing ~budget queries] is the no-allocator baseline:
    every query demands its standalone {!Surface.preferred_cap} and the
    cluster runs them FIFO through {!Raqo_cluster.Queue_sim} — later
    arrivals wait instead of sharing, and queueing counts against SLOs. *)
val independent :
  ?pricing:Raqo_cluster.Pricing.schedule -> budget:int -> query array -> point

(** [hypervolume ~ref_makespan ~ref_dollars points] is the 2D hypervolume of
    the (makespan, dollars) projection w.r.t. the reference corner. *)
val hypervolume : ref_makespan:float -> ref_dollars:float -> point list -> float
