module Conditions = Raqo_cluster.Conditions
module Resources = Raqo_cluster.Resources
module Join_tree = Raqo_plan.Join_tree
module Join_impl = Raqo_plan.Join_impl
module Op_cost = Raqo_cost.Op_cost
module Kernel = Raqo_cost.Kernel
module Plan_cost = Raqo_cost.Plan_cost
module M = Raqo_obs.Metrics

type t = {
  name : string;
  relations : string list;
  min_cap : int;
  cap_step : int;
  caps : int array;
  latency : float array;
  gb_seconds : float array;
}

let m_surfaces = M.counter "raqo_alloc_surfaces_total"

let name t = t.name
let relations t = t.relations
let caps t = Array.copy t.caps
let latencies t = Array.copy t.latency
let gb_seconds_curve t = Array.copy t.gb_seconds
let cap_step t = t.cap_step
let min_cap t = t.min_cap
let max_cap t = t.caps.(Array.length t.caps - 1)

(* Index of the largest cap <= [containers], or -1 below the grid. *)
let cap_index t containers =
  if containers < t.min_cap then -1
  else min ((containers - t.min_cap) / t.cap_step) (Array.length t.caps - 1)

let latency_at t containers =
  let i = cap_index t containers in
  if i < 0 then Float.infinity else t.latency.(i)

let gb_seconds_at t containers =
  let i = cap_index t containers in
  if i < 0 then Float.infinity else t.gb_seconds.(i)

let cap_floor t containers =
  let i = cap_index t containers in
  if i < 0 then t.min_cap else t.caps.(i)

(* The smallest cap already achieving the surface's best latency — what a
   query would ask for if it were planned alone (prefix-min curves make the
   last entry the global minimum, reached by exact float propagation). *)
let preferred_cap t =
  let best = t.latency.(Array.length t.latency - 1) in
  let i = ref 0 in
  while t.latency.(!i) > best do incr i done;
  t.caps.(!i)

let build ?(use_kernel = true) ~model ~conditions ~schema ~name plan =
  Raqo_obs.Trace.with_ ~name:"alloc/surface" @@ fun () ->
  let sc = Conditions.steps_containers conditions in
  let sg = Conditions.steps_gb conditions in
  let caps =
    Array.init sc (fun i ->
        conditions.Conditions.min_containers + (i * conditions.Conditions.container_step))
  in
  let gbs =
    Array.init sg (fun j ->
        conditions.Conditions.min_gb +. (float_of_int j *. conditions.Conditions.gb_step))
  in
  let latency = Array.make sc 0.0 and gb_seconds = Array.make sc 0.0 in
  let buf = Array.make (Conditions.n_configs conditions) 0.0 in
  let col_cost = Array.make sc Float.infinity and col_gbs = Array.make sc 0.0 in
  let stages =
    Join_tree.fold_joins
      (fun acc _annot left right -> Plan_cost.join_small_gb schema ~left ~right :: acc)
      [] plan
  in
  List.iter
    (fun small_gb ->
      Array.fill col_cost 0 sc Float.infinity;
      Array.fill col_gbs 0 sc 0.0;
      List.iter
        (fun impl ->
          let swept =
            use_kernel
            &&
            match Kernel.make model impl ~small_gb with
            | Some k ->
                Kernel.sweep k conditions buf;
                true
            | None -> false
          in
          if not swept then
            for j = 0 to sg - 1 do
              for i = 0 to sc - 1 do
                let resources = Resources.make ~containers:caps.(i) ~container_gb:gbs.(j) in
                buf.((j * sc) + i) <- Op_cost.predict_exn model impl ~small_gb ~resources
              done
            done;
          (* Column minimum over memory sizes: ascending [j] with a strict
             improvement test keeps the first (smallest-memory) argmin, and
             SMJ before BHJ in {!Join_impl.all} breaks impl ties — all
             deterministic. *)
          for i = 0 to sc - 1 do
            for j = 0 to sg - 1 do
              let c = buf.((j * sc) + i) in
              if c < col_cost.(i) then begin
                col_cost.(i) <- c;
                col_gbs.(i) <-
                  Resources.gb_seconds
                    (Resources.make ~containers:caps.(i) ~container_gb:gbs.(j))
                    c
              end
            done
          done)
        Join_impl.all;
      (* Prefix-min over the container axis: best per-stage config whose
         container count fits under each cap, so curves are monotone
         nonincreasing by construction. *)
      let best = ref Float.infinity and best_gbs = ref 0.0 in
      for i = 0 to sc - 1 do
        if col_cost.(i) < !best then begin
          best := col_cost.(i);
          best_gbs := col_gbs.(i)
        end;
        latency.(i) <- latency.(i) +. !best;
        gb_seconds.(i) <- gb_seconds.(i) +. !best_gbs
      done)
    stages;
  if Raqo_obs.Obs.enabled () then M.Counter.inc m_surfaces;
  {
    name;
    relations = Join_tree.relations plan;
    min_cap = conditions.Conditions.min_containers;
    cap_step = conditions.Conditions.container_step;
    caps;
    latency;
    gb_seconds;
  }
