(** Per-query response surfaces: latency (and GB·s usage) as a function of a
    container *cap*, precomputed from a joint plan's per-stage resource
    grids.

    The workload allocator needs to re-price a query at many different
    container budgets without re-planning it. Given a joint plan's shape,
    each join stage's cost over the full (containers x memory) grid is swept
    once — through the compiled {!Raqo_cost.Kernel} whenever the model
    compiles, scalar {!Raqo_cost.Op_cost.predict_exn} otherwise — taking the
    better of both join implementations per cell. A per-stage prefix-min
    over the container axis then yields, for every cap [c], the best
    per-stage configuration using at most [c] containers; summing stages
    gives the query's latency-vs-cap curve, monotone nonincreasing by
    construction. The paired GB·s curve records the usage of the chosen
    (deterministically tie-broken) configurations, for pricing. *)

type t

(** [build ?use_kernel ~model ~conditions ~schema ~name plan] sweeps the
    plan's stages over [conditions] and returns the surface. The plan's
    *shape* is fixed; implementation and resources are re-chosen per cap.
    [use_kernel:false] forces the scalar sweep (extended-space models never
    compile and use it regardless). *)
val build :
  ?use_kernel:bool ->
  model:Raqo_cost.Op_cost.t ->
  conditions:Raqo_cluster.Conditions.t ->
  schema:Raqo_catalog.Schema.t ->
  name:string ->
  Raqo_plan.Join_tree.joint ->
  t

val name : t -> string
val relations : t -> string list

(** The cap grid (ascending), and fresh copies of both curves, index-aligned
    with {!caps}. *)
val caps : t -> int array

val latencies : t -> float array
val gb_seconds_curve : t -> float array
val cap_step : t -> int
val min_cap : t -> int
val max_cap : t -> int

(** [latency_at t c] ([gb_seconds_at t c]) evaluates the curve at the
    largest grid cap [<= c]; [infinity] below the grid. *)
val latency_at : t -> int -> float

val gb_seconds_at : t -> int -> float

(** [cap_floor t c] is the largest grid cap [<= c], or the grid minimum. *)
val cap_floor : t -> int -> int

(** [preferred_cap t] is the smallest cap already achieving the surface's
    best latency — what the query would request if planned alone. *)
val preferred_cap : t -> int
