module Pool = Raqo_par.Pool
module Queue_sim = Raqo_cluster.Queue_sim

type spec = {
  name : string;
  relations : string list;
  tenant : string;
  weight : float;
  arrival : float;
  slo : float option;
}

let query ?use_kernel ~model ~conditions ~schema ~plan spec =
  Option.map
    (fun joint ->
      Allocator.query ~tenant:spec.tenant ~weight:spec.weight ~arrival:spec.arrival
        ?slo:spec.slo ~name:spec.name
        (Surface.build ?use_kernel ~model ~conditions ~schema ~name:spec.name joint))
    (plan spec.relations)

let queries ?pool ?use_kernel ~model ~conditions ~schema ~plan specs =
  let build spec = query ?use_kernel ~model ~conditions ~schema ~plan spec in
  (match pool with
  | Some pool when Pool.size pool > 1 -> Pool.parallel_map pool build specs
  | _ -> List.map build specs)
  |> List.filter_map Fun.id
  |> Array.of_list

(* Heavy-tailed arrival process reused verbatim from the queue simulation:
   only the arrival instants matter here (runtimes come from the response
   surfaces), so demands and runtimes are discarded. *)
let arrivals rng ~n ~rate ~capacity =
  let workload =
    {
      Queue_sim.jobs = n;
      arrival_rate = rate;
      mean_demand = 4;
      runtime_shape = 2.5;
      runtime_scale = 5.0;
    }
  in
  Queue_sim.generate rng workload ~capacity
  |> List.map (fun (j : Queue_sim.job) -> j.arrival)
  |> Array.of_list
