(** Assembling allocator workloads from query specs.

    The allocator itself is planner-agnostic: it consumes {!Surface}s. This
    module bridges from relation lists to surfaces through a caller-supplied
    [plan] closure (typically [Raqo.Cost_based.optimize] on a fresh
    optimizer), optionally fanning per-query planning across a domain
    pool — surfaces are independent, so any pool size is bit-identical to
    sequential. *)

type spec = {
  name : string;
  relations : string list;
  tenant : string;
  weight : float;
  arrival : float;
  slo : float option;
}

(** [query ~model ~conditions ~schema ~plan spec] plans one spec and builds
    its surface; [None] when [plan] finds no feasible joint plan. *)
val query :
  ?use_kernel:bool ->
  model:Raqo_cost.Op_cost.t ->
  conditions:Raqo_cluster.Conditions.t ->
  schema:Raqo_catalog.Schema.t ->
  plan:(string list -> Raqo_plan.Join_tree.joint option) ->
  spec ->
  Allocator.query option

(** [queries ?pool ...] plans every spec (in parallel across [pool] when
    given), dropping infeasible ones. *)
val queries :
  ?pool:Raqo_par.Pool.t ->
  ?use_kernel:bool ->
  model:Raqo_cost.Op_cost.t ->
  conditions:Raqo_cluster.Conditions.t ->
  schema:Raqo_catalog.Schema.t ->
  plan:(string list -> Raqo_plan.Join_tree.joint option) ->
  spec list ->
  Allocator.query array

(** [arrivals rng ~n ~rate ~capacity] draws [n] heavy-tailed arrival
    instants from {!Raqo_cluster.Queue_sim.generate} (ascending). *)
val arrivals : Raqo_util.Rng.t -> n:int -> rate:float -> capacity:int -> float array
