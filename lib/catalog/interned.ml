(* Dense relation ids for one query, fixed at admission: id = position in the
   relation list, so every mask-based planner enumerates subsets in exactly
   the order the string-based planners enumerate name lists. The structure is
   immutable after [make]; per-coster memo tables live in the costers, which
   keeps one context shareable across domains. *)

type t = {
  schema : Schema.t;
  rels : string array;  (* id -> name, in caller list order *)
  index : (string, int) Hashtbl.t;
  n : int;
  adj : int array;  (* adj.(i) = mask of peers of relation i within the query *)
}

let max_relations = 62 (* masks must fit a native OCaml int *)

let make schema relations =
  let rels = Array.of_list relations in
  let n = Array.length rels in
  if n = 0 then invalid_arg "Interned.make: empty relation set";
  if n > max_relations then invalid_arg "Interned.make: more than 62 relations";
  Array.iter
    (fun r -> if not (Schema.mem schema r) then invalid_arg ("Interned.make: unknown " ^ r))
    rels;
  let index = Hashtbl.create (2 * n) in
  (* Duplicate names are tolerated (the string planners never rejected them):
     each occurrence keeps its own id, lookups resolve to one of them. *)
  Array.iteri (fun i r -> if not (Hashtbl.mem index r) then Hashtbl.add index r i) rels;
  let graph = Schema.graph schema in
  let adj =
    Array.init n (fun i ->
        let mask = ref 0 in
        for j = 0 to n - 1 do
          if i <> j && Option.is_some (Join_graph.selectivity graph rels.(i) rels.(j)) then
            mask := !mask lor (1 lsl j)
        done;
        !mask)
  in
  { schema; rels; index; n; adj }

let schema t = t.schema
let n t = t.n
let name t i = t.rels.(i)
let relations t = Array.to_list t.rels
let adj t = t.adj
let full_mask t = (1 lsl t.n) - 1

let id_of_name t r =
  match Hashtbl.find_opt t.index r with
  | Some i -> i
  | None -> invalid_arg ("Interned.id_of_name: unknown " ^ r)

let mask_of_name t r = 1 lsl id_of_name t r

let mask_of_names t names =
  List.fold_left (fun mask r -> mask lor mask_of_name t r) 0 names

(* Ascending id order — the same order the string planners' [names_of]
   produced, so shimmed costers see byte-identical argument lists. *)
let names_of_mask t mask =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if mask land (1 lsl i) <> 0 then t.rels.(i) :: acc else acc)
  in
  go (t.n - 1) []

(* ---- subset enumeration helpers -----------------------------------------
   Pure bit manipulation shared by every mask-based enumerator (DPsub,
   exhaustive shapes, the parallel memo sweep). They live here rather than in
   the planners so subset order is defined once: ascending for same-size
   subsets, descending for canonical splits. *)

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go mask 0

let iter_subsets_of_size ~n ~size f =
  if n < 0 || n > max_relations then invalid_arg "Interned.iter_subsets_of_size: bad n";
  if size > 0 && size <= n then begin
    (* Gosper's hack: next higher integer with the same popcount, visiting
       the C(n, size) masks in ascending numeric order. The last subset is
       computed up front so the increment never has to form [1 lsl n]. *)
    let last = ((1 lsl size) - 1) lsl (n - size) in
    let v = ref ((1 lsl size) - 1) in
    let continue = ref true in
    while !continue do
      f !v;
      if !v = last then continue := false
      else begin
        let c = !v land - !v in
        let r = !v + c in
        v := (((r lxor !v) lsr 2) / c) lor r
      end
    done
  end

let subsets_of_size ~n ~size =
  let acc = ref [] in
  iter_subsets_of_size ~n ~size (fun mask -> acc := mask :: !acc);
  List.rev !acc

let fold_splits mask ~init ~f =
  (* Canonical proper splits of [mask]: [sub] keeps the lowest set bit (so
     each unordered {sub, rest} pair appears exactly once) and [rest] is the
     non-empty complement. Submasks are visited in descending numeric order —
     the order the planners' historical inline loops used, which their
     first-wins tie-breaks depend on. *)
  if mask = 0 then invalid_arg "Interned.fold_splits: empty mask";
  let low = mask land -mask in
  let acc = ref init in
  let sub = ref ((mask - 1) land mask) in
  while !sub <> 0 do
    if !sub land low <> 0 then acc := f !acc ~sub:!sub ~rest:(mask lxor !sub);
    sub := (!sub - 1) land mask
  done;
  !acc

let iter_splits mask f = fold_splits mask ~init:() ~f:(fun () ~sub ~rest -> f ~sub ~rest)

let connected t mask =
  if mask = 0 then false
  else begin
    let seed = mask land -mask in
    let reach = ref seed in
    let frontier = ref seed in
    while !frontier <> 0 do
      let next = ref 0 in
      for i = 0 to t.n - 1 do
        if !frontier land (1 lsl i) <> 0 then next := !next lor (t.adj.(i) land mask)
      done;
      frontier := !next land lnot !reach;
      reach := !reach lor !next
    done;
    !reach = mask
  end
