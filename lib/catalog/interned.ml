(* Dense relation ids for one query, fixed at admission: id = position in the
   relation list, so every mask-based planner enumerates subsets in exactly
   the order the string-based planners enumerate name lists. The structure is
   immutable after [make]; per-coster memo tables live in the costers, which
   keeps one context shareable across domains. *)

type t = {
  schema : Schema.t;
  rels : string array;  (* id -> name, in caller list order *)
  index : (string, int) Hashtbl.t;
  n : int;
  adj : int array;  (* adj.(i) = mask of peers of relation i within the query *)
}

let max_relations = 62 (* masks must fit a native OCaml int *)

let make schema relations =
  let rels = Array.of_list relations in
  let n = Array.length rels in
  if n = 0 then invalid_arg "Interned.make: empty relation set";
  if n > max_relations then invalid_arg "Interned.make: more than 62 relations";
  Array.iter
    (fun r -> if not (Schema.mem schema r) then invalid_arg ("Interned.make: unknown " ^ r))
    rels;
  let index = Hashtbl.create (2 * n) in
  (* Duplicate names are tolerated (the string planners never rejected them):
     each occurrence keeps its own id, lookups resolve to one of them. *)
  Array.iteri (fun i r -> if not (Hashtbl.mem index r) then Hashtbl.add index r i) rels;
  let graph = Schema.graph schema in
  let adj =
    Array.init n (fun i ->
        let mask = ref 0 in
        for j = 0 to n - 1 do
          if i <> j && Option.is_some (Join_graph.selectivity graph rels.(i) rels.(j)) then
            mask := !mask lor (1 lsl j)
        done;
        !mask)
  in
  { schema; rels; index; n; adj }

let schema t = t.schema
let n t = t.n
let name t i = t.rels.(i)
let relations t = Array.to_list t.rels
let adj t = t.adj
let full_mask t = (1 lsl t.n) - 1

let id_of_name t r =
  match Hashtbl.find_opt t.index r with
  | Some i -> i
  | None -> invalid_arg ("Interned.id_of_name: unknown " ^ r)

let mask_of_name t r = 1 lsl id_of_name t r

let mask_of_names t names =
  List.fold_left (fun mask r -> mask lor mask_of_name t r) 0 names

(* Ascending id order — the same order the string planners' [names_of]
   produced, so shimmed costers see byte-identical argument lists. *)
let names_of_mask t mask =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if mask land (1 lsl i) <> 0 then t.rels.(i) :: acc else acc)
  in
  go (t.n - 1) []

let connected t mask =
  if mask = 0 then false
  else begin
    let seed = mask land -mask in
    let reach = ref seed in
    let frontier = ref seed in
    while !frontier <> 0 do
      let next = ref 0 in
      for i = 0 to t.n - 1 do
        if !frontier land (1 lsl i) <> 0 then next := !next lor (t.adj.(i) land mask)
      done;
      frontier := !next land lnot !reach;
      reach := !reach lor !next
    done;
    !reach = mask
  end
