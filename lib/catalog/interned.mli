(** Dense relation ids and adjacency bitmasks for one query, fixed at
    admission. The mask-based planning core ({!Raqo_planner}) keys every DP
    table and memo on integer subsets of these ids instead of string lists;
    ids are assigned by position in the admitted relation list, so subset
    enumeration order matches the historical string-based planners exactly.

    A context is immutable after {!make} and safe to share across domains;
    costers keep their own memo tables. *)

type t

(** Masks must fit a native [int]: at most 62 relations per query. Larger
    queries stay on the string-based planner paths. *)
val max_relations : int

(** [make schema relations] interns [relations] (ids in list order) and
    precomputes per-relation adjacency masks from the schema's join graph.
    @raise Invalid_argument on an empty list, more than {!max_relations}
    relations, or a name missing from [schema]. *)
val make : Schema.t -> string list -> t

val schema : t -> Schema.t

(** [n t] is the number of interned relations. *)
val n : t -> int

(** [name t i] is the relation name of id [i]. *)
val name : t -> int -> string

(** [relations t] is the admitted relation list, original order. *)
val relations : t -> string list

(** [adj t] is the adjacency table: [(adj t).(i)] is the mask of relations
    sharing a join edge with relation [i], restricted to the query. Treat as
    read-only. *)
val adj : t -> int array

(** [full_mask t] is the mask containing every interned relation. *)
val full_mask : t -> int

(** [mask_of_name t r] is the singleton mask of [r].
    @raise Invalid_argument when [r] was not interned. *)
val mask_of_name : t -> string -> int

val mask_of_names : t -> string list -> int

(** [names_of_mask t mask] lists the members of [mask] in ascending id
    order — the order the string planners historically produced. *)
val names_of_mask : t -> int -> string list

(** [connected t mask] is true when the join sub-graph induced by [mask] is
    connected (BFS over the adjacency masks). *)
val connected : t -> int -> bool

(** {2 Subset enumeration}

    Pure bitmask helpers shared by every mask-based enumerator (DPsub,
    exhaustive shape generation, the parallel memo sweep). They are
    independent of any context; enumeration orders are part of the contract
    because the planners' first-wins tie-breaks depend on them. *)

(** [popcount mask] is the number of set bits. *)
val popcount : int -> int

(** [iter_subsets_of_size ~n ~size f] applies [f] to every subset of
    [{0..n-1}] with exactly [size] members, in ascending numeric order
    (Gosper's hack). No calls when [size = 0] or [size > n].
    @raise Invalid_argument when [n] is negative or above {!max_relations}. *)
val iter_subsets_of_size : n:int -> size:int -> (int -> unit) -> unit

(** [subsets_of_size ~n ~size] is {!iter_subsets_of_size} as a list. *)
val subsets_of_size : n:int -> size:int -> int list

(** [fold_splits mask ~init ~f] folds over the canonical proper splits of
    [mask]: each unordered partition into non-empty [sub] and [rest] appears
    exactly once, with [sub] holding [mask]'s lowest set bit. [sub] values
    are visited in descending numeric order — the order the DP planners'
    historical inline loops used.
    @raise Invalid_argument on an empty mask. *)
val fold_splits : int -> init:'a -> f:('a -> sub:int -> rest:int -> 'a) -> 'a

(** [iter_splits mask f] is {!fold_splits} for effects. *)
val iter_splits : int -> (sub:int -> rest:int -> unit) -> unit
