(** Current cluster conditions, as the resource manager reports them to the
    optimizer: the feasible, discretized resource space. The paper's
    evaluation default is 1..100 containers (step 1) of 1..10 GB (step 1 GB),
    scaled up to 100K containers of 100 GB in Figure 15(b). *)

type t = {
  min_containers : int;
  max_containers : int;
  container_step : int;  (** discrete allocation granularity *)
  min_gb : float;
  max_gb : float;
  gb_step : float;
}

(** [make ()] validates bounds and steps. All arguments default to the
    paper's evaluation cluster: 1..100 containers step 1, 1..10 GB step 1. *)
val make :
  ?min_containers:int ->
  ?max_containers:int ->
  ?container_step:int ->
  ?min_gb:float ->
  ?max_gb:float ->
  ?gb_step:float ->
  unit ->
  t

(** The paper's default evaluation cluster (100 containers x 10 GB). *)
val default : t

(** [steps_containers t] is the number of grid points on the container axis. *)
val steps_containers : t -> int

(** [steps_gb t] is the number of grid points on the memory axis. *)
val steps_gb : t -> int

(** [n_configs t] is the size of the discrete resource space
    ([steps_containers * steps_gb]). *)
val n_configs : t -> int

(** [contains t r] is true when [r] lies on the grid within bounds. *)
val contains : t -> Resources.t -> bool

(** [clamp t r] projects [r] onto the bounds (not onto the grid). *)
val clamp : t -> Resources.t -> Resources.t

(** [min_config t] is the cheapest configuration — the hill-climb start. *)
val min_config : t -> Resources.t

(** [max_config t] is the largest configuration. *)
val max_config : t -> Resources.t

(** [all_configs t] enumerates the full grid (brute-force search space).
    Containers vary fastest. *)
val all_configs : t -> Resources.t list

(** [scale_capacity t ~containers ~gb] returns conditions with new maxima,
    for the Figure 15(b) cluster-size sweep. *)
val scale_capacity : t -> containers:int -> gb:float -> t

val pp : Format.formatter -> t -> unit
