type t = { dollars_per_gb_hour : float }

let default = { dollars_per_gb_hour = 0.016 }

let gb_seconds_cost t gbs = gbs /. 3600.0 *. t.dollars_per_gb_hour

let run_cost t ~resources ~seconds =
  gb_seconds_cost t (Resources.gb_seconds resources seconds)

(* ---------- spot-price schedules ---------- *)

type schedule = { base : t; swings : (float * float) array }

let flat base = { base; swings = [||] }

let spot ?(swings = []) base =
  let arr = Array.of_list swings in
  Array.iteri
    (fun i (at, m) ->
      if m <= 0.0 then invalid_arg "Pricing.spot: multiplier must be positive";
      if at < 0.0 then invalid_arg "Pricing.spot: swing time must be >= 0";
      if i > 0 && fst arr.(i - 1) >= at then
        invalid_arg "Pricing.spot: swing times must be strictly increasing")
    arr;
  { base; swings = arr }

let random_swings rng ~horizon ~segments =
  if segments <= 0 then []
  else
    List.init segments (fun i ->
        let at = float_of_int (i + 1) *. horizon /. float_of_int (segments + 1) in
        let m = Raqo_util.Rng.float_in_range rng ~lo:0.5 ~hi:2.0 in
        (at, m))

let multiplier_at s time =
  let m = ref 1.0 in
  (try
     Array.iter
       (fun (at, mult) -> if at <= time then m := mult else raise Exit)
       s.swings
   with Exit -> ());
  !m

(* Piecewise-constant integral of the multiplier over [start, finish],
   divided by the duration. A zero-duration window prices at the rate in
   force at [start]; a price step exactly at a window boundary has already
   taken effect there (segments are closed on the left). *)
let average_multiplier s ~start ~finish =
  if finish < start then invalid_arg "Pricing.average_multiplier: finish < start";
  if finish = start then multiplier_at s start
  else begin
    let acc = ref 0.0 and t = ref start in
    Array.iter
      (fun (at, _) ->
        if at > !t && at < finish then begin
          acc := !acc +. ((at -. !t) *. multiplier_at s !t);
          t := at
        end)
      s.swings;
    acc := !acc +. ((finish -. !t) *. multiplier_at s !t);
    !acc /. (finish -. start)
  end

let spot_cost s ~gb_seconds ~start ~finish =
  gb_seconds_cost s.base gb_seconds *. average_multiplier s ~start ~finish
