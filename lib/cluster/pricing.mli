(** Serverless pricing, as in the paper's monetary-cost analysis: "users only
    pay for the total container hours consumed", i.e. price is proportional
    to memory held x time held. *)

type t = {
  dollars_per_gb_hour : float;
      (** rate per GB of container memory per hour (Azure-Data-Lake-style AU pricing) *)
}

(** Default rate (order of magnitude of 2018 serverless analytics pricing). *)
val default : t

(** [run_cost t ~resources ~seconds] is the dollar cost of holding
    [resources] for [seconds]. *)
val run_cost : t -> resources:Resources.t -> seconds:float -> float

(** [gb_seconds_cost t gbs] prices raw GB·s usage. *)
val gb_seconds_cost : t -> float -> float

(** {1 Spot-price schedules}

    A piecewise-constant multiplier over the base rate, modelling spot-market
    price swings during a workload's execution window. Segments are closed on
    the left: a swing at time [s] is the rate in force from [s] (inclusive)
    until the next swing. *)

type schedule
(** A base rate plus an ordered list of [(time, multiplier)] swings. *)

(** [flat base] never swings: every window prices at [base]. *)
val flat : t -> schedule

(** [spot ?swings base] builds a schedule. Swing times must be [>= 0] and
    strictly increasing; multipliers must be positive. The multiplier before
    the first swing is [1.0].
    @raise Invalid_argument on unordered or nonpositive inputs. *)
val spot : ?swings:(float * float) list -> t -> schedule

(** [random_swings rng ~horizon ~segments] draws a deterministic schedule of
    [segments] swings evenly spaced over [horizon] with multipliers uniform
    in [\[0.5, 2.0)] — the synthetic spot market the allocator scenarios
    use. *)
val random_swings : Raqo_util.Rng.t -> horizon:float -> segments:int -> (float * float) list

(** [multiplier_at s time] is the multiplier in force at [time]. *)
val multiplier_at : schedule -> float -> float

(** [average_multiplier s ~start ~finish] is the time-averaged multiplier
    over the window; a zero-duration window averages to the multiplier at
    [start].
    @raise Invalid_argument when [finish < start]. *)
val average_multiplier : schedule -> start:float -> finish:float -> float

(** [spot_cost s ~gb_seconds ~start ~finish] prices [gb_seconds] of usage
    spread uniformly over the window, under the schedule's swings. *)
val spot_cost : schedule -> gb_seconds:float -> start:float -> finish:float -> float
