module Coster = Raqo_planner.Coster
module Resource_planner = Raqo_resource.Resource_planner
module Interned = Raqo_catalog.Interned
module Rewrite = Raqo_rewrite.Rewrite

type planner_kind = Selinger | Fast_randomized | Bushy_dp

type t = {
  kind : planner_kind;
  schema : Raqo_catalog.Schema.t;
  model : Raqo_cost.Op_cost.t;
  resource_planner : Resource_planner.t;
  rng : Raqo_util.Rng.t;
  randomized_params : Raqo_planner.Randomized.params;
  memoize : bool;
  parallel_memo : bool;
  kernel : bool;
  rewrite : Rewrite.t option;
  rewrite_hints : Rewrite.hints;
  (* Instrumentation handles resolved once at creation against the metrics
     registry this optimizer was built with — the process-wide default, or a
     per-server registry so two resident servers share no mutable state. *)
  m_plans : Raqo_obs.Metrics.Counter.t;
  m_plan_seconds : Raqo_obs.Metrics.Histogram.t;
}

let create ?(kind = Selinger) ?(seed = 42)
    ?(randomized_params = Raqo_planner.Randomized.default_params)
    ?(resource_strategy = Resource_planner.Hill_climb) ?(pruned = false) ?(cache = true)
    ?(lookup = Raqo_resource.Plan_cache.Exact) ?(memoize = false) ?(kernel = true)
    ?(parallel_memo = true) ?cache_capacity ?shared_cache ?(rewrite = true)
    ?(rewrite_hints = Rewrite.no_hints) ?(metrics = Raqo_obs.Metrics.default) ~model
    ~conditions schema =
  {
    kind;
    schema;
    model;
    resource_planner =
      Resource_planner.create ~strategy:resource_strategy ~pruned ~cache ~lookup ~kernel
        ?cache_capacity ?shared_cache ~registry:metrics conditions;
    rng = Raqo_util.Rng.create seed;
    randomized_params;
    memoize;
    parallel_memo;
    kernel;
    rewrite = (if rewrite then Some (Rewrite.create ~registry:metrics schema) else None);
    rewrite_hints;
    m_plans = Raqo_obs.Metrics.counter_in metrics "raqo_plans_total";
    m_plan_seconds = Raqo_obs.Metrics.histogram_in metrics "raqo_plan_seconds";
  }

let schema t = t.schema
let model t = t.model
let conditions t = Resource_planner.conditions t.resource_planner
let resource_planner t = t.resource_planner

let with_conditions t conditions =
  { t with resource_planner = Resource_planner.with_conditions t.resource_planner conditions }

(* Admission: intern the query's relations for the mask-based planners.
   [None] sends the query down the historical string path — which owns the
   validation errors (empty set, unknown relation) so messages stay exactly
   as they were, and which alone handles queries too large for native-int
   masks (the randomized planner accepts up to 100 relations). *)
let interned_ctx t relations =
  let n = List.length relations in
  if n = 0 || n > Interned.max_relations then None
  else if List.for_all (Raqo_catalog.Schema.mem t.schema) relations then
    Some (Interned.make t.schema relations)
  else None

let run_planner t coster relations =
  match t.kind with
  | Selinger -> Raqo_planner.Selinger.optimize coster t.schema relations
  | Bushy_dp -> Raqo_planner.Dpsub.optimize coster t.schema relations
  | Fast_randomized ->
      Raqo_planner.Randomized.optimize ~params:t.randomized_params t.rng coster t.schema
        relations

let run_planner_masked t m ctx =
  match t.kind with
  | Selinger -> Raqo_planner.Selinger.optimize_masked m ctx
  | Bushy_dp -> Raqo_planner.Dpsub.optimize_masked m ctx
  | Fast_randomized ->
      Raqo_planner.Randomized.optimize_masked ~params:t.randomized_params t.rng m ctx

let kind_span = function
  | Selinger -> "plan/selinger"
  | Bushy_dp -> "plan/bushy-dp"
  | Fast_randomized -> "plan/randomized"

(* Top-level planning span + duration histogram; everything the planners and
   resource searches record nests under this span (across domains too — the
   pool re-parents its tasks to the submitting span). *)
let instrumented t f =
  if not (Raqo_obs.Obs.enabled ()) then f ()
  else begin
    let t0 = Raqo_obs.Obs.now_ns () in
    let span = Raqo_obs.Trace.start (kind_span t.kind) in
    match f () with
    | result ->
        Raqo_obs.Trace.finish span;
        Raqo_obs.Metrics.Counter.inc t.m_plans;
        Raqo_obs.Metrics.Histogram.observe t.m_plan_seconds
          (float_of_int (Raqo_obs.Obs.now_ns () - t0) /. 1e9);
        result
    | exception e ->
        Raqo_obs.Trace.finish span;
        raise e
  end

let wrap t coster = if t.memoize then Coster.memoize coster else coster
let wrap_masked t ctx m = if t.memoize then Coster.memoize_masked ctx m else m

(* The production costers, exposed so the verification layer can drive (and
   re-cost against) the exact coster [optimize] / [optimize_qo] use. *)
let coster t = wrap t (Coster.raqo t.model t.schema t.resource_planner)
let coster_qo t ~resources = wrap t (Coster.fixed t.model t.schema resources)

let masked_coster t ctx = wrap_masked t ctx (Coster.raqo_masked t.model ctx t.resource_planner)

let masked_coster_qo t ctx ~resources =
  wrap_masked t ctx (Coster.fixed_masked t.model ctx resources)

(* Logical rewrite pass: when a rule fires, the planner below sees the
   rewritten stats and the surviving relations via a record copy — the
   resource planner, caches and counters stay shared with [t]. A no-op
   rewrite returns the inputs physically unchanged, so zero-applicable
   queries plan bit-identically to [~rewrite:false]. *)
let rewrite_query t relations =
  match t.rewrite with
  | None -> (t, relations)
  | Some eng ->
      let changed =
        if not (Raqo_obs.Obs.enabled ()) then
          Rewrite.apply eng ~hints:t.rewrite_hints relations
        else begin
          let span = Raqo_obs.Trace.start "plan/rewrite" in
          match Rewrite.apply eng ~hints:t.rewrite_hints relations with
          | changed ->
              Raqo_obs.Trace.finish span;
              changed
          | exception e ->
              Raqo_obs.Trace.finish span;
              raise e
        end
      in
      if changed then
        ({ t with schema = Rewrite.schema_out eng }, Rewrite.relations_out eng)
      else (t, relations)

let rewrite_report t = Option.map Rewrite.last t.rewrite

let optimize t relations =
  instrumented t (fun () ->
      let t, relations = rewrite_query t relations in
      match interned_ctx t relations with
      | Some ctx -> run_planner_masked t (masked_coster t ctx) ctx
      | None -> run_planner t (coster t) relations)

(* A fresh coster per restart/worker: the raqo coster's memo tables
   (statistics and, when enabled, join memoization) are plain hashtables, and
   the forked resource planner keeps cache and kernel scratch single-domain.
   The shared atomic counters keep aggregate instrumentation meaningful. *)
let restart_planner t = fun () -> Resource_planner.fork t.resource_planner

let restart_coster t =
  let planner = restart_planner t in
  fun () -> wrap t (Coster.raqo t.model t.schema (planner ()))

(* The interned context is immutable, so restarts on different domains share
   it; each gets its own masked coster (private memo tables). *)
let restart_masked_coster t ctx =
  let planner = restart_planner t in
  fun () -> wrap_masked t ctx (Coster.raqo_masked t.model ctx (planner ()))

let optimize_par t pool relations =
  match t.kind with
  | Selinger -> optimize t relations
  | Bushy_dp when not t.parallel_memo -> optimize t relations
  | Bushy_dp ->
      instrumented t (fun () ->
          let t, relations = rewrite_query t relations in
          match interned_ctx t relations with
          | Some ctx ->
              Raqo_planner.Dpsub.optimize_par_masked ~coster:(restart_masked_coster t ctx)
                pool ctx
          | None ->
              (* The string path owns the validation errors for empty /
                 unknown relation sets; >62-relation queries refuse there
                 exactly as the sequential DP does. *)
              run_planner t (coster t) relations)
  | Fast_randomized ->
      instrumented t (fun () ->
          let t, relations = rewrite_query t relations in
          match interned_ctx t relations with
          | Some ctx ->
              Raqo_planner.Randomized.optimize_par_masked ~params:t.randomized_params pool
                t.rng
                ~coster:(restart_masked_coster t ctx)
                ctx
          | None ->
              Raqo_planner.Randomized.optimize_par ~params:t.randomized_params pool t.rng
                ~coster:(restart_coster t) t.schema relations)

(* Adaptive RAQO: [t] is the optimizer a user would build over the (possibly
   erroneous) estimate schema; [truth] is what execution actually encounters.
   Plan statically from the estimates, then execute with boundary
   re-optimization against the truth. The static plan, its estimated cost,
   and both simulated outcomes travel in the report. *)
let optimize_adaptive ?pool ?replan_cost_s ~engine ~truth t relations =
  let static =
    match pool with
    | Some pool -> optimize_par t pool relations
    | None -> optimize t relations
  in
  Option.map
    (fun (plan, est_cost) ->
      let report =
        Raqo_adaptive.Adaptive_exec.run ?pool ?replan_cost_s ~kernel:t.kernel ~engine
          ~model:t.model ~conditions:(conditions t) ~truth ~estimates:t.schema plan
      in
      (report, est_cost))
    static

let optimize_qo t ~resources relations =
  instrumented t (fun () ->
      match interned_ctx t relations with
      | Some ctx -> run_planner_masked t (masked_coster_qo t ctx ~resources) ctx
      | None -> run_planner t (coster_qo t ~resources) relations)

let candidates t relations =
  match interned_ctx t relations with
  | Some ctx -> begin
      let m = masked_coster t ctx in
      match t.kind with
      | Selinger -> Option.to_list (Raqo_planner.Selinger.optimize_masked m ctx)
      | Bushy_dp -> Option.to_list (Raqo_planner.Dpsub.optimize_masked m ctx)
      | Fast_randomized ->
          Raqo_planner.Randomized.local_optima_masked ~params:t.randomized_params t.rng m ctx
    end
  | None -> begin
      let coster = coster t in
      match t.kind with
      | Selinger -> Option.to_list (Raqo_planner.Selinger.optimize coster t.schema relations)
      | Bushy_dp -> Option.to_list (Raqo_planner.Dpsub.optimize coster t.schema relations)
      | Fast_randomized ->
          Raqo_planner.Randomized.local_optima ~params:t.randomized_params t.rng coster
            t.schema relations
    end

let counters t = Resource_planner.counters t.resource_planner

let reset t =
  Resource_planner.reset_counters t.resource_planner;
  Resource_planner.clear_cache t.resource_planner
