module Coster = Raqo_planner.Coster
module Resource_planner = Raqo_resource.Resource_planner

type planner_kind = Selinger | Fast_randomized | Bushy_dp

type t = {
  kind : planner_kind;
  schema : Raqo_catalog.Schema.t;
  model : Raqo_cost.Op_cost.t;
  resource_planner : Resource_planner.t;
  rng : Raqo_util.Rng.t;
  randomized_params : Raqo_planner.Randomized.params;
  resource_strategy : Resource_planner.strategy;
  cache_enabled : bool;
  lookup : Raqo_resource.Plan_cache.lookup;
  memoize : bool;
}

let create ?(kind = Selinger) ?(seed = 42)
    ?(randomized_params = Raqo_planner.Randomized.default_params)
    ?(resource_strategy = Resource_planner.Hill_climb) ?(cache = true)
    ?(lookup = Raqo_resource.Plan_cache.Exact) ?(memoize = false) ~model ~conditions schema =
  {
    kind;
    schema;
    model;
    resource_planner = Resource_planner.create ~strategy:resource_strategy ~cache ~lookup conditions;
    rng = Raqo_util.Rng.create seed;
    randomized_params;
    resource_strategy;
    cache_enabled = cache;
    lookup;
    memoize;
  }

let schema t = t.schema
let model t = t.model
let conditions t = Resource_planner.conditions t.resource_planner
let resource_planner t = t.resource_planner

let with_conditions t conditions =
  { t with resource_planner = Resource_planner.with_conditions t.resource_planner conditions }

let run_planner t coster relations =
  match t.kind with
  | Selinger -> Raqo_planner.Selinger.optimize coster t.schema relations
  | Bushy_dp -> Raqo_planner.Dpsub.optimize coster t.schema relations
  | Fast_randomized ->
      Raqo_planner.Randomized.optimize ~params:t.randomized_params t.rng coster t.schema
        relations

let wrap t coster = if t.memoize then Coster.memoize coster else coster

(* The production costers, exposed so the verification layer can drive (and
   re-cost against) the exact coster [optimize] / [optimize_qo] use. *)
let coster t = wrap t (Coster.raqo t.model t.schema t.resource_planner)
let coster_qo t ~resources = wrap t (Coster.fixed t.model t.schema resources)

let optimize t relations = run_planner t (coster t) relations

(* A fresh coster per restart: the raqo coster's memo tables (statistics and,
   when enabled, join memoization) are plain hashtables, and the private
   resource planner keeps the per-restart cache single-domain. The shared
   atomic counters keep aggregate instrumentation meaningful. *)
let restart_coster t =
  let counters = Resource_planner.counters t.resource_planner in
  fun () ->
    let rp =
      Resource_planner.create ~strategy:t.resource_strategy ~cache:t.cache_enabled
        ~lookup:t.lookup ~counters
        (Resource_planner.conditions t.resource_planner)
    in
    wrap t (Coster.raqo t.model t.schema rp)

let optimize_par t pool relations =
  match t.kind with
  | Selinger | Bushy_dp -> optimize t relations
  | Fast_randomized ->
      Raqo_planner.Randomized.optimize_par ~params:t.randomized_params pool t.rng
        ~coster:(restart_coster t) t.schema relations

let optimize_qo t ~resources relations = run_planner t (coster_qo t ~resources) relations

let candidates t relations =
  let coster = coster t in
  match t.kind with
  | Selinger -> Option.to_list (Raqo_planner.Selinger.optimize coster t.schema relations)
  | Bushy_dp -> Option.to_list (Raqo_planner.Dpsub.optimize coster t.schema relations)
  | Fast_randomized ->
      Raqo_planner.Randomized.local_optima ~params:t.randomized_params t.rng coster
        t.schema relations

let counters t = Resource_planner.counters t.resource_planner

let reset t =
  Resource_planner.reset_counters t.resource_planner;
  Resource_planner.clear_cache t.resource_planner
