(** Cost-based RAQO (paper Section VI): a query planner whose
    [get_plan_cost] performs resource planning per sub-plan, emitting a
    joint query/resource plan. Works with both the Selinger DP and the fast
    randomized planner, with hill-climbing and resource-plan caching
    controlled through the embedded {!Raqo_resource.Resource_planner}. *)

type planner_kind =
  | Selinger  (** System R bottom-up DP over left-deep trees *)
  | Fast_randomized  (** randomized bushy-tree search (Trummer–Koch style) *)
  | Bushy_dp  (** exact bushy DP over connected subgraphs (DPsub; <= 20 relations) *)

type t

(** [create ?kind ?seed ?randomized_params ~model ~conditions schema] builds
    an optimizer. Defaults: Selinger, hill-climbing resource planning with
    an exact-match cache, seed 42, no join memoization.

    [memoize] wraps every coster in {!Raqo_planner.Coster.memoize}, caching
    best-join choices per query on unordered relation-set pairs — it cuts
    cost evaluations (Selinger's DP re-costs mirrored pairs) without
    changing any chosen plan. Off by default so instrumentation baselines
    stay comparable.

    [pruned] turns on branch-and-bound resource search
    ({!Raqo_resource.Brute_force.search_pruned}) under the brute-force
    resource strategy, fed by the cost model's monotone region lower bounds.
    Chosen configurations and costs are identical to the exhaustive scan;
    only the evaluation counts drop. Off by default, and a no-op under hill
    climbing or when the model's feature space admits no bound.

    [kernel] (default [true]) compiles paper-space cost models into
    {!Raqo_cost.Kernel} form per costed join, so resource search sweeps the
    grid allocation-free instead of building a feature vector per point —
    bit-identical plans, costs, and counters, just faster. [~kernel:false]
    (the CLI's [--no-kernel]) forces the scalar path; extended-space models
    never compile and use it regardless.

    [cache_capacity] bounds the resource-plan cache with LRU eviction
    ({!Raqo_resource.Plan_cache.create}); omitted keeps it unbounded.

    [parallel_memo] (default [true]) lets {!optimize_par} run the [Bushy_dp]
    enumeration on the shared-memo parallel DP
    ({!Raqo_planner.Dpsub.optimize_par_masked}); [false] pins it to the
    sequential sweep regardless of the pool.

    [shared_cache] plugs the embedded resource planner into a striped,
    thread-safe cross-query plan cache instead of a private one (see
    {!Raqo_resource.Shared_plan_cache}): every fork handed to parallel
    workers keeps the same handle, so concurrent optimizers warm each other.

    [rewrite] (default [true]) runs the {!Raqo_rewrite.Rewrite} logical
    memo over every query before enumeration in {!optimize},
    {!optimize_par} and (through them) {!optimize_adaptive}: predicate
    pushdown, constant/FK absorption and projection narrowing, driven by
    [rewrite_hints]. With the default hints (no filters, everything
    referenced) no rule can fire and planning is bit-identical to
    [~rewrite:false]; when rules fire, the rewritten plan's cost is never
    worse than the unrewritten one's. [--no-rewrite] in the CLI maps to
    [~rewrite:false].

    [metrics] directs all of this optimizer's registry instrumentation —
    plan counters, latency histograms, resource-planner counter mirrors — at
    a caller-owned registry (default: the process-wide one); a resident
    server passes its own so two servers, or a server and the CLI, never
    share mutable state.

    Queries of up to {!Raqo_catalog.Interned.max_relations} relations run on
    the interned, mask-based planner core; larger ones (the randomized
    planner accepts up to 100) fall back to the string-list planners. Both
    paths produce bit-identical plans, costs, and instrumentation. *)
val create :
  ?kind:planner_kind ->
  ?seed:int ->
  ?randomized_params:Raqo_planner.Randomized.params ->
  ?resource_strategy:Raqo_resource.Resource_planner.strategy ->
  ?pruned:bool ->
  ?cache:bool ->
  ?lookup:Raqo_resource.Plan_cache.lookup ->
  ?memoize:bool ->
  ?kernel:bool ->
  ?parallel_memo:bool ->
  ?cache_capacity:int ->
  ?shared_cache:Raqo_resource.Shared_plan_cache.t ->
  ?rewrite:bool ->
  ?rewrite_hints:Raqo_rewrite.Rewrite.hints ->
  ?metrics:Raqo_obs.Metrics.registry ->
  model:Raqo_cost.Op_cost.t ->
  conditions:Raqo_cluster.Conditions.t ->
  Raqo_catalog.Schema.t ->
  t

val schema : t -> Raqo_catalog.Schema.t
val model : t -> Raqo_cost.Op_cost.t
val conditions : t -> Raqo_cluster.Conditions.t
val resource_planner : t -> Raqo_resource.Resource_planner.t

(** [with_conditions t conditions] re-targets new cluster conditions,
    sharing the cost model; cache and counters are fresh. *)
val with_conditions : t -> Raqo_cluster.Conditions.t -> t

(** [optimize t relations] emits the joint query and resource plan with its
    estimated cost — RAQO proper. [None] when no feasible plan exists. *)
val optimize :
  t -> string list -> (Raqo_plan.Join_tree.joint * float) option

(** [optimize_par t pool relations] is {!optimize} with the search fanned
    out across [pool]'s domains: the randomized planner's restarts, or — for
    [Bushy_dp] with [parallel_memo] on — the DP levels of the shared-memo
    enumeration ({!Raqo_planner.Dpsub.optimize_par_masked}). Each restart or
    DP worker gets a fresh coster and a forked resource planner sharing
    [t]'s atomic counters; with the default exact-match cache lookup the
    result is bit-identical to {!optimize} on an equal-seed optimizer, for
    any pool size. For [Selinger] — a single-pass left-deep sweep with
    nothing to fan out — this simply calls {!optimize}. *)
val optimize_par :
  t -> Raqo_par.Pool.t -> string list -> (Raqo_plan.Join_tree.joint * float) option

(** [optimize_adaptive ?pool ?replan_cost_s ~engine ~truth t relations]
    plans statically from [t]'s schema (the estimates — build [t] over an
    {!Raqo_execsim.Estimation_error}-perturbed schema to model misestimation)
    and then simulates the plan against [truth] twice: as-is, and with
    {!Raqo_adaptive.Adaptive_exec} re-optimizing the remaining join graph at
    every stage boundary whose observed cardinality contradicts its
    estimate. Returns the adaptive report with the static plan's estimated
    cost; [None] when no feasible static plan exists. [pool] fans out both
    the static optimization and every mid-flight re-plan. The report
    guarantees [adaptive.seconds <= static.seconds] (bitwise, re-planning
    cost included) and bit-identity under zero estimation error. *)
val optimize_adaptive :
  ?pool:Raqo_par.Pool.t ->
  ?replan_cost_s:float ->
  engine:Raqo_execsim.Engine.t ->
  truth:Raqo_catalog.Schema.t ->
  t ->
  string list ->
  (Raqo_adaptive.Adaptive_exec.report * float) option

(** [optimize_qo t ~resources relations] is the conventional two-step
    baseline: query planning only, every join costed at the given fixed
    resource configuration. *)
val optimize_qo :
  t ->
  resources:Raqo_cluster.Resources.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option

(** [candidates t relations] returns the feasible joint plans the planner
    saw as local optima (for multi-objective selection); with the Selinger
    kind this is the single DP optimum. *)
val candidates : t -> string list -> (Raqo_plan.Join_tree.joint * float) list

(** [coster t] is the joint (resource-planning) coster [optimize] runs the
    query planner against, with [t]'s memoization setting applied — the hook
    the verification layer uses to re-cost an emitted plan's shape and check
    it reproduces the reported cost. *)
val coster : t -> Raqo_planner.Coster.t

(** [coster_qo t ~resources] is the fixed-resource coster behind
    {!optimize_qo}. *)
val coster_qo : t -> resources:Raqo_cluster.Resources.t -> Raqo_planner.Coster.t

(** [rewrite_report t] is the per-rule fired counts and group merges of the
    most recent rewrite pass ({!Raqo_rewrite.Rewrite.last}); [None] when the
    optimizer was built with [~rewrite:false]. *)
val rewrite_report : t -> Raqo_rewrite.Rewrite.report option

(** [counters t] exposes resource-planning instrumentation (configurations
    explored, cache hits) accumulated across optimizations. *)
val counters : t -> Raqo_resource.Counters.t

(** [reset t] zeroes counters and clears the resource-plan cache — the
    evaluation does this between queries unless measuring across-query
    caching. *)
val reset : t -> unit
