(** Multi-objective RAQO: instead of one plan, the Pareto front of joint
    plans over (execution time, monetary cost) — the trade-off the paper's
    multi-objective baseline (Trummer–Koch) navigates, now with resources in
    the loop. *)

(** [front opt relations] collects candidate joint plans — the planner's
    local optima plus the best plan at each rung of a resource ladder
    spanning the cluster conditions (more/bigger containers: faster but
    pricier) — prices each, and filters to the non-dominated set, sorted by
    ascending estimated cost.

    The joint candidates inherit [opt]'s compiled-kernel setting: with
    kernels on (the default) their resource searches run the allocation-free
    {!Raqo_cost.Kernel} path, reusing one scratch buffer across every ladder
    rung and candidate — bit-identical fronts either way. The fixed-resource
    rungs never search resources, so kernels do not apply there. *)
val front : Cost_based.t -> string list -> Use_cases.priced_plan list

(** [knee plans] picks the knee of a front: the plan minimizing the product
    of normalized time and money (a scale-free compromise). [None] on an
    empty front. *)
val knee : Use_cases.priced_plan list -> Use_cases.priced_plan option

(** [render front] is a small table of the front for explain output. *)
val render : Use_cases.priced_plan list -> string
