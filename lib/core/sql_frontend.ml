type planned = {
  analyzed : Raqo_sql.Resolver.analyzed;
  plan : Raqo_plan.Join_tree.joint;
  est_cost : float;
  adaptive : Raqo_adaptive.Adaptive_exec.report option;
  rewrite : Raqo_rewrite.Rewrite.report option;
}

let plan ?kind ?seed ?kernel ?parallel_memo ?pool ?adaptive ?shared_cache
    ?(rewrite = true) ?(metrics = Raqo_obs.Metrics.default) ~model ~conditions ~schema
    ~columns sql =
  (* Registry lookup per query, not per cost evaluation: cheap enough here,
     and it keeps the counter in the caller's registry (a resident server
     threads its own). *)
  if Raqo_obs.Obs.enabled () then
    Raqo_obs.Metrics.Counter.inc (Raqo_obs.Metrics.counter_in metrics "raqo_sql_queries_total");
  match
    Raqo_obs.Trace.with_ ~name:"sql/analyze" (fun () ->
        Raqo_sql.Resolver.analyze schema columns sql)
  with
  | Error e -> Error e
  | Ok analyzed -> begin
      match adaptive with
      | None -> begin
          (* With the rewriter on, plan against the *unscaled* catalog and
             hand the resolver's filter selectivities and projected tables
             to the rewrite pass: its pushdown rule replays the resolver's
             scan-scaling fold bitwise, so a filter-only query plans
             identically to the historical resolver-scaled path, while
             projections additionally enable absorption and narrowing. *)
          let opt =
            if rewrite then
              Cost_based.create ?kind ?seed ?kernel ?parallel_memo ?shared_cache
                ~rewrite_hints:
                  {
                    Raqo_rewrite.Rewrite.filters =
                      analyzed.Raqo_sql.Resolver.table_selectivity;
                    referenced = analyzed.Raqo_sql.Resolver.projected_tables;
                  }
                ~metrics ~model ~conditions schema
            else
              Cost_based.create ?kind ?seed ?kernel ?parallel_memo ?shared_cache
                ~rewrite:false ~metrics ~model ~conditions
                analyzed.Raqo_sql.Resolver.schema
          in
          match
            Raqo_obs.Trace.with_ ~name:"sql/optimize" (fun () ->
                match pool with
                | Some pool ->
                    Cost_based.optimize_par opt pool analyzed.Raqo_sql.Resolver.relations
                | None -> Cost_based.optimize opt analyzed.Raqo_sql.Resolver.relations)
          with
          | Some (plan, est_cost) ->
              Ok
                {
                  analyzed;
                  plan;
                  est_cost;
                  adaptive = None;
                  rewrite = Cost_based.rewrite_report opt;
                }
          | None -> Error "no feasible joint plan under the current cluster conditions"
        end
      | Some (engine, error) -> begin
          (* Adaptive mode: the resolver's filter-scaled schema is the ground
             truth; the planner only sees it through the seeded estimation
             error. Plan statically from the estimates, then execute with
             boundary re-optimization against the truth. Filters are already
             folded into the truth here, so the rewrite pass only gets the
             projection hints. *)
          let truth = analyzed.Raqo_sql.Resolver.schema in
          let estimates = Raqo_execsim.Estimation_error.perturb error truth in
          let opt =
            Cost_based.create ?kind ?seed ?kernel ?parallel_memo ?shared_cache ~rewrite
              ~rewrite_hints:
                {
                  Raqo_rewrite.Rewrite.filters = [];
                  referenced = analyzed.Raqo_sql.Resolver.projected_tables;
                }
              ~metrics ~model ~conditions estimates
          in
          match
            Raqo_obs.Trace.with_ ~name:"sql/optimize" (fun () ->
                Cost_based.optimize_adaptive ?pool ~engine ~truth opt
                  analyzed.Raqo_sql.Resolver.relations)
          with
          | Some (report, est_cost) ->
              Ok
                {
                  analyzed;
                  plan = report.Raqo_adaptive.Adaptive_exec.static_plan;
                  est_cost;
                  adaptive = Some report;
                  rewrite = Cost_based.rewrite_report opt;
                }
          | None -> Error "no feasible joint plan under the current cluster conditions"
        end
    end

let plan_tpch ?kind ?(scale_factor = 100.0) sql =
  plan ?kind ~model:(Models.hive ()) ~conditions:Raqo_cluster.Conditions.default
    ~schema:(Raqo_catalog.Tpch.schema ~scale_factor ())
    ~columns:(Raqo_catalog.Tpch.columns ~scale_factor ())
    sql
