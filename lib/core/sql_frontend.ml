type planned = {
  analyzed : Raqo_sql.Resolver.analyzed;
  plan : Raqo_plan.Join_tree.joint;
  est_cost : float;
}

let plan ?kind ?seed ?kernel ~model ~conditions ~schema ~columns sql =
  match Raqo_sql.Resolver.analyze schema columns sql with
  | Error e -> Error e
  | Ok analyzed -> begin
      (* Optimize against the filter-scaled schema the resolver produced. *)
      let opt =
        Cost_based.create ?kind ?seed ?kernel ~model ~conditions
          analyzed.Raqo_sql.Resolver.schema
      in
      match Cost_based.optimize opt analyzed.Raqo_sql.Resolver.relations with
      | Some (plan, est_cost) -> Ok { analyzed; plan; est_cost }
      | None -> Error "no feasible joint plan under the current cluster conditions"
    end

let plan_tpch ?kind ?(scale_factor = 100.0) sql =
  plan ?kind ~model:(Models.hive ()) ~conditions:Raqo_cluster.Conditions.default
    ~schema:(Raqo_catalog.Tpch.schema ~scale_factor ())
    ~columns:(Raqo_catalog.Tpch.columns ~scale_factor ())
    sql
