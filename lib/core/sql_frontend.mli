(** The declarative entry point: from a SQL string to a joint query/resource
    plan, via the SQL resolver's filter-scaled schema — the full pipeline a
    user of the paper's systems would invoke ("users simply submit their
    declarative queries"). *)

type planned = {
  analyzed : Raqo_sql.Resolver.analyzed;  (** resolution & selectivities *)
  plan : Raqo_plan.Join_tree.joint;  (** the static plan (from the estimates) *)
  est_cost : float;
  adaptive : Raqo_adaptive.Adaptive_exec.report option;
      (** present iff [?adaptive] was requested: the static-vs-adaptive
          execution report against the resolver's (ground-truth) schema *)
  rewrite : Raqo_rewrite.Rewrite.report option;
      (** per-rule fired counts of the logical rewrite pass; [None] with
          [~rewrite:false], [changed = false] when no rule applied *)
}

(** [plan ?kind ?seed ?kernel ?parallel_memo ?pool ?adaptive ~model
    ~conditions ~schema ~columns sql] parses, resolves, and jointly
    optimizes [sql]. [kernel] and [parallel_memo] are forwarded to
    {!Cost_based.create} (the CLI's [--no-kernel] passes [kernel:false]).
    When [pool] is given the optimization step runs
    {!Cost_based.optimize_par} on it — same plans and costs, fanned out
    across the pool's domains. [adaptive:(engine, error)] treats the
    resolver's filter-scaled schema as ground truth, plans from an
    [error]-perturbed copy, and runs {!Cost_based.optimize_adaptive} on
    [engine] — the report lands in the result's [adaptive] field. Errors
    are SQL front-end errors; an infeasible plan reports as an error too.
    [shared_cache] and [metrics] are forwarded to {!Cost_based.create}: a
    resident server passes its striped cross-query plan cache and its own
    metrics registry, so concurrent requests warm each other while distinct
    servers share no mutable state.

    [rewrite] (default [true]) runs the logical rewrite memo before
    enumeration: the resolver's per-table filter selectivities become
    pushdown hints (replaying the historical scan-scaling fold bitwise, so
    filter-only queries plan identically either way) and the projection
    list becomes the referenced-table hint, enabling FK/constant absorption
    and width narrowing for queries that do not read every table. The
    CLI's [--no-rewrite] passes [rewrite:false]. *)
val plan :
  ?kind:Cost_based.planner_kind ->
  ?seed:int ->
  ?kernel:bool ->
  ?parallel_memo:bool ->
  ?pool:Raqo_par.Pool.t ->
  ?adaptive:Raqo_execsim.Engine.t * Raqo_execsim.Estimation_error.t ->
  ?shared_cache:Raqo_resource.Shared_plan_cache.t ->
  ?rewrite:bool ->
  ?metrics:Raqo_obs.Metrics.registry ->
  model:Raqo_cost.Op_cost.t ->
  conditions:Raqo_cluster.Conditions.t ->
  schema:Raqo_catalog.Schema.t ->
  columns:Raqo_catalog.Column.catalog ->
  string ->
  (planned, string) result

(** [plan_tpch ?kind ?scale_factor sql] is {!plan} against the TPC-H catalog
    with the trained Hive model and default cluster conditions — the
    one-call quickstart. *)
val plan_tpch :
  ?kind:Cost_based.planner_kind -> ?scale_factor:float -> string -> (planned, string) result
