module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources
module Conditions = Raqo_cluster.Conditions

(* Bit-identity contract. The scalar path computes

     intercept +. ((((((0. +. b0*.x0) +. b1*.x1) +. b2*.x2) +. b3*.x3)
                    +. b4*.x4) +. b5*.x5) +. b6*.x6

   over x = [| ss; ss*.ss; cs; cs*.cs; nc; nc*.nc; cs*.nc |] (Linalg.dot is a
   left-to-right fold seeded at 0.). Float addition is not associative, but
   hoisting a *prefix* of a left-to-right chain preserves the parse tree:
   acc0 below is the first two additions, row_acc the next two, and the inner
   loop finishes the chain — the grouping is unchanged, so every intermediate
   is the same IEEE double the scalar path produces. The same care applies to
   the region bound, which replicates Op_cost.region_lower_bound's (different)
   association [intercept +. b0*.ss +. b1*.ss*.ss] verbatim. *)

type t = {
  impl : Join_impl.t;
  small_gb : float;
  intercept : float;
  acc0 : float;  (* (0. +. b0*.ss) +. b1*.(ss*.ss): data-only dot prefix *)
  b_cs : float;
  b_cs2 : float;
  b_nc : float;
  b_nc2 : float;
  b_csnc : float;
  floor : float;
  bhj : bool;  (* apply the OOM cliff: infeasible below small_gb/headroom *)
  oom_headroom : float;
  bound_fixed : float;  (* intercept +. b0*.ss +. b1*.ss*.ss, bound association *)
}

let make (model : Op_cost.t) impl ~small_gb =
  match model.Op_cost.space with
  | Feature.Extended -> None
  | Feature.Paper ->
      let lin =
        match impl with Join_impl.Smj -> model.Op_cost.smj | Join_impl.Bhj -> model.Op_cost.bhj
      in
      let b = lin.Linreg.coefficients in
      let ss = small_gb in
      Some
        {
          impl;
          small_gb;
          intercept = lin.Linreg.intercept;
          acc0 = 0.0 +. (b.(0) *. ss) +. (b.(1) *. (ss *. ss));
          b_cs = b.(2);
          b_cs2 = b.(3);
          b_nc = b.(4);
          b_nc2 = b.(5);
          b_csnc = b.(6);
          floor = model.Op_cost.floor;
          bhj = (match impl with Join_impl.Bhj -> true | Join_impl.Smj -> false);
          oom_headroom = model.Op_cost.oom_headroom;
          bound_fixed = lin.Linreg.intercept +. (b.(0) *. ss) +. (b.(1) *. ss *. ss);
        }

let impl t = t.impl
let small_gb t = t.small_gb

let predict t ~containers ~container_gb =
  if t.bhj && not (t.small_gb <= t.oom_headroom *. container_gb) then Float.infinity
  else begin
    let cs = container_gb in
    let nc = float_of_int containers in
    let acc =
      t.acc0
      +. (t.b_cs *. cs)
      +. (t.b_cs2 *. (cs *. cs))
      +. (t.b_nc *. nc)
      +. (t.b_nc2 *. (nc *. nc))
      +. (t.b_csnc *. (cs *. nc))
    in
    let c = t.intercept +. acc in
    if t.floor > 0.0 then Float.max t.floor c else c
  end

let predict_resources t (r : Resources.t) =
  predict t ~containers:r.Resources.containers ~container_gb:r.Resources.container_gb

let point_at t (c : Conditions.t) ~i ~j =
  predict t
    ~containers:(c.Conditions.min_containers + (i * c.Conditions.container_step))
    ~container_gb:(c.Conditions.min_gb +. (float_of_int j *. c.Conditions.gb_step))

let m_sweeps = Raqo_obs.Metrics.counter "raqo_kernel_sweeps_total"
let m_cells = Raqo_obs.Metrics.counter "raqo_kernel_cells_total"

let sweep t (c : Conditions.t) buf =
  let nc_steps = Conditions.steps_containers c in
  let ngb = Conditions.steps_gb c in
  if Array.length buf < nc_steps * ngb then invalid_arg "Kernel.sweep: scratch buffer too small";
  (* Disabled probe = one atomic load and a branch: the warm sweep must stay
     at zero minor words (the bench Gc probe pins this). *)
  let span =
    if not (Raqo_obs.Obs.enabled ()) then Raqo_obs.Trace.none
    else begin
      Raqo_obs.Metrics.Counter.inc m_sweeps;
      Raqo_obs.Metrics.Counter.add m_cells (nc_steps * ngb);
      Raqo_obs.Trace.start "kernel/sweep"
    end
  in
  (* Local unboxed copies: the inner loop is pure float arithmetic into a
     float array, no allocation. *)
  let acc0 = t.acc0 in
  let b_cs = t.b_cs and b_cs2 = t.b_cs2 in
  let b_nc = t.b_nc and b_nc2 = t.b_nc2 and b_csnc = t.b_csnc in
  let intercept = t.intercept and floor = t.floor in
  let is_bhj = t.bhj and headroom = t.oom_headroom and small = t.small_gb in
  let min_containers = c.Conditions.min_containers and cstep = c.Conditions.container_step in
  for j = 0 to ngb - 1 do
    let cs = c.Conditions.min_gb +. (float_of_int j *. c.Conditions.gb_step) in
    let base = j * nc_steps in
    if is_bhj && not (small <= headroom *. cs) then
      Array.fill buf base nc_steps Float.infinity
    else begin
      let row_acc = acc0 +. (b_cs *. cs) +. (b_cs2 *. (cs *. cs)) in
      for i = 0 to nc_steps - 1 do
        let nc = float_of_int (min_containers + (i * cstep)) in
        let acc = row_acc +. (b_nc *. nc) +. (b_nc2 *. (nc *. nc)) +. (b_csnc *. (cs *. nc)) in
        let cost = intercept +. acc in
        (* Manual Float.max keeps the loop call-free; for floor > 0. (finite,
           nonzero) the branch returns the same double, NaN included. *)
        buf.(base + i) <- (if floor > 0.0 && cost <= floor then floor else cost)
      done
    end
  done;
  Raqo_obs.Trace.finish span

(* Region lower bound, replicating Op_cost.region_lower_bound float-for-float
   so the pruned kernel search prunes (and therefore counts evaluations)
   exactly like the scalar pruned search. *)

let bound_corners t ~cs_lo ~cs_hi ~nc_lo ~nc_hi =
  let term c mlo mhi = if c >= 0.0 then c *. mlo else c *. mhi in
  let poly_bound ~cs_lo ~cs_hi =
    t.bound_fixed
    +. term t.b_cs cs_lo cs_hi
    +. term t.b_cs2 (cs_lo *. cs_lo) (cs_hi *. cs_hi)
    +. term t.b_nc nc_lo nc_hi
    +. term t.b_nc2 (nc_lo *. nc_lo) (nc_hi *. nc_hi)
    +. term t.b_csnc (cs_lo *. nc_lo) (cs_hi *. nc_hi)
  in
  let clamp c = if t.floor > 0.0 then Float.max t.floor c else c in
  if t.bhj then begin
    let needed = t.small_gb /. t.oom_headroom in
    if cs_hi < needed then Float.infinity
    else clamp (poly_bound ~cs_lo:(Float.max cs_lo needed) ~cs_hi)
  end
  else clamp (poly_bound ~cs_lo ~cs_hi)

let bound t ~(lo : Resources.t) ~(hi : Resources.t) =
  bound_corners t ~cs_lo:lo.Resources.container_gb ~cs_hi:hi.Resources.container_gb
    ~nc_lo:(float_of_int lo.Resources.containers)
    ~nc_hi:(float_of_int hi.Resources.containers)

let bound_at t (c : Conditions.t) ~i0 ~i1 ~j0 ~j1 =
  bound_corners t
    ~cs_lo:(c.Conditions.min_gb +. (float_of_int j0 *. c.Conditions.gb_step))
    ~cs_hi:(c.Conditions.min_gb +. (float_of_int j1 *. c.Conditions.gb_step))
    ~nc_lo:(float_of_int (c.Conditions.min_containers + (i0 * c.Conditions.container_step)))
    ~nc_hi:(float_of_int (c.Conditions.min_containers + (i1 * c.Conditions.container_step)))

(* Scratch: amortised-growth grid buffer + pruned-search validity bitmap,
   instrumented so callers can prove the steady state allocates nothing. *)

type scratch = {
  mutable buf : float array;
  mutable seen : Bytes.t;
  mutable allocs : int;
  mutable reuses : int;
}

let create_scratch () = { buf = [||]; seen = Bytes.empty; allocs = 0; reuses = 0 }

let ensure s n =
  if Array.length s.buf >= n then s.reuses <- s.reuses + 1
  else begin
    s.allocs <- s.allocs + 1;
    s.buf <- Array.make n 0.0;
    s.seen <- Bytes.make n '\000'
  end

let buffer s = s.buf
let seen s = s.seen
let reset_seen s n = Bytes.fill s.seen 0 n '\000'
let allocs s = s.allocs
let reuses s = s.reuses
