(** Compiled cost kernels: the paper's per-operator regression models
    specialised to a fixed (join implementation, [small_gb]) pair, so the
    (containers x container_gb) resource grid can be swept in one
    allocation-free loop instead of one {!Feature.vector_of} array plus one
    {!Linreg.predict} closure dispatch per grid point.

    The paper-space polynomial splits into a data-only prefix and per-axis
    resource monomials:

    {v cost = intercept + b0*ss + b1*ss^2          (precomputed once)
            + b2*cs + b3*cs^2                      (hoisted per grid row)
            + b4*nc + b5*nc^2 + b6*cs*nc           (inner loop)              v}

    Every float operation replicates the exact association order of the
    scalar path ({!Linreg.predict} over {!Feature.vector_of}, i.e. a
    left-to-right dot product seeded at [0.] plus the intercept), the BHJ OOM
    cliff is applied as an [infinity] mask before the polynomial, and the
    floor clamp is fused into the loop — so kernel costs are bit-identical to
    {!Op_cost.predict_exn}: same floats, hence same argmins and the same
    tie-breaks downstream. That identity is enforced by QCheck properties and
    a differential fuzz-oracle arm.

    Only {!Feature.Paper} models compile: the extended space has decreasing
    monomials (1/nc, ss/cs), so — exactly like {!Op_cost.region_lower_bound}
    returning [None] — {!make} refuses and callers keep the scalar path. *)

type t
(** A compiled kernel: one (model, impl, small_gb) triple. Immutable. *)

(** [make model impl ~small_gb] compiles the model, or [None] when the
    model's feature space is {!Feature.Extended} (no sound corner bounds,
    no kernel — scalar fallback). *)
val make : Op_cost.t -> Raqo_plan.Join_impl.t -> small_gb:float -> t option

val impl : t -> Raqo_plan.Join_impl.t
val small_gb : t -> float

(** [predict t ~containers ~container_gb] is bit-identical to
    [Op_cost.predict_exn model impl ~small_gb ~resources] for the compiled
    triple ([infinity] on the infeasible BHJ side of the OOM cliff). *)
val predict : t -> containers:int -> container_gb:float -> float

(** [predict_resources t r] is {!predict} on an existing configuration. *)
val predict_resources : t -> Raqo_cluster.Resources.t -> float

(** [point_at t conditions ~i ~j] is {!predict} at grid cell (i, j) of
    [conditions] — containers index [i] varying fastest, matching
    {!Raqo_cluster.Conditions.all_configs} enumeration order — computing the
    cell's coordinates with the exact float expressions the scalar searches
    use, so memo tables keyed on [j * steps_containers + i] agree. *)
val point_at : t -> Raqo_cluster.Conditions.t -> i:int -> j:int -> float

(** [sweep t conditions buf] fills [buf.(j * steps_containers + i)] with
    {!point_at} for every grid cell, in one pass with zero allocation: the
    data prefix is compiled in, the [cs] monomials and the BHJ feasibility
    test are hoisted per row (an infeasible row is an [Array.fill] of
    [infinity]), and the floor clamp is fused into the store. [buf] must
    have at least {!Raqo_cluster.Conditions.n_configs} cells.
    @raise Invalid_argument if [buf] is too small. *)
val sweep : t -> Raqo_cluster.Conditions.t -> float array -> unit

(** [bound t ~lo ~hi] is bit-identical to the closure returned by
    {!Op_cost.region_lower_bound} for the compiled triple (which always
    exists: kernels only compile for the paper space). Used by the pruned
    kernel search so its box-pruning decisions — and therefore its
    evaluation counters — match the scalar pruned search exactly. *)
val bound : t -> lo:Raqo_cluster.Resources.t -> hi:Raqo_cluster.Resources.t -> float

(** [bound_at t conditions ~i0 ~i1 ~j0 ~j1] is {!bound} over the grid-aligned
    box with corners (i0, j0) and (i1, j1), allocation-free. *)
val bound_at : t -> Raqo_cluster.Conditions.t -> i0:int -> i1:int -> j0:int -> j1:int -> float

(** {1 Scratch buffers}

    Per-planner scratch so steady-state planning does zero grid allocation:
    the grid buffer (and the pruned search's seen-bitmap) are grown once to
    the largest grid ever swept and reused across every subsequent subplan
    of a Selinger/DPsub run. Reuse is instrumented — [allocs] counts buffer
    (re)allocations, [reuses] counts sweeps served by an already-large-enough
    buffer — so tests and benches can assert the steady state allocates
    nothing. Scratch is single-domain state; parallel searches keep their
    own. *)

type scratch

val create_scratch : unit -> scratch

(** [ensure scratch n] grows the buffers to at least [n] cells, bumping
    [allocs] on growth and [reuses] when already large enough. *)
val ensure : scratch -> int -> unit

(** [buffer scratch] is the current grid buffer (valid after {!ensure}). *)
val buffer : scratch -> float array

(** [seen scratch] is the pruned search's memo-validity bitmap, one byte per
    cell, zeroed by {!ensure}'s caller via {!reset_seen}. *)
val seen : scratch -> Bytes.t

(** [reset_seen scratch n] zeroes the first [n] validity bytes (no
    allocation). *)
val reset_seen : scratch -> int -> unit

val allocs : scratch -> int
val reuses : scratch -> int
