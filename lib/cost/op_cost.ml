module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources

type t = {
  space : Feature.space;
  smj : Linreg.t;
  bhj : Linreg.t;
  scan : Linreg.t;
  oom_headroom : float;
  floor : float;
}

(* The coefficient vectors printed in the paper, feature order
   [ss; ss2; cs; cs2; nc; nc2; cs*nc]. *)
let paper_smj_coefficients =
  [|
    1.62643613e+01;
    9.68774888e-01;
    1.33866542e-02;
    1.60639851e-01;
    -7.82618920e-03;
    -3.91309460e-01;
    1.10387975e-01;
  |]

let paper_bhj_coefficients =
  [|
    1.00739509e+04;
    -6.72184592e+02;
    -1.37392901e+01;
    -1.64871481e+02;
    2.44721676e-02;
    1.22360838e+00;
    -1.37319484e+02;
  |]

(* Scan: throughput model, cost ~ size / parallelism; expressed in the same
   linear feature space as a plain per-GB term (the evaluation's single scan
   implementation carries no resource trade-off of its own). *)
let paper_scan_coefficients = [| 30.0; 0.0; 0.0; 0.0; 0.0; 0.0; 0.0 |]

let paper =
  {
    space = Feature.Paper;
    smj = Linreg.of_coefficients paper_smj_coefficients;
    bhj = Linreg.of_coefficients paper_bhj_coefficients;
    scan = Linreg.of_coefficients paper_scan_coefficients;
    oom_headroom = 1.15;
    floor = 0.0;
  }

let with_floor floor t =
  if floor < 0.0 then invalid_arg "Op_cost.with_floor: negative floor";
  { t with floor }

let bhj_feasible t ~small_gb ~resources =
  small_gb <= t.oom_headroom *. resources.Resources.container_gb

let predict t impl ~small_gb ~resources =
  let x = Feature.vector_of t.space ~small_gb ~resources in
  let clamp c = if t.floor > 0.0 then Float.max t.floor c else c in
  match impl with
  | Join_impl.Smj -> Some (clamp (Linreg.predict t.smj x))
  | Join_impl.Bhj ->
      if bhj_feasible t ~small_gb ~resources then Some (clamp (Linreg.predict t.bhj x))
      else None

let predict_exn t impl ~small_gb ~resources =
  match predict t impl ~small_gb ~resources with
  | Some c -> c
  | None -> Float.infinity

(* A cost lower bound over an axis-aligned resource box, for branch-and-bound
   resource search. Only the paper feature space is supported: there every
   monomial in (cs, nc) — cs, cs², nc, nc², cs·nc — is nonnegative and
   increasing in each variable over the positive orthant, so per-monomial
   corner minima by coefficient sign bound the polynomial from below. The
   extended space has 1/nc and ss/cs terms (decreasing axes) and returns
   [None]; callers fall back to exhaustive search. *)
let region_lower_bound t impl ~small_gb =
  match t.space with
  | Feature.Extended -> None
  | Feature.Paper ->
      let lin = match impl with Join_impl.Smj -> t.smj | Join_impl.Bhj -> t.bhj in
      let b = lin.Linreg.coefficients in
      let ss = small_gb in
      let fixed = lin.Linreg.intercept +. (b.(0) *. ss) +. (b.(1) *. ss *. ss) in
      let term c mlo mhi = if c >= 0.0 then c *. mlo else c *. mhi in
      let poly_bound ~cs_lo ~cs_hi ~nc_lo ~nc_hi =
        fixed
        +. term b.(2) cs_lo cs_hi
        +. term b.(3) (cs_lo *. cs_lo) (cs_hi *. cs_hi)
        +. term b.(4) nc_lo nc_hi
        +. term b.(5) (nc_lo *. nc_lo) (nc_hi *. nc_hi)
        +. term b.(6) (cs_lo *. nc_lo) (cs_hi *. nc_hi)
      in
      let clamp c = if t.floor > 0.0 then Float.max t.floor c else c in
      Some
        (fun ~(lo : Resources.t) ~(hi : Resources.t) ->
          let nc_lo = float_of_int lo.Resources.containers in
          let nc_hi = float_of_int hi.Resources.containers in
          let cs_lo = lo.Resources.container_gb in
          let cs_hi = hi.Resources.container_gb in
          match impl with
          | Join_impl.Smj -> clamp (poly_bound ~cs_lo ~cs_hi ~nc_lo ~nc_hi)
          | Join_impl.Bhj ->
              (* BHJ is infeasible (infinite) below the OOM threshold: bound
                 the polynomial over the feasible slice only; an empty slice
                 means every configuration in the box costs infinity. *)
              let needed = small_gb /. t.oom_headroom in
              if cs_hi < needed then Float.infinity
              else clamp (poly_bound ~cs_lo:(Float.max cs_lo needed) ~cs_hi ~nc_lo ~nc_hi))

let scan_cost t ~gb ~resources =
  Linreg.predict t.scan (Feature.vector_of t.space ~small_gb:gb ~resources)

let best_impl t ~small_gb ~resources =
  List.fold_left
    (fun best impl ->
      match (predict t impl ~small_gb ~resources, best) with
      | Some c, Some (_, bc) when c >= bc -> best
      | Some c, _ -> Some (impl, c)
      | None, _ -> best)
    None Join_impl.all
