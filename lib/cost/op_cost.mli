(** Per-operator cost models: f(data, resources) → estimated cost, one
    regression model per join implementation, plus the BHJ feasibility rule.
    This is the cost model cost-based RAQO plugs into query planners. *)

type t = {
  space : Feature.space;  (** which feature vector the regressions consume *)
  smj : Linreg.t;
  bhj : Linreg.t;
  scan : Linreg.t;  (** standalone full scan, in the smaller-input feature space *)
  oom_headroom : float;  (** BHJ feasible iff small side <= headroom x container GB *)
  floor : float;
      (** lower clamp on predictions; quadratic models extrapolate to negative
          costs outside the profiled region (the paper's published SMJ model
          already goes negative for large container counts), so
          quality-sensitive users set a small positive floor. [0.] keeps raw
          predictions, faithful to the paper's planner-overhead experiments. *)
}

(** The paper's published Hive coefficients (Section VI-A), verbatim, in the
    intercept-free 7-feature space. The scan model is a simple derived
    throughput model. *)
val paper : t

(** [predict t impl ~small_gb ~resources] estimates the cost of one join.
    [None] means the implementation is infeasible (BHJ out of memory). *)
val predict :
  t ->
  Raqo_plan.Join_impl.t ->
  small_gb:float ->
  resources:Raqo_cluster.Resources.t ->
  float option

(** [predict_exn] maps infeasible to [infinity] — the form planners consume. *)
val predict_exn :
  t ->
  Raqo_plan.Join_impl.t ->
  small_gb:float ->
  resources:Raqo_cluster.Resources.t ->
  float

(** [region_lower_bound t impl ~small_gb] is a monotone lower bound on
    {!predict_exn} over axis-aligned resource boxes, for branch-and-bound
    resource search: [bound ~lo ~hi <= predict_exn t impl ~small_gb ~resources:r]
    for every [r] with [lo.containers <= r.containers <= hi.containers] and
    [lo.container_gb <= r.container_gb <= hi.container_gb]. Built from
    per-monomial corner minima by coefficient sign, which is valid because
    every paper-space monomial is nonnegative and increasing per axis over
    positive resources; BHJ's OOM cliff narrows the bounded slice and an
    all-infeasible box bounds to [infinity]. [None] for the extended feature
    space (it has decreasing monomials) — callers must fall back to
    exhaustive search. *)
val region_lower_bound :
  t ->
  Raqo_plan.Join_impl.t ->
  small_gb:float ->
  (lo:Raqo_cluster.Resources.t -> hi:Raqo_cluster.Resources.t -> float) option

(** [scan_cost t ~gb ~resources] estimates a standalone scan. *)
val scan_cost : t -> gb:float -> resources:Raqo_cluster.Resources.t -> float

(** [with_floor floor t] returns [t] clamping every prediction to at least
    [floor]. *)
val with_floor : float -> t -> t

(** [best_impl t ~small_gb ~resources] is the model-cheapest feasible
    implementation, or [None] when neither is feasible. *)
val best_impl :
  t ->
  small_gb:float ->
  resources:Raqo_cluster.Resources.t ->
  (Raqo_plan.Join_impl.t * float) option
