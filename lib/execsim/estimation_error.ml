module Schema = Raqo_catalog.Schema
module Relation = Raqo_catalog.Relation
module Join_graph = Raqo_catalog.Join_graph
module Rng = Raqo_util.Rng

type dist = Exact | Lognormal of float | Skew of float | Correlated of float
type t = { dist : dist; seed : int }

let exact = { dist = Exact; seed = 0 }

let make dist ~seed =
  (match dist with
  | Exact -> ()
  | Lognormal m | Skew m | Correlated m ->
      if not (Float.is_finite m) || m < 0.0 then
        invalid_arg "Estimation_error.make: magnitude must be finite and non-negative");
  { dist; seed }

let default_magnitude = function
  | "lognormal" -> Some 0.6
  | "skew" | "correlated" -> Some 0.8
  | _ -> None

(* Perturb every base cardinality by an independent multiplicative factor,
   in schema relation order so the draw sequence is part of the contract. *)
let scale_rows schema factor_of =
  List.fold_left
    (fun acc (r : Relation.t) -> Schema.with_relation acc (Relation.scale r (factor_of r)))
    schema (Schema.relations schema)

let perturb t schema =
  match t.dist with
  | Exact -> schema
  | Lognormal sigma ->
      let rng = Rng.create t.seed in
      scale_rows schema (fun _ -> Rng.lognormal rng ~mu:0.0 ~sigma)
  | Skew mag ->
      let rng = Rng.create t.seed in
      scale_rows schema (fun _ -> exp (-.Float.abs (Rng.gaussian rng ~mean:0.0 ~sigma:mag)))
  | Correlated mag ->
      (* One shared draw ties the per-edge errors together: plans that chain
         many correlated predicates accumulate a systematic underestimate,
         which is exactly the failure mode that flips BHJ/SMJ choices. *)
      let rng = Rng.create t.seed in
      let shared = Float.abs (Rng.gaussian rng ~mean:0.0 ~sigma:1.0) in
      let edges =
        List.map
          (fun (e : Join_graph.edge) ->
            let local = Float.abs (Rng.gaussian rng ~mean:0.0 ~sigma:1.0) in
            let factor = exp (-.(mag /. 2.0) *. (shared +. local)) in
            { e with Join_graph.selectivity = e.selectivity *. factor })
          (Join_graph.edges (Schema.graph schema))
      in
      Schema.make (Schema.relations schema) (Join_graph.make edges)

let dist_name t =
  match t.dist with
  | Exact -> "exact"
  | Lognormal _ -> "lognormal"
  | Skew _ -> "skew"
  | Correlated _ -> "correlated"

let to_string t =
  match t.dist with
  | Exact -> "none"
  | Lognormal m | Skew m | Correlated m ->
      Printf.sprintf "%s=%g:%d" (dist_name t) m t.seed

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "" | "none" | "exact" -> Ok exact
  | s -> begin
      let name_mag, seed_str =
        match String.index_opt s ':' with
        | Some i ->
            (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
        | None -> (s, None)
      in
      let name, mag_str =
        match String.index_opt name_mag '=' with
        | Some i ->
            ( String.sub name_mag 0 i,
              Some (String.sub name_mag (i + 1) (String.length name_mag - i - 1)) )
        | None -> (name_mag, None)
      in
      let mag =
        match mag_str with
        | Some m -> float_of_string_opt m
        | None -> default_magnitude name
      in
      let seed = Option.bind seed_str int_of_string_opt in
      match (name, mag, seed) with
      | _, _, None -> Error (Printf.sprintf "est-error %S: expected DIST[=MAG]:SEED" s)
      | _, None, _ -> Error (Printf.sprintf "est-error %S: bad magnitude" s)
      | "lognormal", Some m, Some seed -> Ok (make (Lognormal m) ~seed)
      | "skew", Some m, Some seed -> Ok (make (Skew m) ~seed)
      | "correlated", Some m, Some seed -> Ok (make (Correlated m) ~seed)
      | name, _, _ ->
          Error
            (Printf.sprintf
               "est-error %S: unknown distribution %S (lognormal, skew, correlated, none)" s
               name)
    end
