(** Seeded cardinality-estimation error models: what the optimizer *thinks*
    the data looks like, versus the ground truth the simulator executes
    against. [perturb] derives the erroneous estimate schema from a true
    schema; the adaptive executor ({!Raqo_adaptive.Adaptive_exec}) plans on
    the estimates and discovers the truth one materialized stage at a time.

    Every distribution is driven by a splitmix64 stream from [seed], so a
    (distribution, seed) pair names one exact error pattern — the fuzz
    harness prints it in repros and replays it bit-identically. *)

type dist =
  | Exact
      (** no error: [perturb] returns the truth schema physically unchanged,
          so estimate-vs-truth comparisons are bit-equal — the adaptive
          executor's zero-error identity hinges on this *)
  | Lognormal of float
      (** multiplicative log-normal noise on every base cardinality:
          [rows *= exp (N (0, sigma))] — the classic symmetric misestimate *)
  | Skew of float
      (** one-sided underestimation: [rows *= exp (-|N (0, mag)|)] — stale
          statistics make every table look smaller than it is, luring the
          planner toward broadcast joins that blow up at runtime *)
  | Correlated of float
      (** correlated-predicate error: every join-edge selectivity is scaled
          down by [exp (-(mag/2) (|shared| + |local|))] with one shared
          normal draw across edges — the independence assumption
          underestimates join outputs, and the errors compound along a
          plan's spine *)

type t = { dist : dist; seed : int }

val exact : t

val make : dist -> seed:int -> t

(** Magnitude used by {!of_string} when the spec omits one:
    lognormal 0.6, skew 0.8, correlated 0.8. *)
val default_magnitude : string -> float option

(** [perturb t schema] derives the estimate schema the planner sees.
    [Exact] returns [schema] itself (physical identity); the seeded
    distributions rebuild relations (and, for [Correlated], join-edge
    selectivities) deterministically from [t.seed]. The join graph's shape
    (which pairs join) never changes — only statistics do. *)
val perturb : t -> Raqo_catalog.Schema.t -> Raqo_catalog.Schema.t

(** [of_string s] parses a CLI spec: ["none"]/["exact"], or
    ["DIST:SEED"] / ["DIST=MAG:SEED"] with [DIST] one of [lognormal],
    [skew], [correlated] — e.g. ["lognormal:42"], ["skew=0.5:7"]. *)
val of_string : string -> (t, string) result

(** [to_string t] round-trips through {!of_string}. *)
val to_string : t -> string

(** [dist_name t] is just the distribution constructor, e.g. ["lognormal"]. *)
val dist_name : t -> string
