(* One atomic slot per subset mask. The claim protocol is a single CAS, the
   publish a plain atomic write; [Claimed] is an immediate constructor so
   claiming allocates nothing, and [Published] blocks are allocated once by
   the writer so readers matching on [get] allocate nothing either.

   Counters follow the library-wide pattern: registered globally, recorded
   only when observability is on, sharded per domain inside
   [Raqo_obs.Metrics] so hot parallel loops never contend. *)

type 'a slot =
  | Empty
  | Claimed
  | Published of 'a

type 'a t = {
  slots : 'a slot Atomic.t array;
  table_bits : int;
}

let m_hits = Raqo_obs.Metrics.counter "raqo_memo_hits_total"
let m_claims = Raqo_obs.Metrics.counter "raqo_memo_claims_total"
let m_conflicts = Raqo_obs.Metrics.counter "raqo_memo_conflicts_total"
let m_publishes = Raqo_obs.Metrics.counter "raqo_memo_publishes_total"

let max_bits = 25

let create ~bits =
  if bits < 0 || bits > max_bits then invalid_arg "Memo.create: bits out of range";
  { slots = Array.init (1 lsl bits) (fun _ -> Atomic.make Empty); table_bits = bits }

let bits t = t.table_bits

let get t mask =
  let s = Atomic.get t.slots.(mask) in
  (match s with
  | Published _ -> if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_hits
  | Empty | Claimed -> ());
  s

let find t mask =
  match get t mask with
  | Published v -> Some v
  | Empty | Claimed -> None

let try_claim t mask =
  let won = Atomic.compare_and_set t.slots.(mask) Empty Claimed in
  if Raqo_obs.Obs.enabled () then
    Raqo_obs.Metrics.Counter.inc (if won then m_claims else m_conflicts);
  won

let publish t mask v =
  if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_publishes;
  Atomic.set t.slots.(mask) (Published v)

let release t mask = ignore (Atomic.compare_and_set t.slots.(mask) Claimed Empty)

let count p t =
  Array.fold_left (fun acc s -> if p (Atomic.get s) then acc + 1 else acc) 0 t.slots

let claimed_count t = count (function Claimed -> true | Empty | Published _ -> false) t
let published_count t = count (function Published _ -> true | Empty | Claimed -> false) t
