(** A shared memo table for mask-keyed dynamic programming, safe to read and
    write from every domain of a {!Raqo_par.Pool}.

    The table is a flat array of [2^bits] slots, one per relation-subset
    mask, each an independent [Atomic.t] — sharding at entry granularity, so
    two domains working on different subproblems never contend on a lock or
    even a cache line of control state. A slot moves through at most three
    states:

    {v Empty --try_claim--> Claimed --publish--> Published v v}

    - {!try_claim} is a single compare-and-set: exactly one domain wins the
      right to compute a subproblem, so work is never repeated.
    - {!publish} stores the computed value with a plain atomic write; the
      claim/level discipline of the caller guarantees a single writer.
    - {!release} returns a claimed slot to [Empty] — the fault-recovery path
      when computing a value raises, so an exception never strands a
      claimed-but-unpublished entry.

    Published values are immutable. Readers use {!get} on hot paths — it
    returns the slot constructor without allocating (the [Published] block
    was allocated once, by the writer) — and {!find} where an option is more
    convenient.

    Determinism contract with level-synchronous callers (e.g.
    {!Raqo_planner.Dpsub}'s parallel sweep): if every value published at
    level [k] is a pure function of values published at levels [< k], the
    table contents after each level barrier are independent of claim order,
    timing, and domain count.

    Instrumentation: hit/claim/conflict/publish counters are registered in
    {!Raqo_obs.Metrics} under [raqo_memo_*_total] and recorded only while
    {!Raqo_obs.Obs.enabled} — with observability off every operation is a
    single atomic access and allocates nothing. *)

type 'a slot =
  | Empty  (** never claimed; for connected subproblems: not yet computed *)
  | Claimed  (** some domain is computing it *)
  | Published of 'a  (** final value *)

type 'a t

(** [create ~bits] allocates a table of [2^bits] empty slots (one per subset
    mask of a [bits]-relation query).
    @raise Invalid_argument when [bits] is negative or over 25 (a 32M-slot
    table; DP callers cap far below this). *)
val create : bits:int -> 'a t

(** [bits t] is the creation parameter; masks must be in [0, 2^bits). *)
val bits : 'a t -> int

(** [find t mask] is the published value, [None] when empty or claimed. *)
val find : 'a t -> int -> 'a option

(** [get t mask] is the raw slot — the allocation-free read for hot loops. *)
val get : 'a t -> int -> 'a slot

(** [try_claim t mask] attempts the [Empty -> Claimed] transition; [true]
    when this caller won the claim. A [false] is recorded as a conflict. *)
val try_claim : 'a t -> int -> bool

(** [publish t mask v] stores [v], whatever the current state. Callers
    publish only slots they claimed (or pre-seed before sharing the table). *)
val publish : 'a t -> int -> 'a -> unit

(** [release t mask] reverts a [Claimed] slot to [Empty]; no-op on other
    states. Call on the exception path after a failed compute. *)
val release : 'a t -> int -> unit

(** [claimed_count t] / [published_count t] scan the table — diagnostics and
    tests, not hot paths. After a parallel section has joined, a zero
    [claimed_count] certifies no claimed-but-unpublished entries survived. *)
val claimed_count : 'a t -> int

val published_count : 'a t -> int
