(* ---------- Chrome trace_event ---------- *)

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let chrome_json events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i (e : Trace.event) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":\"";
      escape_json buf e.name;
      (* trace_event wants microseconds; keep ns precision in the fraction. *)
      Printf.bprintf buf
        "\",\"cat\":\"raqo\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":{\"id\":%d,\"parent\":%d}}"
        (float_of_int e.start_ns /. 1e3)
        (float_of_int e.dur_ns /. 1e3)
        e.domain e.id e.parent)
    events;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_chrome_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_json (Trace.events ())))

(* ---------- Prometheus text exposition ---------- *)

(* Shortest representation that round-trips through [float_of_string]:
   integral values print plainly, others at the lowest precision that reads
   back bit-identical (0.1 stays "0.1", not "0.10000000000000001"). *)
let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else begin
    let rec shortest p =
      if p > 17 then Printf.sprintf "%.17g" v
      else
        let s = Printf.sprintf "%.*g" p v in
        if float_of_string s = v then s else shortest (p + 1)
    in
    shortest 1
  end

let prometheus ?registry () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, snap) ->
      match (snap : Metrics.snapshot) with
      | Metrics.Counter_value v ->
          Printf.bprintf buf "# TYPE %s counter\n%s %d\n" name name v
      | Metrics.Gauge_value v ->
          Printf.bprintf buf "# TYPE %s gauge\n%s %s\n" name name (fmt_float v)
      | Metrics.Histogram_value { edges; counts; sum; count } ->
          Printf.bprintf buf "# TYPE %s histogram\n" name;
          let running = ref 0 in
          Array.iteri
            (fun i edge ->
              running := !running + counts.(i);
              Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" name (fmt_float edge) !running)
            edges;
          Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" name count;
          Printf.bprintf buf "%s_sum %s\n" name (fmt_float sum);
          Printf.bprintf buf "%s_count %d\n" name count)
    (Metrics.snapshot ?registry ());
  Buffer.contents buf

let parse_prometheus text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.rindex_opt line ' ' with
           | None -> None
           | Some i ->
               let name = String.sub line 0 i in
               let value = String.sub line (i + 1) (String.length line - i - 1) in
               (match float_of_string_opt value with
               | Some v -> Some (name, v)
               | None -> None))

(* ---------- Human-readable tables ---------- *)

let ms ns = float_of_int ns /. 1e6

let span_summary events =
  let tbl : (string, int ref * int ref * int ref * int ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      match Hashtbl.find_opt tbl e.name with
      | Some (n, total, mn, mx) ->
          incr n;
          total := !total + e.dur_ns;
          if e.dur_ns < !mn then mn := e.dur_ns;
          if e.dur_ns > !mx then mx := e.dur_ns
      | None -> Hashtbl.add tbl e.name (ref 1, ref e.dur_ns, ref e.dur_ns, ref e.dur_ns))
    events;
  let rows =
    Hashtbl.fold (fun name (n, total, mn, mx) acc -> (name, !n, !total, !mn, !mx) :: acc) tbl []
    |> List.sort (fun (_, _, ta, _, _) (_, _, tb, _, _) -> compare tb ta)
    |> List.map (fun (name, n, total, mn, mx) ->
           [
             name;
             string_of_int n;
             Raqo_util.Table_fmt.fseries (ms total);
             Raqo_util.Table_fmt.fseries (ms total /. float_of_int n);
             Raqo_util.Table_fmt.fseries (ms mn);
             Raqo_util.Table_fmt.fseries (ms mx);
           ])
  in
  Raqo_util.Table_fmt.render
    ~headers:[ "span"; "count"; "total ms"; "mean ms"; "min ms"; "max ms" ]
    rows

let metrics_table ?registry () =
  let rows =
    List.map
      (fun (name, snap) ->
        match (snap : Metrics.snapshot) with
        | Metrics.Counter_value v -> [ name; "counter"; string_of_int v ]
        | Metrics.Gauge_value v -> [ name; "gauge"; Raqo_util.Table_fmt.fseries v ]
        | Metrics.Histogram_value { sum; count; _ } ->
            let mean = if count = 0 then 0. else sum /. float_of_int count in
            [
              name;
              "histogram";
              Printf.sprintf "count=%d sum=%s mean=%s" count
                (Raqo_util.Table_fmt.fseries sum)
                (Raqo_util.Table_fmt.fseries mean);
            ])
      (Metrics.snapshot ?registry ())
  in
  Raqo_util.Table_fmt.render ~headers:[ "metric"; "kind"; "value" ] rows
