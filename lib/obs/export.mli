(** Exporters for the metrics registry and the span rings.

    Three formats: Chrome [trace_event] JSON (load in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}), Prometheus text exposition, and
    human-readable tables via {!Raqo_util.Table_fmt}. *)

(** Chrome trace: one complete ("ph":"X") event per span, timestamps and
    durations in microseconds, [tid] = domain id, span/parent ids in [args]
    so the hierarchy survives even where timestamps tie. *)
val chrome_json : Trace.event list -> string

(** [write_chrome_trace path] dumps the current rings to [path]. *)
val write_chrome_trace : string -> unit

(** [fmt_float v] is the shortest decimal representation of [v] that reads
    back bit-identical through [float_of_string] — the encoding every
    exporter here (and the server protocol) uses for floats. *)
val fmt_float : float -> string

(** Prometheus text exposition of {!Metrics.snapshot} for [registry]
    (default: the process-wide registry): [# TYPE] comments, histogram
    [_bucket{le="..."}] series (cumulative, with [+Inf]), [_sum] and
    [_count]. Floats are printed round-trippably. *)
val prometheus : ?registry:Metrics.registry -> unit -> string

(** [parse_prometheus text] reads back the sample lines of an exposition:
    [(name-with-labels, value)] pairs in file order, comments and blank
    lines skipped. Inverse of {!prometheus} for the subset it emits. *)
val parse_prometheus : string -> (string * float) list

(** Per-span-name aggregate table (count, total/mean/min/max ms), widest
    total first. The [raqo trace] summary. *)
val span_summary : Trace.event list -> string

(** Registry contents as an aligned table (default: the process-wide
    registry). *)
val metrics_table : ?registry:Metrics.registry -> unit -> string
