(* Shard count is a fixed power of two: domain ids are assigned densely from
   0, so [id land (shards - 1)] spreads the first 8 domains over distinct
   cells (the pool caps at 8 workers; see Raqo_par.Pool.default_jobs). *)
let shards = 8

let shard_index () = (Domain.self () :> int) land (shards - 1)

module Counter = struct
  type t = int Atomic.t array

  let create () = Array.init shards (fun _ -> Atomic.make 0)
  let add t n = ignore (Atomic.fetch_and_add t.(shard_index ()) n)
  let inc t = add t 1
  let value t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t
  let reset t = Array.iter (fun c -> Atomic.set c 0) t
end

module Gauge = struct
  (* Gauges are set rarely (no hot-path writers), so a single boxed-float
     atomic cell is enough. *)
  type t = float Atomic.t

  let create () = Atomic.make 0.
  let set t v = Atomic.set t v
  let value t = Atomic.get t
  let reset t = Atomic.set t 0.
end

module Histogram = struct
  type t = {
    edges : float array;
    counts : int Atomic.t array array;  (* shard -> bucket, len = edges + 1 *)
    sums : float Atomic.t array;  (* shard *)
  }

  let default_buckets =
    [| 0.000001; 0.000005; 0.00001; 0.00005; 0.0001; 0.0005; 0.001; 0.005;
       0.01; 0.05; 0.1; 0.5; 1.0 |]

  let create ?(buckets = default_buckets) () =
    let n = Array.length buckets in
    if n = 0 then invalid_arg "Histogram.create: empty buckets";
    for i = 1 to n - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg "Histogram.create: bucket edges must be strictly increasing"
    done;
    {
      edges = Array.copy buckets;
      counts = Array.init shards (fun _ -> Array.init (n + 1) (fun _ -> Atomic.make 0));
      sums = Array.init shards (fun _ -> Atomic.make 0.);
    }

  (* Bucket arrays are short (~a dozen edges), so a linear scan beats binary
     search once branch prediction warms up. *)
  let bucket_of t v =
    let n = Array.length t.edges in
    let rec go i = if i >= n then n else if v <= t.edges.(i) then i else go (i + 1) in
    go 0

  let observe t v =
    let s = shard_index () in
    ignore (Atomic.fetch_and_add t.counts.(s).(bucket_of t v) 1);
    (* CAS loop over a boxed float: contention is already split per domain by
       the shard, so retries are rare. *)
    let cell = t.sums.(s) in
    let rec add () =
      let cur = Atomic.get cell in
      if not (Atomic.compare_and_set cell cur (cur +. v)) then add ()
    in
    add ()

  let edges t = Array.copy t.edges

  let counts t =
    let n = Array.length t.edges + 1 in
    let out = Array.make n 0 in
    Array.iter
      (fun shard -> Array.iteri (fun i c -> out.(i) <- out.(i) + Atomic.get c) shard)
      t.counts;
    out

  let cumulative t =
    let c = counts t in
    for i = 1 to Array.length c - 1 do
      c.(i) <- c.(i) + c.(i - 1)
    done;
    c

  let count t = Array.fold_left ( + ) 0 (counts t)
  let sum t = Array.fold_left (fun acc s -> acc +. Atomic.get s) 0. t.sums

  let reset t =
    Array.iter (fun shard -> Array.iter (fun c -> Atomic.set c 0) shard) t.counts;
    Array.iter (fun s -> Atomic.set s 0.) t.sums
end

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

(* A registry is a first-class value so a resident server can own its own
   name -> metric table: two servers (or a server and the CLI's default
   registry) then share no mutable state at all. The process-wide default
   below keeps every historical [counter name] call site unchanged. *)
type registry = { table : (string, metric) Hashtbl.t; mutex : Mutex.t }

let create_registry () = { table = Hashtbl.create 64; mutex = Mutex.create () }
let default = create_registry ()

let locked r f =
  Mutex.lock r.mutex;
  match f () with
  | v ->
      Mutex.unlock r.mutex;
      v
  | exception e ->
      Mutex.unlock r.mutex;
      raise e

let get_or_create r name ~make ~cast =
  locked r (fun () ->
      match Hashtbl.find_opt r.table name with
      | Some m -> cast m
      | None ->
          let m = make () in
          Hashtbl.add r.table name m;
          cast m)

let kind_error name = invalid_arg ("Metrics: " ^ name ^ " already registered with another kind")

let counter_in r name =
  get_or_create r name
    ~make:(fun () -> Counter_m (Counter.create ()))
    ~cast:(function Counter_m c -> c | _ -> kind_error name)

let gauge_in r name =
  get_or_create r name
    ~make:(fun () -> Gauge_m (Gauge.create ()))
    ~cast:(function Gauge_m g -> g | _ -> kind_error name)

let histogram_in ?buckets r name =
  get_or_create r name
    ~make:(fun () -> Histogram_m (Histogram.create ?buckets ()))
    ~cast:(function
      | Histogram_m h ->
          (match buckets with
          | Some b when b <> h.Histogram.edges ->
              invalid_arg ("Metrics: " ^ name ^ " already registered with other buckets")
          | _ -> h)
      | _ -> kind_error name)

let counter name = counter_in default name
let gauge name = gauge_in default name
let histogram ?buckets name = histogram_in ?buckets default name

type snapshot =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      edges : float array;
      counts : int array;
      sum : float;
      count : int;
    }

let snapshot ?(registry = default) () =
  let entries =
    locked registry (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) registry.table [])
  in
  entries
  |> List.map (fun (name, m) ->
         let snap =
           match m with
           | Counter_m c -> Counter_value (Counter.value c)
           | Gauge_m g -> Gauge_value (Gauge.value g)
           | Histogram_m h ->
               Histogram_value
                 {
                   edges = Histogram.edges h;
                   counts = Histogram.counts h;
                   sum = Histogram.sum h;
                   count = Histogram.count h;
                 }
         in
         (name, snap))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset ?(registry = default) () =
  let entries =
    locked registry (fun () -> Hashtbl.fold (fun _ v acc -> v :: acc) registry.table [])
  in
  List.iter
    (function
      | Counter_m c -> Counter.reset c
      | Gauge_m g -> Gauge.reset g
      | Histogram_m h -> Histogram.reset h)
    entries
