(** Lock-free metric primitives and a named global registry.

    Counters and histograms are sharded per domain: each recording operation
    is a single [Atomic.fetch_and_add] on the shard indexed by the calling
    domain's id, so hot planning loops never contend on one cache line and
    never take a lock. Reads merge the shards; like {!Raqo_resource.Counters},
    a read is exact once the parallel section has joined and approximate
    while it is in flight.

    Handles are cheap records — create them once at module initialisation
    (either anonymous via [Counter.create], or named via the registry
    functions below) and record through the handle. Registry lookups hash a
    string and take a mutex, so they do not belong on a hot path. *)

module Counter : sig
  type t

  val create : unit -> t
  val inc : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val value : t -> float
  val reset : t -> unit
end

module Histogram : sig
  type t

  (** Default bucket upper bounds, chosen for millisecond-scale timings:
      1µs … 1s in a 1/5/10 progression. *)
  val default_buckets : float array

  (** [create ?buckets ()] makes a histogram with the given strictly
      increasing upper bucket edges; an implicit [+Inf] bucket catches the
      overflow. Raises [Invalid_argument] on empty or non-increasing edges. *)
  val create : ?buckets:float array -> unit -> t

  val observe : t -> float -> unit

  val edges : t -> float array

  (** Per-bucket (non-cumulative) counts, length [Array.length (edges t) + 1];
      the last entry is the [+Inf] overflow bucket. *)
  val counts : t -> int array

  (** Cumulative counts in Prometheus [le] semantics (each bucket includes
      everything below it); same length as {!counts}. *)
  val cumulative : t -> int array

  val count : t -> int
  val sum : t -> float
  val reset : t -> unit
end

(** {2 Registries}

    A registry is a name -> metric table. The process-wide {!default} backs
    the historical [counter]/[gauge]/[histogram] entry points; components
    that must not share mutable state with the rest of the process (one
    resident optimizer server per {!registry}) create their own with
    {!create_registry} and resolve handles through [counter_in] & friends.
    Get-or-create semantics either way; asking for an existing name with a
    different kind (or different histogram buckets) raises
    [Invalid_argument]. *)

type registry

(** The process-wide registry every bare [counter]/[gauge]/[histogram] call
    resolves against. *)
val default : registry

(** [create_registry ()] is a fresh, empty, independently locked registry. *)
val create_registry : unit -> registry

val counter_in : registry -> string -> Counter.t
val gauge_in : registry -> string -> Gauge.t
val histogram_in : ?buckets:float array -> registry -> string -> Histogram.t

val counter : string -> Counter.t
val gauge : string -> Gauge.t
val histogram : ?buckets:float array -> string -> Histogram.t

type snapshot =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      edges : float array;
      counts : int array;  (** non-cumulative; last entry is +Inf *)
      sum : float;
      count : int;
    }

(** All metrics registered in [registry] (default: {!default}), sorted by
    name. *)
val snapshot : ?registry:registry -> unit -> (string * snapshot) list

(** Zero every metric registered in [registry] (default: {!default});
    registration survives and handles stay valid. *)
val reset : ?registry:registry -> unit -> unit
