let flag = Atomic.make false

let enabled () = Atomic.get flag
let set_enabled v = Atomic.set flag v

let with_enabled v f =
  let saved = Atomic.get flag in
  Atomic.set flag v;
  match f () with
  | r ->
      Atomic.set flag saved;
      r
  | exception e ->
      Atomic.set flag saved;
      raise e

(* 2^62 ns ≈ 146 years of uptime, so the int64 -> int conversion is safe on
   64-bit platforms and keeps timestamps unboxed in span records. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())
