(** The single switch for the observability layer.

    Every instrumentation site in the planning stack — spans, registry
    mirrors, sweep counters — is guarded by [enabled ()]. The flag is one
    [Atomic.get] on an immediate bool, so a disabled probe costs a load and
    a branch and allocates nothing: the warm [Kernel.sweep] loop stays at
    zero minor words with observability off. *)

val enabled : unit -> bool

val set_enabled : bool -> unit

(** [with_enabled v f] runs [f] with the flag forced to [v], restoring the
    previous value afterwards (including on exceptions). Test helper; not
    intended for concurrent use with other writers of the flag. *)
val with_enabled : bool -> (unit -> 'a) -> 'a

(** Monotonic wall-clock in nanoseconds ([CLOCK_MONOTONIC] via an
    allocation-free stub). Only meaningful as a difference of two reads. *)
val now_ns : unit -> int
