type event = {
  name : string;
  id : int;
  parent : int;
  domain : int;
  start_ns : int;
  dur_ns : int;
}

(* Single-writer ring: [buf] is only ever written by the owning domain (it
   lives in that domain's DLS), so recording needs no synchronisation. The
   global [rings] list exists solely so readers can merge after a join. *)
type ring = {
  ring_domain : int;
  mutable buf : event array;
  mutable next : int;
  mutable total : int;
}

let default_capacity = Atomic.make 8192
let rings : ring list ref = ref []
let rings_mutex = Mutex.create ()

let dummy_event = { name = ""; id = 0; parent = 0; domain = 0; start_ns = 0; dur_ns = 0 }

type dls_state = { mutable current : int; mutable ring : ring option }

let dls_key = Domain.DLS.new_key (fun () -> { current = 0; ring = None })

let get_ring st =
  match st.ring with
  | Some r -> r
  | None ->
      let r =
        {
          ring_domain = (Domain.self () :> int);
          buf = Array.make (Atomic.get default_capacity) dummy_event;
          next = 0;
          total = 0;
        }
      in
      st.ring <- Some r;
      Mutex.lock rings_mutex;
      rings := r :: !rings;
      Mutex.unlock rings_mutex;
      r

type span =
  | No_span
  | Span of { id : int; parent : int; name : string; start_ns : int }

let none = No_span

let next_id = Atomic.make 1

let start name =
  if not (Obs.enabled ()) then No_span
  else begin
    let st = Domain.DLS.get dls_key in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = st.current in
    st.current <- id;
    Span { id; parent; name; start_ns = Obs.now_ns () }
  end

let finish = function
  | No_span -> ()
  | Span { id; parent; name; start_ns } ->
      let st = Domain.DLS.get dls_key in
      let dur = Obs.now_ns () - start_ns in
      (* Restore the parent even if an inner span leaked without a finish:
         the chain re-synchronises at every close. *)
      st.current <- parent;
      let r = get_ring st in
      r.buf.(r.next) <-
        {
          name;
          id;
          parent;
          domain = (Domain.self () :> int);
          start_ns;
          dur_ns = (if dur < 0 then 0 else dur);
        };
      r.next <- (r.next + 1) mod Array.length r.buf;
      r.total <- r.total + 1

let with_ ~name f =
  if not (Obs.enabled ()) then f ()
  else begin
    let s = start name in
    match f () with
    | v ->
        finish s;
        v
    | exception e ->
        finish s;
        raise e
  end

let current () = if not (Obs.enabled ()) then 0 else (Domain.DLS.get dls_key).current

let with_context parent f =
  if parent = 0 then f ()
  else begin
    let st = Domain.DLS.get dls_key in
    let saved = st.current in
    st.current <- parent;
    match f () with
    | v ->
        st.current <- saved;
        v
    | exception e ->
        st.current <- saved;
        raise e
  end

let all_rings () =
  Mutex.lock rings_mutex;
  let rs = !rings in
  Mutex.unlock rings_mutex;
  rs

let events () =
  let collect r =
    let cap = Array.length r.buf in
    let n = min r.total cap in
    let first = if r.total <= cap then 0 else r.next in
    List.init n (fun i -> r.buf.((first + i) mod cap))
  in
  all_rings ()
  |> List.concat_map collect
  |> List.sort (fun a b -> compare (a.start_ns, a.id) (b.start_ns, b.id))

let recorded () = List.fold_left (fun acc r -> acc + r.total) 0 (all_rings ())

let clear () =
  List.iter
    (fun r ->
      r.next <- 0;
      r.total <- 0)
    (all_rings ())

let set_ring_capacity n =
  if n < 1 then invalid_arg "Trace.set_ring_capacity: capacity must be >= 1";
  Atomic.set default_capacity n;
  List.iter
    (fun r ->
      r.buf <- Array.make n dummy_event;
      r.next <- 0;
      r.total <- 0)
    (all_rings ())

let ring_capacity () = Atomic.get default_capacity
