(** Hierarchical spans recorded into bounded per-domain ring buffers.

    A span is opened with {!start} (or the scoped {!with_}) and closed with
    {!finish}; the completed event — name, id, parent id, domain, monotonic
    start timestamp and duration — lands in the ring buffer of the domain
    that closed it. Each ring is written only by its owning domain, so
    recording takes no lock; rings are bounded and overwrite their oldest
    events on wrap, so a long tracing session has a fixed memory ceiling.

    Nesting is ambient: each domain tracks its current innermost span, new
    spans parent to it, and {!current}/{!with_context} let a task submitted
    to {!Raqo_par.Pool} inherit the submitter's span as its parent even when
    it runs on another domain.

    When {!Obs.enabled} is false, {!start} returns {!none} without
    allocating and {!finish} on {!none} is a no-op, so instrumented hot
    paths stay allocation-free. *)

type span

(** The disabled/absent span: [finish none] does nothing. *)
val none : span

(** [start name] opens a span named [name] as a child of the calling
    domain's current span, and makes it current. Returns {!none} (no
    allocation, no clock read) when observability is off. [name] should be a
    static string: it is stored by reference in the event. *)
val start : string -> span

(** [finish s] closes [s]: records the completed event in this domain's
    ring and restores [s]'s parent as current. Start and finish must happen
    on the same domain (spans do not migrate; tasks get fresh child spans). *)
val finish : span -> unit

(** [with_ ~name f] runs [f] inside a span, closing it on return or
    exception. Prefer {!start}/{!finish} on paths where the closure
    allocation matters. *)
val with_ : name:string -> (unit -> 'a) -> 'a

(** {2 Cross-task context}

    [Pool] captures [current ()] at submission and wraps each task in
    [with_context], so spans opened inside the task parent to the span that
    was open where the work was submitted. *)

(** Id of the calling domain's current span; [0] when none is open or
    observability is off. *)
val current : unit -> int

(** [with_context parent f] runs [f] with [parent] installed as the calling
    domain's current span id, restoring the previous context afterwards.
    [with_context 0 f] is [f ()]. *)
val with_context : int -> (unit -> 'a) -> 'a

(** {2 Reading} *)

type event = {
  name : string;
  id : int;
  parent : int;  (** 0 = root *)
  domain : int;  (** id of the domain that ran the span *)
  start_ns : int;  (** monotonic clock, comparable across domains *)
  dur_ns : int;
}

(** Completed events from every domain's ring, oldest-first by start
    timestamp. Call after parallel sections have joined: a domain mid-write
    can tear the event it is currently recording. *)
val events : unit -> event list

(** Total spans recorded since start/[clear], including any that wrapped out
    of the rings. *)
val recorded : unit -> int

(** Drop all recorded events (rings stay allocated; span ids keep rising). *)
val clear : unit -> unit

(** Ring capacity, in events per domain, for existing and future rings.
    Resets existing rings. Not safe concurrently with recording; call it
    from setup code. Default 8192. *)
val set_ring_capacity : int -> unit

val ring_capacity : unit -> int
