type t = {
  jobs : int;
  mutex : Mutex.t;
  (* One condition carries both "work arrived" and "a task finished": every
     waiter re-checks its own predicate after waking, so sharing is safe and
     keeps the hot path to a single broadcast. *)
  wakeup : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable workers : unit Domain.t array;
  mutable closed : bool;
}

let default_jobs () = min 8 (Domain.recommended_domain_count ())

let locked t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
      Mutex.unlock t.mutex;
      v
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let worker_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    let rec await () =
      if not (Queue.is_empty t.queue) then begin
        let task = Queue.pop t.queue in
        Mutex.unlock t.mutex;
        Some task
      end
      else if t.closed then begin
        Mutex.unlock t.mutex;
        None
      end
      else begin
        Condition.wait t.wakeup t.mutex;
        await ()
      end
    in
    match await () with
    | Some task ->
        task ();
        next ()
    | None -> ()
  in
  next ()

let create ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      wakeup = Condition.create ();
      queue = Queue.create ();
      workers = [||];
      closed = false;
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.jobs

let shutdown t =
  let workers =
    locked t (fun () ->
        if t.closed then [||]
        else begin
          t.closed <- true;
          Condition.broadcast t.wakeup;
          let w = t.workers in
          t.workers <- [||];
          w
        end)
  in
  Array.iter Domain.join workers

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_list t thunks =
  match thunks with
  | [] -> []
  | _ when t.jobs = 1 && not t.closed -> List.map (fun f -> f ()) thunks
  | _ ->
      let thunks = Array.of_list thunks in
      let n = Array.length thunks in
      (* Tracing context is captured once at submission: spans opened inside
         a task parent to whatever span was open here, whichever domain the
         task lands on. 0 (no span / tracing off) makes the wrapper free. *)
      let span_ctx = Raqo_obs.Trace.current () in
      (* Each slot is written once, by whichever domain ran the task; the
         submitter only reads a slot after the mutex-protected [remaining]
         counter reached zero, which orders the writes before the reads. *)
      let results : ('a, exn) result option array = Array.make n None in
      let remaining = ref n in
      let task i () =
        let r =
          match Raqo_obs.Trace.with_context span_ctx thunks.(i) with
          | v -> Ok v
          | exception e -> Error e
        in
        results.(i) <- Some r;
        locked t (fun () ->
            decr remaining;
            Condition.broadcast t.wakeup)
      in
      locked t (fun () ->
          if t.closed then invalid_arg "Pool.run_list: pool is shut down";
          for i = 0 to n - 1 do
            Queue.push (task i) t.queue
          done;
          Condition.broadcast t.wakeup);
      (* Help: the submitter drains queued tasks (its own batch's or, when
         nested, anyone's) instead of blocking a domain doing nothing. *)
      let rec help () =
        Mutex.lock t.mutex;
        if !remaining = 0 then Mutex.unlock t.mutex
        else if not (Queue.is_empty t.queue) then begin
          let task = Queue.pop t.queue in
          Mutex.unlock t.mutex;
          task ();
          help ()
        end
        else begin
          (* Queue empty but tasks still in flight on workers: wait for a
             completion (or for nested work to appear). *)
          Condition.wait t.wakeup t.mutex;
          Mutex.unlock t.mutex;
          help ()
        end
      in
      help ();
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error e) -> raise e
             | None -> assert false)
           results)

let parallel_map t f xs = run_list t (List.map (fun x () -> f x) xs)
let parallel_mapi t f xs = run_list t (List.mapi (fun i x () -> f i x) xs)

let parallel_reduce t ~map ~combine ~init xs =
  List.fold_left combine init (parallel_map t map xs)

let chunks n xs =
  if n < 1 then invalid_arg "Pool.chunks: n must be >= 1";
  let len = List.length xs in
  if len = 0 then []
  else begin
    let k = min n len in
    let base = len / k and extra = len mod k in
    (* First [extra] chunks get one more element; order is preserved. *)
    let rec take i acc rest =
      if i = 0 then (List.rev acc, rest)
      else
        match rest with
        | x :: tl -> take (i - 1) (x :: acc) tl
        | [] -> (List.rev acc, [])
    in
    let rec go ci rest =
      if ci = k then []
      else begin
        let sz = base + if ci < extra then 1 else 0 in
        let chunk, rest = take sz [] rest in
        chunk :: go (ci + 1) rest
      end
    in
    go 0 xs
  end
