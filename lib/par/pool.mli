(** A fixed-size pool of worker domains behind a mutex/condition work queue —
    the substrate for every embarrassingly parallel hot path in the planner
    (randomized restarts, brute-force resource grids, workload batches).

    Design notes, load-bearing for callers:

    - {b Determinism.} Results of {!run_list} / {!parallel_map} are returned
      in submission order, whatever order the tasks actually executed in. A
      caller that gives each task its own pre-split PRNG therefore observes
      output bit-identical to a sequential run.
    - {b Helping submitter.} [create ~jobs] spawns [jobs - 1] worker domains;
      the domain that submits a batch executes tasks itself while it waits.
      Total parallelism is [jobs], and [jobs = 1] degenerates to a plain
      sequential map with no domain spawned and no synchronization beyond
      the queue discipline.
    - {b Nested use.} A task may itself submit a batch to the same pool: the
      inner submitter helps drain the queue instead of blocking on a worker
      slot, so nesting cannot deadlock even on a 1-job pool.
    - {b Exceptions.} If tasks raise, the whole batch still runs to
      completion, then the exception of the lowest-indexed failed task is
      re-raised in the submitter (deterministic regardless of scheduling).
    - {b Tracing.} {!run_list} captures the submitter's current
      {!Raqo_obs.Trace} span at submission and installs it around each task,
      so spans opened inside tasks parent to the submitting span even when
      the task runs on another domain. Free when tracing is off.

    Tasks must not share unsynchronized mutable state; every parallel entry
    point in this library hands each task its own coster/planner/RNG and
    reduces the results in the submitter. *)

type t

(** [create ~jobs ()] builds a pool with total parallelism [jobs] ([jobs - 1]
    worker domains plus the helping submitter).
    @raise Invalid_argument when [jobs < 1]. *)
val create : jobs:int -> unit -> t

(** [default_jobs ()] is the runtime's recommended domain count (capped at 8
    — beyond that the planner's task grain is too fine to win). *)
val default_jobs : unit -> int

(** [size t] is the pool's total parallelism (the [jobs] it was created
    with). *)
val size : t -> int

(** [shutdown t] signals the workers to exit once the queue drains and joins
    them. Idempotent. Submitting to a shut-down pool raises. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a

(** [run_list t thunks] executes the thunks on the pool and returns their
    results in input order. See the determinism / exception contract above.
    @raise Invalid_argument if the pool was shut down. *)
val run_list : t -> (unit -> 'a) list -> 'a list

(** [parallel_map t f xs] is [List.map f xs] with the applications spread
    over the pool, results in input order. *)
val parallel_map : t -> ('a -> 'b) -> 'a list -> 'b list

(** [parallel_mapi t f xs] is {!parallel_map} with the element index. *)
val parallel_mapi : t -> (int -> 'a -> 'b) -> 'a list -> 'b list

(** [parallel_reduce t ~map ~combine ~init xs] maps over [xs] on the pool,
    then folds the mapped results {e sequentially, in input order} in the
    submitter: [combine (... (combine init y0) ...) yn]. The fold order is
    fixed so non-commutative combines (first-wins tie-breaks) match their
    sequential counterparts exactly. *)
val parallel_reduce :
  t -> map:('a -> 'b) -> combine:('acc -> 'b -> 'acc) -> init:'acc -> 'a list -> 'acc

(** [chunks n xs] splits [xs] into at most [n] contiguous slices of
    near-equal length, preserving order ([List.concat (chunks n xs) = xs]);
    fewer slices when [xs] is short. The partitioning helper for grid
    searches. @raise Invalid_argument when [n < 1]. *)
val chunks : int -> 'a list -> 'a list list
