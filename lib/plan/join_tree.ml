type 'a t = Scan of string | Join of 'a * 'a t * 'a t
type plain = Join_impl.t t
type joint = (Join_impl.t * Raqo_cluster.Resources.t) t

let rec relations = function
  | Scan name -> [ name ]
  | Join (_, l, r) -> relations l @ relations r

let rec n_joins = function
  | Scan _ -> 0
  | Join (_, l, r) -> 1 + n_joins l + n_joins r

let valid t =
  let names = relations t in
  List.length (List.sort_uniq compare names) = List.length names

let rec left_deep = function
  | Scan _ -> true
  | Join (_, l, Scan _) -> left_deep l
  | Join (_, _, Join _) -> false

let rec fold_joins f acc = function
  | Scan _ -> acc
  | Join (a, l, r) ->
      let acc = fold_joins f acc l in
      let acc = fold_joins f acc r in
      f acc a (relations l) (relations r)

let rec map_annot f = function
  | Scan name -> Scan name
  | Join (a, l, r) -> Join (f a, map_annot f l, map_annot f r)

(* Effects in [f] fire in left-then-right post-order — pinned explicitly
   ([let .. and ..] leaves the order unspecified) so effectful costers
   observe the same invocation sequence from every tree-costing path. *)
let rec map_joins f = function
  | Scan name -> Scan name
  | Join (a, l, r) ->
      let l' = map_joins f l in
      let r' = map_joins f r in
      Join (f a (relations l) (relations r), l', r')

let annotations t = List.rev (fold_joins (fun acc a _ _ -> a :: acc) [] t)
let strip t = map_annot fst t

let rec equal_shape eq a b =
  match (a, b) with
  | Scan x, Scan y -> x = y
  | Join (ax, al, ar), Join (bx, bl, br) ->
      eq ax bx && equal_shape eq al bl && equal_shape eq ar br
  | Scan _, Join _ | Join _, Scan _ -> false

let rec pp pp_annot fmt = function
  | Scan name -> Format.pp_print_string fmt name
  | Join (a, l, r) ->
      Format.fprintf fmt "(%a %a %a)" (pp pp_annot) l pp_annot a (pp pp_annot) r

let pp_plain fmt t = pp Join_impl.pp fmt t

let pp_joint_annot fmt (impl, res) =
  Format.fprintf fmt "%a%a" Join_impl.pp impl Raqo_cluster.Resources.pp res

let pp_joint fmt t = pp pp_joint_annot fmt t

let to_dot pp_annot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph plan {\n  rankdir=BT;\n";
  let next = ref 0 in
  let fresh () =
    incr next;
    Printf.sprintf "n%d" !next
  in
  let rec emit node =
    let id = fresh () in
    (match node with
    | Scan name ->
        Buffer.add_string buf (Printf.sprintf "  %s [shape=box, label=\"%s\"];\n" id name)
    | Join (a, l, r) ->
        let label = String.escaped (Format.asprintf "%a" pp_annot a) in
        Buffer.add_string buf (Printf.sprintf "  %s [shape=ellipse, label=\"⋈ %s\"];\n" id label);
        let lid = emit l and rid = emit r in
        Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n  %s -> %s;\n" lid id rid id));
    id
  in
  let _root = emit t in
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let render_indented pp_annot t =
  let buf = Buffer.create 256 in
  let rec go indent = function
    | Scan name -> Buffer.add_string buf (Printf.sprintf "%sScan %s\n" indent name)
    | Join (a, l, r) ->
        Buffer.add_string buf
          (Format.asprintf "%sJoin %a\n" indent pp_annot a);
        go (indent ^ "  ") l;
        go (indent ^ "  ") r
  in
  go "" t;
  Buffer.contents buf
