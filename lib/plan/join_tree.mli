(** Physical query plans as binary join trees over base relations.

    The type is polymorphic in the per-join annotation ['a]: the query
    planner works on plans annotated with just the operator implementation,
    while RAQO's joint plans additionally carry the resource configuration
    chosen for each join (the paper's "joint query and resource plan"). *)

type 'a t =
  | Scan of string  (** a base relation, by name *)
  | Join of 'a * 'a t * 'a t  (** annotation, left (build/outer), right (probe/inner) *)

(** A conventional query plan: implementation choice per join. *)
type plain = Join_impl.t t

(** A joint query/resource plan: implementation plus resources per join. *)
type joint = (Join_impl.t * Raqo_cluster.Resources.t) t

(** [relations t] lists leaf relation names, left to right. *)
val relations : 'a t -> string list

(** [n_joins t] counts join operators. *)
val n_joins : 'a t -> int

(** [valid t] is true when no relation appears twice. *)
val valid : 'a t -> bool

(** [left_deep t] is true when every right child is a leaf (Selinger's
    search space). *)
val left_deep : 'a t -> bool

(** [fold_joins f init t] folds [f] over the join nodes bottom-up,
    left before right; each call sees the node's annotation and the relation
    sets of its two subtrees. *)
val fold_joins : ('acc -> 'a -> string list -> string list -> 'acc) -> 'acc -> 'a t -> 'acc

(** [map_annot f t] rewrites every join annotation. *)
val map_annot : ('a -> 'b) -> 'a t -> 'b t

(** [map_joins f t] rewrites each annotation with access to the relation sets
    of the join's subtrees (bottom-up), e.g. to assign resources per join.
    [f] is applied in left-then-right post-order, so effectful callbacks
    (costers with counters or memo tables) see a deterministic sequence. *)
val map_joins : ('a -> string list -> string list -> 'b) -> 'a t -> 'b t

(** [annotations t] lists join annotations bottom-up, left before right. *)
val annotations : 'a t -> 'a list

(** [strip t] forgets resource annotations. *)
val strip : joint -> plain

(** [equal_shape eq a b] compares structure, leaves and annotations. *)
val equal_shape : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

(** [pp pp_annot fmt t] prints the plan as a nested expression, e.g.
    [((customer BHJ orders) SMJ lineitem)]. *)
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit

val pp_plain : Format.formatter -> plain -> unit
val pp_joint : Format.formatter -> joint -> unit

(** [render_indented pp_annot t] is a multi-line, indented rendering for
    explain output. *)
val render_indented : (Format.formatter -> 'a -> unit) -> 'a t -> string

(** [to_dot pp_annot t] renders the plan as a Graphviz digraph (scans as
    boxes, joins as ellipses labelled by their annotation). *)
val to_dot : (Format.formatter -> 'a -> unit) -> 'a t -> string
