module Join_impl = Raqo_plan.Join_impl
module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema
module Op_cost = Raqo_cost.Op_cost

type choice = {
  impl : Join_impl.t;
  resources : Raqo_cluster.Resources.t;
  cost : float;
}

type t = {
  best_join : left:string list -> right:string list -> choice option;
  name : string;
}

type shape = unit Join_tree.t

let shape_of tree = Join_tree.map_annot (fun _ -> ()) tree

let cost_tree t shape =
  let exception Infeasible in
  let total = ref 0.0 in
  let annotate () left right =
    match t.best_join ~left ~right with
    | Some { impl; resources; cost } ->
        total := !total +. cost;
        (impl, resources)
    | None -> raise Infeasible
  in
  match Join_tree.map_joins annotate shape with
  | annotated -> Some (annotated, !total)
  | exception Infeasible -> None

let pick_cheaper a b =
  match (a, b) with
  | Some x, Some y -> if x.cost <= y.cost then Some x else Some y
  | (Some _ as x), None | None, (Some _ as x) -> x
  | None, None -> None

let finite_choice impl resources cost =
  if Float.is_finite cost then Some { impl; resources; cost } else None

(* Randomized planners re-cost near-identical subtrees thousands of times;
   memoize intermediate-result sizes per relation set (statistics caching,
   as production optimizers do). *)
let memoized_size schema =
  let sizes = Hashtbl.create 512 in
  fun names ->
    let key = String.concat "\x00" (List.sort compare names) in
    match Hashtbl.find_opt sizes key with
    | Some s -> s
    | None ->
        let s = Schema.join_size_gb schema names in
        Hashtbl.add sizes key s;
        s

let fixed model schema resources =
  let size = memoized_size schema in
  let best_join ~left ~right =
    let small_gb = Float.min (size left) (size right) in
    List.fold_left
      (fun best impl ->
        let cost = Op_cost.predict_exn model impl ~small_gb ~resources in
        pick_cheaper best (finite_choice impl resources cost))
      None Join_impl.all
  in
  { best_join; name = "qo-fixed-resources" }

(* The smallest grid configuration where [impl] is feasible: BHJ must start
   its hill climb above the OOM cliff, or the climb never leaves the
   infinite-cost plateau. [None] when no configuration is feasible. *)
let feasible_start model impl ~small_gb (conditions : Raqo_cluster.Conditions.t) =
  match impl with
  | Join_impl.Smj -> Some (Raqo_cluster.Conditions.min_config conditions)
  | Join_impl.Bhj ->
      let needed = small_gb /. model.Op_cost.oom_headroom in
      if needed > conditions.max_gb then None
      else begin
        let steps =
          Float.max 0.0 (ceil ((needed -. conditions.min_gb) /. conditions.gb_step))
        in
        let gb = conditions.min_gb +. (steps *. conditions.gb_step) in
        Some
          (Raqo_cluster.Resources.make ~containers:conditions.min_containers
             ~container_gb:(Float.min conditions.max_gb gb))
      end

(* Resource-plan one join implementation: smallest feasible start config,
   cost-model closure, and — for pruned planners — the monotone lower bound
   branch-and-bound consults. Shared by the string and masked RAQO costers.
   When the planner accepts kernels, the model is also compiled down to a
   {!Raqo_cost.Kernel.t} for this (impl, small_gb) pair — compilation is a
   handful of multiplies, so it is done per costed join; extended-space
   models yield no kernel and keep the scalar path throughout. *)
let raqo_impl model planner ~small_gb best impl =
  let conditions = Raqo_resource.Resource_planner.conditions planner in
  match feasible_start model impl ~small_gb conditions with
  | None -> best
  | Some start ->
      let key = Join_impl.to_string impl ^ "/join" in
      let cost_fn resources = Op_cost.predict_exn model impl ~small_gb ~resources in
      let bound = Op_cost.region_lower_bound model impl ~small_gb in
      let kernel =
        if Raqo_resource.Resource_planner.kernel_enabled planner then
          Raqo_cost.Kernel.make model impl ~small_gb
        else None
      in
      let resources, cost =
        Raqo_resource.Resource_planner.plan ~start ?bound ?kernel planner ~key
          ~data_gb:small_gb ~cost:cost_fn
      in
      pick_cheaper best (finite_choice impl resources cost)

let raqo model schema planner =
  let size = memoized_size schema in
  let best_join ~left ~right =
    let small_gb = Float.min (size left) (size right) in
    List.fold_left (raqo_impl model planner ~small_gb) None Join_impl.all
  in
  { best_join; name = "raqo" }

(* All shipped costers are symmetric in (left, right): they reduce the pair
   to min/max of the two sides' sizes before consulting the cost model. The
   memo key is therefore the unordered pair of relation sets, which collapses
   the mirrored lookups dynamic programming produces (Selinger costs both
   ({a},{b}) and ({b},{a}) for every connected 2-subset). *)
let memoize inner =
  let memo = Hashtbl.create 512 in
  let side names = String.concat "\x00" (List.sort compare names) in
  let best_join ~left ~right =
    let a = side left and b = side right in
    let key = if a <= b then a ^ "\x01" ^ b else b ^ "\x01" ^ a in
    match Hashtbl.find_opt memo key with
    | Some choice -> choice
    | None ->
        let choice = inner.best_join ~left ~right in
        Hashtbl.add memo key choice;
        choice
  in
  { best_join; name = inner.name ^ "+memo" }

let counting inner =
  let count = ref 0 in
  let best_join ~left ~right =
    incr count;
    inner.best_join ~left ~right
  in
  ({ best_join; name = inner.name }, fun () -> !count)

let simulator engine schema resources =
  let size = memoized_size schema in
  let best_join ~left ~right =
    let l = size left and r = size right in
    let small_gb, big_gb = if l <= r then (l, r) else (r, l) in
    match Raqo_execsim.Operators.best_impl engine ~small_gb ~big_gb ~resources with
    | Some (impl, cost) -> Some { impl; resources; cost }
    | None -> None
  in
  { best_join; name = "simulator-ground-truth" }

(* ------------------------------------------------------------------ *)
(* Mask-based costers: the same seam keyed on interned relation masks.
   Field names are distinct from [t]'s so both records coexist in one
   scope without shadowing. *)

module Interned = Raqo_catalog.Interned

type masked = {
  best_join_masked : left:int -> right:int -> choice option;
  masked_name : string;
}

let of_strings ctx t =
  (* Memoize mask -> names: the DP hot path asks for the same subsets over
     and over, and list reconstruction is what interning exists to avoid. *)
  let names = Hashtbl.create 256 in
  let names_of mask =
    match Hashtbl.find_opt names mask with
    | Some l -> l
    | None ->
        let l = Interned.names_of_mask ctx mask in
        Hashtbl.add names mask l;
        l
  in
  let best_join_masked ~left ~right =
    t.best_join ~left:(names_of left) ~right:(names_of right)
  in
  { best_join_masked; masked_name = t.name }

let to_strings ctx m =
  let best_join ~left ~right =
    m.best_join_masked
      ~left:(Interned.mask_of_names ctx left)
      ~right:(Interned.mask_of_names ctx right)
  in
  { best_join; name = m.masked_name }

(* Statistics cache keyed on the subset mask — one Hashtbl probe on an int
   instead of sort + concat over the relation names. *)
let memoized_size_masked ctx =
  let sizes = Hashtbl.create 512 in
  let schema = Interned.schema ctx in
  fun mask ->
    match Hashtbl.find_opt sizes mask with
    | Some s -> s
    | None ->
        let s = Schema.join_size_gb schema (Interned.names_of_mask ctx mask) in
        Hashtbl.add sizes mask s;
        s

let fixed_masked model ctx resources =
  let size = memoized_size_masked ctx in
  let best_join_masked ~left ~right =
    let small_gb = Float.min (size left) (size right) in
    List.fold_left
      (fun best impl ->
        let cost = Op_cost.predict_exn model impl ~small_gb ~resources in
        pick_cheaper best (finite_choice impl resources cost))
      None Join_impl.all
  in
  { best_join_masked; masked_name = "qo-fixed-resources" }

let raqo_masked model ctx planner =
  let size = memoized_size_masked ctx in
  let best_join_masked ~left ~right =
    let small_gb = Float.min (size left) (size right) in
    List.fold_left (raqo_impl model planner ~small_gb) None Join_impl.all
  in
  { best_join_masked; masked_name = "raqo" }

let is_singleton m = m <> 0 && m land (m - 1) = 0

let bit_index m =
  let rec go i m = if m land 1 = 1 then i else go (i + 1) (m lsr 1) in
  go 0 m

(* Memo keyed on the unordered mask pair — the same equivalence classes as
   the string [memoize] (a mask determines the sorted name set and vice
   versa), so hit/miss sequences are bit-identical. Layout is tiered by
   query size: for n <= 16 the dominant singleton-vs-subset lookups (all of
   left-deep DP) hit a flat array indexed by (singleton id, other mask);
   larger queries pack the pair into one int key while masks still fit. *)
let memoize_masked ctx inner =
  let n = Interned.n ctx in
  let lookup_tbl tbl key ~left ~right =
    match Hashtbl.find_opt tbl key with
    | Some choice -> choice
    | None ->
        let choice = inner.best_join_masked ~left ~right in
        Hashtbl.add tbl key choice;
        choice
  in
  let best_join_masked =
    if n <= 16 then begin
      let rows = Array.make (n lsl n) None in
      let rest = Hashtbl.create 256 in
      fun ~left ~right ->
        let sl = is_singleton left and sr = is_singleton right in
        if sl || sr then begin
          (* Both singleton: the lower id is the row, so mirrored pairs
             collapse exactly as the unordered string key does. *)
          let row, col =
            if sl && sr then if left <= right then (left, right) else (right, left)
            else if sl then (left, right)
            else (right, left)
          in
          let idx = (bit_index row lsl n) lor col in
          match rows.(idx) with
          | Some choice -> choice
          | None ->
              let choice = inner.best_join_masked ~left ~right in
              rows.(idx) <- Some choice;
              choice
        end
        else
          let lo = min left right and hi = max left right in
          lookup_tbl rest ((lo lsl n) lor hi) ~left ~right
    end
    else if n <= 31 then begin
      let memo = Hashtbl.create 1024 in
      fun ~left ~right ->
        let lo = min left right and hi = max left right in
        lookup_tbl memo ((lo lsl n) lor hi) ~left ~right
    end
    else begin
      let memo = Hashtbl.create 1024 in
      fun ~left ~right ->
        let lo = min left right and hi = max left right in
        lookup_tbl memo (lo, hi) ~left ~right
    end
  in
  { best_join_masked; masked_name = inner.masked_name ^ "+memo" }

let counting_masked inner =
  let count = ref 0 in
  let best_join_masked ~left ~right =
    incr count;
    inner.best_join_masked ~left ~right
  in
  ({ best_join_masked; masked_name = inner.masked_name }, fun () -> !count)

(* Mirrors [cost_tree]'s pinned left-then-right post-order, so effectful
   costers (counting, fault injectors) observe identical invocation
   sequences — including where an infeasible join aborts the walk. *)
let cost_tree_masked m ctx shape =
  let exception Infeasible in
  let total = ref 0.0 in
  let rec go = function
    | Join_tree.Scan name -> (Join_tree.Scan name, Interned.mask_of_name ctx name)
    | Join_tree.Join ((), l, r) -> (
        let l', lm = go l in
        let r', rm = go r in
        match m.best_join_masked ~left:lm ~right:rm with
        | Some { impl; resources; cost } ->
            total := !total +. cost;
            (Join_tree.Join ((impl, resources), l', r'), lm lor rm)
        | None -> raise Infeasible)
  in
  match go shape with
  | annotated, _mask -> Some (annotated, !total)
  | exception Infeasible -> None
