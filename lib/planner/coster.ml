module Join_impl = Raqo_plan.Join_impl
module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema
module Op_cost = Raqo_cost.Op_cost

type choice = {
  impl : Join_impl.t;
  resources : Raqo_cluster.Resources.t;
  cost : float;
}

type t = {
  best_join : left:string list -> right:string list -> choice option;
  name : string;
}

type shape = unit Join_tree.t

let shape_of tree = Join_tree.map_annot (fun _ -> ()) tree

let cost_tree t shape =
  let exception Infeasible in
  let total = ref 0.0 in
  let annotate () left right =
    match t.best_join ~left ~right with
    | Some { impl; resources; cost } ->
        total := !total +. cost;
        (impl, resources)
    | None -> raise Infeasible
  in
  match Join_tree.map_joins annotate shape with
  | annotated -> Some (annotated, !total)
  | exception Infeasible -> None

let pick_cheaper a b =
  match (a, b) with
  | Some x, Some y -> if x.cost <= y.cost then Some x else Some y
  | (Some _ as x), None | None, (Some _ as x) -> x
  | None, None -> None

let finite_choice impl resources cost =
  if Float.is_finite cost then Some { impl; resources; cost } else None

(* Randomized planners re-cost near-identical subtrees thousands of times;
   memoize intermediate-result sizes per relation set (statistics caching,
   as production optimizers do). *)
let memoized_size schema =
  let sizes = Hashtbl.create 512 in
  fun names ->
    let key = String.concat "\x00" (List.sort compare names) in
    match Hashtbl.find_opt sizes key with
    | Some s -> s
    | None ->
        let s = Schema.join_size_gb schema names in
        Hashtbl.add sizes key s;
        s

let fixed model schema resources =
  let size = memoized_size schema in
  let best_join ~left ~right =
    let small_gb = Float.min (size left) (size right) in
    List.fold_left
      (fun best impl ->
        let cost = Op_cost.predict_exn model impl ~small_gb ~resources in
        pick_cheaper best (finite_choice impl resources cost))
      None Join_impl.all
  in
  { best_join; name = "qo-fixed-resources" }

(* The smallest grid configuration where [impl] is feasible: BHJ must start
   its hill climb above the OOM cliff, or the climb never leaves the
   infinite-cost plateau. [None] when no configuration is feasible. *)
let feasible_start model impl ~small_gb (conditions : Raqo_cluster.Conditions.t) =
  match impl with
  | Join_impl.Smj -> Some (Raqo_cluster.Conditions.min_config conditions)
  | Join_impl.Bhj ->
      let needed = small_gb /. model.Op_cost.oom_headroom in
      if needed > conditions.max_gb then None
      else begin
        let steps =
          Float.max 0.0 (ceil ((needed -. conditions.min_gb) /. conditions.gb_step))
        in
        let gb = conditions.min_gb +. (steps *. conditions.gb_step) in
        Some
          (Raqo_cluster.Resources.make ~containers:conditions.min_containers
             ~container_gb:(Float.min conditions.max_gb gb))
      end

let raqo model schema planner =
  let size = memoized_size schema in
  let best_join ~left ~right =
    let small_gb = Float.min (size left) (size right) in
    let conditions = Raqo_resource.Resource_planner.conditions planner in
    List.fold_left
      (fun best impl ->
        match feasible_start model impl ~small_gb conditions with
        | None -> best
        | Some start ->
            let key = Join_impl.to_string impl ^ "/join" in
            let cost_fn resources = Op_cost.predict_exn model impl ~small_gb ~resources in
            let resources, cost =
              Raqo_resource.Resource_planner.plan ~start planner ~key ~data_gb:small_gb
                ~cost:cost_fn
            in
            pick_cheaper best (finite_choice impl resources cost))
      None Join_impl.all
  in
  { best_join; name = "raqo" }

(* All shipped costers are symmetric in (left, right): they reduce the pair
   to min/max of the two sides' sizes before consulting the cost model. The
   memo key is therefore the unordered pair of relation sets, which collapses
   the mirrored lookups dynamic programming produces (Selinger costs both
   ({a},{b}) and ({b},{a}) for every connected 2-subset). *)
let memoize inner =
  let memo = Hashtbl.create 512 in
  let side names = String.concat "\x00" (List.sort compare names) in
  let best_join ~left ~right =
    let a = side left and b = side right in
    let key = if a <= b then a ^ "\x01" ^ b else b ^ "\x01" ^ a in
    match Hashtbl.find_opt memo key with
    | Some choice -> choice
    | None ->
        let choice = inner.best_join ~left ~right in
        Hashtbl.add memo key choice;
        choice
  in
  { best_join; name = inner.name ^ "+memo" }

let counting inner =
  let count = ref 0 in
  let best_join ~left ~right =
    incr count;
    inner.best_join ~left ~right
  in
  ({ best_join; name = inner.name }, fun () -> !count)

let simulator engine schema resources =
  let size = memoized_size schema in
  let best_join ~left ~right =
    let l = size left and r = size right in
    let small_gb, big_gb = if l <= r then (l, r) else (r, l) in
    match Raqo_execsim.Operators.best_impl engine ~small_gb ~big_gb ~resources with
    | Some (impl, cost) -> Some { impl; resources; cost }
    | None -> None
  in
  { best_join; name = "simulator-ground-truth" }
