(** The [get_plan_cost] seam between query planning and resource planning
    (paper Section VI-C): query planners ask a coster for the best feasible
    implementation (and its cost) of each candidate join. Cost-based RAQO is
    "nicely integrated, and yet easily pluggable" by swapping in a coster
    that runs resource planning inside this call. *)

(** What a coster returns for one candidate join: the chosen implementation,
    the resources it should run with, and its estimated cost. *)
type choice = {
  impl : Raqo_plan.Join_impl.t;
  resources : Raqo_cluster.Resources.t;
  cost : float;
}

type t = {
  best_join :
    left:string list -> right:string list -> choice option;
      (** [None] when no implementation is feasible for this join *)
  name : string;  (** for explain output *)
}

(** A plan shape: a join tree whose operator choices are not yet made. *)
type shape = unit Raqo_plan.Join_tree.t

(** [cost_tree t shape] costs a plan shape bottom-up, choosing operator
    implementation and resources per join; [None] if any join is
    infeasible. *)
val cost_tree : t -> shape -> (Raqo_plan.Join_tree.joint * float) option

(** [shape_of tree] forgets annotations. *)
val shape_of : 'a Raqo_plan.Join_tree.t -> shape

(** [fixed model schema resources] — conventional query optimization: cost
    both implementations under one global, pre-chosen resource
    configuration (the paper's "QO" baseline). *)
val fixed :
  Raqo_cost.Op_cost.t ->
  Raqo_catalog.Schema.t ->
  Raqo_cluster.Resources.t ->
  t

(** [raqo model schema planner] — cost-based RAQO: resource-plan each
    implementation of each join (hill climbing / cache per [planner]), then
    keep the cheapest feasible (implementation, resources) pair. When
    [planner] accepts kernels ({!Raqo_resource.Resource_planner.create}'s
    [?kernel], the default), paper-space models are compiled per
    (implementation, size) into {!Raqo_cost.Kernel.t} values and resource
    search runs on the bit-identical kernel path — same plans and costs,
    allocation-free grid sweeps; extended-space models keep the scalar
    path. *)
val raqo :
  Raqo_cost.Op_cost.t ->
  Raqo_catalog.Schema.t ->
  Raqo_resource.Resource_planner.t ->
  t

(** [memoize t] caches [best_join] results (including [None]) per query,
    keyed on the unordered pair of relation sets. Sound for symmetric
    costers — every shipped coster keys its cost on the smaller side's size,
    so [best_join ~left ~right = best_join ~left:right ~right:left] — and it
    collapses the mirrored pairs Selinger's DP enumerates. The memo table is
    a plain [Hashtbl]: use a memoized coster from one domain only (parallel
    restarts each wrap their own instance). *)
val memoize : t -> t

(** [counting t] wraps [t] with an invocation counter (a plain [ref]: use from
    one domain only). Instrumentation seam for tests and the differential
    oracle — e.g. proving {!memoize} never issues more underlying lookups
    than the plain coster. *)
val counting : t -> t * (unit -> int)

(** [simulator engine schema resources] — ground truth: cost joins with the
    execution simulator at fixed resources (used by tests and the
    Section III analysis, not by the optimizer). *)
val simulator :
  Raqo_execsim.Engine.t ->
  Raqo_catalog.Schema.t ->
  Raqo_cluster.Resources.t ->
  t

(** {2 Mask-based costers}

    The same [get_plan_cost] seam keyed on interned relation masks
    ({!Raqo_catalog.Interned}): join sides are subset bitmasks instead of
    string lists, so the DP hot path allocates nothing per lookup. Field
    names are distinct from {!t}'s so both records coexist without
    shadowing. *)

type masked = {
  best_join_masked : left:int -> right:int -> choice option;
      (** [None] when no implementation is feasible for this join *)
  masked_name : string;
}

(** [of_strings ctx t] adapts a string coster to the mask seam, memoizing
    mask → name-list conversion. Name lists are produced in ascending id
    order — exactly what the string planners historically passed — so
    adapted costers observe byte-identical arguments. *)
val of_strings : Raqo_catalog.Interned.t -> t -> masked

(** [to_strings ctx m] adapts a masked coster back to the string seam
    (CLI, examples, and differential-oracle reference arms). *)
val to_strings : Raqo_catalog.Interned.t -> masked -> t

(** [fixed_masked model ctx resources] is {!fixed} on the mask seam,
    with the statistics cache keyed on subset masks. *)
val fixed_masked :
  Raqo_cost.Op_cost.t ->
  Raqo_catalog.Interned.t ->
  Raqo_cluster.Resources.t ->
  masked

(** [raqo_masked model ctx planner] is {!raqo} on the mask seam. Like the
    string {!raqo} it hands the resource planner the operator's monotone
    cost lower bound ({!Raqo_cost.Op_cost.region_lower_bound}), which
    planners created with [~pruned:true] use for branch-and-bound. *)
val raqo_masked :
  Raqo_cost.Op_cost.t ->
  Raqo_catalog.Interned.t ->
  Raqo_resource.Resource_planner.t ->
  masked

(** [memoize_masked ctx m] caches [best_join_masked] results per query,
    keyed on the unordered mask pair — the same equivalence classes as the
    string {!memoize}, so hit/miss sequences are bit-identical. Queries of
    up to 16 relations back the dominant singleton-versus-subset lookups
    with a flat array; larger queries use packed-int hash keys. Same
    single-domain discipline as {!memoize}. *)
val memoize_masked : Raqo_catalog.Interned.t -> masked -> masked

(** [counting_masked m] is {!counting} on the mask seam. *)
val counting_masked : masked -> masked * (unit -> int)

(** [cost_tree_masked m ctx shape] is {!cost_tree} on the mask seam,
    resolving leaf masks through [ctx]. Joins are costed in the same pinned
    left-then-right post-order, including where an infeasible join aborts
    the walk. *)
val cost_tree_masked :
  masked ->
  Raqo_catalog.Interned.t ->
  shape ->
  (Raqo_plan.Join_tree.joint * float) option
