(** The [get_plan_cost] seam between query planning and resource planning
    (paper Section VI-C): query planners ask a coster for the best feasible
    implementation (and its cost) of each candidate join. Cost-based RAQO is
    "nicely integrated, and yet easily pluggable" by swapping in a coster
    that runs resource planning inside this call. *)

(** What a coster returns for one candidate join: the chosen implementation,
    the resources it should run with, and its estimated cost. *)
type choice = {
  impl : Raqo_plan.Join_impl.t;
  resources : Raqo_cluster.Resources.t;
  cost : float;
}

type t = {
  best_join :
    left:string list -> right:string list -> choice option;
      (** [None] when no implementation is feasible for this join *)
  name : string;  (** for explain output *)
}

(** A plan shape: a join tree whose operator choices are not yet made. *)
type shape = unit Raqo_plan.Join_tree.t

(** [cost_tree t shape] costs a plan shape bottom-up, choosing operator
    implementation and resources per join; [None] if any join is
    infeasible. *)
val cost_tree : t -> shape -> (Raqo_plan.Join_tree.joint * float) option

(** [shape_of tree] forgets annotations. *)
val shape_of : 'a Raqo_plan.Join_tree.t -> shape

(** [fixed model schema resources] — conventional query optimization: cost
    both implementations under one global, pre-chosen resource
    configuration (the paper's "QO" baseline). *)
val fixed :
  Raqo_cost.Op_cost.t ->
  Raqo_catalog.Schema.t ->
  Raqo_cluster.Resources.t ->
  t

(** [raqo model schema planner] — cost-based RAQO: resource-plan each
    implementation of each join (hill climbing / cache per [planner]), then
    keep the cheapest feasible (implementation, resources) pair. *)
val raqo :
  Raqo_cost.Op_cost.t ->
  Raqo_catalog.Schema.t ->
  Raqo_resource.Resource_planner.t ->
  t

(** [memoize t] caches [best_join] results (including [None]) per query,
    keyed on the unordered pair of relation sets. Sound for symmetric
    costers — every shipped coster keys its cost on the smaller side's size,
    so [best_join ~left ~right = best_join ~left:right ~right:left] — and it
    collapses the mirrored pairs Selinger's DP enumerates. The memo table is
    a plain [Hashtbl]: use a memoized coster from one domain only (parallel
    restarts each wrap their own instance). *)
val memoize : t -> t

(** [counting t] wraps [t] with an invocation counter (a plain [ref]: use from
    one domain only). Instrumentation seam for tests and the differential
    oracle — e.g. proving {!memoize} never issues more underlying lookups
    than the plain coster. *)
val counting : t -> t * (unit -> int)

(** [simulator engine schema resources] — ground truth: cost joins with the
    execution simulator at fixed resources (used by tests and the
    Section III analysis, not by the optimizer). *)
val simulator :
  Raqo_execsim.Engine.t ->
  Raqo_catalog.Schema.t ->
  Raqo_cluster.Resources.t ->
  t
