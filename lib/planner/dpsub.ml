module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema
module Interned = Raqo_catalog.Interned
module Memo = Raqo_memo.Memo
module Pool = Raqo_par.Pool

(* Connectivity tables are 2^n bytes and the DP is O(3^n): 20 relations
   (Selinger's cap) is where both stay interactive on sparse join graphs. *)
let max_relations = 20

let validate schema relations =
  let n = List.length relations in
  if n = 0 then invalid_arg "Dpsub.optimize: empty relation set";
  if n > max_relations then invalid_arg "Dpsub.optimize: too many relations for bushy DP";
  List.iter
    (fun r -> if not (Schema.mem schema r) then invalid_arg ("Dpsub.optimize: unknown " ^ r))
    relations

let m_expansions = Raqo_obs.Metrics.counter "raqo_dpsub_expansions_total"

(* The reference bushy DP over string lists, kept verbatim as the
   differential-oracle baseline for the mask-based core below. *)
let optimize_reference (coster : Coster.t) schema relations =
  validate schema relations;
  let span = Raqo_obs.Trace.start "dpsub/dp-reference" in
  let n = List.length relations in
  let rels = Array.of_list relations in
  let graph = Schema.graph schema in
  (* Adjacency bitmasks: adj.(i) = peers of relation i within the query. *)
  let adj =
    Array.init n (fun i ->
        let mask = ref 0 in
        for j = 0 to n - 1 do
          if
            i <> j
            && Option.is_some (Raqo_catalog.Join_graph.selectivity graph rels.(i) rels.(j))
          then mask := !mask lor (1 lsl j)
        done;
        !mask)
  in
  let size = 1 lsl n in
  (* Connectivity of a subset, by BFS over bitmasks. *)
  let connected = Array.make size false in
  for mask = 1 to size - 1 do
    let seed = mask land -mask in
    let reach = ref seed in
    let frontier = ref seed in
    while !frontier <> 0 do
      let next = ref 0 in
      for i = 0 to n - 1 do
        if !frontier land (1 lsl i) <> 0 then next := !next lor (adj.(i) land mask)
      done;
      frontier := !next land lnot !reach;
      reach := !reach lor !next
    done;
    connected.(mask) <- !reach = mask
  done;
  let names_of mask =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (if mask land (1 lsl i) <> 0 then rels.(i) :: acc else acc)
    in
    go (n - 1) []
  in
  let crossing_edge a b =
    let rec any i =
      i < n
      && ((a land (1 lsl i) <> 0 && adj.(i) land b <> 0) || any (i + 1))
    in
    any 0
  in
  let best : (Join_tree.joint * float) option array = Array.make size None in
  for i = 0 to n - 1 do
    best.(1 lsl i) <- Some (Join_tree.Scan rels.(i), 0.0)
  done;
  for mask = 1 to size - 1 do
    if connected.(mask) && best.(mask) = None then begin
      (* Enumerate proper submasks containing the lowest bit (each unordered
         split once); the costers order build/probe sides by size, so
         mirrored splits cost the same. *)
      let low = mask land -mask in
      let sub = ref ((mask - 1) land mask) in
      while !sub <> 0 do
        let rest = mask lxor !sub in
        if
          !sub land low <> 0 && rest <> 0 && connected.(!sub) && connected.(rest)
          && crossing_edge !sub rest
        then begin
          match (best.(!sub), best.(rest)) with
          | Some (lt, lc), Some (rt, rc) -> begin
              match coster.Coster.best_join ~left:(names_of !sub) ~right:(names_of rest) with
              | Some { impl; resources; cost } ->
                  let total = lc +. rc +. cost in
                  let better =
                    match best.(mask) with
                    | Some (_, c) -> total < c
                    | None -> true
                  in
                  if better then
                    best.(mask) <- Some (Join_tree.Join ((impl, resources), lt, rt), total)
              | None -> ()
            end
          | None, _ | _, None -> ()
        end;
        sub := (!sub - 1) land mask
      done
    end
  done;
  Raqo_obs.Trace.finish span;
  best.(size - 1)

(* Connectivity of every subset, shared by the sequential and parallel mask
   cores. nb.(mask) = union of adjacency over the members of [mask],
   tabulated in one O(2^n) pass; connected subsets are then marked by forward
   expansion instead of a per-mask BFS: a set is connected iff it is a
   singleton or a smaller connected set plus one adjacent relation (drop a
   spanning-tree leaf), and that smaller set is numerically below it, so one
   ascending sweep marks every superset before visiting it. Identical table
   to the reference's BFS. The returned closure only reads the table, so it
   is safe to share across domains once built. *)
let connectivity ctx =
  let n = Interned.n ctx in
  let adj = Interned.adj ctx in
  let size = 1 lsl n in
  let bit_index bit =
    let rec go b i = if b = 1 then i else go (b lsr 1) (i + 1) in
    go bit 0
  in
  let nb = Array.make size 0 in
  for mask = 1 to size - 1 do
    let low = mask land -mask in
    nb.(mask) <- nb.(mask lxor low) lor adj.(bit_index low)
  done;
  let connected = Bytes.make size '\000' in
  for i = 0 to n - 1 do
    Bytes.unsafe_set connected (1 lsl i) '\001'
  done;
  for mask = 1 to size - 1 do
    if Bytes.unsafe_get connected mask <> '\000' then begin
      let ext = ref (nb.(mask) land lnot mask) in
      while !ext <> 0 do
        let bit = !ext land - !ext in
        Bytes.unsafe_set connected (mask lor bit) '\001';
        ext := !ext lxor bit
      done
    end
  done;
  fun mask -> Bytes.unsafe_get connected mask <> '\000'

let crossing_edge n adj a b =
  let rec any i =
    i < n && ((a land (1 lsl i) <> 0 && adj.(i) land b <> 0) || any (i + 1))
  in
  any 0

(* Mask-based bushy DP: adjacency comes precomputed from the interned
   context and the coster is the mask-keyed seam, so the O(3^n) submask
   sweep touches no strings. Enumeration order and tie-breaks mirror
   [optimize_reference] exactly. *)
let optimize_masked (m : Coster.masked) ctx =
  let n = Interned.n ctx in
  if n > max_relations then invalid_arg "Dpsub.optimize: too many relations for bushy DP";
  let span = Raqo_obs.Trace.start "dpsub/dp" in
  let adj = Interned.adj ctx in
  let size = 1 lsl n in
  let connected = connectivity ctx in
  let is_none o = match o with None -> true | Some _ -> false in
  let crossing_edge a b = crossing_edge n adj a b in
  let best : (Join_tree.joint * float) option array = Array.make size None in
  for i = 0 to n - 1 do
    best.(1 lsl i) <- Some (Join_tree.Scan (Interned.name ctx i), 0.0)
  done;
  for mask = 1 to size - 1 do
    if connected mask && is_none best.(mask) then
      Interned.iter_splits mask (fun ~sub ~rest ->
          if connected sub && connected rest && crossing_edge sub rest then
            match (best.(sub), best.(rest)) with
            | Some (lt, lc), Some (rt, rc) -> begin
                if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_expansions;
                match m.Coster.best_join_masked ~left:sub ~right:rest with
                | Some { impl; resources; cost } ->
                    let total = lc +. rc +. cost in
                    let better =
                      match best.(mask) with
                      | Some (_, c) -> total < c
                      | None -> true
                    in
                    if better then
                      best.(mask) <- Some (Join_tree.Join ((impl, resources), lt, rt), total)
                | None -> ()
              end
            | None, _ | _, None -> ())
  done;
  Raqo_obs.Trace.finish span;
  best.(size - 1)

let optimize coster schema relations =
  validate schema relations;
  let ctx = Interned.make schema relations in
  optimize_masked (Coster.of_strings ctx coster) ctx

(* ------------------------------------------------- parallel shared memo *)

(* Static names so per-level spans stay allocation-free on the hot path
   ([Trace.start] stores the name by reference). *)
let level_span_names =
  Array.init (max_relations + 1) (fun k -> Printf.sprintf "dpsub/level-%02d" k)

(* Level-synchronous parallel DPsub over a shared memo table.

   Bit-identity argument: the best plan for a subset of size k is a pure
   function of the published values of its strict submasks (all of size
   < k) — the split enumeration, feasibility filters, and strict-< first-wins
   tie-break inside one subset run sequentially on whichever domain claimed
   it, in exactly [optimize_masked]'s order. Processing subsets level by
   level with a barrier between levels (one [Pool.run_list] per level) means
   every read hits a final value, so the table contents after each level —
   and hence the final plan, cost, and resource assignment — are independent
   of claim order, timing, and domain count.

   Work sharing: each level's connected subsets are packed into an array and
   workers grab contiguous chunks off an atomic cursor (load balancing: the
   split loop is O(2^k) per subset, wildly uneven across a level). The memo
   claim CAS then makes not-repeating-work a table invariant rather than a
   scheduler property. Each worker index owns one coster for the whole
   query — task w at level k and task w at level k+1 never overlap, so the
   coster's memo tables and the kernel scratch inside its resource planner
   stay single-writer while staying warm across levels. *)
let optimize_par_masked ?memo ~(coster : unit -> Coster.masked) pool ctx =
  let n = Interned.n ctx in
  if n > max_relations then invalid_arg "Dpsub.optimize: too many relations for bushy DP";
  let memo =
    match memo with
    | Some m ->
        if Memo.bits m <> n then
          invalid_arg "Dpsub.optimize_par_masked: memo sized for a different query";
        m
    | None -> Memo.create ~bits:n
  in
  let span = Raqo_obs.Trace.start "dpsub/dp-par" in
  let finish_on_error f =
    match f () with
    | v -> v
    | exception e ->
        Raqo_obs.Trace.finish span;
        raise e
  in
  finish_on_error @@ fun () ->
  let adj = Interned.adj ctx in
  let connected = connectivity ctx in
  for i = 0 to n - 1 do
    Memo.publish memo (1 lsl i) (Some (Join_tree.Scan (Interned.name ctx i), 0.0))
  done;
  let jobs = Pool.size pool in
  let costers = Array.init jobs (fun _ -> coster ()) in
  (* The best plan for one claimed subset, reading published lower levels.
     Identical split order, filters, and tie-breaks to [optimize_masked]. *)
  let compute c mask =
    let best = ref None in
    Interned.iter_splits mask (fun ~sub ~rest ->
        if connected sub && connected rest && crossing_edge n adj sub rest then
          match (Memo.get memo sub, Memo.get memo rest) with
          | Memo.Published (Some (lt, lc)), Memo.Published (Some (rt, rc)) -> begin
              if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_expansions;
              match c.Coster.best_join_masked ~left:sub ~right:rest with
              | Some { impl; resources; cost } ->
                  let total = lc +. rc +. cost in
                  let better =
                    match !best with
                    | Some (_, b) -> total < b
                    | None -> true
                  in
                  if better then
                    best := Some (Join_tree.Join ((impl, resources), lt, rt), total)
              | None -> ()
            end
          | (Memo.Published _ | Memo.Empty | Memo.Claimed), _ -> ());
    !best
  in
  let masks = Array.make (1 lsl n) 0 in
  for level = 2 to n do
    let count = ref 0 in
    Interned.iter_subsets_of_size ~n ~size:level (fun mask ->
        if connected mask then begin
          masks.(!count) <- mask;
          incr count
        end);
    let len = !count in
    if len > 0 then begin
      let lspan = Raqo_obs.Trace.start level_span_names.(level) in
      let cursor = Atomic.make 0 in
      let grain = max 1 (len / (jobs * 8)) in
      let worker w =
        let c = costers.(w) in
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add cursor grain in
          if start >= len then continue := false
          else
            for i = start to min (start + grain) len - 1 do
              let mask = masks.(i) in
              if Memo.try_claim memo mask then
                match compute c mask with
                | v -> Memo.publish memo mask v
                | exception e ->
                    (* Never strand a claimed-but-unpublished entry: revert
                       the claim, then let the pool re-raise after the whole
                       batch has run. *)
                    Memo.release memo mask;
                    raise e
            done
        done
      in
      match Pool.run_list pool (List.init jobs (fun w () -> worker w)) with
      | _ -> Raqo_obs.Trace.finish lspan
      | exception e ->
          Raqo_obs.Trace.finish lspan;
          raise e
    end
  done;
  let result =
    match Memo.get memo (Interned.full_mask ctx) with
    | Memo.Published v -> v
    | Memo.Empty | Memo.Claimed -> None
  in
  Raqo_obs.Trace.finish span;
  result
