module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema
module Interned = Raqo_catalog.Interned

let validate schema relations =
  let n = List.length relations in
  if n = 0 then invalid_arg "Dpsub.optimize: empty relation set";
  if n > 16 then invalid_arg "Dpsub.optimize: too many relations for bushy DP";
  List.iter
    (fun r -> if not (Schema.mem schema r) then invalid_arg ("Dpsub.optimize: unknown " ^ r))
    relations

let m_expansions = Raqo_obs.Metrics.counter "raqo_dpsub_expansions_total"

(* The reference bushy DP over string lists, kept verbatim as the
   differential-oracle baseline for the mask-based core below. *)
let optimize_reference (coster : Coster.t) schema relations =
  validate schema relations;
  let span = Raqo_obs.Trace.start "dpsub/dp-reference" in
  let n = List.length relations in
  let rels = Array.of_list relations in
  let graph = Schema.graph schema in
  (* Adjacency bitmasks: adj.(i) = peers of relation i within the query. *)
  let adj =
    Array.init n (fun i ->
        let mask = ref 0 in
        for j = 0 to n - 1 do
          if
            i <> j
            && Option.is_some (Raqo_catalog.Join_graph.selectivity graph rels.(i) rels.(j))
          then mask := !mask lor (1 lsl j)
        done;
        !mask)
  in
  let size = 1 lsl n in
  (* Connectivity of a subset, by BFS over bitmasks. *)
  let connected = Array.make size false in
  for mask = 1 to size - 1 do
    let seed = mask land -mask in
    let reach = ref seed in
    let frontier = ref seed in
    while !frontier <> 0 do
      let next = ref 0 in
      for i = 0 to n - 1 do
        if !frontier land (1 lsl i) <> 0 then next := !next lor (adj.(i) land mask)
      done;
      frontier := !next land lnot !reach;
      reach := !reach lor !next
    done;
    connected.(mask) <- !reach = mask
  done;
  let names_of mask =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (if mask land (1 lsl i) <> 0 then rels.(i) :: acc else acc)
    in
    go (n - 1) []
  in
  let crossing_edge a b =
    let rec any i =
      i < n
      && ((a land (1 lsl i) <> 0 && adj.(i) land b <> 0) || any (i + 1))
    in
    any 0
  in
  let best : (Join_tree.joint * float) option array = Array.make size None in
  for i = 0 to n - 1 do
    best.(1 lsl i) <- Some (Join_tree.Scan rels.(i), 0.0)
  done;
  for mask = 1 to size - 1 do
    if connected.(mask) && best.(mask) = None then begin
      (* Enumerate proper submasks containing the lowest bit (each unordered
         split once); the costers order build/probe sides by size, so
         mirrored splits cost the same. *)
      let low = mask land -mask in
      let sub = ref ((mask - 1) land mask) in
      while !sub <> 0 do
        let rest = mask lxor !sub in
        if
          !sub land low <> 0 && rest <> 0 && connected.(!sub) && connected.(rest)
          && crossing_edge !sub rest
        then begin
          match (best.(!sub), best.(rest)) with
          | Some (lt, lc), Some (rt, rc) -> begin
              match coster.Coster.best_join ~left:(names_of !sub) ~right:(names_of rest) with
              | Some { impl; resources; cost } ->
                  let total = lc +. rc +. cost in
                  let better =
                    match best.(mask) with
                    | Some (_, c) -> total < c
                    | None -> true
                  in
                  if better then
                    best.(mask) <- Some (Join_tree.Join ((impl, resources), lt, rt), total)
              | None -> ()
            end
          | None, _ | _, None -> ()
        end;
        sub := (!sub - 1) land mask
      done
    end
  done;
  Raqo_obs.Trace.finish span;
  best.(size - 1)

(* Mask-based bushy DP: adjacency comes precomputed from the interned
   context and the coster is the mask-keyed seam, so the O(3^n) submask
   sweep touches no strings. Enumeration order and tie-breaks mirror
   [optimize_reference] exactly. *)
let optimize_masked (m : Coster.masked) ctx =
  let n = Interned.n ctx in
  if n > 16 then invalid_arg "Dpsub.optimize: too many relations for bushy DP";
  let span = Raqo_obs.Trace.start "dpsub/dp" in
  let adj = Interned.adj ctx in
  let size = 1 lsl n in
  (* nb.(mask) = union of adjacency over the members of [mask], tabulated in
     one O(2^n) pass; the connectivity BFS then expands a whole frontier with
     a single lookup instead of a bit-by-bit rescan. Same table as the
     reference's per-mask BFS, just cheaper to build. *)
  let bit_index bit =
    let rec go b i = if b = 1 then i else go (b lsr 1) (i + 1) in
    go bit 0
  in
  let nb = Array.make size 0 in
  for mask = 1 to size - 1 do
    let low = mask land -mask in
    nb.(mask) <- nb.(mask lxor low) lor adj.(bit_index low)
  done;
  (* Connected subsets by forward expansion instead of a per-mask BFS: a
     set is connected iff it is a singleton or a smaller connected set plus
     one adjacent relation (drop a spanning-tree leaf), and that smaller set
     is numerically below it, so one ascending sweep marks every superset
     before visiting it. Identical table to the reference's BFS. *)
  let connected = Bytes.make size '\000' in
  for i = 0 to n - 1 do
    Bytes.unsafe_set connected (1 lsl i) '\001'
  done;
  for mask = 1 to size - 1 do
    if Bytes.unsafe_get connected mask <> '\000' then begin
      let ext = ref (nb.(mask) land lnot mask) in
      while !ext <> 0 do
        let bit = !ext land - !ext in
        Bytes.unsafe_set connected (mask lor bit) '\001';
        ext := !ext lxor bit
      done
    end
  done;
  let connected mask = Bytes.unsafe_get connected mask <> '\000' in
  let is_none o = match o with None -> true | Some _ -> false in
  let crossing_edge a b =
    let rec any i =
      i < n
      && ((a land (1 lsl i) <> 0 && adj.(i) land b <> 0) || any (i + 1))
    in
    any 0
  in
  let best : (Join_tree.joint * float) option array = Array.make size None in
  for i = 0 to n - 1 do
    best.(1 lsl i) <- Some (Join_tree.Scan (Interned.name ctx i), 0.0)
  done;
  for mask = 1 to size - 1 do
    if connected mask && is_none best.(mask) then begin
      let low = mask land -mask in
      let sub = ref ((mask - 1) land mask) in
      while !sub <> 0 do
        let rest = mask lxor !sub in
        if
          !sub land low <> 0 && rest <> 0 && connected !sub && connected rest
          && crossing_edge !sub rest
        then begin
          match (best.(!sub), best.(rest)) with
          | Some (lt, lc), Some (rt, rc) -> begin
              if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_expansions;
              match m.Coster.best_join_masked ~left:!sub ~right:rest with
              | Some { impl; resources; cost } ->
                  let total = lc +. rc +. cost in
                  let better =
                    match best.(mask) with
                    | Some (_, c) -> total < c
                    | None -> true
                  in
                  if better then
                    best.(mask) <- Some (Join_tree.Join ((impl, resources), lt, rt), total)
              | None -> ()
            end
          | None, _ | _, None -> ()
        end;
        sub := (!sub - 1) land mask
      done
    end
  done;
  Raqo_obs.Trace.finish span;
  best.(size - 1)

let optimize coster schema relations =
  validate schema relations;
  let ctx = Interned.make schema relations in
  optimize_masked (Coster.of_strings ctx coster) ctx
