(** Bushy join-order optimization by dynamic programming over connected
    subgraphs (DPsub): for every connected relation subset, the best plan is
    composed from the best plans of a connected complementary split. This
    explores the full bushy space the paper's randomized planner samples —
    the exact baseline for the "explore the query/resource search space"
    agenda item (Section VIII).

    O(3^n) over subsets; refuses more than 16 relations. *)

(** [optimize coster schema relations] is the cheapest bushy,
    cartesian-product-free joint plan, or [None] when every split hits an
    infeasible join.
    @raise Invalid_argument on empty input, unknown relations, or more than
    16 relations. *)
val optimize :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option

(** [optimize_masked m ctx] is the mask-based core {!optimize} runs on:
    adjacency from the interned context, the coster keyed on subset masks.
    Bit-identical results to the string reference.
    @raise Invalid_argument beyond 16 relations. *)
val optimize_masked :
  Coster.masked ->
  Raqo_catalog.Interned.t ->
  (Raqo_plan.Join_tree.joint * float) option

(** [optimize_reference coster schema relations] is the historical
    string-list bushy DP, kept as the oracle baseline. Same contract as
    {!optimize}. *)
val optimize_reference :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option
