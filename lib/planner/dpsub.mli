(** Bushy join-order optimization by dynamic programming over connected
    subgraphs (DPsub): for every connected relation subset, the best plan is
    composed from the best plans of a connected complementary split. This
    explores the full bushy space the paper's randomized planner samples —
    the exact baseline for the "explore the query/resource search space"
    agenda item (Section VIII).

    O(3^n) over subsets; refuses more than {!max_relations} relations. *)

(** Hard cap on query size (20, matching {!Selinger}): the connectivity
    table is [2^n] bytes and the submask sweep [O(3^n)]. *)
val max_relations : int

(** [optimize coster schema relations] is the cheapest bushy,
    cartesian-product-free joint plan, or [None] when every split hits an
    infeasible join.
    @raise Invalid_argument on empty input, unknown relations, or more than
    {!max_relations} relations. *)
val optimize :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option

(** [optimize_masked m ctx] is the mask-based core {!optimize} runs on:
    adjacency from the interned context, the coster keyed on subset masks.
    Bit-identical results to the string reference.
    @raise Invalid_argument beyond {!max_relations} relations. *)
val optimize_masked :
  Coster.masked ->
  Raqo_catalog.Interned.t ->
  (Raqo_plan.Join_tree.joint * float) option

(** [optimize_par_masked ?memo ~coster pool ctx] is {!optimize_masked} with
    the DP fanned out over [pool]'s domains through a shared
    {!Raqo_memo.Memo} table: subsets are processed level by level (popcount
    order, one pool barrier per level), workers claim subsets off an atomic
    cursor, and each claimed subset's split enumeration runs sequentially in
    {!optimize_masked}'s exact order. Results — plan shape, cost, resource
    assignment, and tie-breaks — are bit-identical to {!optimize_masked} for
    any pool size, provided [coster ()] builds value-deterministic costers:
    every call must return what a fresh instance would (true of all shipped
    costers; for resource-planning costers use a private
    {!Raqo_resource.Resource_planner} per instance with the default
    exact-match cache lookup, as {!Raqo.Cost_based}'s restart factory does).

    [coster] is invoked once per worker index up front; each instance is
    only ever used by one task at a time, so single-domain memo tables and
    kernel scratch buffers inside are safe and stay warm across levels.

    [memo] supplies the table (sized [~bits:(Interned.n ctx)]) — pass it to
    inspect published subproblems afterwards; by default a private one is
    created. If a coster raises, the claimed entry is released before the
    exception is re-raised (after the whole level has drained), so the table
    is never left with a claimed-but-unpublished entry.

    Instrumented with a [dpsub/dp-par] span, one [dpsub/level-NN] span per
    level, and the [raqo_memo_*_total] counters.
    @raise Invalid_argument beyond {!max_relations} relations, or when
    [memo] is sized for a different query. *)
val optimize_par_masked :
  ?memo:(Raqo_plan.Join_tree.joint * float) option Raqo_memo.Memo.t ->
  coster:(unit -> Coster.masked) ->
  Raqo_par.Pool.t ->
  Raqo_catalog.Interned.t ->
  (Raqo_plan.Join_tree.joint * float) option

(** [optimize_reference coster schema relations] is the historical
    string-list bushy DP, kept as the oracle baseline. Same contract as
    {!optimize}. *)
val optimize_reference :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option
