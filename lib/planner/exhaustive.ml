module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema

let all_shapes schema relations =
  let n = List.length relations in
  if n = 0 then invalid_arg "Exhaustive.all_shapes: empty relation set";
  if n > 8 then invalid_arg "Exhaustive.all_shapes: too many relations";
  let rels = Array.of_list relations in
  let graph = Schema.graph schema in
  let names_of mask =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (if mask land (1 lsl i) <> 0 then rels.(i) :: acc else acc)
    in
    go (n - 1) []
  in
  let connected mask = Raqo_catalog.Join_graph.connected graph (names_of mask) in
  let joinable a b =
    Raqo_catalog.Join_graph.edges_between graph (names_of a) (names_of b) <> []
  in
  let memo = Hashtbl.create 256 in
  let rec shapes mask : Coster.shape list =
    match Hashtbl.find_opt memo mask with
    | Some s -> s
    | None ->
        let result =
          match names_of mask with
          | [ r ] -> [ Join_tree.Scan r ]
          | _ ->
              (* Canonical splits: the lowest set bit stays on the left, so
                 each unordered split is enumerated once. [fold_splits]
                 descends and each split's shapes are prepended, so the final
                 list is in ascending submask order — the order the historical
                 inline recursion produced, which first-wins tie-breaks in
                 [fold_shapes] observe. *)
              Raqo_catalog.Interned.fold_splits mask ~init:[]
                ~f:(fun acc ~sub ~rest ->
                  if connected sub && connected rest && joinable sub rest then
                    List.concat_map
                      (fun l ->
                        List.map (fun r -> Join_tree.Join ((), l, r)) (shapes rest))
                      (shapes sub)
                    @ acc
                  else acc)
        in
        Hashtbl.add memo mask result;
        result
  in
  shapes ((1 lsl n) - 1)

let fold_shapes cost_tree shapes =
  List.fold_left
    (fun best shape ->
      match cost_tree shape with
      | None -> best
      | Some ((_, c) as cand) -> begin
          match best with
          | Some (_, b) when b <= c -> best
          | Some _ | None -> Some cand
        end)
    None shapes

let m_shapes = Raqo_obs.Metrics.counter "raqo_exhaustive_shapes_total"

let instrumented_fold cost_tree shapes =
  let span = Raqo_obs.Trace.start "exhaustive/search" in
  if Raqo_obs.Obs.enabled () then
    Raqo_obs.Metrics.Counter.add m_shapes (List.length shapes);
  let best = fold_shapes cost_tree shapes in
  Raqo_obs.Trace.finish span;
  best

let optimize coster schema relations =
  instrumented_fold (Coster.cost_tree coster) (all_shapes schema relations)

let optimize_masked m ctx =
  let schema = Raqo_catalog.Interned.schema ctx in
  instrumented_fold
    (Coster.cost_tree_masked m ctx)
    (all_shapes schema (Raqo_catalog.Interned.relations ctx))
