(** Exhaustive enumeration of bushy join trees — the test oracle the other
    planners are validated against. Exponential; refuses more than 8
    relations. *)

(** [all_shapes schema relations] enumerates every cartesian-product-free
    bushy join tree over [relations], up to commutativity of each join (the
    costers order build/probe sides by size, so mirrored trees cost the
    same). *)
val all_shapes : Raqo_catalog.Schema.t -> string list -> Coster.shape list

(** [optimize coster schema relations] is the true optimum over
    {!all_shapes}. *)
val optimize :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option

(** [optimize_masked m ctx] is {!optimize} over the context's relations with
    a masked coster (shape enumeration itself is not on the hot path and
    stays string-based). Bit-identical results to {!optimize}. *)
val optimize_masked :
  Coster.masked ->
  Raqo_catalog.Interned.t ->
  (Raqo_plan.Join_tree.joint * float) option
