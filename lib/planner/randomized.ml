module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema
module Rng = Raqo_util.Rng

type params = { iterations : int; max_no_improve : int }

let default_params = { iterations = 10; max_no_improve = 30 }

let joinable_sets schema a b =
  Raqo_catalog.Join_graph.edges_between (Schema.graph schema) a b <> []

(* Random bushy tree by randomized Kruskal: shuffle the join edges internal
   to the query and union fragments along them. Every merge crosses a real
   join edge, so the tree is cartesian-free; edge-order randomness gives
   shape randomness. Near-linear, which matters for 100-relation queries. *)
let random_shape rng schema relations =
  match relations with
  | [] -> invalid_arg "Randomized.random_shape: empty relation set"
  | _ ->
      let module M = Map.Make (String) in
      let in_query = List.fold_left (fun acc r -> M.add r () acc) M.empty relations in
      let edges =
        Array.of_list
          (List.filter
             (fun (e : Raqo_catalog.Join_graph.edge) ->
               M.mem e.left in_query && M.mem e.right in_query)
             (Raqo_catalog.Join_graph.edges (Schema.graph schema)))
      in
      Rng.shuffle rng edges;
      (* Union-find over relation names, each root holding its fragment. *)
      let parent = ref (List.fold_left (fun acc r -> M.add r r acc) M.empty relations) in
      let fragment =
        ref
          (List.fold_left
             (fun acc r -> M.add r (Join_tree.Scan r : Coster.shape) acc)
             M.empty relations)
      in
      let rec find r =
        let p = M.find r !parent in
        if p = r then r
        else begin
          let root = find p in
          parent := M.add r root !parent;
          root
        end
      in
      let merges = ref 0 in
      Array.iter
        (fun (e : Raqo_catalog.Join_graph.edge) ->
          let a = find e.left and b = find e.right in
          if a <> b then begin
            incr merges;
            let ta = M.find a !fragment and tb = M.find b !fragment in
            (* Random orientation so neither side is systematically outer. *)
            let merged =
              if Rng.bool rng then Join_tree.Join ((), ta, tb)
              else Join_tree.Join ((), tb, ta)
            in
            parent := M.add b a !parent;
            fragment := M.add a merged (M.remove b !fragment)
          end)
        edges;
      if !merges <> List.length relations - 1 then
        invalid_arg "Randomized.random_shape: relations not joinable";
      (match M.bindings !fragment with
      | [ (_, t) ] -> t
      | [] | _ :: _ :: _ -> assert false)

(* Paths identify nodes: [] is the root, 0 descends left, 1 right. *)
let rec join_paths prefix = function
  | Join_tree.Scan _ -> []
  | Join_tree.Join (_, l, r) ->
      List.rev prefix
      :: (join_paths (0 :: prefix) l @ join_paths (1 :: prefix) r)

let rec subtree_at t path =
  match (t, path) with
  | _, [] -> t
  | Join_tree.Join (_, l, _), 0 :: rest -> subtree_at l rest
  | Join_tree.Join (_, _, r), 1 :: rest -> subtree_at r rest
  | Join_tree.Scan _, _ :: _ -> invalid_arg "Randomized.subtree_at: path into a leaf"
  | Join_tree.Join _, _ :: _ -> invalid_arg "Randomized.subtree_at: bad path step"

let rec replace_at t path replacement =
  match (t, path) with
  | _, [] -> replacement
  | Join_tree.Join (a, l, r), 0 :: rest -> Join_tree.Join (a, replace_at l rest replacement, r)
  | Join_tree.Join (a, l, r), 1 :: rest -> Join_tree.Join (a, l, replace_at r rest replacement)
  | Join_tree.Scan _, _ :: _ -> invalid_arg "Randomized.replace_at: path into a leaf"
  | Join_tree.Join _, _ :: _ -> invalid_arg "Randomized.replace_at: bad path step"

(* Every join must have at least one edge crossing it. *)
let rec valid_shape schema = function
  | Join_tree.Scan _ -> true
  | Join_tree.Join (_, l, r) ->
      joinable_sets schema (Join_tree.relations l) (Join_tree.relations r)
      && valid_shape schema l && valid_shape schema r

let commute rng shape =
  let paths = Array.of_list (join_paths [] shape) in
  if Array.length paths = 0 then None
  else begin
    let path = Rng.pick rng paths in
    match subtree_at shape path with
    | Join_tree.Join (a, l, r) -> Some (replace_at shape path (Join_tree.Join (a, r, l)))
    | Join_tree.Scan _ -> None
  end

(* (A ⋈ B) ⋈ C  →  A ⋈ (B ⋈ C), and its mirror. *)
let associate rng shape =
  let paths = Array.of_list (join_paths [] shape) in
  if Array.length paths = 0 then None
  else begin
    let path = Rng.pick rng paths in
    match subtree_at shape path with
    | Join_tree.Join (a, Join_tree.Join (b, x, y), z) when Rng.bool rng ->
        Some (replace_at shape path (Join_tree.Join (a, x, Join_tree.Join (b, y, z))))
    | Join_tree.Join (a, x, Join_tree.Join (b, y, z)) ->
        Some (replace_at shape path (Join_tree.Join (a, Join_tree.Join (b, x, y), z)))
    | Join_tree.Join (a, Join_tree.Join (b, x, y), z) ->
        Some (replace_at shape path (Join_tree.Join (a, x, Join_tree.Join (b, y, z))))
    | Join_tree.Join (_, Join_tree.Scan _, Join_tree.Scan _) | Join_tree.Scan _ -> None
  end

(* Swap two disjoint subtrees (neither a prefix of the other). *)
let exchange rng shape =
  let rec all_paths prefix = function
    | Join_tree.Scan _ -> [ List.rev prefix ]
    | Join_tree.Join (_, l, r) ->
        List.rev prefix :: (all_paths (0 :: prefix) l @ all_paths (1 :: prefix) r)
  in
  let paths = Array.of_list (List.filter (fun p -> p <> []) (all_paths [] shape)) in
  if Array.length paths < 2 then None
  else begin
    let rec is_prefix a b =
      match (a, b) with
      | [], _ -> true
      | x :: xs, y :: ys -> x = y && is_prefix xs ys
      | _ :: _, [] -> false
    in
    let p1 = Rng.pick rng paths and p2 = Rng.pick rng paths in
    if is_prefix p1 p2 || is_prefix p2 p1 then None
    else begin
      let s1 = subtree_at shape p1 and s2 = subtree_at shape p2 in
      let shape = replace_at shape p1 s2 in
      Some (replace_at shape p2 s1)
    end
  end

let mutate rng schema shape =
  let mutation =
    match Rng.int rng 3 with
    | 0 -> commute rng shape
    | 1 -> associate rng shape
    | _ -> exchange rng shape
  in
  match mutation with
  | Some shape' when valid_shape schema shape' && Join_tree.valid shape' -> Some shape'
  | Some _ | None -> None

(* Iterative improvement parameterized over tree costing, so the string and
   mask-based costing seams share one search loop (and one RNG stream:
   structure generation stays string-based either way, which is what makes
   the two seams produce identical shapes for a fixed seed). *)
let improve_costed ~params rng schema cost shape0 =
  let best = ref (cost shape0) in
  let shape = ref shape0 in
  let stale = ref 0 in
  while !stale < params.max_no_improve do
    match mutate rng schema !shape with
    | None -> incr stale
    | Some candidate -> begin
        let costed = cost candidate in
        match (costed, !best) with
        | (Some (_, c) as improved), Some (_, b) when c < b ->
            best := improved;
            shape := candidate;
            stale := 0
        | (Some _ as improved), None ->
            best := improved;
            shape := candidate;
            stale := 0
        | Some _, Some _ | None, _ -> incr stale
      end
  done;
  !best

(* Each restart gets its own generator split off the caller's, all splits
   drawn upfront in restart order. The restarts are then independent: running
   them on one domain or many yields bit-identical streams, which is what
   makes [local_optima_par] equal to [local_optima] for a fixed seed. *)
let restart_rngs rng n = List.init n (fun _ -> Rng.split rng)

let m_restarts = Raqo_obs.Metrics.counter "raqo_randomized_restarts_total"

(* One span per restart — the unit of work the pool scatters across domains,
   so a trace shows restart spans fanning out under the submitting planner
   span (Pool installs the submitter's span as their parent). *)
let run_restart ~params rng coster schema relations =
  let span = Raqo_obs.Trace.start "randomized/restart" in
  if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_restarts;
  let shape = random_shape rng schema relations in
  let result = improve_costed ~params rng schema (Coster.cost_tree coster) shape in
  Raqo_obs.Trace.finish span;
  result

let local_optima ?(params = default_params) rng coster schema relations =
  if relations = [] then invalid_arg "Randomized.local_optima: empty relation set";
  List.filter_map
    (fun restart_rng -> run_restart ~params restart_rng coster schema relations)
    (restart_rngs rng params.iterations)

let local_optima_par ?(params = default_params) pool rng ~coster schema relations =
  if relations = [] then invalid_arg "Randomized.local_optima_par: empty relation set";
  Raqo_par.Pool.parallel_map pool
    (fun restart_rng -> run_restart ~params restart_rng (coster ()) schema relations)
    (restart_rngs rng params.iterations)
  |> List.filter_map Fun.id

let pick_best optima =
  List.fold_left
    (fun best ((_, c) as cand) ->
      match best with
      | Some (_, b) when b <= c -> best
      | Some _ | None -> Some cand)
    None optima

let optimize ?(params = default_params) rng coster schema relations =
  pick_best (local_optima ~params rng coster schema relations)

let optimize_par ?(params = default_params) pool rng ~coster schema relations =
  pick_best (local_optima_par ~params pool rng ~coster schema relations)

(* Mask-based variants: the search (shape generation, mutations, RNG
   splitting) is shared with the string seam above; only tree costing goes
   through the masked coster, so for a fixed seed the restarts visit the
   same shapes and the results are bit-identical when the costers agree. *)

module Interned = Raqo_catalog.Interned

let run_restart_masked ~params rng m ctx =
  let span = Raqo_obs.Trace.start "randomized/restart" in
  if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_restarts;
  let schema = Interned.schema ctx in
  let shape = random_shape rng schema (Interned.relations ctx) in
  let result = improve_costed ~params rng schema (Coster.cost_tree_masked m ctx) shape in
  Raqo_obs.Trace.finish span;
  result

let local_optima_masked ?(params = default_params) rng m ctx =
  List.filter_map
    (fun restart_rng -> run_restart_masked ~params restart_rng m ctx)
    (restart_rngs rng params.iterations)

let local_optima_par_masked ?(params = default_params) pool rng ~coster ctx =
  Raqo_par.Pool.parallel_map pool
    (fun restart_rng -> run_restart_masked ~params restart_rng (coster ()) ctx)
    (restart_rngs rng params.iterations)
  |> List.filter_map Fun.id

let optimize_masked ?(params = default_params) rng m ctx =
  pick_best (local_optima_masked ~params rng m ctx)

let optimize_par_masked ?(params = default_params) pool rng ~coster ctx =
  pick_best (local_optima_par_masked ~params pool rng ~coster ctx)
