(** Randomized query planning over bushy join trees, re-implementing the
    planner the paper evaluates against: iterative improvement with the
    associativity and exchange mutations of Steinbrunn et al., restarted a
    fixed number of times (the paper runs a default of 10 iterations),
    keeping the best plan found — and, for multi-objective use, the set of
    per-restart local optima (approximating Trummer–Koch's Pareto search). *)

type params = {
  iterations : int;  (** independent restarts *)
  max_no_improve : int;  (** consecutive rejected mutations before a restart ends *)
}

(** The paper's defaults: 10 restarts. *)
val default_params : params

(** [random_shape rng schema relations] builds a uniform-ish random bushy
    join tree without cartesian products, by randomly merging joinable
    fragments. *)
val random_shape :
  Raqo_util.Rng.t -> Raqo_catalog.Schema.t -> string list -> Coster.shape

(** [mutate rng schema shape] applies one random mutation (commutativity,
    associativity rotation, or subtree exchange); returns [None] when the
    drawn mutation would create a cartesian product or does not apply. *)
val mutate :
  Raqo_util.Rng.t -> Raqo_catalog.Schema.t -> Coster.shape -> Coster.shape option

(** [optimize ?params rng coster schema relations] runs the randomized
    search and returns the cheapest joint plan found, or [None] when no
    feasible plan was encountered. *)
val optimize :
  ?params:params ->
  Raqo_util.Rng.t ->
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option

(** [local_optima ?params rng coster schema relations] returns every
    restart's local optimum (at most [iterations] plans) — the candidate set
    a multi-objective planner filters to a Pareto front. Each restart runs on
    its own generator split off [rng] upfront, so restarts are independent. *)
val local_optima :
  ?params:params ->
  Raqo_util.Rng.t ->
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) list

(** [local_optima_par ?params pool rng ~coster schema relations] is
    {!local_optima} with the restarts distributed across [pool]'s domains.
    [coster] is a factory invoked once per restart: the shipped costers hold
    non-thread-safe memo tables, so each restart needs its own instance. As
    long as the factory's costers compute the same values (true of every
    pure coster, memoized or not), the result — order included — is
    bit-identical to [local_optima rng (coster ())] for any pool size. *)
val local_optima_par :
  ?params:params ->
  Raqo_par.Pool.t ->
  Raqo_util.Rng.t ->
  coster:(unit -> Coster.t) ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) list

(** [optimize_par ?params pool rng ~coster schema relations] is {!optimize}
    over {!local_optima_par}: same ties-toward-earlier-restart fold, so the
    chosen plan and cost match the sequential [optimize] for a fixed seed
    at any pool size. *)
val optimize_par :
  ?params:params ->
  Raqo_par.Pool.t ->
  Raqo_util.Rng.t ->
  coster:(unit -> Coster.t) ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option

(** {2 Mask-based variants}

    Shape generation and mutations share the string seam's RNG streams;
    only tree costing goes through the masked coster. For a fixed seed the
    restarts therefore visit the same shapes, and results are bit-identical
    to the string variants whenever the costers compute the same values.
    The interned context caps queries at
    {!Raqo_catalog.Interned.max_relations}; larger queries stay on the
    string API. *)

val local_optima_masked :
  ?params:params ->
  Raqo_util.Rng.t ->
  Coster.masked ->
  Raqo_catalog.Interned.t ->
  (Raqo_plan.Join_tree.joint * float) list

val optimize_masked :
  ?params:params ->
  Raqo_util.Rng.t ->
  Coster.masked ->
  Raqo_catalog.Interned.t ->
  (Raqo_plan.Join_tree.joint * float) option

(** [local_optima_par_masked ?params pool rng ~coster ctx] distributes
    restarts across [pool]; [coster] is a factory invoked once per restart
    (masked memo tables are single-domain, the context itself is immutable
    and shared). *)
val local_optima_par_masked :
  ?params:params ->
  Raqo_par.Pool.t ->
  Raqo_util.Rng.t ->
  coster:(unit -> Coster.masked) ->
  Raqo_catalog.Interned.t ->
  (Raqo_plan.Join_tree.joint * float) list

val optimize_par_masked :
  ?params:params ->
  Raqo_par.Pool.t ->
  Raqo_util.Rng.t ->
  coster:(unit -> Coster.masked) ->
  Raqo_catalog.Interned.t ->
  (Raqo_plan.Join_tree.joint * float) option
