module Join_tree = Raqo_plan.Join_tree
module Schema = Raqo_catalog.Schema
module Interned = Raqo_catalog.Interned

let validate schema relations =
  let n = List.length relations in
  if n = 0 then invalid_arg "Selinger.optimize: empty relation set";
  if n > 20 then invalid_arg "Selinger.optimize: too many relations for exhaustive DP";
  List.iter
    (fun r -> if not (Schema.mem schema r) then invalid_arg ("Selinger.optimize: unknown " ^ r))
    relations

(* Observability. True per-level spans are impossible here — both DP cores
   enumerate subsets in mask order, interleaving levels — so the per-level
   view is a histogram of the subset size at each coster expansion, next to
   a whole-DP span and an expansion counter. All gated on Obs.enabled. *)
let m_expansions = Raqo_obs.Metrics.counter "raqo_selinger_expansions_total"

let m_level =
  Raqo_obs.Metrics.histogram
    ~buckets:[| 2.; 4.; 6.; 8.; 10.; 12.; 14.; 16.; 18.; 20. |]
    "raqo_selinger_level"

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

(* The reference DP core over string lists, kept verbatim as the
   differential-oracle baseline for the mask-based core below. Parameterized
   by an optional upper bound: partial plans costing >= the bound are dropped
   (sound for nonnegative join costs). Returns the best full plan and the
   number of coster invocations. *)
let dp ?bound (coster : Coster.t) schema relations =
  validate schema relations;
  let span = Raqo_obs.Trace.start "selinger/dp-reference" in
  let n = List.length relations in
  let invocations = ref 0 in
  let upper = ref bound in
  let rels = Array.of_list relations in
  let graph = Schema.graph schema in
  let adjacent i j =
    Option.is_some (Raqo_catalog.Join_graph.selectivity graph rels.(i) rels.(j))
  in
  let names_of mask =
    let rec go i acc =
      if i < 0 then acc
      else go (i - 1) (if mask land (1 lsl i) <> 0 then rels.(i) :: acc else acc)
    in
    go (n - 1) []
  in
  let size = 1 lsl n in
  (* best.(mask) = cheapest left-deep joint plan joining exactly [mask]. *)
  let best : (Join_tree.joint * float) option array = Array.make size None in
  for i = 0 to n - 1 do
    best.(1 lsl i) <- Some (Join_tree.Scan rels.(i), 0.0)
  done;
  for mask = 1 to size - 1 do
    if best.(mask) = None then begin
      for r = 0 to n - 1 do
        if mask land (1 lsl r) <> 0 then begin
          let rest = mask lxor (1 lsl r) in
          match best.(rest) with
          | None -> ()
          | Some (left_tree, left_cost) ->
              (* No cartesian products: r must join something already in. *)
              let connected =
                let rec any j =
                  j < n && ((rest land (1 lsl j) <> 0 && adjacent r j) || any (j + 1))
                in
                any 0
              in
              if connected then begin
                let left = names_of rest and right = [ rels.(r) ] in
                incr invocations;
                match coster.Coster.best_join ~left ~right with
                | None -> ()
                | Some { impl; resources; cost } ->
                    (* Negative costs break the bound argument: stop
                       pruning for the rest of the search. *)
                    if cost < 0.0 then upper := None;
                    let total = left_cost +. cost in
                    let pruned =
                      match !upper with
                      | Some u -> total >= u
                      | None -> false
                    in
                    let better =
                      (not pruned)
                      &&
                      match best.(mask) with
                      | Some (_, c) -> total < c
                      | None -> true
                    in
                    if better then
                      best.(mask) <-
                        Some
                          ( Join_tree.Join
                              ((impl, resources), left_tree, Join_tree.Scan rels.(r)),
                            total )
              end
        end
      done
    end
  done;
  if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.add m_expansions !invocations;
  Raqo_obs.Trace.finish span;
  (best.(size - 1), !invocations)

(* The mask-based DP core: subsets stay integers end to end, connectivity is
   one AND against the precomputed adjacency mask, and the coster is the
   mask-keyed seam — no list allocation or per-edge graph rescans on the hot
   path. Dead subsets are skipped by forward candidate marking: every alive
   subset marks its one-relation adjacent extensions, and only marked masks
   are expanded — a mask the reference loop could issue a coster call for is
   exactly a marked one, so on sparse graphs (chains) the bulk of the 2^n
   sweep costs one byte load per mask. Enumeration order, pruning, and
   tie-breaks mirror [dp] exactly, so (plan, cost, invocation count) are
   bit-identical. *)
let dp_masked ?bound (m : Coster.masked) ctx =
  let n = Interned.n ctx in
  if n > 20 then invalid_arg "Selinger.optimize: too many relations for exhaustive DP";
  let span = Raqo_obs.Trace.start "selinger/dp" in
  let invocations = ref 0 in
  let upper = ref bound in
  let adj = Interned.adj ctx in
  let size = 1 lsl n in
  let best : (Join_tree.joint * float) option array = Array.make size None in
  (* nb.(mask) = union of adjacency over the members of [mask]; maintained
     only for alive masks (any decomposition yields the same union). *)
  let nb = Array.make size 0 in
  let candidate = Bytes.make size '\000' in
  for i = 0 to n - 1 do
    best.(1 lsl i) <- Some (Join_tree.Scan (Interned.name ctx i), 0.0);
    nb.(1 lsl i) <- adj.(i)
  done;
  let is_none o = match o with None -> true | Some _ -> false in
  for mask = 1 to size - 1 do
    if Bytes.unsafe_get candidate mask <> '\000' && is_none best.(mask) then begin
      for r = 0 to n - 1 do
        if mask land (1 lsl r) <> 0 then begin
          let rest = mask lxor (1 lsl r) in
          match best.(rest) with
          | None -> ()
          | Some (left_tree, left_cost) ->
              (* No cartesian products: r must join something already in. *)
              if adj.(r) land rest <> 0 then begin
                incr invocations;
                if Raqo_obs.Obs.enabled () then
                  Raqo_obs.Metrics.Histogram.observe m_level (float_of_int (popcount mask));
                match m.Coster.best_join_masked ~left:rest ~right:(1 lsl r) with
                | None -> ()
                | Some { impl; resources; cost } ->
                    if cost < 0.0 then upper := None;
                    let total = left_cost +. cost in
                    let pruned =
                      match !upper with
                      | Some u -> total >= u
                      | None -> false
                    in
                    let better =
                      (not pruned)
                      &&
                      match best.(mask) with
                      | Some (_, c) -> total < c
                      | None -> true
                    in
                    if better then begin
                      best.(mask) <-
                        Some
                          ( Join_tree.Join
                              ( (impl, resources),
                                left_tree,
                                Join_tree.Scan (Interned.name ctx r) ),
                            total );
                      nb.(mask) <- nb.(rest) lor adj.(r)
                    end
              end
        end
      done
    end;
    (* Alive (including the singleton seeds, swept before any supermask):
       mark the adjacent one-relation extensions as worth expanding. *)
    if not (is_none best.(mask)) then begin
      let ext = ref (nb.(mask) land lnot mask) in
      while !ext <> 0 do
        let bit = !ext land - !ext in
        Bytes.unsafe_set candidate (mask lor bit) '\001';
        ext := !ext lxor bit
      done
    end
  done;
  if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.add m_expansions !invocations;
  Raqo_obs.Trace.finish span;
  (best.(size - 1), !invocations)

let optimize_masked m ctx = fst (dp_masked m ctx)

let optimize coster schema relations =
  validate schema relations;
  let ctx = Interned.make schema relations in
  optimize_masked (Coster.of_strings ctx coster) ctx

let optimize_reference coster schema relations = fst (dp coster schema relations)

let pruned_with ~greedy_cost_tree ~dp greedy_shape =
  (* Seed the bound with the greedy left-deep plan, when one is costable. *)
  let seed =
    match greedy_shape with
    | Some shape -> greedy_cost_tree shape
    | None -> None
  in
  match seed with
  | None -> dp None
  | Some ((_, greedy_cost) as greedy) ->
      let result, invocations = dp (Some greedy_cost) in
      (* The bound is strict, so the greedy plan itself may have been pruned;
         fall back to it when the DP returns nothing cheaper. *)
      let result =
        match result with
        | Some _ as r -> r
        | None -> Some greedy
      in
      (result, invocations)

let greedy_shape schema relations =
  match Heuristics.greedy_left_deep schema relations with
  | shape -> Some shape
  | exception Invalid_argument _ -> None

let optimize_pruned_masked m ctx =
  if Interned.n ctx > 20 then
    invalid_arg "Selinger.optimize: too many relations for exhaustive DP";
  pruned_with
    ~greedy_cost_tree:(Coster.cost_tree_masked m ctx)
    ~dp:(fun bound -> dp_masked ?bound m ctx)
    (greedy_shape (Interned.schema ctx) (Interned.relations ctx))

let optimize_pruned coster schema relations =
  validate schema relations;
  let ctx = Interned.make schema relations in
  optimize_pruned_masked (Coster.of_strings ctx coster) ctx

let optimize_pruned_reference coster schema relations =
  validate schema relations;
  pruned_with
    ~greedy_cost_tree:(Coster.cost_tree coster)
    ~dp:(fun bound -> dp ?bound coster schema relations)
    (greedy_shape schema relations)
