(** System R style bottom-up dynamic programming over left-deep join trees
    (Selinger et al. 1979) — the traditional planner the paper integrates
    cost-based RAQO with. Per-join costs come from the pluggable
    {!Coster.t}, so the same DP serves plain QO and RAQO. *)

(** [optimize coster schema relations] returns the cheapest left-deep joint
    plan for joining [relations], or [None] when every ordering hits an
    infeasible join. Avoids cartesian products (every extension must share a
    join edge with the current set).

    @raise Invalid_argument when [relations] is empty, contains unknown
    names, or has more than 20 relations (the DP is exponential; the
    paper's Selinger runs cover TPC-H's 8 tables — use {!Randomized} for
    large schemas). *)
val optimize :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option

(** [optimize_pruned coster schema relations] is {!optimize} with
    branch-and-bound pruning (the paper's "prune infeasible or
    non-interesting query/resource plans early on"): the greedy left-deep
    plan seeds an upper bound, and any partial plan already costing at least
    the bound is discarded. Sound when join costs are nonnegative (the
    trained models' floor guarantees this); if a negative cost is observed,
    pruning disables itself for the remainder of the search. Returns the
    plan together with the number of costed joins (the pruning metric). *)
val optimize_pruned :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option * int

(** {2 Mask-based core}

    {!optimize} and {!optimize_pruned} run on the interned, mask-based DP:
    relations are interned once at admission, DP tables are flat arrays
    indexed by subset masks, and connectivity is a single AND against the
    precomputed adjacency mask. The entry points below expose that core
    directly for callers that already hold a context, plus the historical
    string-list implementation as the differential-oracle reference. *)

(** [optimize_masked m ctx] plans over an interned context with a masked
    coster. Bit-identical results (plan, cost, coster invocations) to the
    reference string implementation.
    @raise Invalid_argument beyond 20 relations. *)
val optimize_masked :
  Coster.masked ->
  Raqo_catalog.Interned.t ->
  (Raqo_plan.Join_tree.joint * float) option

(** [optimize_pruned_masked m ctx] is {!optimize_pruned} on the mask seam. *)
val optimize_pruned_masked :
  Coster.masked ->
  Raqo_catalog.Interned.t ->
  (Raqo_plan.Join_tree.joint * float) option * int

(** [optimize_reference coster schema relations] is the historical
    string-list DP, kept as the oracle baseline the mask-based core is
    differenced against. Same contract as {!optimize}. *)
val optimize_reference :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option

(** [optimize_pruned_reference coster schema relations] is the historical
    string-list branch-and-bound DP (oracle baseline for
    {!optimize_pruned}). *)
val optimize_pruned_reference :
  Coster.t ->
  Raqo_catalog.Schema.t ->
  string list ->
  (Raqo_plan.Join_tree.joint * float) option * int
