module Pool = Raqo_par.Pool
module Kernel = Raqo_cost.Kernel

(* Observability (recorded only when Raqo_obs.Obs.enabled): how much of the
   grid the branch-and-bound searches never had to touch. *)
let m_pruned_boxes = Raqo_obs.Metrics.counter "raqo_resource_pruned_boxes_total"
let m_pruned_cells = Raqo_obs.Metrics.counter "raqo_resource_pruned_cells_total"

let record_pruned ~n_configs ~evals =
  if Raqo_obs.Obs.enabled () then
    Raqo_obs.Metrics.Counter.add m_pruned_cells (n_configs - evals)

(* Shared fold: cheapest config in [configs], ties toward the earlier one,
   plus the evaluation count. Pure in [cost], so chunks of the grid can run
   on different domains and be merged in enumeration order. *)
let fold_best cost configs =
  List.fold_left
    (fun (best, evals) r ->
      let c = cost r in
      let best =
        match best with
        | Some (_, bc) when bc <= c -> best
        | Some _ | None -> Some (r, c)
      in
      (best, evals + 1))
    (None, 0) configs

let merge earlier later =
  match (earlier, later) with
  | Some (_, bc), Some (_, c) when bc <= c -> earlier
  | Some _, Some _ -> later
  | (Some _ as x), None | None, (Some _ as x) -> x
  | None, None -> None

let finish ?counters ~evals best =
  (match counters with
  | Some k ->
      Counters.record_evaluations k evals;
      Counters.record_invocation k
  | None -> ());
  match best with
  | Some result -> result
  | None -> invalid_arg "Brute_force.search: empty resource space"

let search ?counters conditions cost =
  let best, evals = fold_best cost (Raqo_cluster.Conditions.all_configs conditions) in
  finish ?counters ~evals best

(* Kernel-compiled exhaustive search: one allocation-free sweep into the
   scratch buffer, then an argmin scan. The scan replicates [fold_best]'s
   comparison — keep the incumbent iff [bc <= c], which keeps the earlier
   index on ties and (like the fold) lets a NaN cost displace the incumbent —
   so the winning cell, its cost, and the recorded evaluation count are
   bit-identical to [search] on the same model. *)
let search_kernel ?counters (conditions : Raqo_cluster.Conditions.t) ~kernel ~scratch =
  let n = Raqo_cluster.Conditions.n_configs conditions in
  Kernel.ensure scratch n;
  let buf = Kernel.buffer scratch in
  Kernel.sweep kernel conditions buf;
  let best_idx = ref 0 and best_cost = ref buf.(0) in
  for idx = 1 to n - 1 do
    let c = buf.(idx) in
    if not (!best_cost <= c) then begin
      best_idx := idx;
      best_cost := c
    end
  done;
  (match counters with
  | Some k ->
      Counters.record_evaluations k n;
      Counters.record_invocation k
  | None -> ());
  let nc = Raqo_cluster.Conditions.steps_containers conditions in
  let i = !best_idx mod nc and j = !best_idx / nc in
  ( Raqo_cluster.Resources.make
      ~containers:(conditions.min_containers + (i * conditions.container_step))
      ~container_gb:(conditions.min_gb +. (float_of_int j *. conditions.gb_step)),
    !best_cost )

(* Pruned grid search: a coarse seed lattice tightens an incumbent, then
   branch-and-bound over grid-aligned boxes discards every box that cannot
   hold a lexicographically smaller (cost, enumeration index) pair than the
   incumbent: lb > cost is out, and so is lb = cost when even the box's
   smallest index loses the tie-break. That second clause matters on cost
   plateaus — a floored model flattens whole regions to one constant, where
   a cost-only test would force enumerating every tied cell — and keeps the
   result exactly [search]'s, tie winner included: any cell that would win
   the tie has an index below the incumbent's, so its box survives. *)
let search_pruned ?counters (conditions : Raqo_cluster.Conditions.t) ~bound cost =
  let nc = Raqo_cluster.Conditions.steps_containers conditions in
  let ngb = Raqo_cluster.Conditions.steps_gb conditions in
  let config i j =
    Raqo_cluster.Resources.make
      ~containers:(conditions.min_containers + (i * conditions.container_step))
      ~container_gb:(conditions.min_gb +. (float_of_int j *. conditions.gb_step))
  in
  let evals = ref 0 in
  let memo = Hashtbl.create 64 in
  let eval i j =
    let idx = (j * nc) + i in
    match Hashtbl.find_opt memo idx with
    | Some c -> c
    | None ->
        incr evals;
        let c = cost (config i j) in
        Hashtbl.add memo idx c;
        c
  in
  let best_cost = ref Float.infinity and best_idx = ref max_int in
  let consider i j =
    let idx = (j * nc) + i in
    let c = eval i j in
    if c < !best_cost || (c = !best_cost && idx < !best_idx) then begin
      best_cost := c;
      best_idx := idx
    end
  in
  (* Seed lattice, including index 0 so the all-infeasible grid degenerates
     to [search]'s answer (first config, infinite cost). *)
  let stride_i = max 1 ((nc + 7) / 8) and stride_j = max 1 ((ngb + 3) / 4) in
  for j = 0 to (ngb - 1) / stride_j do
    for i = 0 to (nc - 1) / stride_i do
      consider (i * stride_i) (j * stride_j)
    done;
    consider (nc - 1) (j * stride_j)
  done;
  for i = 0 to (nc - 1) / stride_i do
    consider (i * stride_i) (ngb - 1)
  done;
  consider (nc - 1) (ngb - 1);
  let box_bound i0 i1 j0 j1 = bound ~lo:(config i0 j0) ~hi:(config i1 j1) in
  let rec descend i0 i1 j0 j1 =
    let lb = box_bound i0 i1 j0 j1 in
    if lb < !best_cost || (lb = !best_cost && (j0 * nc) + i0 < !best_idx) then begin
      if (i1 - i0 + 1) * (j1 - j0 + 1) <= 8 then
        for j = j0 to j1 do
          for i = i0 to i1 do
            consider i j
          done
        done
      else if i1 - i0 >= j1 - j0 then begin
        let mid = (i0 + i1) / 2 in
        (* Cheaper-bounded half first: a tight incumbent prunes its sibling. *)
        if box_bound i0 mid j0 j1 <= box_bound (mid + 1) i1 j0 j1 then begin
          descend i0 mid j0 j1;
          descend (mid + 1) i1 j0 j1
        end
        else begin
          descend (mid + 1) i1 j0 j1;
          descend i0 mid j0 j1
        end
      end
      else begin
        let mid = (j0 + j1) / 2 in
        if box_bound i0 i1 j0 mid <= box_bound i0 i1 (mid + 1) j1 then begin
          descend i0 i1 j0 mid;
          descend i0 i1 (mid + 1) j1
        end
        else begin
          descend i0 i1 (mid + 1) j1;
          descend i0 i1 j0 mid
        end
      end
    end
    else if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_pruned_boxes
  in
  descend 0 (nc - 1) 0 (ngb - 1);
  record_pruned ~n_configs:(nc * ngb) ~evals:!evals;
  (match counters with
  | Some k ->
      Counters.record_evaluations k !evals;
      Counters.record_invocation k
  | None -> ());
  (config (!best_idx mod nc) (!best_idx / nc), !best_cost)

(* Pruned search on the compiled kernel. Same lattice, same recursion, same
   lexicographic (cost, index) incumbent test as [search_pruned]; the only
   changes are mechanical: point costs come from [Kernel.point_at] memoised
   in the scratch buffer (a seen-bitmap replaces the Hashtbl, so the
   distinct-evaluation count is identical), and box bounds come from
   [Kernel.bound_at], which is bit-identical to the scalar
   [Op_cost.region_lower_bound] closure — so every pruning decision, the
   winner, its cost, and the counters all match [search_pruned] exactly,
   with zero allocation once the scratch has grown to the grid. *)
let search_pruned_kernel ?counters (conditions : Raqo_cluster.Conditions.t) ~kernel ~scratch =
  let nc = Raqo_cluster.Conditions.steps_containers conditions in
  let ngb = Raqo_cluster.Conditions.steps_gb conditions in
  Kernel.ensure scratch (nc * ngb);
  Kernel.reset_seen scratch (nc * ngb);
  let buf = Kernel.buffer scratch and seen = Kernel.seen scratch in
  let evals = ref 0 in
  let eval i j =
    let idx = (j * nc) + i in
    if Bytes.get seen idx = '\001' then buf.(idx)
    else begin
      incr evals;
      let c = Kernel.point_at kernel conditions ~i ~j in
      buf.(idx) <- c;
      Bytes.set seen idx '\001';
      c
    end
  in
  let best_cost = ref Float.infinity and best_idx = ref max_int in
  let consider i j =
    let idx = (j * nc) + i in
    let c = eval i j in
    if c < !best_cost || (c = !best_cost && idx < !best_idx) then begin
      best_cost := c;
      best_idx := idx
    end
  in
  let stride_i = max 1 ((nc + 7) / 8) and stride_j = max 1 ((ngb + 3) / 4) in
  for j = 0 to (ngb - 1) / stride_j do
    for i = 0 to (nc - 1) / stride_i do
      consider (i * stride_i) (j * stride_j)
    done;
    consider (nc - 1) (j * stride_j)
  done;
  for i = 0 to (nc - 1) / stride_i do
    consider (i * stride_i) (ngb - 1)
  done;
  consider (nc - 1) (ngb - 1);
  let box_bound i0 i1 j0 j1 = Kernel.bound_at kernel conditions ~i0 ~i1 ~j0 ~j1 in
  let rec descend i0 i1 j0 j1 =
    let lb = box_bound i0 i1 j0 j1 in
    if lb < !best_cost || (lb = !best_cost && (j0 * nc) + i0 < !best_idx) then begin
      if (i1 - i0 + 1) * (j1 - j0 + 1) <= 8 then
        for j = j0 to j1 do
          for i = i0 to i1 do
            consider i j
          done
        done
      else if i1 - i0 >= j1 - j0 then begin
        let mid = (i0 + i1) / 2 in
        if box_bound i0 mid j0 j1 <= box_bound (mid + 1) i1 j0 j1 then begin
          descend i0 mid j0 j1;
          descend (mid + 1) i1 j0 j1
        end
        else begin
          descend (mid + 1) i1 j0 j1;
          descend i0 mid j0 j1
        end
      end
      else begin
        let mid = (j0 + j1) / 2 in
        if box_bound i0 i1 j0 mid <= box_bound i0 i1 (mid + 1) j1 then begin
          descend i0 i1 j0 mid;
          descend i0 i1 (mid + 1) j1
        end
        else begin
          descend i0 i1 (mid + 1) j1;
          descend i0 i1 j0 mid
        end
      end
    end
    else if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_pruned_boxes
  in
  descend 0 (nc - 1) 0 (ngb - 1);
  record_pruned ~n_configs:(nc * ngb) ~evals:!evals;
  (match counters with
  | Some k ->
      Counters.record_evaluations k !evals;
      Counters.record_invocation k
  | None -> ());
  ( Raqo_cluster.Resources.make
      ~containers:(conditions.min_containers + (!best_idx mod nc * conditions.container_step))
      ~container_gb:(conditions.min_gb +. (float_of_int (!best_idx / nc) *. conditions.gb_step)),
    !best_cost )

let search_par ?counters pool conditions cost =
  let configs = Raqo_cluster.Conditions.all_configs conditions in
  match Pool.chunks (Pool.size pool) configs with
  | [] -> finish ?counters ~evals:0 None
  | [ only ] ->
      let best, evals = fold_best cost only in
      finish ?counters ~evals best
  | chunks ->
      let best, evals =
        Pool.parallel_reduce pool
          ~map:(fold_best cost)
          ~combine:(fun (best, evals) (b, e) -> (merge best b, evals + e))
          ~init:(None, 0) chunks
      in
      finish ?counters ~evals best
