module Pool = Raqo_par.Pool

(* Shared fold: cheapest config in [configs], ties toward the earlier one,
   plus the evaluation count. Pure in [cost], so chunks of the grid can run
   on different domains and be merged in enumeration order. *)
let fold_best cost configs =
  List.fold_left
    (fun (best, evals) r ->
      let c = cost r in
      let best =
        match best with
        | Some (_, bc) when bc <= c -> best
        | Some _ | None -> Some (r, c)
      in
      (best, evals + 1))
    (None, 0) configs

let merge earlier later =
  match (earlier, later) with
  | Some (_, bc), Some (_, c) when bc <= c -> earlier
  | Some _, Some _ -> later
  | (Some _ as x), None | None, (Some _ as x) -> x
  | None, None -> None

let finish ?counters ~evals best =
  (match counters with
  | Some k ->
      Counters.record_evaluations k evals;
      Counters.record_invocation k
  | None -> ());
  match best with
  | Some result -> result
  | None -> invalid_arg "Brute_force.search: empty resource space"

let search ?counters conditions cost =
  let best, evals = fold_best cost (Raqo_cluster.Conditions.all_configs conditions) in
  finish ?counters ~evals best

let search_par ?counters pool conditions cost =
  let configs = Raqo_cluster.Conditions.all_configs conditions in
  match Pool.chunks (Pool.size pool) configs with
  | [] -> finish ?counters ~evals:0 None
  | [ only ] ->
      let best, evals = fold_best cost only in
      finish ?counters ~evals best
  | chunks ->
      let best, evals =
        Pool.parallel_reduce pool
          ~map:(fold_best cost)
          ~combine:(fun (best, evals) (b, e) -> (merge best b, evals + e))
          ~init:(None, 0) chunks
      in
      finish ?counters ~evals best
