(** Exhaustive resource planning: evaluate the cost model on every discrete
    resource configuration the cluster offers, keep the cheapest. The
    baseline hill climbing is measured against (Figure 13). *)

(** [search ?counters conditions cost] returns the cheapest configuration and
    its cost. Ties break toward the earlier-enumerated (smaller) config.
    @raise Invalid_argument if the space is empty (cannot happen for valid
    conditions). *)
val search :
  ?counters:Counters.t ->
  Raqo_cluster.Conditions.t ->
  (Raqo_cluster.Resources.t -> float) ->
  Raqo_cluster.Resources.t * float

(** [search_pruned ?counters conditions ~bound cost] returns exactly what
    {!search} returns — the same configuration (ties included) at the same
    cost — while evaluating [cost] on far fewer configurations: a coarse
    seed lattice fixes an incumbent, then branch-and-bound over grid-aligned
    resource boxes prunes every box whose [bound] exceeds it, and every box
    whose bound merely ties it when the box cannot win the first-enumerated
    tie-break either (which keeps floored-cost plateaus cheap). [bound ~lo ~hi]
    must lower-bound [cost r] for every grid point [r] inside the box (see
    {!Raqo_cost.Op_cost.region_lower_bound}); an incorrect bound silently
    returns the wrong optimum, so bounds are cross-checked by the
    differential oracle. Evaluation counts recorded in [counters] reflect
    distinct configurations actually costed. *)
val search_pruned :
  ?counters:Counters.t ->
  Raqo_cluster.Conditions.t ->
  bound:(lo:Raqo_cluster.Resources.t -> hi:Raqo_cluster.Resources.t -> float) ->
  (Raqo_cluster.Resources.t -> float) ->
  Raqo_cluster.Resources.t * float

(** [search_kernel ?counters conditions ~kernel ~scratch] is {!search} on a
    compiled cost kernel: one allocation-free {!Raqo_cost.Kernel.sweep} into
    [scratch], then an argmin scan with {!search}'s exact tie-break.
    Bit-identical to [search conditions (predict kernel)] — same winning
    cell, same cost, same recorded evaluation count — while never building a
    feature vector or a configuration until the final result. [scratch]
    grows once to the largest grid and is reused across calls (zero
    steady-state allocation); it must not be shared across domains. *)
val search_kernel :
  ?counters:Counters.t ->
  Raqo_cluster.Conditions.t ->
  kernel:Raqo_cost.Kernel.t ->
  scratch:Raqo_cost.Kernel.scratch ->
  Raqo_cluster.Resources.t * float

(** [search_pruned_kernel ?counters conditions ~kernel ~scratch] is
    {!search_pruned} on a compiled kernel: identical seed lattice, identical
    branch-and-bound recursion, with point costs memoised in [scratch]'s
    buffer (a seen-bitmap stands in for the hash memo, preserving the
    distinct-evaluation count) and box bounds from
    {!Raqo_cost.Kernel.bound_at}, which is bit-identical to the scalar
    {!Raqo_cost.Op_cost.region_lower_bound} closure. Every pruning decision
    — and therefore the result and the counters — matches {!search_pruned}
    exactly. *)
val search_pruned_kernel :
  ?counters:Counters.t ->
  Raqo_cluster.Conditions.t ->
  kernel:Raqo_cost.Kernel.t ->
  scratch:Raqo_cost.Kernel.scratch ->
  Raqo_cluster.Resources.t * float

(** [search_par ?counters pool conditions cost] is {!search} with the
    configuration grid partitioned into contiguous slices across the pool's
    domains. [cost] must be safe to call concurrently (the operator cost
    models are pure). The per-slice minima are merged in enumeration order
    with the same tie-break, so the result — configuration, cost, and
    recorded evaluation count — is identical to {!search} for any pool
    size. *)
val search_par :
  ?counters:Counters.t ->
  Raqo_par.Pool.t ->
  Raqo_cluster.Conditions.t ->
  (Raqo_cluster.Resources.t -> float) ->
  Raqo_cluster.Resources.t * float
