(** Exhaustive resource planning: evaluate the cost model on every discrete
    resource configuration the cluster offers, keep the cheapest. The
    baseline hill climbing is measured against (Figure 13). *)

(** [search ?counters conditions cost] returns the cheapest configuration and
    its cost. Ties break toward the earlier-enumerated (smaller) config.
    @raise Invalid_argument if the space is empty (cannot happen for valid
    conditions). *)
val search :
  ?counters:Counters.t ->
  Raqo_cluster.Conditions.t ->
  (Raqo_cluster.Resources.t -> float) ->
  Raqo_cluster.Resources.t * float

(** [search_par ?counters pool conditions cost] is {!search} with the
    configuration grid partitioned into contiguous slices across the pool's
    domains. [cost] must be safe to call concurrently (the operator cost
    models are pure). The per-slice minima are merged in enumeration order
    with the same tie-break, so the result — configuration, cost, and
    recorded evaluation count — is identical to {!search} for any pool
    size. *)
val search_par :
  ?counters:Counters.t ->
  Raqo_par.Pool.t ->
  Raqo_cluster.Conditions.t ->
  (Raqo_cluster.Resources.t -> float) ->
  Raqo_cluster.Resources.t * float
