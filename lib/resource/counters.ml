(* Atomic so that parallel searches (pooled brute force, concurrent
   randomized restarts, batched workload planning) can share one instrument
   without losing increments; see Raqo_par.Pool. *)
type t = {
  cost_evaluations : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  cache_evictions : int Atomic.t;
  planner_invocations : int Atomic.t;
}

let create () =
  {
    cost_evaluations = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    cache_evictions = Atomic.make 0;
    planner_invocations = Atomic.make 0;
  }

let reset t =
  Atomic.set t.cost_evaluations 0;
  Atomic.set t.cache_hits 0;
  Atomic.set t.cache_misses 0;
  Atomic.set t.cache_evictions 0;
  Atomic.set t.planner_invocations 0

let cost_evaluations t = Atomic.get t.cost_evaluations
let cache_hits t = Atomic.get t.cache_hits
let cache_misses t = Atomic.get t.cache_misses
let cache_evictions t = Atomic.get t.cache_evictions
let planner_invocations t = Atomic.get t.planner_invocations

let record_evaluations t n = ignore (Atomic.fetch_and_add t.cost_evaluations n)
let record_evaluation t = record_evaluations t 1
let record_hit t = ignore (Atomic.fetch_and_add t.cache_hits 1)
let record_miss t = ignore (Atomic.fetch_and_add t.cache_misses 1)
let record_eviction t = ignore (Atomic.fetch_and_add t.cache_evictions 1)
let record_invocation t = ignore (Atomic.fetch_and_add t.planner_invocations 1)

let add ~into t =
  record_evaluations into (cost_evaluations t);
  ignore (Atomic.fetch_and_add into.cache_hits (cache_hits t));
  ignore (Atomic.fetch_and_add into.cache_misses (cache_misses t));
  ignore (Atomic.fetch_and_add into.cache_evictions (cache_evictions t));
  ignore (Atomic.fetch_and_add into.planner_invocations (planner_invocations t))

let pp fmt t =
  Format.fprintf fmt "evals=%d hits=%d misses=%d evictions=%d invocations=%d"
    (cost_evaluations t) (cache_hits t) (cache_misses t) (cache_evictions t)
    (planner_invocations t)
