(* Each instrument owns private sharded cells (Raqo_obs.Metrics.Counter:
   lock-free per-domain shards merged on read), so parallel searches — pooled
   brute force, concurrent randomized restarts, batched workload planning —
   share one instrument without losing increments or contending on a single
   cache line; see Raqo_par.Pool.

   When observability is on, every record additionally bumps the mirror
   handles resolved at [create] time from a metrics registry — the process-wide
   default unless the instrument was created with [?registry] (a resident
   server threads its own, so two servers never share mutable state). The
   mirrors are what `raqo metrics`, the fuzz summary and the Prometheus
   exporter read. When observability is off, recording is exactly the one
   sharded atomic add it always was. *)

module M = Raqo_obs.Metrics

type t = {
  cost_evaluations : M.Counter.t;
  cache_hits : M.Counter.t;
  cache_misses : M.Counter.t;
  cache_evictions : M.Counter.t;
  planner_invocations : M.Counter.t;
  (* Registry mirrors: aggregate over every instrument bound to the same
     registry. *)
  g_evaluations : M.Counter.t;
  g_hits : M.Counter.t;
  g_misses : M.Counter.t;
  g_evictions : M.Counter.t;
  g_invocations : M.Counter.t;
}

let create ?(registry = M.default) () =
  {
    cost_evaluations = M.Counter.create ();
    cache_hits = M.Counter.create ();
    cache_misses = M.Counter.create ();
    cache_evictions = M.Counter.create ();
    planner_invocations = M.Counter.create ();
    g_evaluations = M.counter_in registry "raqo_cost_evaluations_total";
    g_hits = M.counter_in registry "raqo_plan_cache_hits_total";
    g_misses = M.counter_in registry "raqo_plan_cache_misses_total";
    g_evictions = M.counter_in registry "raqo_plan_cache_evictions_total";
    g_invocations = M.counter_in registry "raqo_planner_invocations_total";
  }

let reset t =
  M.Counter.reset t.cost_evaluations;
  M.Counter.reset t.cache_hits;
  M.Counter.reset t.cache_misses;
  M.Counter.reset t.cache_evictions;
  M.Counter.reset t.planner_invocations

let cost_evaluations t = M.Counter.value t.cost_evaluations
let cache_hits t = M.Counter.value t.cache_hits
let cache_misses t = M.Counter.value t.cache_misses
let cache_evictions t = M.Counter.value t.cache_evictions
let planner_invocations t = M.Counter.value t.planner_invocations

let record_evaluations t n =
  M.Counter.add t.cost_evaluations n;
  if Raqo_obs.Obs.enabled () then M.Counter.add t.g_evaluations n

let record_evaluation t = record_evaluations t 1

let record_hit t =
  M.Counter.inc t.cache_hits;
  if Raqo_obs.Obs.enabled () then M.Counter.inc t.g_hits

let record_miss t =
  M.Counter.inc t.cache_misses;
  if Raqo_obs.Obs.enabled () then M.Counter.inc t.g_misses

let record_eviction t =
  M.Counter.inc t.cache_evictions;
  if Raqo_obs.Obs.enabled () then M.Counter.inc t.g_evictions

let record_invocation t =
  M.Counter.inc t.planner_invocations;
  if Raqo_obs.Obs.enabled () then M.Counter.inc t.g_invocations

(* Accumulation is a bookkeeping move between instruments, not new work: it
   goes straight to the private cells, never to the registry mirrors. *)
let add ~into t =
  M.Counter.add into.cost_evaluations (cost_evaluations t);
  M.Counter.add into.cache_hits (cache_hits t);
  M.Counter.add into.cache_misses (cache_misses t);
  M.Counter.add into.cache_evictions (cache_evictions t);
  M.Counter.add into.planner_invocations (planner_invocations t)

let pp fmt t =
  Format.fprintf fmt "evals=%d hits=%d misses=%d evictions=%d invocations=%d"
    (cost_evaluations t) (cache_hits t) (cache_misses t) (cache_evictions t)
    (planner_invocations t)
