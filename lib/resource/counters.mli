(** Resource-planning instrumentation: the paper's evaluation reports the
    number of resource configurations explored (cost-model evaluations) and
    cache effectiveness, so every search threads one of these.

    Counters are {!Raqo_obs.Metrics.Counter} shards underneath (lock-free
    per-domain cells merged on read): one instrument can be shared by tasks
    running on different domains (pooled brute force, parallel randomized
    restarts) without losing increments. Reads ({!cost_evaluations} etc.)
    are merged snapshots — exact once the parallel section has joined,
    approximate while it is in flight.

    When {!Raqo_obs.Obs.enabled} is on, every record also feeds a metrics
    registry ([raqo_cost_evaluations_total],
    [raqo_plan_cache_{hits,misses,evictions}_total],
    [raqo_planner_invocations_total]), so per-instrument views and the
    registry stay one source of truth. The mirror handles are resolved once
    at {!create} from [?registry] — the process-wide default unless a
    resident server threads its own. *)

type t

val create : ?registry:Raqo_obs.Metrics.registry -> unit -> t
val reset : t -> unit

(** {2 Reading} *)

val cost_evaluations : t -> int
    (** resource configurations whose cost was computed *)

val cache_hits : t -> int
val cache_misses : t -> int

val cache_evictions : t -> int
    (** entries dropped by a capacity-bounded plan cache (LRU) *)

val planner_invocations : t -> int
    (** resource-planning calls (one per costed sub-plan) *)

(** {2 Recording} *)

val record_evaluation : t -> unit
val record_evaluations : t -> int -> unit
val record_hit : t -> unit
val record_miss : t -> unit
val record_eviction : t -> unit
val record_invocation : t -> unit

(** [add ~into t] accumulates [t] into [into]. *)
val add : into:t -> t -> unit

val pp : Format.formatter -> t -> unit
