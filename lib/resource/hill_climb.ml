module Conditions = Raqo_cluster.Conditions
module Resources = Raqo_cluster.Resources

(* The two resource dimensions, represented generically as in Algorithm 1:
   currRes[0] = containers, currRes[1] = container memory (GB). *)
let to_vec (r : Resources.t) = [| float_of_int r.containers; r.container_gb |]

let of_vec v =
  Resources.make ~containers:(int_of_float (Float.round v.(0))) ~container_gb:v.(1)

(* The climb itself, generic in how a (containers, gb) point is costed so the
   compiled-kernel path can skip building Resources.t values per probe. Both
   entry points feed bit-identical costs, so the trajectory — every step,
   the stopping point, the result — is the same either way. *)
let plan_gen ?counters ?start (conditions : Conditions.t) eval_point =
  let eval v =
    (match counters with
    | Some k -> Counters.record_evaluation k
    | None -> ());
    eval_point ~containers:(int_of_float (Float.round v.(0))) ~container_gb:v.(1)
  in
  (match counters with
  | Some k -> Counters.record_invocation k
  | None -> ());
  let step_size =
    [| float_of_int conditions.container_step; conditions.gb_step |]
  in
  let minimum = to_vec (Conditions.min_config conditions) in
  let maximum = to_vec (Conditions.max_config conditions) in
  let candidate = [| -1.0; 1.0 |] in
  let curr_res =
    to_vec
      (match start with
      | Some s -> Conditions.clamp conditions s
      | None -> Conditions.min_config conditions)
  in
  let dims = Array.length curr_res in
  let rec climb () =
    let curr_cost = eval curr_res in
    let best_cost = ref curr_cost in
    for i = 0 to dims - 1 do
      let best = ref (-1) in
      for j = 0 to Array.length candidate - 1 do
        let ival = step_size.(i) *. candidate.(j) in
        let stepped = curr_res.(i) +. ival in
        if stepped <= maximum.(i) +. 1e-9 && stepped >= minimum.(i) -. 1e-9 then begin
          curr_res.(i) <- stepped;
          let temp = eval curr_res in
          curr_res.(i) <- curr_res.(i) -. ival;
          if temp < !best_cost then begin
            best_cost := temp;
            best := j
          end
        end
      done;
      if !best <> -1 then curr_res.(i) <- curr_res.(i) +. (step_size.(i) *. candidate.(!best))
    done;
    (* Continue only on strict improvement; this also terminates when the
       cost model returns NaN (all comparisons false). *)
    if !best_cost < curr_cost then climb () else (of_vec curr_res, curr_cost)
  in
  climb ()

let plan ?counters ?start conditions cost =
  plan_gen ?counters ?start conditions (fun ~containers ~container_gb ->
      cost (Resources.make ~containers ~container_gb))

let plan_kernel ?counters ?start conditions kernel =
  plan_gen ?counters ?start conditions (fun ~containers ~container_gb ->
      Raqo_cost.Kernel.predict kernel ~containers ~container_gb)
