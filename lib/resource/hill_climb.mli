(** Resource planning by hill climbing — the paper's Algorithm 1.

    Starting from the smallest resource configuration (users of serverless
    clouds want minimal resources), repeatedly try one discrete step forward
    and backward along each resource dimension (number of containers, memory
    per container), greedily applying the per-dimension step that lowers the
    modelled cost, until no step improves — a local optimum. *)

(** [plan ?counters ?start conditions cost] returns the local-optimum
    configuration and its cost. [start] defaults to
    [Conditions.min_config conditions]; it is clamped into bounds. *)
val plan :
  ?counters:Counters.t ->
  ?start:Raqo_cluster.Resources.t ->
  Raqo_cluster.Conditions.t ->
  (Raqo_cluster.Resources.t -> float) ->
  Raqo_cluster.Resources.t * float

(** [plan_kernel ?counters ?start conditions kernel] is {!plan} costing
    probes through a compiled kernel instead of a [Resources.t -> float]
    closure: no configuration value or feature vector is built per probe.
    {!Raqo_cost.Kernel.predict} is bit-identical to the scalar model, so the
    climb's trajectory, result, cost, and evaluation count all match
    {!plan}'s on the same model. *)
val plan_kernel :
  ?counters:Counters.t ->
  ?start:Raqo_cluster.Resources.t ->
  Raqo_cluster.Conditions.t ->
  Raqo_cost.Kernel.t ->
  Raqo_cluster.Resources.t * float
