type backend = Sorted_array | Btree

(* ------------------------------------------------------------ sorted array *)

module Arr = struct
  type 'a t = { mutable keys : float array; mutable values : 'a array; mutable n : int }

  let create () = { keys = [||]; values = [||]; n = 0 }

  (* Index of the first key >= [key], in [0, n]. *)
  let lower_bound t key =
    let lo = ref 0 and hi = ref t.n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.keys.(mid) < key then lo := mid + 1 else hi := mid
    done;
    !lo

  let insert t key value =
    let pos = lower_bound t key in
    if pos < t.n && t.keys.(pos) = key then t.values.(pos) <- value
    else begin
      if t.n = Array.length t.keys then begin
        let capacity = max 16 (2 * t.n) in
        let keys = Array.make capacity 0.0 in
        let values = Array.make capacity value in
        Array.blit t.keys 0 keys 0 t.n;
        Array.blit t.values 0 values 0 t.n;
        t.keys <- keys;
        t.values <- values
      end;
      Array.blit t.keys pos t.keys (pos + 1) (t.n - pos);
      Array.blit t.values pos t.values (pos + 1) (t.n - pos);
      t.keys.(pos) <- key;
      t.values.(pos) <- value;
      t.n <- t.n + 1
    end

  let find_exact t key =
    let pos = lower_bound t key in
    if pos < t.n && t.keys.(pos) = key then Some t.values.(pos) else None

  let remove t key =
    let pos = lower_bound t key in
    if pos < t.n && t.keys.(pos) = key then begin
      Array.blit t.keys (pos + 1) t.keys pos (t.n - pos - 1);
      Array.blit t.values (pos + 1) t.values pos (t.n - pos - 1);
      t.n <- t.n - 1;
      true
    end
    else false

  let within t ~center ~radius =
    let pos = lower_bound t (center -. radius) in
    let rec collect i acc =
      if i >= t.n || t.keys.(i) > center +. radius then List.rev acc
      else collect (i + 1) ((t.keys.(i), t.values.(i)) :: acc)
    in
    collect pos []

  (* Only the successor and predecessor of [center] can be nearest; ties go
     to the predecessor, i.e. the lower key. *)
  let nearest t ~center ~radius =
    if t.n = 0 then None
    else begin
      let pos = lower_bound t center in
      let best =
        if pos >= t.n then pos - 1
        else if pos = 0 then 0
        else if Float.abs (t.keys.(pos - 1) -. center) <= Float.abs (t.keys.(pos) -. center)
        then pos - 1
        else pos
      in
      if Float.abs (t.keys.(best) -. center) <= radius then
        Some (t.keys.(best), t.values.(best))
      else None
    end

  let to_list t = List.init t.n (fun i -> (t.keys.(i), t.values.(i)))
end

(* ---------------------------------------------------------------- B+-tree *)

module Bt = struct
  let order = 16 (* max keys per node *)

  type 'a node =
    | Leaf of 'a leaf
    | Internal of 'a internal

  and 'a leaf = {
    mutable lkeys : float array;
    mutable lvalues : 'a array;
    mutable ln : int;
    mutable next : 'a leaf option;  (** leaf link, for range scans *)
  }

  and 'a internal = {
    mutable ikeys : float array;  (** separators: child i holds keys < ikeys.(i) *)
    mutable children : 'a node array;
    mutable inn : int;  (** number of children; separators = inn - 1 *)
  }

  type 'a t = { mutable root : 'a node; mutable count : int }

  let new_leaf value =
    { lkeys = Array.make order 0.0; lvalues = Array.make order value; ln = 0; next = None }

  let create_with value = { root = Leaf (new_leaf value); count = 0 }

  (* First index in [keys[0..n)] with keys.(i) >= key. *)
  let lower_bound keys n key =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if keys.(mid) < key then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Child to descend into for [key]: first separator > key ... standard
     "child i covers keys < ikeys.(i)" with the last child open-ended. *)
  let child_index (node : 'a internal) key =
    let lo = ref 0 and hi = ref (node.inn - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if key >= node.ikeys.(mid) then lo := mid + 1 else hi := mid
    done;
    !lo

  let rec find_leaf node key =
    match node with
    | Leaf l -> l
    | Internal i -> find_leaf i.children.(child_index i key) key

  let find_exact t key =
    let l = find_leaf t.root key in
    let pos = lower_bound l.lkeys l.ln key in
    if pos < l.ln && l.lkeys.(pos) = key then Some l.lvalues.(pos) else None

  (* Insert into a subtree. Returns [Some (separator, right_sibling)] when
     the node split and the parent must absorb the new child. *)
  let rec insert_node node key value =
    match node with
    | Leaf l ->
        let pos = lower_bound l.lkeys l.ln key in
        if pos < l.ln && l.lkeys.(pos) = key then begin
          l.lvalues.(pos) <- value;
          `Overwrote
        end
        else begin
          if l.ln < order then begin
            Array.blit l.lkeys pos l.lkeys (pos + 1) (l.ln - pos);
            Array.blit l.lvalues pos l.lvalues (pos + 1) (l.ln - pos);
            l.lkeys.(pos) <- key;
            l.lvalues.(pos) <- value;
            l.ln <- l.ln + 1;
            `Inserted None
          end
          else begin
            (* Split the full leaf, then insert into the proper half. *)
            let half = order / 2 in
            let right = new_leaf value in
            Array.blit l.lkeys half right.lkeys 0 (order - half);
            Array.blit l.lvalues half right.lvalues 0 (order - half);
            right.ln <- order - half;
            l.ln <- half;
            right.next <- l.next;
            l.next <- Some right;
            let target = if key < right.lkeys.(0) then Leaf l else Leaf right in
            (match insert_node target key value with
            | `Inserted None | `Overwrote -> ()
            | `Inserted (Some _) -> assert false (* halves have room *));
            `Inserted (Some (right.lkeys.(0), Leaf right))
          end
        end
    | Internal node ->
        let ci = child_index node key in
        begin
          match insert_node node.children.(ci) key value with
          | `Overwrote -> `Overwrote
          | `Inserted None -> `Inserted None
          | `Inserted (Some (sep, right_child)) ->
              if node.inn <= order then begin
                (* Absorb: separator goes at position ci, child at ci+1. *)
                Array.blit node.ikeys ci node.ikeys (ci + 1) (node.inn - 1 - ci);
                Array.blit node.children (ci + 1) node.children (ci + 2) (node.inn - 1 - ci);
                node.ikeys.(ci) <- sep;
                node.children.(ci + 1) <- right_child;
                node.inn <- node.inn + 1;
                if node.inn <= order then `Inserted None
                else begin
                  (* Overfull internal node: split around the middle key. *)
                  let mid = node.inn / 2 in
                  let up = node.ikeys.(mid - 1) in
                  let right =
                    {
                      ikeys = Array.make (order + 1) 0.0;
                      children = Array.make (order + 2) node.children.(0);
                      inn = node.inn - mid;
                    }
                  in
                  Array.blit node.ikeys mid right.ikeys 0 (node.inn - 1 - mid);
                  Array.blit node.children mid right.children 0 (node.inn - mid);
                  node.inn <- mid;
                  `Inserted (Some (up, Internal right))
                end
              end
              else assert false
        end

  let insert t key value =
    match insert_node t.root key value with
    | `Overwrote -> ()
    | `Inserted None -> t.count <- t.count + 1
    | `Inserted (Some (sep, right)) ->
        t.count <- t.count + 1;
        let root =
          {
            ikeys = Array.make (order + 1) 0.0;
            children = Array.make (order + 2) t.root;
            inn = 2;
          }
        in
        root.ikeys.(0) <- sep;
        root.children.(0) <- t.root;
        root.children.(1) <- right;
        t.root <- Internal root

  (* Deletion without rebalancing: shift the covering leaf's tail left. An
     emptied leaf stays in place (separators and leaf links unchanged) — every
     traversal already skips past [ln = 0] leaves via the links, and the plan
     cache's LRU workload deletes cold entries only, so the tree never
     degenerates faster than it grows. *)
  let remove t key =
    let l = find_leaf t.root key in
    let pos = lower_bound l.lkeys l.ln key in
    if pos < l.ln && l.lkeys.(pos) = key then begin
      Array.blit l.lkeys (pos + 1) l.lkeys pos (l.ln - pos - 1);
      Array.blit l.lvalues (pos + 1) l.lvalues pos (l.ln - pos - 1);
      l.ln <- l.ln - 1;
      t.count <- t.count - 1;
      true
    end
    else false

  let within t ~center ~radius =
    let l = find_leaf t.root (center -. radius) in
    let rec scan (l : 'a leaf) i acc =
      if i >= l.ln then begin
        match l.next with
        | Some next -> scan next 0 acc
        | None -> List.rev acc
      end
      else begin
        let k = l.lkeys.(i) in
        if k > center +. radius then List.rev acc
        else if k >= center -. radius then scan l (i + 1) ((k, l.lvalues.(i)) :: acc)
        else scan l (i + 1) acc
      end
    in
    scan l 0 []

  (* First entry with key >= [key]: descend to the covering leaf, then walk
     the leaf links right past any smaller tail. *)
  let succ_entry t key =
    let rec go (l : 'a leaf) =
      let pos = lower_bound l.lkeys l.ln key in
      if pos < l.ln then Some (l.lkeys.(pos), l.lvalues.(pos))
      else match l.next with Some next -> go next | None -> None
    in
    go (find_leaf t.root key)

  (* Last entry with key < [key]: rightmost success over the children up to
     the covering one (leaves have no back links, so descend instead). *)
  let pred_entry t key =
    let rec go node =
      match node with
      | Leaf l ->
          let pos = lower_bound l.lkeys l.ln key in
          if pos > 0 then Some (l.lkeys.(pos - 1), l.lvalues.(pos - 1)) else None
      | Internal node ->
          let rec try_child ci =
            if ci < 0 then None
            else
              match go node.children.(ci) with
              | Some _ as found -> found
              | None -> try_child (ci - 1)
          in
          try_child (child_index node key)
    in
    go t.root

  let nearest t ~center ~radius =
    let best =
      match (pred_entry t center, succ_entry t center) with
      | Some ((pk, _) as p), Some ((sk, _) as s) ->
          (* Ties go to the predecessor, i.e. the lower key. *)
          if Float.abs (pk -. center) <= Float.abs (sk -. center) then Some p else Some s
      | (Some _ as p), None -> p
      | None, (Some _ as s) -> s
      | None, None -> None
    in
    match best with
    | Some (k, _) when Float.abs (k -. center) <= radius -> best
    | Some _ | None -> None

  let to_list t =
    (* Leftmost leaf, then follow the links. *)
    let rec leftmost = function
      | Leaf l -> l
      | Internal i -> leftmost i.children.(0)
    in
    let rec walk (l : 'a leaf) acc =
      let acc = ref acc in
      for i = 0 to l.ln - 1 do
        acc := (l.lkeys.(i), l.lvalues.(i)) :: !acc
      done;
      match l.next with
      | Some next -> walk next !acc
      | None -> List.rev !acc
    in
    walk (leftmost t.root) []
end

(* --------------------------------------------------------------- facade *)

type 'a repr = A of 'a Arr.t | B of 'a Bt.t | Empty_btree
type 'a t = { mutable repr : 'a repr; which : backend }

let create = function
  | Sorted_array -> { repr = A (Arr.create ()); which = Sorted_array }
  | Btree -> { repr = Empty_btree; which = Btree }

let backend t = t.which

let size t =
  match t.repr with
  | A a -> a.Arr.n
  | B b -> b.Bt.count
  | Empty_btree -> 0

let insert t key value =
  match t.repr with
  | A a -> Arr.insert a key value
  | B b -> Bt.insert b key value
  | Empty_btree ->
      (* The B+-tree needs a witness value for array initialization. *)
      let b = Bt.create_with value in
      Bt.insert b key value;
      t.repr <- B b

let find_exact t key =
  match t.repr with
  | A a -> Arr.find_exact a key
  | B b -> Bt.find_exact b key
  | Empty_btree -> None

let remove t key =
  match t.repr with
  | A a -> Arr.remove a key
  | B b -> Bt.remove b key
  | Empty_btree -> false

let within t ~center ~radius =
  match t.repr with
  | A a -> Arr.within a ~center ~radius
  | B b -> Bt.within b ~center ~radius
  | Empty_btree -> []

let nearest t ~center ~radius =
  match t.repr with
  | A a -> Arr.nearest a ~center ~radius
  | B b -> Bt.nearest b ~center ~radius
  | Empty_btree -> None

let to_list t =
  match t.repr with
  | A a -> Arr.to_list a
  | B b -> Bt.to_list b
  | Empty_btree -> []
