(** Ordered float-keyed indexes for the resource-plan cache.

    The paper's prototype "keeps a sorted array of keys, with automatic
    resizing ... and binary search for lookup", and notes the array "could
    also [be laid] out as a CSB+-Tree for larger workloads". Both layouts
    are provided behind one interface: the sorted array (default, best for
    the paper's workload sizes) and a cache-conscious B+-tree with linked
    leaves (better at hundreds of thousands of entries — see the [micro]
    bench). Keys are unique; inserting an existing key overwrites. *)

type 'a t

type backend =
  | Sorted_array  (** contiguous parallel arrays, binary search, shift on insert *)
  | Btree  (** B+-tree of order 16, leaf-linked for range scans *)

val create : backend -> 'a t
val backend : 'a t -> backend
val size : 'a t -> int

(** [insert t key value] adds or overwrites. *)
val insert : 'a t -> float -> 'a -> unit

(** [find_exact t key] is the value at exactly [key]. *)
val find_exact : 'a t -> float -> 'a option

(** [remove t key] deletes the entry at exactly [key], reporting whether one
    existed. The sorted array shifts its tail; the B+-tree deletes in place
    without rebalancing (an emptied leaf stays linked and is skipped by every
    scan) — fine for the plan cache's evict-coldest workload, which removes
    entries far more rarely than it inserts them. *)
val remove : 'a t -> float -> bool

(** [within t ~center ~radius] returns every [(key, value)] with
    [|key - center| <= radius], in ascending key order. *)
val within : 'a t -> center:float -> radius:float -> (float * 'a) list

(** [nearest t ~center ~radius] is the entry minimizing [|key - center|],
    provided that distance is at most [radius]; ties between equidistant
    neighbors go to the lower key. O(log n) — only the predecessor and
    successor of [center] are probed, never the whole radius band. *)
val nearest : 'a t -> center:float -> radius:float -> (float * 'a) option

(** [to_list t] is all entries in ascending key order (testing aid). *)
val to_list : 'a t -> (float * 'a) list
