module Resources = Raqo_cluster.Resources

type lookup = Exact | Nearest_neighbor of float | Weighted_average of float

(* LRU bookkeeping is engaged only for capacity-bounded caches: unbounded
   caches (the default, the paper's behaviour) skip every stamp update, so
   the hot lookup path is unchanged. Recency is a monotone clock stamped per
   touch; eviction scans the stamp table for the minimum — O(size) per
   eviction, which is fine at the small capacities batch runs bound
   themselves to, and keeps the sorted indexes free of intrusive links. *)
type t = {
  indexes : (string, Resources.t Ordered_index.t) Hashtbl.t;
  backend : Ordered_index.backend;
  capacity : int option;
  stamps : (string * float, int) Hashtbl.t;
  mutable clock : int;
}

let create ?(backend = Ordered_index.Sorted_array) ?capacity () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Plan_cache.create: capacity must be >= 1"
  | Some _ | None -> ());
  { indexes = Hashtbl.create 16; backend; capacity; stamps = Hashtbl.create 16; clock = 0 }

let capacity t = t.capacity
let backend t = t.backend

let touch t key data_gb =
  match t.capacity with
  | None -> ()
  | Some _ ->
      t.clock <- t.clock + 1;
      Hashtbl.replace t.stamps (key, data_gb) t.clock

(* Two data characteristics closer than this are the same measurement: the
   sizes flowing in here are products of float cardinality estimates, so keys
   that should be equal often differ in the last few ulps. *)
let exact_epsilon ~data_gb = 1e-9 *. Float.max 1.0 (Float.abs data_gb)

(* Lookups report which stored entries they consulted (by stored key) so a
   bounded cache can refresh their recency: an entry that keeps answering
   nearest-neighbor or weighted-average probes is warm even if its exact key
   is never queried. *)
let find_in_index idx ~key ~data_gb lookup touch_entry =
  match lookup with
  | Exact -> begin
      match Ordered_index.find_exact idx data_gb with
      | Some plan ->
          touch_entry key data_gb;
          Some plan
      | None -> None
    end
  | Nearest_neighbor threshold -> begin
      (* Predecessor/successor probes, not a linear fold over the whole
         radius band; same answer, ties to the lower key either way. *)
      match Ordered_index.nearest idx ~center:data_gb ~radius:threshold with
      | Some (k, plan) ->
          touch_entry key k;
          Some plan
      | None -> None
    end
  | Weighted_average threshold -> begin
      match Ordered_index.within idx ~center:data_gb ~radius:threshold with
      | [] -> None
      | close ->
          List.iter (fun (k, _) -> touch_entry key k) close;
          (* Inverse-distance weights; a (near-)exact entry wins outright.
             The epsilon guard matters: a key float-unequal to [data_gb] by a
             few ulps would otherwise get weight 1/d with d near 0, swamping
             every other entry (and overflowing to inf/nan on denormal
             distances, which poisons the whole average). *)
          let eps = exact_epsilon ~data_gb in
          let exact = List.find_opt (fun (k, _) -> Float.abs (k -. data_gb) <= eps) close in
          (match exact with
          | Some (_, plan) -> Some plan
          | None ->
              let wsum = ref 0.0 and c = ref 0.0 and gb = ref 0.0 in
              List.iter
                (fun (k, (plan : Resources.t)) ->
                  let w = 1.0 /. Float.max eps (Float.abs (k -. data_gb)) in
                  wsum := !wsum +. w;
                  c := !c +. (w *. float_of_int plan.containers);
                  gb := !gb +. (w *. plan.container_gb))
                close;
              Some
                (Resources.make
                   ~containers:(max 1 (int_of_float (Float.round (!c /. !wsum))))
                   ~container_gb:(!gb /. !wsum)))
    end

let find ?counters t ~key ~data_gb lookup =
  let result =
    match Hashtbl.find_opt t.indexes key with
    | None -> None
    | Some idx -> find_in_index idx ~key ~data_gb lookup (touch t)
  in
  (match counters with
  | Some k -> begin
      match result with
      | Some _ -> Counters.record_hit k
      | None -> Counters.record_miss k
    end
  | None -> ());
  result

let size t = Hashtbl.fold (fun _ idx acc -> acc + Ordered_index.size idx) t.indexes 0

(* Drop the least-recently-touched entry. The stamp table is authoritative
   for bounded caches: every insert stamps, so every resident entry has a
   stamp. *)
let evict_lru ?counters t =
  let victim =
    Hashtbl.fold
      (fun entry stamp best ->
        match best with
        | Some (_, s) when s <= stamp -> best
        | Some _ | None -> Some (entry, stamp))
      t.stamps None
  in
  match victim with
  | None -> ()
  | Some (((key, data_gb) as entry), _) ->
      Hashtbl.remove t.stamps entry;
      (match Hashtbl.find_opt t.indexes key with
      | None -> ()
      | Some idx ->
          ignore (Ordered_index.remove idx data_gb);
          if Ordered_index.size idx = 0 then Hashtbl.remove t.indexes key);
      (match counters with Some k -> Counters.record_eviction k | None -> ())

let insert ?counters t ~key ~data_gb resources =
  let idx =
    match Hashtbl.find_opt t.indexes key with
    | Some idx -> idx
    | None ->
        let idx = Ordered_index.create t.backend in
        Hashtbl.add t.indexes key idx;
        idx
  in
  Ordered_index.insert idx data_gb resources;
  touch t key data_gb;
  match t.capacity with
  | None -> ()
  | Some cap ->
      while size t > cap do
        evict_lru ?counters t
      done

let clear t =
  Hashtbl.reset t.indexes;
  Hashtbl.reset t.stamps;
  t.clock <- 0

let keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.indexes [])

let entries t ~key =
  match Hashtbl.find_opt t.indexes key with
  | None -> []
  | Some idx -> Ordered_index.to_list idx
