module Resources = Raqo_cluster.Resources

type lookup = Exact | Nearest_neighbor of float | Weighted_average of float

type t = {
  indexes : (string, Resources.t Ordered_index.t) Hashtbl.t;
  backend : Ordered_index.backend;
}

let create ?(backend = Ordered_index.Sorted_array) () =
  { indexes = Hashtbl.create 16; backend }

(* Two data characteristics closer than this are the same measurement: the
   sizes flowing in here are products of float cardinality estimates, so keys
   that should be equal often differ in the last few ulps. *)
let exact_epsilon ~data_gb = 1e-9 *. Float.max 1.0 (Float.abs data_gb)

let find_in_index idx ~data_gb lookup =
  match lookup with
  | Exact -> Ordered_index.find_exact idx data_gb
  | Nearest_neighbor threshold ->
      (* Predecessor/successor probes, not a linear fold over the whole
         radius band; same answer, ties to the lower key either way. *)
      Ordered_index.nearest idx ~center:data_gb ~radius:threshold |> Option.map snd
  | Weighted_average threshold -> begin
      match Ordered_index.within idx ~center:data_gb ~radius:threshold with
      | [] -> None
      | close ->
          (* Inverse-distance weights; a (near-)exact entry wins outright.
             The epsilon guard matters: a key float-unequal to [data_gb] by a
             few ulps would otherwise get weight 1/d with d near 0, swamping
             every other entry (and overflowing to inf/nan on denormal
             distances, which poisons the whole average). *)
          let eps = exact_epsilon ~data_gb in
          let exact = List.find_opt (fun (k, _) -> Float.abs (k -. data_gb) <= eps) close in
          (match exact with
          | Some (_, plan) -> Some plan
          | None ->
              let wsum = ref 0.0 and c = ref 0.0 and gb = ref 0.0 in
              List.iter
                (fun (k, (plan : Resources.t)) ->
                  let w = 1.0 /. Float.max eps (Float.abs (k -. data_gb)) in
                  wsum := !wsum +. w;
                  c := !c +. (w *. float_of_int plan.containers);
                  gb := !gb +. (w *. plan.container_gb))
                close;
              Some
                (Resources.make
                   ~containers:(max 1 (int_of_float (Float.round (!c /. !wsum))))
                   ~container_gb:(!gb /. !wsum)))
    end

let find ?counters t ~key ~data_gb lookup =
  let result =
    match Hashtbl.find_opt t.indexes key with
    | None -> None
    | Some idx -> find_in_index idx ~data_gb lookup
  in
  (match counters with
  | Some k -> begin
      match result with
      | Some _ -> Counters.record_hit k
      | None -> Counters.record_miss k
    end
  | None -> ());
  result

let insert t ~key ~data_gb resources =
  let idx =
    match Hashtbl.find_opt t.indexes key with
    | Some idx -> idx
    | None ->
        let idx = Ordered_index.create t.backend in
        Hashtbl.add t.indexes key idx;
        idx
  in
  Ordered_index.insert idx data_gb resources

let clear t = Hashtbl.reset t.indexes
let size t = Hashtbl.fold (fun _ idx acc -> acc + Ordered_index.size idx) t.indexes 0
let keys t = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.indexes [])

let entries t ~key =
  match Hashtbl.find_opt t.indexes key with
  | None -> []
  | Some idx -> Ordered_index.to_list idx
