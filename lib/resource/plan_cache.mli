(** The resource-plan cache (paper Section VI-B3): for each cost model and
    sub-plan kind, an in-memory sorted index from data characteristics (the
    smaller input size) to the best resource configuration previously
    computed for them. Backed by a sorted, auto-resizing array with binary
    search by default (as in the paper's prototype), or by a B+-tree for
    large workloads (the paper's CSB+-tree suggestion) — see
    {!Ordered_index.backend}. *)

type t

(** Cache lookup policies, in the paper's terms. Thresholds are in the data
    characteristic's unit (GB of smaller input). *)
type lookup =
  | Exact  (** hit only on an exactly matching data characteristic *)
  | Nearest_neighbor of float
      (** hit on the closest entry within the threshold (paper: HC+Caching_NN) *)
  | Weighted_average of float
      (** inverse-distance-weighted average of the entries within the
          threshold (paper: HC+Caching_WA) *)

(** [create ()] builds an empty cache. Default backend: the paper's sorted
    array. [capacity] bounds the total entry count across keys: inserting
    past it evicts least-recently-used entries (recency is refreshed by
    inserts and by every lookup that consults the entry — exact hits, the
    nearest-neighbor match, and each weighted-average contributor). The
    default keeps the paper's unbounded behaviour, with zero bookkeeping
    overhead on the lookup path.
    @raise Invalid_argument if [capacity < 1]. *)
val create : ?backend:Ordered_index.backend -> ?capacity:int -> unit -> t

(** [capacity t] is the bound [t] was created with, if any. *)
val capacity : t -> int option

(** [backend t] is the index backend [t] was created with. *)
val backend : t -> Ordered_index.backend

(** [find t ~key ~data_gb lookup] queries the index for [key] (e.g.
    ["SMJ/join"]). Updates hit/miss counters in [counters] when given. *)
val find :
  ?counters:Counters.t ->
  t ->
  key:string ->
  data_gb:float ->
  lookup ->
  Raqo_cluster.Resources.t option

(** [insert t ~key ~data_gb resources] records a freshly planned
    configuration. Re-inserting an existing data characteristic overwrites.
    On a capacity-bounded cache, inserting a new entry past the bound evicts
    the least-recently-used entries (recorded in [counters] when given). *)
val insert :
  ?counters:Counters.t -> t -> key:string -> data_gb:float -> Raqo_cluster.Resources.t -> unit

(** [clear t] empties the cache (the evaluation clears it between queries
    unless measuring across-query caching). *)
val clear : t -> unit

(** [size t] is the total number of entries across keys. *)
val size : t -> int

(** [keys t] lists the distinct cache keys, sorted (verification hook). *)
val keys : t -> string list

(** [entries t ~key] is [key]'s index content in ascending data-characteristic
    order — the ground truth the verification layer checks lookups against. *)
val entries : t -> key:string -> (float * Raqo_cluster.Resources.t) list

(** [exact_epsilon ~data_gb] is the tolerance under which two data
    characteristics are treated as the same measurement (the weighted-average
    lookup returns such an entry outright instead of letting its near-zero
    distance swamp the inverse-distance weights). *)
val exact_epsilon : data_gb:float -> float
