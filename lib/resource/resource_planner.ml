module Kernel = Raqo_cost.Kernel

type strategy = Brute_force | Hill_climb

(* The cache behind [plan]: either the historical private Plan_cache (one
   per planner, single-writer) or a handle to a striped cross-query cache a
   resident server shares between all its concurrent planners. *)
type cache_handle = Private of Plan_cache.t | Shared of Shared_plan_cache.t

type t = {
  conditions : Raqo_cluster.Conditions.t;
  strategy : strategy;
  pruned : bool;
  cache : cache_handle option;
  lookup : Plan_cache.lookup;
  counters : Counters.t;
  pool : Raqo_par.Pool.t option;
  use_kernel : bool;
  scratch : Kernel.scratch;
}

let create ?(strategy = Hill_climb) ?(pruned = false) ?(cache = true)
    ?(lookup = Plan_cache.Exact) ?counters ?pool ?(kernel = true) ?cache_capacity
    ?shared_cache ?registry conditions =
  {
    conditions;
    strategy;
    pruned;
    cache =
      (match shared_cache with
      | Some shared -> Some (Shared shared)
      | None ->
          if cache then Some (Private (Plan_cache.create ?capacity:cache_capacity ()))
          else None);
    lookup;
    counters = (match counters with Some k -> k | None -> Counters.create ?registry ());
    pool;
    use_kernel = kernel;
    scratch = Kernel.create_scratch ();
  }

let conditions t = t.conditions
let with_conditions t conditions = { t with conditions }

(* A private copy for another domain (or another restart): same
   configuration and shared counters, but fresh single-writer state — a new
   private cache and, critically, fresh kernel scratch. A shared striped
   cache is synchronized and cross-query by design, so forks keep the same
   handle: that sharing is the point of a resident server. *)
let fork t =
  {
    t with
    cache =
      (match t.cache with
      | Some (Private cache) ->
          Some
            (Private
               (Plan_cache.create ~backend:(Plan_cache.backend cache)
                  ?capacity:(Plan_cache.capacity cache) ()))
      | (Some (Shared _) | None) as cache -> cache);
    scratch = Kernel.create_scratch ();
  }
let pruned t = t.pruned
let kernel_enabled t = t.use_kernel
let scratch t = t.scratch

(* Which implementation a search took, split kernel vs scalar so `raqo
   metrics` shows how often the compiled path actually runs. *)
let m_kernel_searches = Raqo_obs.Metrics.counter "raqo_resource_search_kernel_total"
let m_scalar_searches = Raqo_obs.Metrics.counter "raqo_resource_search_scalar_total"

(* Static span names: picked by branch, never built at runtime. *)
let span_name strategy ~pruned ~kernel =
  match (strategy, pruned, kernel) with
  | Hill_climb, _, true -> "resource/hill-climb-kernel"
  | Hill_climb, _, false -> "resource/hill-climb"
  | Brute_force, true, true -> "resource/pruned-kernel"
  | Brute_force, false, true -> "resource/sweep-kernel"
  | Brute_force, true, false -> "resource/pruned"
  | Brute_force, false, false -> "resource/brute-force"

let search ?start ?bound ?kernel t cost =
  let kernel = if t.use_kernel then kernel else None in
  let span =
    if not (Raqo_obs.Obs.enabled ()) then Raqo_obs.Trace.none
    else begin
      Raqo_obs.Metrics.Counter.inc
        (match kernel with Some _ -> m_kernel_searches | None -> m_scalar_searches);
      Raqo_obs.Trace.start
        (span_name t.strategy ~pruned:t.pruned ~kernel:(Option.is_some kernel))
    end
  in
  let result =
    match (t.strategy, kernel) with
  | Hill_climb, Some k -> Hill_climb.plan_kernel ~counters:t.counters ?start t.conditions k
  | Hill_climb, None -> Hill_climb.plan ~counters:t.counters ?start t.conditions cost
  | Brute_force, Some k ->
      (* Kernels compile only where region bounds exist (the paper feature
         space), so the pruned planner never needs the caller's [bound] here;
         the kernel path is single-domain by design — the sweep outruns the
         pooled scalar scan, and results are identical either way. *)
      if t.pruned then
        Brute_force.search_pruned_kernel ~counters:t.counters t.conditions ~kernel:k
          ~scratch:t.scratch
      else Brute_force.search_kernel ~counters:t.counters t.conditions ~kernel:k ~scratch:t.scratch
    | Brute_force, None -> begin
        match (t.pruned, bound, t.pool) with
        | true, Some bound, _ ->
            Brute_force.search_pruned ~counters:t.counters t.conditions ~bound cost
        | _, _, Some pool -> Brute_force.search_par ~counters:t.counters pool t.conditions cost
        | _, _, None -> Brute_force.search ~counters:t.counters t.conditions cost
      end
  in
  Raqo_obs.Trace.finish span;
  result

let plan ?start ?bound ?kernel t ~key ~data_gb ~cost =
  match t.cache with
  | None -> search ?start ?bound ?kernel t cost
  | Some handle -> begin
      (* The shared handle records hits/misses in the planner's own counters
         too (the striped cache's internal counters are the cross-planner
         aggregate), so per-request instrumentation reads the same either
         way. *)
      let found =
        match handle with
        | Private cache -> Plan_cache.find ~counters:t.counters cache ~key ~data_gb t.lookup
        | Shared shared ->
            let r = Shared_plan_cache.find shared ~key ~data_gb t.lookup in
            (match r with
            | Some _ -> Counters.record_hit t.counters
            | None -> Counters.record_miss t.counters);
            r
      in
      match found with
      | Some cached ->
          let cached = Raqo_cluster.Conditions.clamp t.conditions cached in
          Counters.record_evaluation t.counters;
          let c =
            match (if t.use_kernel then kernel else None) with
            | Some k -> Kernel.predict_resources k cached
            | None -> cost cached
          in
          (cached, c)
      | None ->
          let resources, best = search ?start ?bound ?kernel t cost in
          (match handle with
          | Private cache -> Plan_cache.insert ~counters:t.counters cache ~key ~data_gb resources
          | Shared shared -> Shared_plan_cache.insert shared ~key ~data_gb resources);
          (resources, best)
    end

let counters t = t.counters
let reset_counters t = Counters.reset t.counters
let cache t = match t.cache with Some (Private cache) -> Some cache | Some (Shared _) | None -> None
let shared_cache t = match t.cache with Some (Shared s) -> Some s | Some (Private _) | None -> None
let lookup t = t.lookup

(* Clearing is scoped to state this planner owns: a shared cross-query cache
   belongs to the server, so per-query resets must not wipe it. *)
let clear_cache t =
  match t.cache with
  | Some (Private cache) -> Plan_cache.clear cache
  | Some (Shared _) | None -> ()

let cache_size t =
  match t.cache with
  | Some (Private cache) -> Plan_cache.size cache
  | Some (Shared shared) -> Shared_plan_cache.size shared
  | None -> 0
