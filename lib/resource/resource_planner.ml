type strategy = Brute_force | Hill_climb

type t = {
  conditions : Raqo_cluster.Conditions.t;
  strategy : strategy;
  pruned : bool;
  cache : Plan_cache.t option;
  lookup : Plan_cache.lookup;
  counters : Counters.t;
  pool : Raqo_par.Pool.t option;
}

let create ?(strategy = Hill_climb) ?(pruned = false) ?(cache = true)
    ?(lookup = Plan_cache.Exact) ?counters ?pool conditions =
  {
    conditions;
    strategy;
    pruned;
    cache = (if cache then Some (Plan_cache.create ()) else None);
    lookup;
    counters = (match counters with Some k -> k | None -> Counters.create ());
    pool;
  }

let conditions t = t.conditions
let with_conditions t conditions = { t with conditions }
let pruned t = t.pruned

let search ?start ?bound t cost =
  match t.strategy with
  | Hill_climb -> Hill_climb.plan ~counters:t.counters ?start t.conditions cost
  | Brute_force -> begin
      match (t.pruned, bound, t.pool) with
      | true, Some bound, _ ->
          Brute_force.search_pruned ~counters:t.counters t.conditions ~bound cost
      | _, _, Some pool -> Brute_force.search_par ~counters:t.counters pool t.conditions cost
      | _, _, None -> Brute_force.search ~counters:t.counters t.conditions cost
    end

let plan ?start ?bound t ~key ~data_gb ~cost =
  match t.cache with
  | None -> search ?start ?bound t cost
  | Some cache -> begin
      match Plan_cache.find ~counters:t.counters cache ~key ~data_gb t.lookup with
      | Some cached ->
          let cached = Raqo_cluster.Conditions.clamp t.conditions cached in
          Counters.record_evaluation t.counters;
          (cached, cost cached)
      | None ->
          let resources, best = search ?start ?bound t cost in
          Plan_cache.insert cache ~key ~data_gb resources;
          (resources, best)
    end

let counters t = t.counters
let reset_counters t = Counters.reset t.counters
let cache t = t.cache
let lookup t = t.lookup

let clear_cache t =
  match t.cache with
  | Some cache -> Plan_cache.clear cache
  | None -> ()

let cache_size t =
  match t.cache with
  | Some cache -> Plan_cache.size cache
  | None -> 0
