(** The resource planner cost-based RAQO invokes per costed sub-plan: a
    search strategy (brute force or hill climbing) behind an optional
    resource-plan cache, with instrumentation. *)

type strategy = Brute_force | Hill_climb

type t

(** [create ?strategy ?pruned ?cache ?lookup ?counters ?pool conditions]
    builds a planner. Defaults: hill climbing, no pruning, caching enabled,
    exact-match lookup, private counters, no pool.

    [pruned] switches the brute-force strategy to branch-and-bound
    ({!Brute_force.search_pruned}) whenever the caller supplies a cost lower
    bound to {!plan}; calls without a bound (and hill climbing) are
    unaffected, so results are always identical to the exhaustive scan —
    only the evaluation counts drop. [counters] shares an existing (atomic)
    instrument — parallel randomized restarts give each restart its own
    planner but one shared counter set so the aggregate figures survive.
    [pool] parallelizes the unpruned brute-force grid search across its
    domains (pruned search is sequential — its incumbent is inherently
    serial — and hill climbing ignores the pool too). The cache, when
    enabled, is private to this planner and must only be touched from one
    domain at a time — cache sharing across concurrent queries stays opt-in
    and single-domain.

    [kernel] (default [true]) lets {!plan} use compiled cost kernels when
    the caller supplies one: grid sweeps and hill-climb probes run through
    {!Raqo_cost.Kernel} — bit-identical costs, same plans, no per-point
    feature vectors — reusing one per-planner scratch buffer across calls so
    steady-state planning does zero grid allocation. [~kernel:false] forces
    the scalar path everywhere (the CLI's [--no-kernel] escape hatch).
    Kernelised grid searches are single-domain: they ignore [pool], which
    only shapes the scalar fallback.

    [cache_capacity] bounds the plan cache with LRU eviction (see
    {!Plan_cache.create}); omitted means unbounded, the paper's behaviour.

    [shared_cache] replaces the private per-planner cache with a handle to a
    striped, thread-safe cross-query cache ({!Shared_plan_cache}) owned by a
    resident server: {!fork} then shares the handle instead of starting
    empty, and [cache]/[cache_capacity] are ignored. [registry] directs the
    planner's counter mirrors at a per-server metrics registry when
    [counters] is not supplied (see {!Counters.create}). *)
val create :
  ?strategy:strategy ->
  ?pruned:bool ->
  ?cache:bool ->
  ?lookup:Plan_cache.lookup ->
  ?counters:Counters.t ->
  ?pool:Raqo_par.Pool.t ->
  ?kernel:bool ->
  ?cache_capacity:int ->
  ?shared_cache:Shared_plan_cache.t ->
  ?registry:Raqo_obs.Metrics.registry ->
  Raqo_cluster.Conditions.t ->
  t

(** [pruned t] reports whether branch-and-bound pruning is enabled. *)
val pruned : t -> bool

(** [kernel_enabled t] reports whether this planner accepts compiled kernels
    from {!plan} (the [?kernel] creation flag). *)
val kernel_enabled : t -> bool

(** [scratch t] is the planner's private kernel scratch buffer — exposed so
    tests and benches can audit its allocation/reuse counters
    ({!Raqo_cost.Kernel.allocs}, {!Raqo_cost.Kernel.reuses}) and prove the
    steady state sweeps without allocating. *)
val scratch : t -> Raqo_cost.Kernel.scratch

val conditions : t -> Raqo_cluster.Conditions.t

(** [with_conditions t conditions] shares the cache and counters but plans
    against new cluster conditions (adaptive re-optimization). *)
val with_conditions : t -> Raqo_cluster.Conditions.t -> t

(** [fork t] is a private copy for another domain or restart: identical
    configuration (strategy, pruning, lookup, kernel setting, conditions)
    and shared atomic counters, but a fresh, empty plan cache (same backend
    and capacity bound) and fresh kernel scratch — the two pieces of
    single-writer state. A planner created over a [shared_cache] keeps the
    same (synchronized) handle across forks — cross-query, cross-domain
    reuse is what the shared cache is for. With the default exact-match
    cache lookup a fork returns the same (configuration, cost) answers as
    the original, so parallel planners hand one fork to each worker. *)
val fork : t -> t

(** [plan t ~key ~data_gb ~cost] returns the chosen configuration and its
    cost. [key] identifies the (cost model, sub-plan kind) cache index, e.g.
    ["hive/SMJ/join"]; [data_gb] is the data characteristic. On a cache hit
    the cached configuration is returned with one cost evaluation; on a miss
    the search runs and its result is inserted.

    [start] seeds the hill climb (default: the cluster's minimum
    configuration). Operators with feasibility cliffs — BHJ is infeasible
    below a memory threshold — should pass their smallest feasible
    configuration, or the climb never escapes the infinite-cost plateau.

    [bound ~lo ~hi] is an optional lower bound on [cost] over resource
    boxes (see {!Raqo_cost.Op_cost.region_lower_bound}); it is consulted
    only when this planner was created with [~pruned:true] under the
    brute-force strategy, and ignored otherwise.

    [kernel] is a compiled form of [cost] (same model, same impl, same
    [data_gb] — see {!Raqo_cost.Kernel.make}); when given and the planner
    was created with [~kernel:true], searches and cache-hit re-costing run
    through it instead of [cost]. The kernel is bit-identical to the scalar
    model, so passing it never changes the chosen configuration, its cost,
    or the evaluation counters — only the time and allocation spent. Callers
    with extended-space models simply have no kernel to pass ([Kernel.make]
    returns [None]) and keep the scalar path. *)
val plan :
  ?start:Raqo_cluster.Resources.t ->
  ?bound:(lo:Raqo_cluster.Resources.t -> hi:Raqo_cluster.Resources.t -> float) ->
  ?kernel:Raqo_cost.Kernel.t ->
  t ->
  key:string ->
  data_gb:float ->
  cost:(Raqo_cluster.Resources.t -> float) ->
  Raqo_cluster.Resources.t * float

val counters : t -> Counters.t

(** [reset_counters t] zeroes instrumentation (the cache is preserved). *)
val reset_counters : t -> unit

(** [clear_cache t] empties the private resource-plan cache (between
    queries, as the evaluation does unless measuring across-query caching).
    A shared handle is left untouched: the cross-query cache belongs to its
    server, not to any one planner. *)
val clear_cache : t -> unit

val cache_size : t -> int

(** [cache t] exposes the underlying private resource-plan cache ([None]
    when caching is disabled or the planner uses a shared handle) so the
    verification layer can audit lookup answers against the stored entries.
    Read-only use only. *)
val cache : t -> Plan_cache.t option

(** [shared_cache t] is the striped cross-query cache handle, when this
    planner was created with one. *)
val shared_cache : t -> Shared_plan_cache.t option

(** [lookup t] is the lookup policy this planner queries its cache with. *)
val lookup : t -> Plan_cache.lookup
