(* A striped, thread-safe wrapper over Plan_cache for cross-query reuse in a
   resident optimizer: Plan_cache itself is unsynchronized single-writer
   state, so concurrent planners must not share one. Striping by cache key
   keeps every entry of a key (the unit nearest-neighbor and weighted-average
   lookups scan) inside one shard, so a shard lock is enough for any lookup
   policy; different keys spread over shards and proceed in parallel.

   The LRU bound is enforced per shard by the wrapped Plan_cache's own
   capacity: a total [capacity] is split evenly, and a hot shard evicts
   independently of a cold one. Hit/miss/eviction/insert counts live in
   always-on sharded cells (exact once concurrent sections join) and mirror
   into a metrics registry when observability is enabled, under dedicated
   [raqo_shared_plan_cache_*] names so per-planner Counters and the shared
   structure stay separately attributable. *)

module Resources = Raqo_cluster.Resources
module M = Raqo_obs.Metrics

type shard = { mutex : Mutex.t; cache : Plan_cache.t }

type t = {
  shards : shard array;
  per_shard_capacity : int option;
  backend : Ordered_index.backend;
  hits : M.Counter.t;
  misses : M.Counter.t;
  evictions : M.Counter.t;
  inserts : M.Counter.t;
  net_entries : M.Counter.t;
  g_hits : M.Counter.t;
  g_misses : M.Counter.t;
  g_evictions : M.Counter.t;
  g_inserts : M.Counter.t;
  g_entries : M.Gauge.t;
}

let create ?(backend = Ordered_index.Sorted_array) ?(shards = 8) ?capacity
    ?(registry = M.default) () =
  if shards < 1 then invalid_arg "Shared_plan_cache.create: shards must be >= 1";
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Shared_plan_cache.create: capacity must be >= 1"
  | Some _ | None -> ());
  let per_shard_capacity =
    Option.map (fun c -> max 1 ((c + shards - 1) / shards)) capacity
  in
  {
    shards =
      Array.init shards (fun _ ->
          {
            mutex = Mutex.create ();
            cache = Plan_cache.create ~backend ?capacity:per_shard_capacity ();
          });
    per_shard_capacity;
    backend;
    hits = M.Counter.create ();
    misses = M.Counter.create ();
    evictions = M.Counter.create ();
    inserts = M.Counter.create ();
    net_entries = M.Counter.create ();
    g_hits = M.counter_in registry "raqo_shared_plan_cache_hits_total";
    g_misses = M.counter_in registry "raqo_shared_plan_cache_misses_total";
    g_evictions = M.counter_in registry "raqo_shared_plan_cache_evictions_total";
    g_inserts = M.counter_in registry "raqo_shared_plan_cache_inserts_total";
    g_entries = M.gauge_in registry "raqo_shared_plan_cache_entries";
  }

let shard_count t = Array.length t.shards
let per_shard_capacity t = t.per_shard_capacity
let backend t = t.backend

(* Route by the key string only: all data characteristics of one key must
   land in the same shard for range lookups to see them. *)
let shard_of t ~key = Hashtbl.hash key mod Array.length t.shards

let locked shard f =
  Mutex.lock shard.mutex;
  match f shard.cache with
  | v ->
      Mutex.unlock shard.mutex;
      v
  | exception e ->
      Mutex.unlock shard.mutex;
      raise e

let find t ~key ~data_gb lookup =
  let result = locked t.shards.(shard_of t ~key) (fun c -> Plan_cache.find c ~key ~data_gb lookup) in
  (match result with
  | Some _ ->
      M.Counter.inc t.hits;
      if Raqo_obs.Obs.enabled () then M.Counter.inc t.g_hits
  | None ->
      M.Counter.inc t.misses;
      if Raqo_obs.Obs.enabled () then M.Counter.inc t.g_misses);
  result

let insert t ~key ~data_gb resources =
  let evicted =
    locked t.shards.(shard_of t ~key) (fun c ->
        (* An exact probe under the same lock tells overwrite from growth, so
           the size delta below attributes evictions correctly (an overwrite
           neither grows the shard nor evicts). *)
        let existed = Plan_cache.find c ~key ~data_gb Plan_cache.Exact <> None in
        let before = Plan_cache.size c in
        Plan_cache.insert c ~key ~data_gb resources;
        let after = Plan_cache.size c in
        let grown = if existed then 0 else 1 in
        M.Counter.add t.net_entries (after - before);
        max 0 (before + grown - after))
  in
  M.Counter.inc t.inserts;
  if evicted > 0 then M.Counter.add t.evictions evicted;
  if Raqo_obs.Obs.enabled () then begin
    M.Counter.inc t.g_inserts;
    if evicted > 0 then M.Counter.add t.g_evictions evicted;
    M.Gauge.set t.g_entries (float_of_int (M.Counter.value t.net_entries))
  end

let size t =
  Array.fold_left (fun acc shard -> acc + locked shard Plan_cache.size) 0 t.shards

let shard_sizes t = Array.map (fun shard -> locked shard Plan_cache.size) t.shards

let clear t =
  Array.iter (fun shard -> locked shard Plan_cache.clear) t.shards;
  M.Counter.reset t.net_entries;
  if Raqo_obs.Obs.enabled () then M.Gauge.set t.g_entries 0.0

let hits t = M.Counter.value t.hits
let misses t = M.Counter.value t.misses
let evictions t = M.Counter.value t.evictions
let inserts t = M.Counter.value t.inserts

let keys t =
  Array.to_list t.shards
  |> List.concat_map (fun shard -> locked shard Plan_cache.keys)
  |> List.sort_uniq compare

let entries t ~key = locked t.shards.(shard_of t ~key) (fun c -> Plan_cache.entries c ~key)
