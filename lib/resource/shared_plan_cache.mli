(** A sharded, thread-safe, cross-query resource-plan cache.

    {!Plan_cache} is deliberately unsynchronized (single-writer, one per
    planner); a resident optimizer serving concurrent requests instead
    shares one of these: a striped wrapper that routes every entry of a
    cache key to one shard (so nearest-neighbor and weighted-average range
    lookups stay correct under a single shard lock) and lets distinct keys
    proceed in parallel.

    The LRU bound is {e per shard}: a total [capacity] is split evenly
    across shards and enforced by each shard's own {!Plan_cache} bound, so a
    hot shard evicts independently of a cold one and the whole structure
    never holds more than [shards * per_shard_capacity] entries.

    Hit/miss/eviction/insert counts are always recorded in lock-free sharded
    cells (exact once concurrent sections have joined); when
    {!Raqo_obs.Obs.enabled} is on they also mirror into the metrics registry
    the cache was created against, under
    [raqo_shared_plan_cache_{hits,misses,evictions,inserts}_total] and the
    [raqo_shared_plan_cache_entries] gauge — distinct names from the
    per-planner {!Counters} mirrors, so `raqo metrics --prometheus` shows
    both the per-request and the shared-structure view. *)

type t

(** [create ()] builds an empty cache with 8 shards, the paper's sorted-array
    backend and no capacity bound. [capacity] is the {e total} entry bound,
    split evenly into per-shard LRU bounds of [ceil (capacity / shards)].
    [registry] receives the observability mirrors (default: the process-wide
    registry).
    @raise Invalid_argument when [shards < 1] or [capacity < 1]. *)
val create :
  ?backend:Ordered_index.backend ->
  ?shards:int ->
  ?capacity:int ->
  ?registry:Raqo_obs.Metrics.registry ->
  unit ->
  t

val shard_count : t -> int

(** [per_shard_capacity t] is the LRU bound each shard enforces, if any. *)
val per_shard_capacity : t -> int option

val backend : t -> Ordered_index.backend

(** [shard_of t ~key] is the shard index [key] routes to (all data
    characteristics of one key share a shard; test hook). *)
val shard_of : t -> key:string -> int

(** [find t ~key ~data_gb lookup] is {!Plan_cache.find} under the owning
    shard's lock. Records a hit or miss in [t]'s own counters (callers that
    also keep per-planner {!Counters} record there themselves). *)
val find : t -> key:string -> data_gb:float -> Plan_cache.lookup -> Raqo_cluster.Resources.t option

(** [insert t ~key ~data_gb resources] is {!Plan_cache.insert} under the
    owning shard's lock; evictions forced by the per-shard bound are counted
    against [t]. *)
val insert : t -> key:string -> data_gb:float -> Raqo_cluster.Resources.t -> unit

(** [size t] is the total entry count across shards (locks each shard in
    turn: a consistent value only once concurrent writers have joined). *)
val size : t -> int

(** [shard_sizes t] is the per-shard entry count, index-aligned with
    {!shard_of} — the hook the LRU-bound tests check against
    {!per_shard_capacity}. *)
val shard_sizes : t -> int array

val clear : t -> unit

(** {2 Counters} — cumulative since creation, never reset by {!clear}. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
val inserts : t -> int

(** {2 Verification hooks} *)

val keys : t -> string list
val entries : t -> key:string -> (float * Raqo_cluster.Resources.t) list
