module Schema = Raqo_catalog.Schema
module Relation = Raqo_catalog.Relation
module Join_graph = Raqo_catalog.Join_graph
module Metrics = Raqo_obs.Metrics
module Obs = Raqo_obs.Obs

type hints = { filters : (string * float) list; referenced : string list option }

let no_hints = { filters = []; referenced = None }
let projected_row_bytes = 16.0

type report = {
  pushdown : int;
  constant : int;
  fk : int;
  project : int;
  removed : int;
  changed : bool;
  absorbed : (string * string) list;
}

type t = {
  schema : Schema.t;
  names : string array;
  index : (string, int) Hashtbl.t;
  base_rows : float array;
  base_widths : float array;
  e_left : int array;
  e_right : int array;
  e_sel : float array;
  (* Per-query scratch, reset by [apply]. All flat arrays so the no-op
     decision path allocates nothing. *)
  present : bool array;
  referenced : bool array;
  removed : bool array;
  dirty : bool array;
  q_rows : float array;
  q_widths : float array;
  absorbed_into : int array;
  stack : int array;
  visited : bool array;
  mutable live : int;
  (* Single edge-scan outputs (degree / selectivity product / lowest live
     neighbour) live in fields instead of a returned tuple. *)
  mutable sc_deg : int;
  mutable sc_prod : float;
  mutable sc_nb : int;
  (* Per-apply report fields. *)
  mutable r_pushdown : int;
  mutable r_constant : int;
  mutable r_fk : int;
  mutable r_project : int;
  mutable out_changed : bool;
  mutable out_schema : Schema.t;
  mutable out_relations : string list;
  c_applies : Metrics.Counter.t;
  c_noops : Metrics.Counter.t;
  c_pushdown : Metrics.Counter.t;
  c_constant : Metrics.Counter.t;
  c_fk : Metrics.Counter.t;
  c_project : Metrics.Counter.t;
  c_removed : Metrics.Counter.t;
}

let create ?(registry = Metrics.default) schema =
  let relations = Array.of_list (Schema.relations schema) in
  let n = Array.length relations in
  let names = Array.map (fun (r : Relation.t) -> r.name) relations in
  let index = Hashtbl.create (2 * max 1 n) in
  Array.iteri (fun i name -> Hashtbl.replace index name i) names;
  let edges = Array.of_list (Join_graph.edges (Schema.graph schema)) in
  let m = Array.length edges in
  let counter name = Metrics.counter_in registry name in
  {
    schema;
    names;
    index;
    base_rows = Array.map (fun (r : Relation.t) -> r.rows) relations;
    base_widths = Array.map (fun (r : Relation.t) -> r.row_bytes) relations;
    e_left = Array.init m (fun k -> Hashtbl.find index edges.(k).Join_graph.left);
    e_right = Array.init m (fun k -> Hashtbl.find index edges.(k).Join_graph.right);
    e_sel = Array.init m (fun k -> edges.(k).Join_graph.selectivity);
    present = Array.make (max 1 n) false;
    referenced = Array.make (max 1 n) false;
    removed = Array.make (max 1 n) false;
    dirty = Array.make (max 1 n) false;
    q_rows = Array.make (max 1 n) 0.0;
    q_widths = Array.make (max 1 n) 0.0;
    absorbed_into = Array.make (max 1 n) (-1);
    stack = Array.make (max 1 n) 0;
    visited = Array.make (max 1 n) false;
    live = 0;
    sc_deg = 0;
    sc_prod = 1.0;
    sc_nb = -1;
    r_pushdown = 0;
    r_constant = 0;
    r_fk = 0;
    r_project = 0;
    out_changed = false;
    out_schema = schema;
    out_relations = [];
    c_applies = counter "raqo_rewrite_applies_total";
    c_noops = counter "raqo_rewrite_noops_total";
    c_pushdown = counter "raqo_rewrite_pushdown_fired_total";
    c_constant = counter "raqo_rewrite_constant_fired_total";
    c_fk = counter "raqo_rewrite_fk_fired_total";
    c_project = counter "raqo_rewrite_project_fired_total";
    c_removed = counter "raqo_rewrite_relations_removed_total";
  }

let schema t = t.schema
let schema_out t = t.out_schema
let relations_out t = t.out_relations
let alive t i = t.present.(i) && not t.removed.(i)

(* Admit the query: every name known, no duplicates (a duplicate FROM entry
   is the resolver's self-join shape — rewriting it is not ours to do). *)
let rec admit t = function
  | [] -> true
  | name :: rest ->
      Hashtbl.mem t.index name
      &&
      let i = Hashtbl.find t.index name in
      (not t.present.(i))
      &&
      (t.present.(i) <- true;
       t.q_rows.(i) <- t.base_rows.(i);
       t.q_widths.(i) <- t.base_widths.(i);
       t.live <- t.live + 1;
       admit t rest)

let rec mark_referenced t = function
  | [] -> ()
  | name :: rest ->
      (if Hashtbl.mem t.index name then
         let i = Hashtbl.find t.index name in
         if t.present.(i) then t.referenced.(i) <- true);
      mark_referenced t rest

(* Exactly the resolver's scan-scaling fold, so a filter-only rewrite is
   bit-identical to planning the resolver-scaled schema directly. *)
let rec pushdown t = function
  | [] -> ()
  | (name, sel) :: rest ->
      (if sel < 1.0 && Hashtbl.mem t.index name then
         let i = Hashtbl.find t.index name in
         if t.present.(i) then begin
           t.q_rows.(i) <- t.q_rows.(i) *. Float.max (1.0 /. t.q_rows.(i)) sel;
           t.dirty.(i) <- true;
           t.r_pushdown <- t.r_pushdown + 1
         end);
      pushdown t rest

let rec first_unreferenced t i n =
  if i >= n then -1
  else if alive t i && not t.referenced.(i) then i
  else first_unreferenced t (i + 1) n

let rec first_live_except t skip i n =
  if i >= n then -1
  else if i <> skip && alive t i then i
  else first_live_except t skip (i + 1) n

(* Degree, selectivity product and lowest live neighbour of [i] over the
   in-query live edges, left in sc_deg / sc_prod / sc_nb. *)
let scan_edges_at t i =
  t.sc_deg <- 0;
  t.sc_prod <- 1.0;
  t.sc_nb <- -1;
  for k = 0 to Array.length t.e_sel - 1 do
    let a = t.e_left.(k) and b = t.e_right.(k) in
    let other = if a = i then b else if b = i then a else -1 in
    if other >= 0 && alive t other then begin
      t.sc_deg <- t.sc_deg + 1;
      t.sc_prod <- t.sc_prod *. t.e_sel.(k);
      if t.sc_nb < 0 || other < t.sc_nb then t.sc_nb <- other
    end
  done

(* BFS over live relations, optionally pretending [skip] is gone. Returns
   true when every live relation (minus [skip]) is reachable. *)
let connected_without t ~skip =
  let n = Array.length t.names in
  let target = if skip >= 0 then t.live - 1 else t.live in
  if target <= 1 then true
  else begin
    Array.fill t.visited 0 n false;
    let start = first_live_except t skip 0 n in
    t.visited.(start) <- true;
    t.stack.(0) <- start;
    t.sc_deg <- 1 (* reuse as stack pointer *);
    t.sc_nb <- 1 (* reuse as visited count *);
    while t.sc_deg > 0 do
      t.sc_deg <- t.sc_deg - 1;
      let u = t.stack.(t.sc_deg) in
      for k = 0 to Array.length t.e_sel - 1 do
        let a = t.e_left.(k) and b = t.e_right.(k) in
        let v = if a = u then b else if b = u then a else -1 in
        if v >= 0 && v <> skip && alive t v && not t.visited.(v) then begin
          t.visited.(v) <- true;
          t.stack.(t.sc_deg) <- v;
          t.sc_deg <- t.sc_deg + 1;
          t.sc_nb <- t.sc_nb + 1
        end
      done
    done;
    t.sc_nb = target
  end

let absorb t i target =
  t.q_rows.(target) <- t.q_rows.(target) *. (t.q_rows.(i) *. t.sc_prod);
  (if t.q_rows.(target) <= 0.0 then (* guard float underflow of long folds *)
     t.q_rows.(target) <- 1e-300);
  t.dirty.(target) <- true;
  t.removed.(i) <- true;
  t.absorbed_into.(i) <- target;
  t.live <- t.live - 1

(* One constant-absorption pass in index order; true when anything fired. *)
let rec const_pass t i n fired =
  if i >= n then fired
  else if
    alive t i
    && (not t.referenced.(i))
    && t.q_rows.(i) <= 1.0
    && t.live > 2
    && connected_without t ~skip:i
  then begin
    scan_edges_at t i;
    absorb t i t.sc_nb;
    t.r_constant <- t.r_constant + 1;
    const_pass t (i + 1) n true
  end
  else const_pass t (i + 1) n fired

(* One FK-leaf pass: degree-1 unreferenced [i] whose edge can never grow
   the result (rows * sel <= 1). Removing a leaf keeps connectivity. *)
let rec fk_pass t i n fired =
  if i >= n then fired
  else if alive t i && (not t.referenced.(i)) && t.live > 2 then begin
    scan_edges_at t i;
    if t.sc_deg = 1 && t.q_rows.(i) *. t.sc_prod <= 1.0 then begin
      absorb t i t.sc_nb;
      t.r_fk <- t.r_fk + 1;
      fk_pass t (i + 1) n true
    end
    else fk_pass t (i + 1) n fired
  end
  else fk_pass t (i + 1) n fired

let rec saturate t n =
  let fired = const_pass t 0 n false in
  let fired = fk_pass t 0 n fired in
  if fired then saturate t n

let rec project_pass t i n =
  if i < n then begin
    (if alive t i && (not t.referenced.(i)) && t.q_widths.(i) > projected_row_bytes
     then begin
       t.q_widths.(i) <- projected_row_bytes;
       t.dirty.(i) <- true;
       t.r_project <- t.r_project + 1
     end);
    project_pass t (i + 1) n
  end

let rebuild t relations =
  let n = Array.length t.names in
  let schema' = ref t.schema in
  for i = 0 to n - 1 do
    if t.present.(i) && (not t.removed.(i)) && t.dirty.(i) then
      schema' :=
        Schema.with_relation !schema'
          (Relation.make ~name:t.names.(i) ~rows:t.q_rows.(i)
             ~row_bytes:t.q_widths.(i))
  done;
  t.out_schema <- !schema';
  t.out_relations <-
    List.filter (fun name -> not t.removed.(Hashtbl.find t.index name)) relations;
  t.out_changed <- true

let finish_noop t relations =
  t.out_changed <- false;
  t.out_schema <- t.schema;
  t.out_relations <- relations;
  if Obs.enabled () then Metrics.Counter.inc t.c_noops;
  false

let apply t ~(hints : hints) relations =
  let n = Array.length t.names in
  Array.fill t.present 0 n false;
  Array.fill t.referenced 0 n false;
  Array.fill t.removed 0 n false;
  Array.fill t.dirty 0 n false;
  Array.fill t.absorbed_into 0 n (-1);
  t.live <- 0;
  t.r_pushdown <- 0;
  t.r_constant <- 0;
  t.r_fk <- 0;
  t.r_project <- 0;
  if Obs.enabled () then Metrics.Counter.inc t.c_applies;
  if not (admit t relations) then finish_noop t relations
  else if t.live = 0 then finish_noop t relations
  else if not (connected_without t ~skip:(-1)) then finish_noop t relations
  else begin
    (match hints.referenced with
    | None ->
        for i = 0 to n - 1 do
          t.referenced.(i) <- t.present.(i)
        done
    | Some names -> mark_referenced t names);
    (* Fast exit: nothing filtered and nothing unreferenced means no rule
       can fire; this path has touched only preallocated scratch. *)
    if
      (match hints.filters with [] -> true | _ :: _ -> false)
      && first_unreferenced t 0 n < 0
    then finish_noop t relations
    else begin
      pushdown t hints.filters;
      saturate t n;
      project_pass t 0 n;
      let fired = t.r_pushdown + t.r_constant + t.r_fk + t.r_project in
      if fired = 0 then finish_noop t relations
      else begin
        rebuild t relations;
        if Obs.enabled () then begin
          Metrics.Counter.add t.c_pushdown t.r_pushdown;
          Metrics.Counter.add t.c_constant t.r_constant;
          Metrics.Counter.add t.c_fk t.r_fk;
          Metrics.Counter.add t.c_project t.r_project;
          Metrics.Counter.add t.c_removed (t.r_constant + t.r_fk)
        end;
        true
      end
    end
  end

let last t =
  let absorbed = ref [] in
  for i = Array.length t.names - 1 downto 0 do
    let into = t.absorbed_into.(i) in
    if into >= 0 then absorbed := (t.names.(i), t.names.(into)) :: !absorbed
  done;
  {
    pushdown = t.r_pushdown;
    constant = t.r_constant;
    fk = t.r_fk;
    project = t.r_project;
    removed = t.r_constant + t.r_fk;
    changed = t.out_changed;
    absorbed = !absorbed;
  }

let fired r =
  List.filter
    (fun (_, c) -> c > 0)
    [
      ("pushdown", r.pushdown);
      ("constant", r.constant);
      ("fk", r.fk);
      ("project", r.project);
    ]
