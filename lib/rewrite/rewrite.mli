(** Logical rewrite memo: rule-driven simplification of a join query before
    physical enumeration.

    The engine is a group-based memo over one schema: every query relation
    starts as its own group, and absorption rules merge a redundant
    relation's group into a surviving neighbour's (a union-find recorded in
    the per-apply report as [absorbed]). The surviving groups — with their
    folded cardinalities and narrowed widths — are what the physical
    planners enumerate, so every rule that fires shrinks the DP lattice the
    PR-6 shared memo has to claim.

    Rule catalogue, applied in a deterministic order:

    + {b pushdown} — per-relation filter selectivities (from the SQL
      WHERE clause) are folded into scan cardinalities with exactly the
      resolver's formula [rows *. Float.max (1.0 /. rows) sel], so a
      rewritten filter-only query plans bit-identically to the historical
      resolver-scaled path. Runs once, in hint order.
    + {b constant absorption} — an unreferenced relation whose (filtered)
      cardinality is <= 1 row is removed and its row count times the
      selectivities of its in-query edges is folded into its lowest-index
      surviving neighbour; only fires when removal keeps the survivors
      connected. Saturated.
    + {b FK-leaf absorption} — an unreferenced degree-1 relation [d] with
      [rows(d) *. sel <= 1.0] (a key–foreign-key edge: joining [d] can
      never grow the result) is absorbed into its sole neighbour, which is
      scaled by [rows(d) *. sel]. Saturated interleaved with constant
      absorption, so each absorption can enable the next.
    + {b projection narrowing} — unreferenced survivors (kept only for
      their join edges) have [row_bytes] clamped to a 16-byte key stub,
      shrinking every intermediate size fed to [Op_cost]. Runs last, once.

    Equivalence: rules only ever {e shrink} per-relation rows/widths or
    remove a relation that appears as a singleton operand in every valid
    join tree, folding its cardinality contribution into a neighbour. Since
    [Schema.join_rows] and the cost model are monotone in those stats,
    contracting the removed leaves out of any unrewritten optimal tree
    yields a valid tree over the rewritten instance with pointwise-smaller
    intermediates — so the rewritten optimum is <= the unrewritten optimum
    as plain floats, for every planner. Gates are exact ([<= 1.0], no
    tolerance) so the argument never depends on rounding.

    Queries that admit no rewrite (no hints, duplicate or unknown
    relations, disconnected input) take a fast path that performs {e zero}
    allocations and returns the caller's schema and relation list
    physically unchanged. *)

type hints = {
  filters : (string * float) list;
      (** Per-relation predicate selectivities in (0, 1]; entries >= 1.0 or
          naming relations outside the query are ignored. *)
  referenced : string list option;
      (** Relations whose columns the query's output needs. [None] means
          all of them (conservative: disables removal and narrowing);
          [Some []] is a count-star query; unknown names are ignored. *)
}

(** No filters, everything referenced: [apply] is guaranteed a no-op. *)
val no_hints : hints

type t

(** [create schema] builds a reusable engine for queries over [schema].
    Scratch arrays are preallocated here so [apply] allocates nothing
    until a rule actually fires. Counters ([raqo_rewrite_*]) register in
    [registry] and record only while observability is enabled. *)
val create : ?registry:Raqo_obs.Metrics.registry -> Raqo_catalog.Schema.t -> t

val schema : t -> Raqo_catalog.Schema.t

(** [apply t ~hints relations] rewrites the query [relations]; returns
    [true] when at least one rule fired. The results are read back with
    {!schema_out} / {!relations_out}; when it returns [false] those are the
    arguments, physically unchanged. Relation order is preserved and the
    engine may be reused immediately for the next query. *)
val apply : t -> hints:hints -> string list -> bool

val schema_out : t -> Raqo_catalog.Schema.t
val relations_out : t -> string list

type report = {
  pushdown : int;  (** filters folded into scans *)
  constant : int;  (** constant-bound relations absorbed *)
  fk : int;  (** FK-leaf relations absorbed *)
  project : int;  (** widths narrowed to the key stub *)
  removed : int;  (** relations removed = constant + fk *)
  changed : bool;
  absorbed : (string * string) list;
      (** group merges, as (removed relation, absorbed into) *)
}

(** Report for the most recent [apply]. Allocates; keep off hot paths. *)
val last : t -> report

(** Nonzero per-rule fired counts in canonical order, e.g.
    [[("pushdown", 2); ("fk", 3)]]. *)
val fired : report -> (string * int) list

(** Width, in bytes, of the join-key stub left by projection narrowing. *)
val projected_row_bytes : float
