module Join_tree = Raqo_plan.Join_tree
module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources
module Conditions = Raqo_cluster.Conditions
module Operators = Raqo_execsim.Operators
module Simulate = Raqo_execsim.Simulate
module Op_cost = Raqo_cost.Op_cost
module Remaining = Raqo_adaptive.Remaining

type policy = Wait of float option | Fail | Downscale | Reoptimize | Replan_remaining

type stage_report = {
  index : int;
  impl : Join_impl.t;
  resources : Resources.t;
  start : float;
  duration : float;
  waited : float;
  adapted : bool;
}

type outcome =
  | Completed of {
      finish : float;
      total_wait : float;
      gb_seconds : float;
      stages : stage_report list;
    }
  | Failed of { at_time : float; stage : int; reason : string }

type stage = {
  planned_impl : Join_impl.t;
  planned_resources : Resources.t;
  small_gb : float;
  big_gb : float;
}

let stages_of schema plan =
  List.rev
    (Join_tree.fold_joins
       (fun acc (impl, resources) left right ->
         let small_gb, big_gb = Simulate.join_inputs schema ~left ~right in
         { planned_impl = impl; planned_resources = resources; small_gb; big_gb } :: acc)
       [] plan)

(* Re-pick one stage's operator and resources under current conditions:
   per-operator adaptive RAQO (model-driven hill climb, then a simulator
   feasibility check). *)
let reoptimize_stage model conditions stage =
  let candidates =
    List.filter_map
      (fun impl ->
        let start =
          match impl with
          | Join_impl.Smj -> Some (Conditions.min_config conditions)
          | Join_impl.Bhj ->
              let needed = stage.small_gb /. model.Op_cost.oom_headroom in
              if needed > conditions.Conditions.max_gb then None
              else begin
                let steps =
                  Float.max 0.0
                    (ceil
                       ((needed -. conditions.Conditions.min_gb)
                       /. conditions.Conditions.gb_step))
                in
                Some
                  (Resources.make ~containers:conditions.Conditions.min_containers
                     ~container_gb:
                       (Float.min conditions.Conditions.max_gb
                          (conditions.Conditions.min_gb
                          +. (steps *. conditions.Conditions.gb_step))))
              end
        in
        Option.map
          (fun start ->
            let cost r = Op_cost.predict_exn model impl ~small_gb:stage.small_gb ~resources:r in
            let resources, c = Raqo_resource.Hill_climb.plan ~start conditions cost in
            (impl, resources, c))
          start)
      Join_impl.all
  in
  List.fold_left
    (fun best (impl, resources, c) ->
      match best with
      | Some (_, _, bc) when bc <= c -> best
      | Some _ | None -> if Float.is_finite c then Some (impl, resources, c) else best)
    None candidates

(* Re-plan the entire remaining join graph under the current conditions:
   collapse executed subtrees into measured pseudo-relations
   ({!Raqo_adaptive.Remaining}) and run the joint bushy DP over what is
   left. [None] when nothing remains, only one leaf remains, the remainder
   outgrows the DP, or no feasible joint plan exists — callers fall back to
   the per-stage [Reoptimize] repair. *)
let replan_remaining model conditions schema plan ~executed =
  match Remaining.collapse ~truth:schema ~estimates:schema plan ~executed with
  | None -> None
  | Some rem ->
      let names =
        List.map (fun (l : Remaining.leaf) -> l.Remaining.name) rem.Remaining.leaves
      in
      if List.length names < 2 then None
      else begin
        let opt =
          Raqo.Cost_based.create ~kind:Raqo.Cost_based.Bushy_dp ~model ~conditions
            rem.Remaining.schema
        in
        match Raqo.Cost_based.optimize opt names with
        | Some (plan', _) -> Some (rem.Remaining.schema, plan')
        | None -> None
        | exception _ -> None
      end

let m_stages = Raqo_obs.Metrics.counter "raqo_executor_stages_total"
let m_adaptations = Raqo_obs.Metrics.counter "raqo_executor_adaptations_total"
let m_failures = Raqo_obs.Metrics.counter "raqo_executor_failures_total"
let m_replans = Raqo_obs.Metrics.counter "raqo_executor_replans_total"

let run ?(policy = Wait None) ?(submit = 0.0) engine ~model schema ~capacity plan =
  if not (Join_tree.valid plan) then invalid_arg "Executor.run: invalid plan";
  let span = Raqo_obs.Trace.start "executor/run" in
  let duration impl ~resources stage =
    Operators.join_time engine impl ~small_gb:stage.small_gb ~big_gb:stage.big_gb ~resources
  in
  (* [cur_schema]/[cur_plan] track the plan actually being executed — under
     [Replan_remaining] they are replaced mid-flight by the collapsed
     remainder and its re-planned tree, with [executed] counting the stages
     of [cur_plan] already run. [retried] breaks the loop where a freshly
     re-planned stage is still blocked: the second attempt at the same index
     repairs per-stage instead of re-planning again. *)
  let rec execute cur_schema cur_plan executed retried index now total_wait gb_seconds
      reports = function
    | [] ->
        Completed
          { finish = now; total_wait; gb_seconds; stages = List.rev reports }
    | stage :: rest ->
        let conditions = Capacity.at capacity now in
        let planned_runs =
          Capacity.fits conditions stage.planned_resources
          && duration stage.planned_impl ~resources:stage.planned_resources stage <> None
        in
        let launch ~impl ~resources ~waited ~adapted =
          match duration impl ~resources stage with
          | Some seconds ->
              let report =
                {
                  index;
                  impl;
                  resources;
                  start = now;
                  duration = seconds;
                  waited;
                  adapted;
                }
              in
              execute cur_schema cur_plan (executed + 1) false (index + 1) (now +. seconds)
                (total_wait +. waited)
                (gb_seconds +. Resources.gb_seconds resources seconds)
                (report :: reports) rest
          | None ->
              Failed
                {
                  at_time = now;
                  stage = index;
                  reason =
                    Printf.sprintf "%s out of memory at %s"
                      (Join_impl.to_string impl)
                      (Resources.to_string resources);
                }
        in
        let reoptimize_here () =
          match reoptimize_stage model conditions stage with
          | Some (impl, resources, _) ->
              (* The model may still disagree with the simulator near the
                 OOM cliff; fall back to the simulator's choice. *)
              let impl, resources =
                if duration impl ~resources stage <> None then (impl, resources)
                else begin
                  match
                    Operators.best_impl engine ~small_gb:stage.small_gb
                      ~big_gb:stage.big_gb
                      ~resources:(Conditions.clamp conditions resources)
                  with
                  | Some (i, _) -> (i, Conditions.clamp conditions resources)
                  | None -> (impl, resources)
                end
              in
              launch ~impl ~resources ~waited:0.0 ~adapted:true
          | None ->
              Failed
                {
                  at_time = now;
                  stage = index;
                  reason = "no feasible operator under current conditions";
                }
        in
        if planned_runs then
          (* [retried] here means this stage was just installed by a
             remaining-graph re-plan — report it as adapted. *)
          launch ~impl:stage.planned_impl ~resources:stage.planned_resources ~waited:0.0
            ~adapted:retried
        else begin
          match policy with
          | Fail ->
              Failed
                { at_time = now; stage = index; reason = "requested resources unavailable" }
          | Wait timeout -> begin
              (* Walk capacity change points until the request fits. *)
              let deadline = Option.map (fun t -> now +. t) timeout in
              let rec seek t =
                match Capacity.next_change capacity ~after:t with
                | None -> None
                | Some t' ->
                    if Capacity.fits (Capacity.at capacity t') stage.planned_resources then
                      Some t'
                    else seek t'
              in
              match seek now with
              | Some t' when (match deadline with Some d -> t' <= d | None -> true) -> begin
                  let waited = t' -. now in
                  match duration stage.planned_impl ~resources:stage.planned_resources stage with
                  | Some seconds ->
                      let report =
                        {
                          index;
                          impl = stage.planned_impl;
                          resources = stage.planned_resources;
                          start = t';
                          duration = seconds;
                          waited;
                          adapted = false;
                        }
                      in
                      execute cur_schema cur_plan (executed + 1) false (index + 1)
                        (t' +. seconds) (total_wait +. waited)
                        (gb_seconds +. Resources.gb_seconds stage.planned_resources seconds)
                        (report :: reports) rest
                  | None ->
                      Failed
                        {
                          at_time = t';
                          stage = index;
                          reason = "operator infeasible at planned resources";
                        }
                end
              | Some _ | None ->
                  Failed
                    {
                      at_time = now;
                      stage = index;
                      reason =
                        (match timeout with
                        | Some t -> Printf.sprintf "capacity did not return within %.0f s" t
                        | None -> "capacity never returns to the requested level");
                    }
            end
          | Downscale ->
              let clamped = Conditions.clamp conditions stage.planned_resources in
              let impl =
                if duration stage.planned_impl ~resources:clamped stage <> None then
                  stage.planned_impl
                else begin
                  match
                    Operators.best_impl engine ~small_gb:stage.small_gb ~big_gb:stage.big_gb
                      ~resources:clamped
                  with
                  | Some (impl, _) -> impl
                  | None -> stage.planned_impl (* unreachable: SMJ always runs *)
                end
              in
              launch ~impl ~resources:clamped ~waited:0.0 ~adapted:true
          | Reoptimize -> reoptimize_here ()
          | Replan_remaining when retried -> reoptimize_here ()
          | Replan_remaining -> begin
              if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_replans;
              match
                Raqo_obs.Trace.with_ ~name:"executor/replan" (fun () ->
                    replan_remaining model conditions cur_schema cur_plan ~executed)
              with
              | Some (schema', plan') ->
                  (* Restart on the re-planned remainder; the global stage
                     index keeps counting, and a still-blocked first stage
                     falls through to the per-stage repair ([retried]). *)
                  execute schema' plan' 0 true index now total_wait gb_seconds reports
                    (stages_of schema' plan')
              | None -> reoptimize_here ()
            end
        end
  in
  let outcome = execute schema plan 0 false 1 submit 0.0 0.0 [] (stages_of schema plan) in
  (if Raqo_obs.Obs.enabled () then
     match outcome with
     | Completed { stages; _ } ->
         Raqo_obs.Metrics.Counter.add m_stages (List.length stages);
         Raqo_obs.Metrics.Counter.add m_adaptations
           (List.length (List.filter (fun (s : stage_report) -> s.adapted) stages))
     | Failed _ -> Raqo_obs.Metrics.Counter.inc m_failures);
  Raqo_obs.Trace.finish span;
  outcome
