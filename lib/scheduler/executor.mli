(** Executing a joint query/resource plan against a cluster whose capacity
    changes over time — the paper's "interaction with the DAG scheduler"
    question: when the exact requested resources are not available, "should
    it delay the job, should it fail it, or should it consider multiple
    query/resource plan alternatives and pick the most appropriate at
    runtime?"

    The executor walks the plan's join stages in execution (bottom-up)
    order; each stage requests its planned resources from the capacity
    trace. When a request does not fit, the chosen policy decides. *)

(** What to do when a stage's planned resources are unavailable. *)
type policy =
  | Wait of float option
      (** delay until capacity returns; optional timeout (seconds) after
          which the job fails *)
  | Fail  (** fail the job immediately *)
  | Downscale
      (** clamp the stage's resources into the available conditions, and if
          the planned operator cannot run there (BHJ OOM), fall back to the
          simulator-best feasible operator *)
  | Reoptimize
      (** re-consult the optimizer: re-pick every remaining stage's operator
          and resources under the current conditions (adaptive RAQO) *)
  | Replan_remaining
      (** re-plan the *entire remaining join graph* under the current
          conditions: executed subtrees collapse into measured
          pseudo-relations ({!Raqo_adaptive.Remaining}) and the joint bushy
          DP re-optimizes what is left — join order, operators, and
          resources together. Falls back to [Reoptimize]'s per-stage repair
          when the remainder cannot be re-planned (a single leaf, a graph
          beyond the DP's cap, or no feasible joint plan) or when the
          freshly re-planned stage is itself still blocked. *)

type stage_report = {
  index : int;  (** execution order, 1-based *)
  impl : Raqo_plan.Join_impl.t;  (** operator actually run *)
  resources : Raqo_cluster.Resources.t;  (** resources actually granted *)
  start : float;
  duration : float;
  waited : float;  (** seconds spent queued before this stage *)
  adapted : bool;  (** operator or resources changed from the plan *)
}

type outcome =
  | Completed of {
      finish : float;
      total_wait : float;
      gb_seconds : float;
      stages : stage_report list;
    }
  | Failed of { at_time : float; stage : int; reason : string }

(** [run ?policy ?submit engine ~model schema ~capacity plan] executes
    [plan]'s stages sequentially from [submit] time (default 0) under the
    capacity trace. [model] supplies the cost model for [Reoptimize]
    (ignored by the other policies). Stage durations come from the
    execution simulator. *)
val run :
  ?policy:policy ->
  ?submit:float ->
  Raqo_execsim.Engine.t ->
  model:Raqo_cost.Op_cost.t ->
  Raqo_catalog.Schema.t ->
  capacity:Capacity.t ->
  Raqo_plan.Join_tree.joint ->
  outcome
