module Schema = Raqo_catalog.Schema
module Relation = Raqo_catalog.Relation
module Join_tree = Raqo_plan.Join_tree
module Simulate = Raqo_execsim.Simulate
module Rng = Raqo_util.Rng

type submission = { arrival : float; relations : string list; data_scale : float }

type query_outcome = {
  submission : submission;
  started : float;
  finished : float;
  plan_ms : float;
  gb_seconds : float;
  failed : bool;
}

type summary = {
  completed : int;
  failed : int;
  makespan : float;
  mean_latency : float;
  p95_latency : float;
  mean_queue_time : float;
  total_tb_seconds : float;
  total_plan_ms : float;
}

type planner = Schema.t -> string list -> Join_tree.joint option

let generate rng ~n ~arrival_rate schema =
  ignore schema;
  let clock = ref 0.0 in
  List.init n (fun _ ->
      clock := !clock +. Rng.exponential rng ~mean:(1.0 /. arrival_rate);
      let _, relations =
        Rng.pick rng (Array.of_list Raqo_catalog.Tpch.evaluation_queries)
      in
      {
        arrival = !clock;
        relations;
        data_scale = Rng.float_in_range rng ~lo:0.1 ~hi:1.0;
      })

(* Scale the query's largest base relation by the submission's data scale —
   the stand-in for a per-query WHERE clause. *)
let scaled_schema schema submission =
  let largest =
    List.fold_left
      (fun best name ->
        let r = Schema.find schema name in
        match best with
        | Some b when Relation.size_gb b >= Relation.size_gb r -> best
        | Some _ | None -> Some r)
      None submission.relations
  in
  match largest with
  | Some r when submission.data_scale < 1.0 ->
      Schema.with_relation schema (Relation.scale r submission.data_scale)
  | Some _ | None -> schema

type planned = {
  planned_submission : submission;
  plan : Join_tree.joint option;
  planning_ms : float;
}

let m_workload_queries = Raqo_obs.Metrics.counter "raqo_workload_queries_total"

let plan_one ~planner schema submission =
  let span = Raqo_obs.Trace.start "workload/plan" in
  if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_workload_queries;
  let qschema = scaled_schema schema submission in
  let plan, planning_ms =
    Raqo_util.Timer.time_ms (fun () -> planner qschema submission.relations)
  in
  Raqo_obs.Trace.finish span;
  { planned_submission = submission; plan; planning_ms }

let execute engine schema planned =
  let free_at = ref 0.0 in
  let outcomes =
    List.map
      (fun { planned_submission = submission; plan; planning_ms = plan_ms } ->
        let qschema = scaled_schema schema submission in
        match plan with
        | None ->
            {
              submission;
              started = submission.arrival;
              finished = submission.arrival;
              plan_ms;
              gb_seconds = 0.0;
              failed = true;
            }
        | Some plan -> begin
            match
              Raqo_obs.Trace.with_ ~name:"workload/execute" (fun () ->
                  Simulate.run_joint engine qschema plan)
            with
            | Error _ ->
                {
                  submission;
                  started = submission.arrival;
                  finished = submission.arrival;
                  plan_ms;
                  gb_seconds = 0.0;
                  failed = true;
                }
            | Ok r ->
                let started = Float.max submission.arrival !free_at in
                let finished = started +. r.Simulate.seconds in
                free_at := finished;
                {
                  submission;
                  started;
                  finished;
                  plan_ms;
                  gb_seconds = r.Simulate.gb_seconds;
                  failed = false;
                }
          end)
      planned
  in
  let done_ = List.filter (fun (o : query_outcome) -> not o.failed) outcomes in
  let latencies =
    Array.of_list (List.map (fun o -> o.finished -. o.submission.arrival) done_)
  in
  let summary =
    {
      completed = List.length done_;
      failed = List.length outcomes - List.length done_;
      makespan = List.fold_left (fun acc o -> Float.max acc o.finished) 0.0 done_;
      mean_latency =
        (if Array.length latencies = 0 then 0.0 else Raqo_util.Stats.mean latencies);
      p95_latency =
        (if Array.length latencies = 0 then 0.0
         else Raqo_util.Stats.percentile latencies 95.0);
      mean_queue_time =
        (if done_ = [] then 0.0
         else
           Raqo_util.Stats.mean
             (Array.of_list (List.map (fun o -> o.started -. o.submission.arrival) done_)));
      total_tb_seconds = List.fold_left (fun acc o -> acc +. o.gb_seconds) 0.0 done_ /. 1024.0;
      total_plan_ms = List.fold_left (fun acc o -> acc +. o.plan_ms) 0.0 outcomes;
    }
  in
  (summary, outcomes)

let run engine schema submissions ~planner =
  execute engine schema (List.map (plan_one ~planner schema) submissions)

let raqo_planner ?(cache_across_queries = true) ~model ~conditions () =
  let opt = ref None in
  fun schema relations ->
    (* The optimizer is schema-bound; rebuild per query, sharing the
       resource planner (and so the cache) across queries when asked. *)
    let planner =
      match !opt with
      | Some p when cache_across_queries -> p
      | Some _ | None ->
          let p = Raqo_resource.Resource_planner.create conditions in
          opt := Some p;
          p
    in
    let coster = Raqo_planner.Coster.raqo model schema planner in
    Option.map fst (Raqo_planner.Selinger.optimize coster schema relations)

let default_planner engine ~resources =
  fun schema relations ->
    let plain = Raqo_planner.Heuristics.default_plan engine schema relations in
    Some (Join_tree.map_annot (fun impl -> (impl, resources)) plain)

(* Batch planning: queries are independent once each gets a private
   resource planner (cache sharing stays opt-in and single-domain via
   [raqo_planner ~cache_across_queries]), so the planning phase fans out
   across the pool while the FIFO execution phase stays sequential. *)
let optimize_batch ?pool ?memoize ~model ~conditions schema submissions =
  let plan_query submission =
    let planner schema relations =
      let rp = Raqo_resource.Resource_planner.create conditions in
      let coster = Raqo_planner.Coster.raqo model schema rp in
      let coster =
        match memoize with
        | Some true -> Raqo_planner.Coster.memoize coster
        | Some false | None -> coster
      in
      Option.map fst (Raqo_planner.Selinger.optimize coster schema relations)
    in
    plan_one ~planner schema submission
  in
  match pool with
  | None -> List.map plan_query submissions
  | Some pool -> Raqo_par.Pool.parallel_map pool plan_query submissions

let run_batch ?pool ?memoize engine ~model ~conditions schema submissions =
  execute engine schema (optimize_batch ?pool ?memoize ~model ~conditions schema submissions)
