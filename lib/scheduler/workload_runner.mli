(** Workload-level evaluation: a stream of queries arriving at a shared
    cluster, executed FIFO (one query holds the cluster at a time, as in the
    Figure 1 queue model). Lifts the paper's per-query comparison to the
    workload level: better joint plans drain the queue faster, so planning
    quality compounds into lower waiting times for everyone behind. *)

type submission = {
  arrival : float;  (** submission time, seconds *)
  relations : string list;  (** the query *)
  data_scale : float;
      (** per-query selectivity on the largest relation (models varying
          WHERE clauses), in (0, 1] *)
}

type query_outcome = {
  submission : submission;
  started : float;
  finished : float;
  plan_ms : float;  (** optimizer time *)
  gb_seconds : float;
  failed : bool;
}

type summary = {
  completed : int;
  failed : int;
  makespan : float;  (** last finish time *)
  mean_latency : float;  (** submit -> finish *)
  p95_latency : float;
  mean_queue_time : float;
  total_tb_seconds : float;
  total_plan_ms : float;
}

(** The planning approach under test: given the (per-query filtered) schema
    and the query's relations, produce a joint plan — or [None] to fail the
    query. Wall-clock planning time is measured around this call. *)
type planner =
  Raqo_catalog.Schema.t -> string list -> Raqo_plan.Join_tree.joint option

(** [generate rng ~n ~arrival_rate schema] draws [n] submissions: Poisson
    arrivals, a random TPC-H evaluation query each, and a random data scale
    in [0.1, 1.0] on the query's largest table. *)
val generate :
  Raqo_util.Rng.t ->
  n:int ->
  arrival_rate:float ->
  Raqo_catalog.Schema.t ->
  submission list

(** A submission whose planning phase has run: the chosen joint plan (or
    [None] on failure) and the wall-clock planning time. *)
type planned = {
  planned_submission : submission;
  plan : Raqo_plan.Join_tree.joint option;
  planning_ms : float;
}

(** [run engine schema submissions ~planner] executes the workload FIFO.
    Each query's schema has its largest relation scaled by [data_scale]
    before planning (the varying-filter model). Failed plans count as
    [failed] and occupy no cluster time. *)
val run :
  Raqo_execsim.Engine.t ->
  Raqo_catalog.Schema.t ->
  submission list ->
  planner:planner ->
  summary * query_outcome list

(** [execute engine schema planned] is the FIFO execution phase of {!run}
    alone: simulate the already-planned queries in submission order. *)
val execute :
  Raqo_execsim.Engine.t ->
  Raqo_catalog.Schema.t ->
  planned list ->
  summary * query_outcome list

(** [optimize_batch ?pool ?memoize ~model ~conditions schema submissions]
    plans every submission with cost-based RAQO (Selinger over a
    per-query resource planner, optionally a {!Raqo_planner.Coster.memoize}d
    coster), concurrently across [pool]'s domains when given. Each query gets
    a private resource planner and cache, so queries are independent and the
    output order matches the input order regardless of pool size; sharing a
    cache across queries remains the opt-in, single-domain
    [raqo_planner ~cache_across_queries] path. *)
val optimize_batch :
  ?pool:Raqo_par.Pool.t ->
  ?memoize:bool ->
  model:Raqo_cost.Op_cost.t ->
  conditions:Raqo_cluster.Conditions.t ->
  Raqo_catalog.Schema.t ->
  submission list ->
  planned list

(** [run_batch ?pool ?memoize engine ~model ~conditions schema submissions]
    is {!optimize_batch} followed by {!execute}: parallel planning, FIFO
    simulation. *)
val run_batch :
  ?pool:Raqo_par.Pool.t ->
  ?memoize:bool ->
  Raqo_execsim.Engine.t ->
  model:Raqo_cost.Op_cost.t ->
  conditions:Raqo_cluster.Conditions.t ->
  Raqo_catalog.Schema.t ->
  submission list ->
  summary * query_outcome list

(** Ready-made planners for the comparison: *)

(** [raqo_planner ?cache_across_queries ~model ~conditions ()] — cost-based
    RAQO (Selinger, hill climbing; optionally keeping the resource-plan
    cache across queries). *)
val raqo_planner :
  ?cache_across_queries:bool ->
  model:Raqo_cost.Op_cost.t ->
  conditions:Raqo_cluster.Conditions.t ->
  unit ->
  planner

(** [default_planner engine ~resources] — the two-step baseline: the stock
    rule-based plan, executed at one fixed, user-guessed configuration. *)
val default_planner :
  Raqo_execsim.Engine.t -> resources:Raqo_cluster.Resources.t -> planner
