module M = Raqo_obs.Metrics

type config = {
  jobs : int;
  queue_capacity : int;
  tenant_quota : int option;
  batch : int;
  cache_capacity : int option;
  cache_shards : int;
  kernel : bool;
  rewrite : bool;
  scale_factor : float;
  conditions : Raqo_cluster.Conditions.t;
}

let default_config =
  {
    jobs = 1;
    queue_capacity = 64;
    tenant_quota = None;
    batch = 8;
    cache_capacity = Some 4096;
    cache_shards = 8;
    kernel = true;
    rewrite = true;
    scale_factor = 100.0;
    conditions = Raqo_cluster.Conditions.default;
  }

(* Per-tenant admission accounting, guarded by [queue_mutex] like the queue
   itself (the counts must agree with what the queue holds). *)
type tstats = {
  mutable t_queued : int;  (** requests currently in the admission queue *)
  mutable t_planned : int;
  mutable t_rejected : int;
}

type t = {
  config : config;
  schema : Raqo_catalog.Schema.t;
  columns : Raqo_catalog.Column.catalog;
  registry : M.registry;
  cache : Raqo_resource.Shared_plan_cache.t;
  pool : Raqo_par.Pool.t;
  queue : Protocol.request Queue.t;
  queue_mutex : Mutex.t;
  tenants : (string, tstats) Hashtbl.t;
  (* Private cells are the source of truth (always recorded, lock-free);
     the registry carries gated mirrors, per the repo's counters pattern. *)
  admitted : M.Counter.t;
  rejected : M.Counter.t;
  responses : M.Counter.t;
  latency : M.Histogram.t;
  g_admitted : M.Counter.t;
  g_rejected : M.Counter.t;
  g_responses : M.Counter.t;
  g_queue_depth : M.Gauge.t;
  g_latency : M.Histogram.t;
  g_sql_queries : M.Counter.t;
}

let create ?(config = default_config) ?registry () =
  if config.jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  if config.queue_capacity < 1 then invalid_arg "Engine.create: queue_capacity must be >= 1";
  if config.batch < 1 then invalid_arg "Engine.create: batch must be >= 1";
  (match config.tenant_quota with
  | Some q when q < 1 -> invalid_arg "Engine.create: tenant_quota must be >= 1"
  | _ -> ());
  let registry = match registry with Some r -> r | None -> M.create_registry () in
  let cache =
    Raqo_resource.Shared_plan_cache.create ~shards:config.cache_shards
      ?capacity:config.cache_capacity ~registry ()
  in
  {
    config;
    schema = Raqo_catalog.Tpch.schema ~scale_factor:config.scale_factor ();
    columns = Raqo_catalog.Tpch.columns ~scale_factor:config.scale_factor ();
    registry;
    cache;
    pool = Raqo_par.Pool.create ~jobs:config.jobs ();
    queue = Queue.create ();
    queue_mutex = Mutex.create ();
    tenants = Hashtbl.create 8;
    admitted = M.Counter.create ();
    rejected = M.Counter.create ();
    responses = M.Counter.create ();
    latency = M.Histogram.create ();
    g_admitted = M.counter_in registry "raqo_server_admitted_total";
    g_rejected = M.counter_in registry "raqo_server_rejected_total";
    g_responses = M.counter_in registry "raqo_server_responses_total";
    g_queue_depth = M.gauge_in registry "raqo_server_queue_depth";
    g_latency = M.histogram_in registry "raqo_server_latency_seconds";
    g_sql_queries = M.counter_in registry "raqo_sql_queries_total";
  }

let config t = t.config
let registry t = t.registry
let cache t = t.cache
let pool t = t.pool
let admitted t = M.Counter.value t.admitted
let rejected t = M.Counter.value t.rejected
let responses t = M.Counter.value t.responses
let latency_histogram t = t.latency
let shutdown t = Raqo_par.Pool.shutdown t.pool

(* ---------- planning one request ---------- *)

let model_and_engine = function
  | "spark" -> (Raqo.Models.spark (), Raqo_execsim.Engine.spark)
  | _ -> (Raqo.Models.hive (), Raqo_execsim.Engine.hive)

let rec has_dup = function
  | [] -> false
  | x :: rest -> List.mem x rest || has_dup rest

(* What [plan_request] needs from the payload: the schema the optimizer is
   created over (pre-rewrite), the adaptive ground truth (filter-scaled),
   the relations, and the rewrite hints. Exactly the front half of
   {!Raqo.Sql_frontend.plan}; keeping the sequence identical is what makes
   served responses bit-equal to the one-shot pipeline. *)
type resolved = {
  plan_schema : Raqo_catalog.Schema.t;
  truth_schema : Raqo_catalog.Schema.t;
  relations : string list;
  referenced : string list option;
  filters : (string * float) list;
}

let resolve t (payload : Protocol.payload) =
  match payload with
  | Protocol.Sql sql -> begin
      if Raqo_obs.Obs.enabled () then M.Counter.inc t.g_sql_queries;
      match
        Raqo_obs.Trace.with_ ~name:"sql/analyze" (fun () ->
            Raqo_sql.Resolver.analyze t.schema t.columns sql)
      with
      | Ok a ->
          (* With the rewriter on the optimizer plans over the raw catalog
             and replays the resolver's filter fold through the pushdown
             rule (bitwise-identical stats); off keeps the historical
             resolver-scaled schema. *)
          if t.config.rewrite then
            Ok
              {
                plan_schema = t.schema;
                truth_schema = a.Raqo_sql.Resolver.schema;
                relations = a.Raqo_sql.Resolver.relations;
                referenced = a.Raqo_sql.Resolver.projected_tables;
                filters = a.Raqo_sql.Resolver.table_selectivity;
              }
          else
            Ok
              {
                plan_schema = a.Raqo_sql.Resolver.schema;
                truth_schema = a.Raqo_sql.Resolver.schema;
                relations = a.Raqo_sql.Resolver.relations;
                referenced = None;
                filters = [];
              }
      | Error e -> Error e
    end
  | Protocol.Relations rels -> (
      if List.length rels < 2 then Error "need at least two relations to join"
      else if has_dup rels then Error "duplicate relation in \"relations\""
      else
        match
          List.find_opt (fun r -> not (Raqo_catalog.Schema.mem t.schema r)) rels
        with
        | Some r -> Error (Printf.sprintf "unknown relation %S" r)
        | None ->
            if not (Raqo_catalog.Schema.joinable t.schema rels) then
              Error "relations do not form a connected join graph"
            else
              Ok
                {
                  plan_schema = t.schema;
                  truth_schema = t.schema;
                  relations = rels;
                  referenced = None;
                  filters = [];
                })

let planned (req : Protocol.request) plan cost adaptive rewrite =
  let resources =
    Raqo_plan.Join_tree.annotations plan
    |> List.map (fun (_impl, r) ->
           (r.Raqo_cluster.Resources.containers, r.Raqo_cluster.Resources.container_gb))
  in
  Protocol.Planned
    {
      id = req.id;
      plan = Format.asprintf "%a" Raqo_plan.Join_tree.pp_joint plan;
      cost;
      resources;
      adaptive;
      rewrite;
    }

(* Present only when a rule fired, so zero-rewrite responses are
   byte-identical to a [~rewrite:false] engine's. *)
let rewrite_summary opt =
  match Raqo.Cost_based.rewrite_report opt with
  | Some r when r.Raqo_rewrite.Rewrite.changed ->
      Some
        {
          Protocol.fired = Raqo_rewrite.Rewrite.fired r;
          removed = r.Raqo_rewrite.Rewrite.removed;
        }
  | Some _ | None -> None

let summarize_outcome = function
  | Raqo_adaptive.Adaptive_exec.Done { seconds; _ } -> Protocol.Finished seconds
  | Raqo_adaptive.Adaptive_exec.Oom { stage; _ } -> Protocol.Oom stage

let infeasible (req : Protocol.request) =
  Protocol.Rejected
    {
      id = Some req.id;
      reason = Protocol.Infeasible;
      message = "no feasible joint plan under the current cluster conditions";
    }

let plan_request ?pool t (req : Protocol.request) : Protocol.response =
  match resolve t req.payload with
  | Error message ->
      Protocol.Rejected { id = Some req.id; reason = Protocol.Bad_request; message }
  | Ok r -> begin
      let model, sim_engine = model_and_engine req.engine in
      let optimizer ~hints schema =
        Raqo.Cost_based.create ~kind:req.planner ~seed:req.seed ~kernel:t.config.kernel
          ~shared_cache:t.cache ~rewrite:t.config.rewrite ~rewrite_hints:hints
          ~metrics:t.registry ~model ~conditions:t.config.conditions schema
      in
      try
        match req.mode with
        | Protocol.Qo resources -> begin
            (* The two-step baseline does not rewrite: it plans the
               resolver-scaled schema exactly as before. *)
            let opt =
              optimizer ~hints:Raqo_rewrite.Rewrite.no_hints r.truth_schema
            in
            match Raqo.Cost_based.optimize_qo opt ~resources r.relations with
            | Some (plan, cost) -> planned req plan cost None None
            | None -> infeasible req
          end
        | Protocol.Raqo when not req.adaptive -> begin
            let opt =
              optimizer
                ~hints:
                  { Raqo_rewrite.Rewrite.filters = r.filters; referenced = r.referenced }
                r.plan_schema
            in
            match
              Raqo_obs.Trace.with_ ~name:"sql/optimize" (fun () ->
                  match pool with
                  | Some pool -> Raqo.Cost_based.optimize_par opt pool r.relations
                  | None -> Raqo.Cost_based.optimize opt r.relations)
            with
            | Some (plan, cost) -> planned req plan cost None (rewrite_summary opt)
            | None -> infeasible req
          end
        | Protocol.Raqo -> begin
            (* Adaptive: the (filter-scaled) catalog is ground truth; the
               planner sees it through the request's seeded estimation
               error, with the projection hints still enabling absorption. *)
            let truth = r.truth_schema in
            let estimates = Raqo_execsim.Estimation_error.perturb req.est_error truth in
            let opt =
              optimizer
                ~hints:{ Raqo_rewrite.Rewrite.filters = []; referenced = r.referenced }
                estimates
            in
            match
              Raqo_obs.Trace.with_ ~name:"sql/optimize" (fun () ->
                  Raqo.Cost_based.optimize_adaptive ?pool ~engine:sim_engine ~truth opt
                    r.relations)
            with
            | Some (report, cost) ->
                let summary =
                  {
                    Protocol.static_outcome =
                      summarize_outcome report.Raqo_adaptive.Adaptive_exec.static_outcome;
                    adaptive_outcome =
                      summarize_outcome report.Raqo_adaptive.Adaptive_exec.adaptive_outcome;
                    replans = report.Raqo_adaptive.Adaptive_exec.replans;
                    switches = report.Raqo_adaptive.Adaptive_exec.switches;
                  }
                in
                planned req report.Raqo_adaptive.Adaptive_exec.static_plan cost
                  (Some summary) (rewrite_summary opt)
            | None -> infeasible req
          end
      with exn ->
        Protocol.Rejected
          {
            id = Some req.id;
            reason = Protocol.Internal;
            message = Printexc.to_string exn;
          }
    end

let oneshot ?(config = { default_config with jobs = 1 }) req =
  let t = create ~config:{ config with jobs = 1 } () in
  let response = plan_request t req in
  shutdown t;
  response

(* ---------- workload allocation ---------- *)

module Allocator = Raqo_alloc.Allocator
module Surface = Raqo_alloc.Surface

(* Deterministic pick off the frontier: [Makespan] takes its head (the
   frontier is makespan-ascending), [Dollars] the cheapest point, [Balanced]
   a fixed scalarization; strict [<] breaks ties toward the frontier order,
   so equal engines choose equal points. *)
let choose objective (outcome : Allocator.outcome) =
  let best score =
    match outcome.Allocator.frontier with
    | [] -> outcome.Allocator.equal_split
    | p :: rest ->
        List.fold_left (fun acc q -> if score q < score acc then q else acc) p rest
  in
  match objective with
  | Protocol.Makespan -> best (fun (p : Allocator.point) -> p.makespan)
  | Protocol.Dollars -> best (fun (p : Allocator.point) -> p.dollars)
  | Protocol.Balanced ->
      best (fun (p : Allocator.point) ->
          p.makespan +. (1000.0 *. p.dollars) +. (1000.0 *. float_of_int p.violations))

let allocate t (areq : Protocol.alloc_request) : Protocol.response =
  let reject reason message = Protocol.Rejected { id = Some areq.id; reason; message } in
  let rec resolve_all acc = function
    | [] -> Ok (List.rev acc)
    | (q : Protocol.alloc_query) :: rest -> (
        match resolve t q.payload with
        | Ok r -> resolve_all ((q, r) :: acc) rest
        | Error e -> Error (Printf.sprintf "query %S: %s" q.qid e))
  in
  match resolve_all [] areq.queries with
  | Error message -> reject Protocol.Bad_request message
  | Ok resolved -> (
      let model, _sim_engine = model_and_engine areq.engine in
      (* Member queries plan the resolver-scaled schema without the rewrite
         pass: the surface prices plans off the same stats the planner
         costed, and a rewrite would shift those stats under the surface. *)
      let plan_one ((q : Protocol.alloc_query), (r : resolved)) =
        let opt =
          Raqo.Cost_based.create ~kind:areq.planner ~seed:areq.seed
            ~kernel:t.config.kernel ~shared_cache:t.cache ~rewrite:false
            ~metrics:t.registry ~model ~conditions:t.config.conditions
            r.truth_schema
        in
        match
          Raqo_obs.Trace.with_ ~name:"alloc/plan" (fun () ->
              Raqo.Cost_based.optimize opt r.relations)
        with
        | None -> Error q.qid
        | Some (plan, _cost) ->
            let surface =
              Surface.build ~use_kernel:t.config.kernel ~model
                ~conditions:t.config.conditions ~schema:r.truth_schema ~name:q.qid
                plan
            in
            let tenant =
              match (q.tenant, areq.tenant) with
              | Some tn, _ | None, Some tn -> tn
              | None, None -> "default"
            in
            Ok
              ( Allocator.query ~tenant ~weight:q.weight ~arrival:q.arrival
                  ?slo:q.slo ~name:q.qid surface,
                Format.asprintf "%a" Raqo_plan.Join_tree.pp_joint plan )
      in
      try
        let results =
          Raqo_obs.Trace.with_ ~name:"alloc/planning" (fun () ->
              if Raqo_par.Pool.size t.pool > 1 then
                Raqo_par.Pool.parallel_map t.pool plan_one resolved
              else List.map plan_one resolved)
        in
        match
          List.find_map (function Error qid -> Some qid | Ok _ -> None) results
        with
        | Some qid ->
            reject Protocol.Infeasible
              (Printf.sprintf
                 "query %S has no feasible joint plan under the current cluster \
                  conditions"
                 qid)
        | None ->
            let entries =
              List.filter_map (function Ok x -> Some x | Error _ -> None) results
            in
            let queries = Array.of_list (List.map fst entries) in
            let plans = List.map snd entries in
            let want =
              match Allocator.want_of_string areq.search with
              | Some w -> w
              | None -> Allocator.Auto
            in
            let outcome =
              Allocator.search ~want ~seed:areq.seed ~budget:areq.budget
                ~fairness:areq.fairness queries
            in
            let point (p : Allocator.point) =
              {
                Protocol.containers = Array.to_list p.alloc;
                makespan = p.makespan;
                dollars = p.dollars;
                violations = p.violations;
              }
            in
            let chosen = choose areq.objective outcome in
            let per_query =
              List.mapi
                (fun i plan ->
                  let q = queries.(i) in
                  let cap = chosen.Allocator.alloc.(i) in
                  ( q.Allocator.name,
                    cap,
                    Surface.latency_at q.Allocator.surface cap,
                    plan ))
                plans
            in
            Protocol.Allocated
              {
                id = areq.id;
                search = Allocator.mode_name outcome.Allocator.mode;
                budget = areq.budget;
                frontier = List.map point outcome.Allocator.frontier;
                chosen = point chosen;
                equal_split = point outcome.Allocator.equal_split;
                queries = per_query;
              }
      with
      | Invalid_argument m -> reject Protocol.Bad_request m
      | exn -> reject Protocol.Internal (Printexc.to_string exn))

let oneshot_allocate ?(config = { default_config with jobs = 1 }) areq =
  let t = create ~config:{ config with jobs = 1 } () in
  let response = allocate t areq in
  shutdown t;
  response

(* ---------- admission control ---------- *)

let obs_on () = Raqo_obs.Obs.enabled ()

(* ---------- per-tenant accounting ---------- *)

let tenant_label (tenant : string option) = Option.value tenant ~default:"default"

(* Call with [queue_mutex] held. *)
let tstats_for t tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | Some s -> s
  | None ->
      let s = { t_queued = 0; t_planned = 0; t_rejected = 0 } in
      Hashtbl.add t.tenants tenant s;
      s

(* Registry mirror with the tenant embedded as a Prometheus label:
   [Export.prometheus] prints counter names verbatim, so the label renders
   as valid exposition-format output. Find-or-create per event is cheap —
   the registry interns by name. *)
let tenant_counter t event tenant =
  M.counter_in t.registry
    (Printf.sprintf "raqo_server_tenant_%s_total{tenant=%S}" event tenant)

let tenant_stats t =
  Mutex.lock t.queue_mutex;
  let xs =
    Hashtbl.fold
      (fun tenant s acc -> (tenant, (s.t_queued, s.t_planned, s.t_rejected)) :: acc)
      t.tenants []
  in
  Mutex.unlock t.queue_mutex;
  List.sort compare xs

let queue_depth t =
  Mutex.lock t.queue_mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.queue_mutex;
  n

(* Readiness probe: answered at admission time, never queued, and carries no
   wall-clock field so probe responses are deterministic. *)
let health t ~id =
  Protocol.Health_ok
    {
      id;
      queue_depth = queue_depth t;
      shards = t.config.cache_shards;
      jobs = t.config.jobs;
      ready = true;
    }

let oneshot_health ?(config = { default_config with jobs = 1 }) ~id () =
  Protocol.Health_ok
    {
      id;
      queue_depth = 0;
      shards = config.cache_shards;
      jobs = config.jobs;
      ready = true;
    }

let submit t (req : Protocol.request) : Protocol.response option =
  let tenant = tenant_label req.tenant in
  Mutex.lock t.queue_mutex;
  let stats = tstats_for t tenant in
  let decision =
    if Queue.length t.queue >= t.config.queue_capacity then
      `Reject
        (Printf.sprintf "admission queue full (%d pending); retry later"
           t.config.queue_capacity)
    else
      match t.config.tenant_quota with
      | Some quota when stats.t_queued >= quota ->
          `Reject
            (Printf.sprintf
               "tenant %S queue quota full (%d pending); retry later" tenant quota)
      | _ ->
          Queue.add req t.queue;
          stats.t_queued <- stats.t_queued + 1;
          `Admit (Queue.length t.queue)
  in
  (if match decision with `Reject _ -> true | `Admit _ -> false then
     stats.t_rejected <- stats.t_rejected + 1);
  Mutex.unlock t.queue_mutex;
  match decision with
  | `Admit depth ->
      M.Counter.inc t.admitted;
      if obs_on () then begin
        M.Counter.inc t.g_admitted;
        M.Counter.inc (tenant_counter t "admitted" tenant);
        M.Gauge.set t.g_queue_depth (float_of_int depth)
      end;
      None
  | `Reject message ->
      M.Counter.inc t.rejected;
      if obs_on () then begin
        M.Counter.inc t.g_rejected;
        M.Counter.inc (tenant_counter t "rejected" tenant)
      end;
      Some
        (Protocol.Rejected { id = Some req.id; reason = Protocol.Overloaded; message })

let drain_batch t =
  Mutex.lock t.queue_mutex;
  let n = min t.config.batch (Queue.length t.queue) in
  let batch =
    List.init n (fun _ ->
        let req = Queue.pop t.queue in
        let stats = tstats_for t (tenant_label req.Protocol.tenant) in
        stats.t_queued <- stats.t_queued - 1;
        req)
  in
  let depth = Queue.length t.queue in
  Mutex.unlock t.queue_mutex;
  if obs_on () then M.Gauge.set t.g_queue_depth (float_of_int depth);
  batch

let process_wave t =
  match drain_batch t with
  | [] -> []
  | batch ->
      let respond req =
        let t0 = Unix.gettimeofday () in
        let response = plan_request t req in
        let dt = Unix.gettimeofday () -. t0 in
        M.Histogram.observe t.latency dt;
        M.Counter.inc t.responses;
        if obs_on () then begin
          M.Histogram.observe t.g_latency dt;
          M.Counter.inc t.g_responses
        end;
        (req, response)
      in
      (* One pool task per request: requests inside a wave plan concurrently,
         each on its own optimizer (private scratch, shared striped cache),
         results back in submission order. *)
      let wave =
        Raqo_par.Pool.run_list t.pool (List.map (fun req () -> respond req) batch)
      in
      (* Per-tenant outcome accounting happens back on the driver thread, so
         the stats table stays under the one lock discipline. *)
      Mutex.lock t.queue_mutex;
      List.iter
        (fun ((req : Protocol.request), response) ->
          let stats = tstats_for t (tenant_label req.tenant) in
          if Protocol.is_ok response then stats.t_planned <- stats.t_planned + 1
          else stats.t_rejected <- stats.t_rejected + 1)
        wave;
      Mutex.unlock t.queue_mutex;
      if obs_on () then
        List.iter
          (fun ((req : Protocol.request), response) ->
            let tenant = tenant_label req.tenant in
            let event = if Protocol.is_ok response then "planned" else "rejected" in
            M.Counter.inc (tenant_counter t event tenant))
          wave;
      wave

let rec drain t =
  match process_wave t with [] -> [] | wave -> wave @ drain t
