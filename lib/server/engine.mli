(** The resident optimizer: one value of {!t} owns everything a planner
    process would otherwise re-build per query — the interned TPC-H catalog,
    the trained cost model (warm compiled kernels), a striped cross-query
    {!Raqo_resource.Shared_plan_cache}, a private metrics
    {!Raqo_obs.Metrics.registry}, and a {!Raqo_par.Pool} of planning domains.
    Nothing is ambient: two engines (two servers, or a server and the CLI)
    share no mutable state.

    Admission control: {!submit} either enqueues a request into a bounded
    FIFO or immediately returns a typed [Overloaded] rejection — the queue
    never grows past [queue_capacity], so an overloaded server sheds load
    instead of accumulating unbounded latency. {!process_wave} drains up to
    [batch] requests and plans them concurrently on the pool (one optimizer
    per request, all warming the same shared cache), returning responses in
    submission order.

    Bit-identity: {!plan_request} runs the same resolve/optimize sequence as
    {!Raqo.Sql_frontend.plan}, and the shared cache's exact-match hits return
    the same resource plans a fresh search would find — so a served response
    equals {!oneshot} on the same request, byte for byte. *)

type config = {
  jobs : int;  (** pool parallelism (1 = sequential, no domains spawned) *)
  queue_capacity : int;  (** admission bound; beyond it requests are rejected *)
  tenant_quota : int option;
      (** per-tenant queue-depth bound: a tenant with this many requests
          already queued gets a typed [Overloaded] rejection naming it, even
          while the global queue has room — one noisy tenant cannot starve
          the rest. [None] (default) disables the quota. *)
  batch : int;  (** max requests planned per {!process_wave} *)
  cache_capacity : int option;  (** shared-cache LRU bound ([None] unbounded) *)
  cache_shards : int;
  kernel : bool;  (** compiled cost kernels (the CLI's [--no-kernel] gates it) *)
  rewrite : bool;
      (** logical rewrite pass before enumeration: SQL filter selectivities
          become pushdown hints (replaying the resolver's scan scaling
          bitwise) and the projection list enables FK/constant absorption
          and width narrowing; responses gain a ["rewrite"] summary when a
          rule fired. Off plans the resolver-scaled schema exactly as
          before. *)
  scale_factor : float;  (** TPC-H catalog scale *)
  conditions : Raqo_cluster.Conditions.t;
}

(** jobs 1, queue 64, batch 8, cache 4096 over 8 shards, kernel on, rewrite
    on, SF 100, default conditions. *)
val default_config : config

type t

(** [create ()] builds a resident engine. [registry] overrides the default
    fresh per-engine metrics registry — `raqo metrics` passes the
    process-wide one so server counters show up in its dump; servers keep
    the fresh default for isolation. *)
val create : ?config:config -> ?registry:Raqo_obs.Metrics.registry -> unit -> t
val config : t -> config
val registry : t -> Raqo_obs.Metrics.registry
val cache : t -> Raqo_resource.Shared_plan_cache.t
val pool : t -> Raqo_par.Pool.t

(** Joins the pool's domains. The engine stays usable for {!plan_request}
    (sequentially); {!process_wave} on a shut-down engine raises. *)
val shutdown : t -> unit

(** [plan_request ?pool t req] plans one request synchronously, bypassing
    admission. [pool] fans the {e single} request's search out (randomized
    restarts / parallel DP); the serve loop instead parallelizes {e across}
    requests and leaves it unset. Never raises: planner exceptions come back
    as [Rejected {reason = Internal; _}]. *)
val plan_request : ?pool:Raqo_par.Pool.t -> t -> Protocol.request -> Protocol.response

(** [oneshot req] plans on a fresh single-job engine (fresh cache, fresh
    registry) and tears it down — the reference answer the smoke test diffs
    served responses against. [config]'s [jobs] is forced to 1. *)
val oneshot : ?config:config -> Protocol.request -> Protocol.response

(** [allocate t areq] answers an [{"op":"allocate"}] request synchronously:
    jointly plans every member query (across the pool when [jobs > 1] —
    surfaces are independent, so any pool size is bit-identical), builds its
    latency/cost response surface, and searches joint allocations under the
    global container budget ({!Raqo_alloc.Allocator.search}). Member queries
    plan without the rewrite pass so surface stats match planner stats. Never
    raises: unresolvable queries come back [Bad_request], infeasible ones
    [Infeasible], allocator/planner exceptions [Internal]. Fully
    deterministic — a served response equals {!oneshot_allocate}, byte for
    byte. *)
val allocate : t -> Protocol.alloc_request -> Protocol.response

(** [oneshot_allocate areq] is {!allocate} on a fresh single-job engine. *)
val oneshot_allocate : ?config:config -> Protocol.alloc_request -> Protocol.response

(** [submit t req] admits [req] into the bounded queue ([None]) or rejects it
    ([Some (Rejected {reason = Overloaded; _})]). Thread-safe. *)
val submit : t -> Protocol.request -> Protocol.response option

val queue_depth : t -> int

(** [health t ~id] is the immediate [Health_ok] answer to an
    [{"op":"health"}] probe: current queue depth, cache shards, pool jobs,
    [ready = true]. Never queued — it must answer even under overload — and
    carries no wall-clock field, so probe responses are deterministic. *)
val health : t -> id:string option -> Protocol.response

(** [oneshot_health ~id ()] is {!health} for the engine-less
    [raqo serve --oneshot] path: depth 0 and [config]'s shards/jobs. *)
val oneshot_health : ?config:config -> id:string option -> unit -> Protocol.response

(** [process_wave t] drains up to [config.batch] queued requests and plans
    them concurrently on the pool; [(request, response)] pairs come back in
    submission order. Empty list when the queue is empty. *)
val process_wave : t -> (Protocol.request * Protocol.response) list

(** [drain t] runs {!process_wave} until the queue is empty. *)
val drain : t -> (Protocol.request * Protocol.response) list

(** Lifetime counters (always recorded, independent of observability mode;
    the registry carries the obs-gated mirrors
    [raqo_server_{admitted,rejected,responses}_total], gauge
    [raqo_server_queue_depth], histogram [raqo_server_latency_seconds]). *)
val admitted : t -> int

val rejected : t -> int
val responses : t -> int
val latency_histogram : t -> Raqo_obs.Metrics.Histogram.t

(** [tenant_stats t] is per-tenant [(tenant, (queued, planned, rejected))],
    sorted by tenant name. Requests that name no tenant account under
    ["default"]. The registry carries obs-gated mirrors
    [raqo_server_tenant_{admitted,planned,rejected}_total{tenant="..."}]. *)
val tenant_stats : t -> (string * (int * int * int)) list
