(* A minimal JSON layer for the server's line protocol. The repo deliberately
   avoids new dependencies, and the protocol needs exactly one nonstandard
   property: floats must round-trip bit-identically, so responses can be
   diffed byte-for-byte against the one-shot CLI path. Printing reuses the
   shortest-round-trip encoder the Prometheus exporter already ships. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
      if Float.is_nan v || Float.abs v = Float.infinity then
        (* JSON has no NaN/Inf; the planner never emits them in responses. *)
        invalid_arg "Json.to_string: non-finite number"
      else Buffer.add_string buf (Raqo_obs.Export.fmt_float v)
  | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then error st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> begin
        if st.pos >= String.length st.s then error st "unterminated escape";
        let e = st.s.[st.pos] in
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if st.pos + 4 > String.length st.s then error st "truncated \\u escape";
            let hex = String.sub st.s st.pos 4 in
            st.pos <- st.pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code -> utf8_of_code buf code
            | None -> error st "bad \\u escape")
        | _ -> error st "unknown escape");
        go ()
      end
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.s && num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.s start (st.pos - start)) with
  | Some v -> Num v
  | None -> error st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields (kv :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev (kv :: acc)
          | _ -> error st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some c -> if c = '-' || (c >= '0' && c <= '9') then parse_number st else error st "unexpected character"

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error (Printf.sprintf "trailing input at offset %d" st.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---------- accessors ---------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let keys = function Obj kvs -> List.map fst kvs | _ -> []
let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v && Float.abs v <= 1e15 -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List xs -> Some xs | _ -> None
