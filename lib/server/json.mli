(** Minimal JSON for the server's line protocol (no external dependency).
    Numbers are floats; printing uses {!Raqo_obs.Export.fmt_float}, the
    shortest encoding that round-trips through [float_of_string], so a cost
    printed by the server and one printed by the one-shot CLI path compare
    byte-for-byte. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] prints compactly (no whitespace), object fields in the
    order given. @raise Invalid_argument on NaN or infinite numbers. *)
val to_string : t -> string

(** [parse s] parses a complete JSON document; [Error] carries a message
    with a byte offset. *)
val parse : string -> (t, string) result

val member : string -> t -> t option
val keys : t -> string list
val to_float : t -> float option

(** [to_int v] is [Some] only for integral numbers within safe range. *)
val to_int : t -> int option

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
