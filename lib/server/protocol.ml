type payload = Sql of string | Relations of string list
type mode = Raqo | Qo of Raqo_cluster.Resources.t

type request = {
  id : string;
  payload : payload;
  planner : Raqo.Cost_based.planner_kind;
  mode : mode;
  seed : int;
  adaptive : bool;
  est_error : Raqo_execsim.Estimation_error.t;
  engine : string;
  tenant : string option;
}

type outcome_summary = Finished of float | Oom of int

type adaptive_summary = {
  static_outcome : outcome_summary;
  adaptive_outcome : outcome_summary;
  replans : int;
  switches : int;
}

type reject_reason = Bad_request | Overloaded | Infeasible | Internal
type rewrite_summary = { fired : (string * int) list; removed : int }

(* ---------- workload allocation ---------- *)

type objective = Makespan | Dollars | Balanced

let objective_of_string = function
  | "makespan" -> Ok Makespan
  | "cost" -> Ok Dollars
  | "balanced" -> Ok Balanced
  | s -> Error (Printf.sprintf "unknown objective %S (want makespan|cost|balanced)" s)

let objective_name = function Makespan -> "makespan" | Dollars -> "cost" | Balanced -> "balanced"

let search_names = [ "exact"; "randomized"; "auto" ]

type alloc_query = {
  qid : string;
  payload : payload;
  tenant : string option;
  weight : float;
  arrival : float;
  slo : float option;
}

type alloc_request = {
  id : string;
  queries : alloc_query list;
  budget : int;
  planner : Raqo.Cost_based.planner_kind;
  objective : objective;
  fairness : float;
  search : string;  (* validated against [search_names] *)
  seed : int;
  engine : string;
  tenant : string option;
}

type alloc_point = {
  containers : int list;
  makespan : float;
  dollars : float;
  violations : int;
}

type response =
  | Planned of {
      id : string;
      plan : string;
      cost : float;
      resources : (int * float) list;
      adaptive : adaptive_summary option;
      rewrite : rewrite_summary option;
    }
  | Rejected of { id : string option; reason : reject_reason; message : string }
  | Health_ok of {
      id : string option;
      queue_depth : int;
      shards : int;
      jobs : int;
      ready : bool;
    }
  | Allocated of {
      id : string;
      search : string;  (* the mode that actually ran *)
      budget : int;
      frontier : alloc_point list;
      chosen : alloc_point;
      equal_split : alloc_point;
      queries : (string * int * float * string) list;  (* qid, containers, latency, plan *)
    }

type line =
  | Health of { id : string option }
  | Request of request
  | Allocate of alloc_request

let reason_name = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Infeasible -> "infeasible"
  | Internal -> "internal"

let planner_of_string = function
  | "selinger" -> Ok Raqo.Cost_based.Selinger
  | "fast_randomized" -> Ok Raqo.Cost_based.Fast_randomized
  | "bushy_dp" -> Ok Raqo.Cost_based.Bushy_dp
  | s -> Error (Printf.sprintf "unknown planner %S (want selinger|fast_randomized|bushy_dp)" s)

let planner_name = function
  | Raqo.Cost_based.Selinger -> "selinger"
  | Raqo.Cost_based.Fast_randomized -> "fast_randomized"
  | Raqo.Cost_based.Bushy_dp -> "bushy_dp"

(* Strict field whitelist: a typo'd option silently falling back to a default
   would make "bit-identical to the CLI" vacuously true for the wrong plan. *)
let known_keys =
  [ "id"; "sql"; "relations"; "planner"; "mode"; "containers"; "gb"; "seed";
    "adaptive"; "est_error"; "engine"; "tenant" ]

let ( let* ) = Result.bind

let field_opt json key ~cast ~what =
  match Json.member key json with
  | None -> Ok None
  | Some v -> (
      match cast v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S must be %s" key what))

(* Exactly one of "sql"/"relations" — shared by plan requests and each
   member of an allocate request's query list. *)
let parse_payload json =
  match (Json.member "sql" json, Json.member "relations" json) with
  | Some (Json.Str sql), None -> Ok (Sql sql)
  | None, Some (Json.List xs) ->
      let rels = List.filter_map Json.to_str xs in
      if List.length rels <> List.length xs then
        Error "field \"relations\" must be a list of strings"
      else if rels = [] then Error "field \"relations\" must be non-empty"
      else Ok (Relations rels)
  | None, Some _ -> Error "field \"relations\" must be a list of strings"
  | Some _, None -> Error "field \"sql\" must be a string"
  | Some _, Some _ -> Error "give exactly one of \"sql\" or \"relations\""
  | None, None -> Error "give exactly one of \"sql\" or \"relations\""

let parse_tenant json =
  match Json.member "tenant" json with
  | None -> Ok None
  | Some (Json.Str s) when s <> "" -> Ok (Some s)
  | Some _ -> Error "field \"tenant\" must be a non-empty string"

let parse_request line =
  let* json = Json.parse line in
  (match json with Json.Obj _ -> Ok () | _ -> Error "request must be a JSON object")
  |> fun check_obj ->
  let* () = check_obj in
  let* () =
    match List.filter (fun k -> not (List.mem k known_keys)) (Json.keys json) with
    | [] -> Ok ()
    | ks -> Error (Printf.sprintf "unknown field(s): %s" (String.concat ", " ks))
  in
  let* id =
    match Json.member "id" json with
    | Some (Json.Str s) when s <> "" -> Ok s
    | Some _ -> Error "field \"id\" must be a non-empty string"
    | None -> Error "missing required field \"id\""
  in
  let* payload = parse_payload json in
  let* planner_s = field_opt json "planner" ~cast:Json.to_str ~what:"a string" in
  let* planner = planner_of_string (Option.value planner_s ~default:"selinger") in
  let* mode_s = field_opt json "mode" ~cast:Json.to_str ~what:"a string" in
  let* containers = field_opt json "containers" ~cast:Json.to_int ~what:"an integer" in
  let* gb = field_opt json "gb" ~cast:Json.to_float ~what:"a number" in
  let* mode =
    match (Option.value mode_s ~default:"raqo", containers, gb) with
    | "raqo", None, None -> Ok Raqo
    | "raqo", _, _ -> Error "\"containers\"/\"gb\" only apply to mode \"qo\""
    | "qo", Some c, Some g -> (
        match Raqo_cluster.Resources.make ~containers:c ~container_gb:g with
        | r -> Ok (Qo r)
        | exception Invalid_argument m -> Error m)
    | "qo", _, _ -> Error "mode \"qo\" requires \"containers\" and \"gb\""
    | s, _, _ -> Error (Printf.sprintf "unknown mode %S (want raqo|qo)" s)
  in
  let* seed = field_opt json "seed" ~cast:Json.to_int ~what:"an integer" in
  let* adaptive = field_opt json "adaptive" ~cast:Json.to_bool ~what:"a boolean" in
  let adaptive = Option.value adaptive ~default:false in
  let* est_error_s = field_opt json "est_error" ~cast:Json.to_str ~what:"a string" in
  let* () =
    if est_error_s <> None && not adaptive then
      Error "\"est_error\" requires \"adaptive\":true"
    else Ok ()
  in
  let* est_error =
    match est_error_s with
    | None -> Ok Raqo_execsim.Estimation_error.exact
    | Some s -> Raqo_execsim.Estimation_error.of_string s
  in
  let* engine = field_opt json "engine" ~cast:Json.to_str ~what:"a string" in
  let* engine =
    match Option.value engine ~default:"hive" with
    | ("hive" | "spark") as e -> Ok e
    | s -> Error (Printf.sprintf "unknown engine %S (want hive|spark)" s)
  in
  let* () =
    match (mode, adaptive) with
    | Qo _, true -> Error "\"adaptive\" does not apply to mode \"qo\""
    | _ -> Ok ()
  in
  let* tenant = parse_tenant json in
  Ok
    {
      id;
      payload;
      planner;
      mode;
      seed = Option.value seed ~default:42;
      adaptive;
      est_error;
      engine;
      tenant;
    }

(* ---------- "op":"allocate" ---------- *)

let alloc_known_keys =
  [ "op"; "id"; "budget"; "queries"; "planner"; "objective"; "fairness";
    "search"; "seed"; "engine"; "tenant" ]

let alloc_query_known_keys =
  [ "id"; "sql"; "relations"; "tenant"; "weight"; "arrival"; "slo" ]

let parse_alloc_query json =
  (match json with
  | Json.Obj _ -> Ok ()
  | _ -> Error "each entry of \"queries\" must be a JSON object")
  |> fun check_obj ->
  let* () = check_obj in
  let* () =
    match
      List.filter (fun k -> not (List.mem k alloc_query_known_keys)) (Json.keys json)
    with
    | [] -> Ok ()
    | ks -> Error (Printf.sprintf "unknown query field(s): %s" (String.concat ", " ks))
  in
  let* qid =
    match Json.member "id" json with
    | Some (Json.Str s) when s <> "" -> Ok s
    | Some _ -> Error "query field \"id\" must be a non-empty string"
    | None -> Error "each entry of \"queries\" needs an \"id\""
  in
  let* payload = parse_payload json in
  let* tenant = parse_tenant json in
  let* weight = field_opt json "weight" ~cast:Json.to_float ~what:"a number" in
  let weight = Option.value weight ~default:1.0 in
  let* () =
    if weight > 0.0 then Ok () else Error "query field \"weight\" must be positive"
  in
  let* arrival = field_opt json "arrival" ~cast:Json.to_float ~what:"a number" in
  let arrival = Option.value arrival ~default:0.0 in
  let* () =
    if arrival >= 0.0 then Ok ()
    else Error "query field \"arrival\" must be non-negative"
  in
  let* slo = field_opt json "slo" ~cast:Json.to_float ~what:"a number" in
  let* () =
    match slo with
    | Some s when s <= 0.0 -> Error "query field \"slo\" must be positive"
    | _ -> Ok ()
  in
  Ok { qid; payload; tenant; weight; arrival; slo }

let parse_allocate json =
  let* () =
    match
      List.filter (fun k -> not (List.mem k alloc_known_keys)) (Json.keys json)
    with
    | [] -> Ok ()
    | ks -> Error (Printf.sprintf "unknown field(s): %s" (String.concat ", " ks))
  in
  let* id =
    match Json.member "id" json with
    | Some (Json.Str s) when s <> "" -> Ok s
    | Some _ -> Error "field \"id\" must be a non-empty string"
    | None -> Error "missing required field \"id\""
  in
  let* budget =
    match Json.member "budget" json with
    | Some v -> (
        match Json.to_int v with
        | Some b when b >= 1 -> Ok b
        | Some _ -> Error "field \"budget\" must be at least 1"
        | None -> Error "field \"budget\" must be an integer")
    | None -> Error "missing required field \"budget\""
  in
  let* queries =
    match Json.member "queries" json with
    | Some (Json.List (_ :: _ as xs)) ->
        List.fold_left
          (fun acc q ->
            let* acc = acc in
            let* q = parse_alloc_query q in
            Ok (q :: acc))
          (Ok []) xs
        |> Result.map List.rev
    | Some (Json.List []) -> Error "field \"queries\" must be non-empty"
    | Some _ -> Error "field \"queries\" must be a list of objects"
    | None -> Error "missing required field \"queries\""
  in
  let* () =
    let seen = Hashtbl.create 16 in
    List.fold_left
      (fun acc (q : alloc_query) ->
        let* () = acc in
        if Hashtbl.mem seen q.qid then
          Error (Printf.sprintf "duplicate query id %S" q.qid)
        else (
          Hashtbl.add seen q.qid ();
          Ok ()))
      (Ok ()) queries
  in
  let* planner_s = field_opt json "planner" ~cast:Json.to_str ~what:"a string" in
  let* planner = planner_of_string (Option.value planner_s ~default:"selinger") in
  let* objective_s = field_opt json "objective" ~cast:Json.to_str ~what:"a string" in
  let* objective = objective_of_string (Option.value objective_s ~default:"balanced") in
  let* fairness = field_opt json "fairness" ~cast:Json.to_float ~what:"a number" in
  let fairness = Option.value fairness ~default:0.0 in
  let* () =
    if fairness >= 0.0 && fairness <= 1.0 then Ok ()
    else Error "field \"fairness\" must be in [0,1]"
  in
  let* search = field_opt json "search" ~cast:Json.to_str ~what:"a string" in
  let search = Option.value search ~default:"auto" in
  let* () =
    if List.mem search search_names then Ok ()
    else
      Error
        (Printf.sprintf "unknown search %S (want %s)" search
           (String.concat "|" search_names))
  in
  let* seed = field_opt json "seed" ~cast:Json.to_int ~what:"an integer" in
  let* engine = field_opt json "engine" ~cast:Json.to_str ~what:"a string" in
  let* engine =
    match Option.value engine ~default:"hive" with
    | ("hive" | "spark") as e -> Ok e
    | s -> Error (Printf.sprintf "unknown engine %S (want hive|spark)" s)
  in
  let* tenant = parse_tenant json in
  Ok
    {
      id;
      queries;
      budget;
      planner;
      objective;
      fairness;
      search;
      seed = Option.value seed ~default:42;
      engine;
      tenant;
    }

(* A health probe is its own tiny grammar ([op] plus an optional [id]), kept
   out of [parse_request] so request parsing — and every caller pinning its
   error catalogue — is untouched. *)
let parse_line s =
  let* json = Json.parse s in
  match Json.member "op" json with
  | None -> (
      match parse_request s with Ok req -> Ok (Request req) | Error e -> Error e)
  | Some (Json.Str "health") ->
      let* () =
        match
          List.filter (fun k -> k <> "op" && k <> "id") (Json.keys json)
        with
        | [] -> Ok ()
        | ks ->
            Error
              (Printf.sprintf "\"op\":\"health\" takes no field(s): %s"
                 (String.concat ", " ks))
      in
      let* id =
        match Json.member "id" json with
        | None -> Ok None
        | Some (Json.Str s) when s <> "" -> Ok (Some s)
        | Some _ -> Error "field \"id\" must be a non-empty string"
      in
      Ok (Health { id })
  | Some (Json.Str "allocate") ->
      let* a = parse_allocate json in
      Ok (Allocate a)
  | Some (Json.Str s) ->
      Error (Printf.sprintf "unknown op %S (want health|allocate)" s)
  | Some _ -> Error "field \"op\" must be a string"

(* ---------- encoding ---------- *)

let request_to_json (r : request) =
  let payload_fields =
    match r.payload with
    | Sql sql -> [ ("sql", Json.Str sql) ]
    | Relations rels -> [ ("relations", Json.List (List.map (fun s -> Json.Str s) rels)) ]
  in
  let mode_fields =
    match r.mode with
    | Raqo -> [ ("mode", Json.Str "raqo") ]
    | Qo res ->
        [
          ("mode", Json.Str "qo");
          ("containers", Json.Num (float_of_int res.Raqo_cluster.Resources.containers));
          ("gb", Json.Num res.Raqo_cluster.Resources.container_gb);
        ]
  in
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Str r.id) ]
       @ payload_fields
       @ [ ("planner", Json.Str (planner_name r.planner)) ]
       @ mode_fields
       @ [ ("seed", Json.Num (float_of_int r.seed)) ]
       @ (if r.adaptive then
            [
              ("adaptive", Json.Bool true);
              ( "est_error",
                Json.Str (Raqo_execsim.Estimation_error.to_string r.est_error) );
            ]
          else [])
       (* Absent when unset so pre-tenant traces keep their bytes. *)
       @ (match r.tenant with None -> [] | Some t -> [ ("tenant", Json.Str t) ])
       @ [ ("engine", Json.Str r.engine) ]))

let outcome_json = function
  | Finished s -> Json.Obj [ ("outcome", Json.Str "done"); ("seconds", Json.Num s) ]
  | Oom stage ->
      Json.Obj [ ("outcome", Json.Str "oom"); ("stage", Json.Num (float_of_int stage)) ]

let response_to_json = function
  | Planned { id; plan; cost; resources; adaptive; rewrite } ->
      let resources_json =
        Json.List
          (List.map
             (fun (c, g) ->
               Json.Obj [ ("containers", Json.Num (float_of_int c)); ("gb", Json.Num g) ])
             resources)
      in
      let adaptive_fields =
        match adaptive with
        | None -> []
        | Some a ->
            [
              ( "adaptive",
                Json.Obj
                  [
                    ("static", outcome_json a.static_outcome);
                    ("adaptive", outcome_json a.adaptive_outcome);
                    ("replans", Json.Num (float_of_int a.replans));
                    ("switches", Json.Num (float_of_int a.switches));
                  ] );
            ]
      in
      (* Absent unless a rule fired, so zero-rewrite responses keep their
         historical bytes (the served-vs-oneshot smoke depends on it). *)
      let rewrite_fields =
        match rewrite with
        | None -> []
        | Some r ->
            [
              ( "rewrite",
                Json.Obj
                  (List.map (fun (rule, n) -> (rule, Json.Num (float_of_int n))) r.fired
                  @ [ ("removed", Json.Num (float_of_int r.removed)) ]) );
            ]
      in
      Json.to_string
        (Json.Obj
           ([
              ("id", Json.Str id);
              ("status", Json.Str "ok");
              ("plan", Json.Str plan);
              ("cost", Json.Num cost);
              ("resources", resources_json);
            ]
           @ adaptive_fields @ rewrite_fields))
  | Health_ok { id; queue_depth; shards; jobs; ready } ->
      let id_field = match id with None -> [] | Some id -> [ ("id", Json.Str id) ] in
      Json.to_string
        (Json.Obj
           (id_field
           @ [
               ("status", Json.Str "ok");
               ("op", Json.Str "health");
               ("queue_depth", Json.Num (float_of_int queue_depth));
               ("shards", Json.Num (float_of_int shards));
               ("jobs", Json.Num (float_of_int jobs));
               ("ready", Json.Bool ready);
             ]))
  | Rejected { id; reason; message } ->
      let id_field = match id with None -> [] | Some id -> [ ("id", Json.Str id) ] in
      Json.to_string
        (Json.Obj
           (id_field
           @ [
               ("status", Json.Str "error");
               ("reason", Json.Str (reason_name reason));
               ("message", Json.Str message);
             ]))
  | Allocated { id; search; budget; frontier; chosen; equal_split; queries } ->
      let point_json (p : alloc_point) =
        Json.Obj
          [
            ("makespan", Json.Num p.makespan);
            ("dollars", Json.Num p.dollars);
            ("violations", Json.Num (float_of_int p.violations));
            ( "containers",
              Json.List (List.map (fun c -> Json.Num (float_of_int c)) p.containers) );
          ]
      in
      let query_json (qid, containers, latency, plan) =
        Json.Obj
          [
            ("id", Json.Str qid);
            ("containers", Json.Num (float_of_int containers));
            ("latency", Json.Num latency);
            ("plan", Json.Str plan);
          ]
      in
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Str id);
             ("status", Json.Str "ok");
             ("op", Json.Str "allocate");
             ("search", Json.Str search);
             ("budget", Json.Num (float_of_int budget));
             ("frontier", Json.List (List.map point_json frontier));
             ("chosen", point_json chosen);
             ("equal_split", point_json equal_split);
             ("queries", Json.List (List.map query_json queries));
           ])

let response_id = function
  | Planned { id; _ } -> Some id
  | Rejected { id; _ } -> id
  | Health_ok { id; _ } -> id
  | Allocated { id; _ } -> Some id

let is_ok = function
  | Planned _ | Health_ok _ | Allocated _ -> true
  | Rejected _ -> false
