type payload = Sql of string | Relations of string list
type mode = Raqo | Qo of Raqo_cluster.Resources.t

type request = {
  id : string;
  payload : payload;
  planner : Raqo.Cost_based.planner_kind;
  mode : mode;
  seed : int;
  adaptive : bool;
  est_error : Raqo_execsim.Estimation_error.t;
  engine : string;
}

type outcome_summary = Finished of float | Oom of int

type adaptive_summary = {
  static_outcome : outcome_summary;
  adaptive_outcome : outcome_summary;
  replans : int;
  switches : int;
}

type reject_reason = Bad_request | Overloaded | Infeasible | Internal
type rewrite_summary = { fired : (string * int) list; removed : int }

type response =
  | Planned of {
      id : string;
      plan : string;
      cost : float;
      resources : (int * float) list;
      adaptive : adaptive_summary option;
      rewrite : rewrite_summary option;
    }
  | Rejected of { id : string option; reason : reject_reason; message : string }
  | Health_ok of {
      id : string option;
      queue_depth : int;
      shards : int;
      jobs : int;
      ready : bool;
    }

type line = Health of { id : string option } | Request of request

let reason_name = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Infeasible -> "infeasible"
  | Internal -> "internal"

let planner_of_string = function
  | "selinger" -> Ok Raqo.Cost_based.Selinger
  | "fast_randomized" -> Ok Raqo.Cost_based.Fast_randomized
  | "bushy_dp" -> Ok Raqo.Cost_based.Bushy_dp
  | s -> Error (Printf.sprintf "unknown planner %S (want selinger|fast_randomized|bushy_dp)" s)

let planner_name = function
  | Raqo.Cost_based.Selinger -> "selinger"
  | Raqo.Cost_based.Fast_randomized -> "fast_randomized"
  | Raqo.Cost_based.Bushy_dp -> "bushy_dp"

(* Strict field whitelist: a typo'd option silently falling back to a default
   would make "bit-identical to the CLI" vacuously true for the wrong plan. *)
let known_keys =
  [ "id"; "sql"; "relations"; "planner"; "mode"; "containers"; "gb"; "seed";
    "adaptive"; "est_error"; "engine" ]

let ( let* ) = Result.bind

let field_opt json key ~cast ~what =
  match Json.member key json with
  | None -> Ok None
  | Some v -> (
      match cast v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S must be %s" key what))

let parse_request line =
  let* json = Json.parse line in
  (match json with Json.Obj _ -> Ok () | _ -> Error "request must be a JSON object")
  |> fun check_obj ->
  let* () = check_obj in
  let* () =
    match List.filter (fun k -> not (List.mem k known_keys)) (Json.keys json) with
    | [] -> Ok ()
    | ks -> Error (Printf.sprintf "unknown field(s): %s" (String.concat ", " ks))
  in
  let* id =
    match Json.member "id" json with
    | Some (Json.Str s) when s <> "" -> Ok s
    | Some _ -> Error "field \"id\" must be a non-empty string"
    | None -> Error "missing required field \"id\""
  in
  let* payload =
    match (Json.member "sql" json, Json.member "relations" json) with
    | Some (Json.Str sql), None -> Ok (Sql sql)
    | None, Some (Json.List xs) ->
        let rels = List.filter_map Json.to_str xs in
        if List.length rels <> List.length xs then
          Error "field \"relations\" must be a list of strings"
        else if rels = [] then Error "field \"relations\" must be non-empty"
        else Ok (Relations rels)
    | None, Some _ -> Error "field \"relations\" must be a list of strings"
    | Some _, None -> Error "field \"sql\" must be a string"
    | Some _, Some _ -> Error "give exactly one of \"sql\" or \"relations\""
    | None, None -> Error "give exactly one of \"sql\" or \"relations\""
  in
  let* planner_s = field_opt json "planner" ~cast:Json.to_str ~what:"a string" in
  let* planner = planner_of_string (Option.value planner_s ~default:"selinger") in
  let* mode_s = field_opt json "mode" ~cast:Json.to_str ~what:"a string" in
  let* containers = field_opt json "containers" ~cast:Json.to_int ~what:"an integer" in
  let* gb = field_opt json "gb" ~cast:Json.to_float ~what:"a number" in
  let* mode =
    match (Option.value mode_s ~default:"raqo", containers, gb) with
    | "raqo", None, None -> Ok Raqo
    | "raqo", _, _ -> Error "\"containers\"/\"gb\" only apply to mode \"qo\""
    | "qo", Some c, Some g -> (
        match Raqo_cluster.Resources.make ~containers:c ~container_gb:g with
        | r -> Ok (Qo r)
        | exception Invalid_argument m -> Error m)
    | "qo", _, _ -> Error "mode \"qo\" requires \"containers\" and \"gb\""
    | s, _, _ -> Error (Printf.sprintf "unknown mode %S (want raqo|qo)" s)
  in
  let* seed = field_opt json "seed" ~cast:Json.to_int ~what:"an integer" in
  let* adaptive = field_opt json "adaptive" ~cast:Json.to_bool ~what:"a boolean" in
  let adaptive = Option.value adaptive ~default:false in
  let* est_error_s = field_opt json "est_error" ~cast:Json.to_str ~what:"a string" in
  let* () =
    if est_error_s <> None && not adaptive then
      Error "\"est_error\" requires \"adaptive\":true"
    else Ok ()
  in
  let* est_error =
    match est_error_s with
    | None -> Ok Raqo_execsim.Estimation_error.exact
    | Some s -> Raqo_execsim.Estimation_error.of_string s
  in
  let* engine = field_opt json "engine" ~cast:Json.to_str ~what:"a string" in
  let* engine =
    match Option.value engine ~default:"hive" with
    | ("hive" | "spark") as e -> Ok e
    | s -> Error (Printf.sprintf "unknown engine %S (want hive|spark)" s)
  in
  let* () =
    match (mode, adaptive) with
    | Qo _, true -> Error "\"adaptive\" does not apply to mode \"qo\""
    | _ -> Ok ()
  in
  Ok
    {
      id;
      payload;
      planner;
      mode;
      seed = Option.value seed ~default:42;
      adaptive;
      est_error;
      engine;
    }

(* A health probe is its own tiny grammar ([op] plus an optional [id]), kept
   out of [parse_request] so request parsing — and every caller pinning its
   error catalogue — is untouched. *)
let parse_line s =
  let* json = Json.parse s in
  match Json.member "op" json with
  | None -> (
      match parse_request s with Ok req -> Ok (Request req) | Error e -> Error e)
  | Some (Json.Str "health") ->
      let* () =
        match
          List.filter (fun k -> k <> "op" && k <> "id") (Json.keys json)
        with
        | [] -> Ok ()
        | ks ->
            Error
              (Printf.sprintf "\"op\":\"health\" takes no field(s): %s"
                 (String.concat ", " ks))
      in
      let* id =
        match Json.member "id" json with
        | None -> Ok None
        | Some (Json.Str s) when s <> "" -> Ok (Some s)
        | Some _ -> Error "field \"id\" must be a non-empty string"
      in
      Ok (Health { id })
  | Some (Json.Str s) -> Error (Printf.sprintf "unknown op %S (want health)" s)
  | Some _ -> Error "field \"op\" must be a string"

(* ---------- encoding ---------- *)

let request_to_json (r : request) =
  let payload_fields =
    match r.payload with
    | Sql sql -> [ ("sql", Json.Str sql) ]
    | Relations rels -> [ ("relations", Json.List (List.map (fun s -> Json.Str s) rels)) ]
  in
  let mode_fields =
    match r.mode with
    | Raqo -> [ ("mode", Json.Str "raqo") ]
    | Qo res ->
        [
          ("mode", Json.Str "qo");
          ("containers", Json.Num (float_of_int res.Raqo_cluster.Resources.containers));
          ("gb", Json.Num res.Raqo_cluster.Resources.container_gb);
        ]
  in
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Str r.id) ]
       @ payload_fields
       @ [ ("planner", Json.Str (planner_name r.planner)) ]
       @ mode_fields
       @ [ ("seed", Json.Num (float_of_int r.seed)) ]
       @ (if r.adaptive then
            [
              ("adaptive", Json.Bool true);
              ( "est_error",
                Json.Str (Raqo_execsim.Estimation_error.to_string r.est_error) );
            ]
          else [])
       @ [ ("engine", Json.Str r.engine) ]))

let outcome_json = function
  | Finished s -> Json.Obj [ ("outcome", Json.Str "done"); ("seconds", Json.Num s) ]
  | Oom stage ->
      Json.Obj [ ("outcome", Json.Str "oom"); ("stage", Json.Num (float_of_int stage)) ]

let response_to_json = function
  | Planned { id; plan; cost; resources; adaptive; rewrite } ->
      let resources_json =
        Json.List
          (List.map
             (fun (c, g) ->
               Json.Obj [ ("containers", Json.Num (float_of_int c)); ("gb", Json.Num g) ])
             resources)
      in
      let adaptive_fields =
        match adaptive with
        | None -> []
        | Some a ->
            [
              ( "adaptive",
                Json.Obj
                  [
                    ("static", outcome_json a.static_outcome);
                    ("adaptive", outcome_json a.adaptive_outcome);
                    ("replans", Json.Num (float_of_int a.replans));
                    ("switches", Json.Num (float_of_int a.switches));
                  ] );
            ]
      in
      (* Absent unless a rule fired, so zero-rewrite responses keep their
         historical bytes (the served-vs-oneshot smoke depends on it). *)
      let rewrite_fields =
        match rewrite with
        | None -> []
        | Some r ->
            [
              ( "rewrite",
                Json.Obj
                  (List.map (fun (rule, n) -> (rule, Json.Num (float_of_int n))) r.fired
                  @ [ ("removed", Json.Num (float_of_int r.removed)) ]) );
            ]
      in
      Json.to_string
        (Json.Obj
           ([
              ("id", Json.Str id);
              ("status", Json.Str "ok");
              ("plan", Json.Str plan);
              ("cost", Json.Num cost);
              ("resources", resources_json);
            ]
           @ adaptive_fields @ rewrite_fields))
  | Health_ok { id; queue_depth; shards; jobs; ready } ->
      let id_field = match id with None -> [] | Some id -> [ ("id", Json.Str id) ] in
      Json.to_string
        (Json.Obj
           (id_field
           @ [
               ("status", Json.Str "ok");
               ("op", Json.Str "health");
               ("queue_depth", Json.Num (float_of_int queue_depth));
               ("shards", Json.Num (float_of_int shards));
               ("jobs", Json.Num (float_of_int jobs));
               ("ready", Json.Bool ready);
             ]))
  | Rejected { id; reason; message } ->
      let id_field = match id with None -> [] | Some id -> [ ("id", Json.Str id) ] in
      Json.to_string
        (Json.Obj
           (id_field
           @ [
               ("status", Json.Str "error");
               ("reason", Json.Str (reason_name reason));
               ("message", Json.Str message);
             ]))

let response_id = function
  | Planned { id; _ } -> Some id
  | Rejected { id; _ } -> id
  | Health_ok { id; _ } -> id

let is_ok = function Planned _ | Health_ok _ -> true | Rejected _ -> false
