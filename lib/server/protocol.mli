(** The line protocol of the resident optimizer: one JSON object per line in,
    one JSON object per line out, in request order. The wire format is strict
    — unknown fields are rejected, not ignored — because a silently-dropped
    option would undermine the served-vs-oneshot bit-identity contract.

    Request fields ([id] and exactly one of [sql]/[relations] required, the
    rest optional):

    {v
    {"id":"q1","sql":"select * from orders, lineitem where ...",
     "planner":"selinger|fast_randomized|bushy_dp",   // default selinger
     "mode":"raqo|qo",                                 // default raqo
     "containers":40,"gb":4.0,                         // qo mode only
     "seed":42, "adaptive":false, "est_error":"none",  // see Estimation_error.of_string
     "engine":"hive|spark"}                            // default hive
    v}

    Responses: [{"id":...,"status":"ok","plan":...,"cost":...,"resources":
    [{"containers":..,"gb":..},...]}] plus an ["adaptive"] summary when
    requested and a ["rewrite"] summary (per-rule fired counts + relations
    removed) when a logical rewrite changed the query, or
    [{"id":...,"status":"error","reason":
    "bad_request|overloaded|infeasible|internal","message":...}].

    Health probes: [{"op":"health"}] (optional ["id"]) answers immediately —
    without queueing — with [{"status":"ok","op":"health","queue_depth":N,
    "shards":N,"jobs":N,"ready":true}]: readiness with no wall-clock field,
    so probe responses are deterministic. Parse request-or-probe lines with
    {!parse_line}.

    Workload allocation: [{"op":"allocate","id":...,"budget":N,"queries":
    [{"id":...,"relations":[...] or "sql":...,"tenant":...,"weight":...,
    "arrival":...,"slo":...},...],"planner":...,"objective":
    "makespan|cost|balanced","fairness":0..1,"search":"exact|randomized|auto",
    "seed":...,"engine":...,"tenant":...}] plans every member query jointly,
    builds its latency/cost response surface, and answers with the Pareto
    frontier of joint allocations under the global container [budget]:
    [{"id":...,"status":"ok","op":"allocate","search":<mode that ran>,
    "budget":N,"frontier":[{"makespan":..,"dollars":..,"violations":..,
    "containers":[..]},...],"chosen":...,"equal_split":...,"queries":
    [{"id":..,"containers":..,"latency":..,"plan":..},...]}]. *)

type payload = Sql of string | Relations of string list

type mode =
  | Raqo  (** joint query/resource optimization (the paper's planner) *)
  | Qo of Raqo_cluster.Resources.t  (** query-only baseline at fixed resources *)

type request = {
  id : string;
  payload : payload;
  planner : Raqo.Cost_based.planner_kind;
  mode : mode;
  seed : int;
  adaptive : bool;  (** run the boundary re-optimizing executor too *)
  est_error : Raqo_execsim.Estimation_error.t;  (** planner-visible misestimation *)
  engine : string;  (** ["hive"] or ["spark"]: cost model + simulator profile *)
  tenant : string option;  (** admission-accounting label; [None] = "default" *)
}

type outcome_summary = Finished of float  (** seconds *) | Oom of int  (** failing stage *)

type adaptive_summary = {
  static_outcome : outcome_summary;
  adaptive_outcome : outcome_summary;
  replans : int;
  switches : int;
}

type reject_reason =
  | Bad_request  (** unparseable or invalid request line *)
  | Overloaded  (** admission queue full — retry later (backpressure) *)
  | Infeasible  (** no joint plan fits the cluster conditions *)
  | Internal  (** planner raised; the server survives *)

type rewrite_summary = {
  fired : (string * int) list;  (** nonzero per-rule fired counts, rule order *)
  removed : int;  (** relations absorbed out of the join *)
}

(** What an allocate request minimizes when picking its [chosen] point off
    the frontier (the whole frontier is always returned). *)
type objective = Makespan | Dollars | Balanced

val objective_of_string : string -> (objective, string) result
val objective_name : objective -> string

(** Valid ["search"] values: ["exact"], ["randomized"], ["auto"]. *)
val search_names : string list

type alloc_query = {
  qid : string;
  payload : payload;
  tenant : string option;
  weight : float;  (** fairness share, > 0 (default 1.0) *)
  arrival : float;  (** seconds, >= 0 (default 0.0) *)
  slo : float option;  (** latency bound in seconds, > 0 *)
}

type alloc_request = {
  id : string;
  queries : alloc_query list;  (** non-empty, unique ids *)
  budget : int;  (** global container budget, >= 1 *)
  planner : Raqo.Cost_based.planner_kind;
  objective : objective;
  fairness : float;  (** floor knob in [0,1] (default 0.0) *)
  search : string;  (** one of {!search_names} (default ["auto"]) *)
  seed : int;
  engine : string;
  tenant : string option;  (** default tenant for queries that name none *)
}

type alloc_point = {
  containers : int list;  (** per query, request order *)
  makespan : float;
  dollars : float;
  violations : int;
}

type response =
  | Planned of {
      id : string;
      plan : string;  (** rendered joint plan, e.g. [((a BHJ b) SMJ c)] *)
      cost : float;  (** estimated cost (seconds) — bit-exact wire float *)
      resources : (int * float) list;  (** (containers, GB) per join, bottom-up *)
      adaptive : adaptive_summary option;
      rewrite : rewrite_summary option;
          (** present iff a logical rewrite rule fired on this query *)
    }
  | Rejected of { id : string option; reason : reject_reason; message : string }
  | Health_ok of {
      id : string option;
      queue_depth : int;
      shards : int;  (** shared plan-cache stripes *)
      jobs : int;  (** pool parallelism *)
      ready : bool;
    }
  | Allocated of {
      id : string;
      search : string;  (** the mode that actually ran (auto may fall back) *)
      budget : int;
      frontier : alloc_point list;  (** non-dominated, best makespan first *)
      chosen : alloc_point;  (** per the request's objective *)
      equal_split : alloc_point;  (** naive baseline for comparison *)
      queries : (string * int * float * string) list;
          (** (qid, chosen containers, latency at that cap, plan) *)
    }

(** One wire line: a health probe, a plan request, or an allocate request. *)
type line =
  | Health of { id : string option }
  | Request of request
  | Allocate of alloc_request

val reason_name : reject_reason -> string
val planner_of_string : string -> (Raqo.Cost_based.planner_kind, string) result
val planner_name : Raqo.Cost_based.planner_kind -> string

(** [parse_request line] parses one request line, strictly. A health probe
    is not a request; use {!parse_line} where probes are legal. *)
val parse_request : string -> (request, string) result

(** [parse_line line] parses a request or an [{"op":"health"}] probe. *)
val parse_line : string -> (line, string) result

(** [request_to_json r] renders [r] as one line (no newline); round-trips
    through {!parse_request} — the trace generator writes traces with it. *)
val request_to_json : request -> string

(** [response_to_json r] renders one response line (no newline). Floats use
    the shortest round-trip encoding, so equal plans yield equal bytes. *)
val response_to_json : response -> string

val response_id : response -> string option
val is_ok : response -> bool
