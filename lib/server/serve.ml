(* The I/O loop: line-delimited JSON over stdio or a TCP socket.

   The driver alternates between slurping whatever request lines are already
   readable (admitting each into the engine's bounded queue, answering
   malformed or overflowing ones immediately with a typed rejection) and
   planning one wave on the domain pool. Reading is greedy: under overload
   the queue fills and excess requests get [overloaded] responses right
   away — bounded memory and a signal the client can back off on, never
   unbounded queueing. *)

type reader = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable pending : string;
  mutable eof : bool;
}

let reader fd = { fd; chunk = Bytes.create 8192; pending = ""; eof = false }

let fd_ready fd =
  match Unix.select [ fd ] [] [] 0.0 with
  | [], _, _ -> false
  | _ -> true

let take_line r =
  match String.index_opt r.pending '\n' with
  | Some i ->
      let line = String.sub r.pending 0 i in
      r.pending <- String.sub r.pending (i + 1) (String.length r.pending - i - 1);
      Some line
  | None ->
      if r.eof && r.pending <> "" then begin
        let line = r.pending in
        r.pending <- "";
        Some line
      end
      else None

let refill ~block r =
  if r.eof then false
  else if block || fd_ready r.fd then begin
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 ->
        r.eof <- true;
        false
    | n ->
        r.pending <- r.pending ^ Bytes.sub_string r.chunk 0 n;
        true
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        r.eof <- true;
        false
  end
  else false

(* [next_line ~block r] is the next complete line; with [block] it waits for
   one (or EOF), without it returns [None] as soon as reading would block. *)
let rec next_line ~block r =
  match take_line r with
  | Some line -> Some line
  | None -> if refill ~block r then next_line ~block r else None

(* Once [read] returned 0 the stream is over; [select] keeps marking an
   EOF'd fd readable, so probing it here again would spin. *)
let at_eof r = r.eof && r.pending = ""

(* ---------- the loop ---------- *)

let bad_request message =
  Protocol.Rejected { id = None; reason = Protocol.Bad_request; message }

(* Parse and admit one line; [Some response] must be answered immediately.
   Health probes bypass the queue entirely — a readiness check must answer
   even when the admission queue is full. Allocate requests are planned
   synchronously at admission: a global allocation is one indivisible
   decision over its whole query batch, so it never enters the per-request
   queue. *)
let admit engine line =
  if String.trim line = "" then None
  else
    match Protocol.parse_line line with
    | Error message -> Some (bad_request message)
    | Ok (Protocol.Health { id }) -> Some (Engine.health engine ~id)
    | Ok (Protocol.Allocate areq) -> Some (Engine.allocate engine areq)
    | Ok (Protocol.Request req) -> Engine.submit engine req

let run engine ~in_fd ~out_fd =
  let r = reader in_fd in
  let out = Buffer.create 4096 in
  let emit response =
    Buffer.add_string out (Protocol.response_to_json response);
    Buffer.add_char out '\n'
  in
  let flush_out () =
    if Buffer.length out > 0 then begin
      let s = Buffer.contents out in
      Buffer.clear out;
      let rec write off len =
        if len > 0 then begin
          let n = Unix.write_substring out_fd s off len in
          write (off + n) (len - n)
        end
      in
      write 0 (String.length s)
    end
  in
  let handle line = Option.iter emit (admit engine line) in
  let rec loop () =
    (* Block for input only when there is no queued work to make progress
       on; otherwise just sweep up what's already readable. *)
    let block = Engine.queue_depth engine = 0 in
    (match next_line ~block r with
    | Some line ->
        handle line;
        let rec burst () =
          match next_line ~block:false r with
          | Some line ->
              handle line;
              burst ()
          | None -> ()
        in
        burst ()
    | None -> ());
    let wave = Engine.process_wave engine in
    List.iter (fun (_req, response) -> emit response) wave;
    flush_out ();
    if (not (at_eof r)) || Engine.queue_depth engine > 0 then loop ()
  in
  try loop () with
  | Unix.Unix_error (Unix.EPIPE, _, _) -> ()
  | Sys_error _ -> ()

let serve_stdio engine = run engine ~in_fd:Unix.stdin ~out_fd:Unix.stdout

let serve_tcp ?max_connections engine ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 16;
  let actual_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  Printf.eprintf "raqo serve: listening on 127.0.0.1:%d\n%!" actual_port;
  let rec accept_loop served =
    match max_connections with
    | Some n when served >= n -> ()
    | _ ->
        let conn, _addr = Unix.accept sock in
        (try run engine ~in_fd:conn ~out_fd:conn
         with e ->
           Printf.eprintf "raqo serve: connection error: %s\n%!" (Printexc.to_string e));
        (try Unix.close conn with Unix.Unix_error _ -> ());
        accept_loop (served + 1)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () -> accept_loop 0)

(* In-memory variant with the same semantics as [run] fed by a client that
   writes every line before reading — the unit tests' entry point. *)
let serve_lines engine lines =
  let out = ref [] in
  let emit response = out := Protocol.response_to_json response :: !out in
  List.iter (fun line -> Option.iter emit (admit engine line)) lines;
  let rec waves () =
    match Engine.process_wave engine with
    | [] -> ()
    | wave ->
        List.iter (fun (_req, response) -> emit response) wave;
        waves ()
  in
  waves ();
  List.rev !out
