(** The serve loop: line-delimited JSON requests in, one response line per
    request out (see {!Protocol}), over stdio or a loopback TCP socket.

    Responses for admitted requests come back in admission order; malformed
    lines and admission-queue overflows are answered immediately with typed
    [bad_request] / [overloaded] rejections (they may therefore appear ahead
    of earlier admitted requests — correlate by [id]). Blank lines are
    ignored. The loop plans a wave on the engine's pool whenever no new
    input is immediately readable, and exits once input reaches EOF and the
    queue is drained. *)

(** [run engine ~in_fd ~out_fd] serves until EOF on [in_fd]. *)
val run : Engine.t -> in_fd:Unix.file_descr -> out_fd:Unix.file_descr -> unit

(** [serve_stdio engine] is {!run} over stdin/stdout. *)
val serve_stdio : Engine.t -> unit

(** [serve_tcp ?max_connections engine ~port] accepts loopback connections
    (sequentially) and serves each until its EOF; [port] 0 picks an
    ephemeral port (logged to stderr). Runs forever unless
    [max_connections] bounds it. *)
val serve_tcp : ?max_connections:int -> Engine.t -> port:int -> unit

(** [serve_lines engine lines] is the in-memory equivalent of a client that
    writes all [lines] then reads: admit everything (collecting immediate
    rejections), then drain waves. Response lines in emission order. *)
val serve_lines : Engine.t -> string list -> string list
