(* Heavy-tailed request traces for the serve bench and smoke tests.

   Arrivals come from the cluster queue simulator's workload generator
   (Poisson interarrivals, Pareto runtimes) — the same process behind the
   paper's Figure 1 queue — so the served load has realistic bursts rather
   than a uniform drip. Each arrival is mapped to a planning request drawn
   from a TPC-H mix: the SQL evaluation queries plus join-graph specs over
   the Section VII relation sets, across planner kinds and modes. *)

(* SQL texts resolvable against the TPC-H catalog; selections vary the
   filter-scaled schema, so distinct entries exercise distinct cache keys
   while repeats of one entry hit the shared plan cache. *)
let sql_pool =
  [|
    "select * from orders, lineitem where o_orderkey = l_orderkey";
    "select * from customer, orders, lineitem where c_custkey = o_custkey and \
     o_orderkey = l_orderkey";
    "select * from customer, orders, lineitem where c_custkey = o_custkey and \
     o_orderkey = l_orderkey and o_totalprice < 50000";
    "select * from customer, orders, lineitem, supplier where c_custkey = o_custkey \
     and o_orderkey = l_orderkey and l_suppkey = s_suppkey";
    "select * from part, lineitem, orders where p_partkey = l_partkey and \
     l_orderkey = o_orderkey";
    "select * from part, lineitem, orders where p_partkey = l_partkey and \
     l_orderkey = o_orderkey and p_retailprice < 1500";
  |]

let relations_pool =
  Array.of_list (List.map snd Raqo_catalog.Tpch.evaluation_queries)

let planners =
  [| Raqo.Cost_based.Selinger; Raqo.Cost_based.Bushy_dp; Raqo.Cost_based.Fast_randomized |]

let request_of rng i : Protocol.request =
  let payload =
    if Raqo_util.Rng.bool rng then Protocol.Sql (Raqo_util.Rng.pick rng sql_pool)
    else Protocol.Relations (Raqo_util.Rng.pick rng relations_pool)
  in
  let mode =
    (* Mostly joint optimization; a qo baseline sprinkled in. *)
    if Raqo_util.Rng.int rng 8 = 0 then
      Protocol.Qo (Raqo_cluster.Resources.make ~containers:20 ~container_gb:4.0)
    else Protocol.Raqo
  in
  {
    Protocol.id = Printf.sprintf "t%04d" i;
    payload;
    planner = Raqo_util.Rng.pick rng planners;
    mode;
    (* A handful of distinct seeds: repeated seeds make the randomized
       planner's cache keys collide across requests (cross-query hits). *)
    seed = 42 + Raqo_util.Rng.int rng 4;
    adaptive = false;
    est_error = Raqo_execsim.Estimation_error.exact;
    engine = "hive";
    tenant = None;
  }

let generate ?(seed = 7) ?(arrival_rate = 2.0) ~requests () =
  if requests < 1 then invalid_arg "Trace_gen.generate: requests must be >= 1";
  if arrival_rate <= 0.0 then invalid_arg "Trace_gen.generate: arrival_rate must be > 0";
  let rng = Raqo_util.Rng.create seed in
  let workload =
    { Raqo_cluster.Queue_sim.default_workload with jobs = requests; arrival_rate }
  in
  let jobs = Raqo_cluster.Queue_sim.generate rng workload ~capacity:100 in
  List.mapi
    (fun i (job : Raqo_cluster.Queue_sim.job) -> (job.arrival, request_of rng i))
    jobs

let to_lines trace =
  List.map
    (fun (arrival, req) ->
      Printf.sprintf "%s %s" (Raqo_obs.Export.fmt_float arrival)
        (Protocol.request_to_json req))
    trace

let parse_line line =
  match String.index_opt line ' ' with
  | None -> Error "trace line must be \"<arrival-seconds> <request-json>\""
  | Some i -> (
      let arrival_s = String.sub line 0 i in
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      match float_of_string_opt arrival_s with
      | None -> Error (Printf.sprintf "bad arrival time %S" arrival_s)
      | Some arrival ->
          Result.map (fun req -> (arrival, req)) (Protocol.parse_request rest))
