(** Heavy-tailed request traces for the sustained-throughput bench and the
    served-vs-oneshot smoke test. Arrivals reuse the Poisson/Pareto workload
    generator behind {!Raqo_cluster.Queue_sim} (the paper's Figure 1 queue);
    requests mix the TPC-H SQL evaluation queries, Section VII join-graph
    specs, the three planner kinds, and an occasional query-only baseline.
    Deterministic in [seed]. *)

(** [generate ?seed ?arrival_rate ~requests ()] draws [requests] arrivals
    ([arrival_rate] per second, default 2.0) paired with planning requests,
    in arrival order starting at time 0. *)
val generate :
  ?seed:int -> ?arrival_rate:float -> requests:int -> unit -> (float * Protocol.request) list

(** [to_lines trace] renders ["<arrival-seconds> <request-json>"] lines;
    {!parse_line} round-trips them (the CLI's [--gen-trace] format). *)
val to_lines : (float * Protocol.request) list -> string list

val parse_line : string -> (float * Protocol.request, string) result
