module Schema = Raqo_catalog.Schema
module Column = Raqo_catalog.Column
module Histogram = Raqo_catalog.Histogram

type analyzed = {
  statement : Ast.select;
  relations : string list;
  schema : Schema.t;
  join_predicates : (string * string) list;
  table_selectivity : (string * float) list;
  projected_tables : string list option;
}

let ( let* ) r f = Result.bind r f

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = collect f rest in
      Ok (y :: ys)

(* FROM clause: validate tables, build the alias map. *)
let resolve_tables schema tables =
  let* resolved =
    collect
      (fun (name, alias) ->
        if Schema.mem schema name then Ok (name, alias)
        else Error (Printf.sprintf "unknown table %s" name))
      tables
  in
  let names = List.map fst resolved in
  if List.length (List.sort_uniq compare names) <> List.length names then
    Error "a table appears twice in FROM (self-joins are not supported)"
  else begin
    let alias_map =
      List.concat_map
        (fun (name, alias) ->
          (name, name) :: (match alias with Some a -> [ (a, name) ] | None -> []))
        resolved
    in
    Ok (names, alias_map)
  end

(* A column reference to its (table, column stats). *)
let resolve_column columns alias_map from_tables (c : Ast.column_ref) =
  let* table =
    match c.Ast.table with
    | Some qualifier -> begin
        match List.assoc_opt qualifier alias_map with
        | Some table -> Ok (Some table)
        | None -> Error (Printf.sprintf "unknown table or alias %s" qualifier)
      end
    | None -> Ok None
  in
  let* col = Column.find columns ?table c.Ast.column in
  if List.mem col.Column.table from_tables then Ok col
  else
    Error
      (Printf.sprintf "column %s belongs to %s, which is not in FROM" c.Ast.column
         col.Column.table)

let literal_value (col : Column.t) = function
  | Ast.Number v -> Ok v
  | Ast.Str s ->
      (* Categorical string literals: position the value inside the
         histogram range by hashing, so equality selects 1/distinct. *)
      let h = float_of_int (Hashtbl.hash s mod 1000) /. 1000.0 in
      let lo = Histogram.min_value col.Column.histogram in
      let hi = Histogram.max_value col.Column.histogram in
      Ok (lo +. (h *. (hi -. lo)))

let filter_selectivity (col : Column.t) op value =
  let h = col.Column.histogram in
  match (op : Ast.comparison) with
  | Ast.Lt -> Histogram.selectivity_lt h value
  | Ast.Le -> Histogram.selectivity_le h value
  | Ast.Gt -> Histogram.selectivity_gt h value
  | Ast.Ge -> Histogram.selectivity_ge h value
  | Ast.Eq -> Histogram.selectivity_eq h ~distinct:col.Column.distinct value
  | Ast.Neq -> 1.0 -. Histogram.selectivity_eq h ~distinct:col.Column.distinct value

let flip = function
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le
  | (Ast.Eq | Ast.Neq) as op -> op

(* Each predicate contributes either a join pair or a per-table filter. *)
type contribution = Join of string * string | Filter of string * float

let resolve_predicate schema columns alias_map from_tables p =
  let col = resolve_column columns alias_map from_tables in
  match (p : Ast.predicate) with
  | Ast.Compare (Ast.Eq, Ast.Col a, Ast.Col b) ->
      let* ca = col a in
      let* cb = col b in
      if ca.Column.table = cb.Column.table then
        Error
          (Format.asprintf "predicate %a compares columns of the same table" Ast.pp_predicate p)
      else begin
        match
          Raqo_catalog.Join_graph.selectivity (Schema.graph schema) ca.Column.table
            cb.Column.table
        with
        | Some _ -> Ok (Join (ca.Column.table, cb.Column.table))
        | None ->
            Error
              (Printf.sprintf "%s and %s have no join edge in the schema" ca.Column.table
                 cb.Column.table)
      end
  | Ast.Compare (op, Ast.Col a, Ast.Col b) ->
      let* _ = col a in
      let* _ = col b in
      ignore op;
      Error
        (Format.asprintf "only equality joins are supported, got %a" Ast.pp_predicate p)
  | Ast.Compare (op, Ast.Col a, Ast.Lit l) ->
      let* ca = col a in
      let* v = literal_value ca l in
      Ok (Filter (ca.Column.table, filter_selectivity ca op v))
  | Ast.Compare (op, Ast.Lit l, Ast.Col a) ->
      let* ca = col a in
      let* v = literal_value ca l in
      Ok (Filter (ca.Column.table, filter_selectivity ca (flip op) v))
  | Ast.Compare (_, Ast.Lit _, Ast.Lit _) ->
      Error "predicates between two literals are not supported"
  | Ast.Between (a, lo, hi) ->
      let* ca = col a in
      let* vlo = literal_value ca lo in
      let* vhi = literal_value ca hi in
      Ok
        (Filter
           (ca.Column.table, Histogram.selectivity_between ca.Column.histogram ~lo:vlo ~hi:vhi))

let analyze schema columns sql =
  let* statement = Parser.parse sql in
  let* from_tables, alias_map = resolve_tables schema statement.Ast.tables in
  let* projected =
    collect (resolve_column columns alias_map from_tables) statement.Ast.projections
  in
  (* Which FROM tables the output actually reads: [None] for SELECT *
     (everything), otherwise the tables owning a projected column, in FROM
     order — the logical rewriter may absorb or narrow the others. *)
  let projected_tables =
    match statement.Ast.projections with
    | [] -> None
    | _ :: _ ->
        Some
          (List.filter
             (fun table ->
               List.exists (fun (c : Column.t) -> c.Column.table = table) projected)
             from_tables)
  in
  let* contributions =
    collect (resolve_predicate schema columns alias_map from_tables) statement.Ast.where
  in
  let join_predicates =
    List.filter_map (function Join (a, b) -> Some (a, b) | Filter _ -> None) contributions
  in
  let table_selectivity =
    List.map
      (fun table ->
        let s =
          List.fold_left
            (fun acc c ->
              match c with
              | Filter (t, sel) when t = table -> acc *. sel
              | Filter _ | Join _ -> acc)
            1.0 contributions
        in
        (table, s))
      from_tables
  in
  (* Scale filtered base relations; keep at least one row. *)
  let scaled_schema =
    List.fold_left
      (fun s (table, sel) ->
        if sel >= 1.0 then s
        else begin
          let r = Schema.find s table in
          let factor = Float.max (1.0 /. r.Raqo_catalog.Relation.rows) sel in
          Schema.with_relation s (Raqo_catalog.Relation.scale r factor)
        end)
      schema table_selectivity
  in
  (* The FROM tables must be connected by the *declared* join predicates —
     tables that merely could join in the schema but lack a predicate in
     WHERE are a cartesian product. *)
  let connected_by_predicates () =
    match from_tables with
    | [] | [ _ ] -> true
    | first :: _ ->
        let module S = Set.Make (String) in
        let rec grow seen =
          let next =
            List.fold_left
              (fun acc (a, b) ->
                if S.mem a acc && not (S.mem b acc) then S.add b acc
                else if S.mem b acc && not (S.mem a acc) then S.add a acc
                else acc)
              seen join_predicates
          in
          if S.equal next seen then seen else grow next
        in
        S.cardinal (grow (S.singleton first)) = List.length from_tables
  in
  if not (connected_by_predicates ()) then
    Error "FROM tables are not all connected by join predicates (cartesian product)"
  else
    Ok
      {
        statement;
        relations = from_tables;
        schema = scaled_schema;
        join_predicates;
        table_selectivity;
        projected_tables;
      }
