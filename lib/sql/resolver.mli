(** Semantic analysis: from a parsed SELECT to what the optimizer consumes —
    the set of relations to join and a schema whose base-relation
    cardinalities have been scaled by the WHERE clause's filter
    selectivities (estimated from column histograms). This is exactly how
    the paper's "sampled orders" experiments arise from declarative input:
    a range predicate on orders shrinks the optimizer's view of the table. *)

type analyzed = {
  statement : Ast.select;
  relations : string list;  (** tables to join, FROM order *)
  schema : Raqo_catalog.Schema.t;  (** filter-scaled cardinalities *)
  join_predicates : (string * string) list;  (** resolved equi-join pairs *)
  table_selectivity : (string * float) list;
      (** per-table product of filter selectivities (1.0 when unfiltered) *)
  projected_tables : string list option;
      (** FROM tables the projection list reads, in FROM order; [None] for
          SELECT * (every table referenced) *)
}

(** [analyze schema columns sql] parses and resolves [sql]. Errors cover:
    unknown tables/columns, ambiguous bare columns, join predicates without
    a join-graph edge, filters on tables absent from FROM, cartesian
    products, and unsupported predicate forms. *)
val analyze :
  Raqo_catalog.Schema.t ->
  Raqo_catalog.Column.catalog ->
  string ->
  (analyzed, string) result
