type t = { invariant : string; detail : string }

let v ~invariant fmt = Format.kasprintf (fun detail -> { invariant; detail }) fmt
let tag prefix d = { d with detail = prefix ^ ": " ^ d.detail }
let to_string d = Printf.sprintf "[%s] %s" d.invariant d.detail
let pp fmt d = Format.pp_print_string fmt (to_string d)

let render ds =
  String.concat "" (List.map (fun d -> "  " ^ to_string d ^ "\n") ds)
