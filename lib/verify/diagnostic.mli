(** Structured verification diagnostics. Every checker in this library
    reports violations as a list of these — never a bare [bool] — so a
    failing fuzz seed can print exactly which invariant broke and how. *)

type t = {
  invariant : string;
      (** stable slash-separated identifier, e.g. ["tree/duplicate-leaf"],
          ["oracle/memo-vs-plain"] — grep-able across runs *)
  detail : string;  (** human-readable specifics: values, names, deltas *)
}

(** [v ~invariant fmt ...] builds a diagnostic with a formatted detail. *)
val v : invariant:string -> ('a, Format.formatter, unit, t) format4 -> 'a

(** [tag prefix d] prefixes [d]'s detail with a context label (e.g. the
    oracle arm that produced the offending plan). *)
val tag : string -> t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [render ds] is one line per diagnostic, each indented by two spaces. *)
val render : t list -> string
