module Schema = Raqo_catalog.Schema
module Estimation_error = Raqo_execsim.Estimation_error
module D = Diagnostic

type report = {
  instance : Oracle.instance;
  minimized : string list;
  minimized_dist : string option;
  diagnostics : D.t list;
}

(* Greedy delta-debugging over the query's relation set: repeatedly try to
   drop one relation; keep a drop when the smaller query is still connected
   (otherwise no planner accepts it) and still fails the oracle. Terminates:
   every accepted drop shrinks the set. *)
let shrink_with check (t : Oracle.instance) =
  let still_fails rels =
    rels <> []
    && Schema.joinable t.Oracle.schema rels
    && check (Oracle.with_relations t rels) <> []
  in
  let rec pass rels =
    let rec try_drop kept = function
      | [] -> None
      | r :: rest ->
          let candidate = List.rev_append kept rest in
          if still_fails candidate then Some candidate else try_drop (r :: kept) rest
    in
    match try_drop [] rels with
    | Some smaller -> pass smaller
    | None -> rels
  in
  let minimized = pass t.Oracle.relations in
  (minimized, check (Oracle.with_relations t minimized))

(* The default (non-adaptive) oracle: the cross-planner arms plus the
   workload-allocator arm. [check_alloc] derives its workload from the
   instance's schema, not its relation list, so it shrinks trivially — but
   running it here keeps any allocator diagnostic reproducible from the
   minimized report. *)
let check_full ?jobs ?fault t = Oracle.check ?jobs ?fault t @ Oracle.check_alloc ?jobs t

let shrink ?jobs ?fault (t : Oracle.instance) =
  shrink_with (fun t -> check_full ?jobs ?fault t) t

(* Adaptive shrinking minimizes along two dimensions: first the relation
   set (checking all error distributions), then the error-seed dimension —
   isolate a single distribution that still fails on the minimized query, so
   the repro names one exact (distribution, seed) error pattern. *)
let shrink_adaptive ?jobs ?fault (t : Oracle.instance) =
  let minimized, diagnostics =
    shrink_with (fun t -> Oracle.check_adaptive ?jobs ?fault t) t
  in
  let small = Oracle.with_relations t minimized in
  let dist =
    List.find_opt
      (fun d -> Oracle.check_adaptive ?jobs ~dists:[ d ] ?fault small <> [])
      Oracle.adaptive_dists
  in
  match dist with
  | None -> (minimized, None, diagnostics)
  | Some d ->
      let error = Estimation_error.make d ~seed:(Oracle.adaptive_error_seed t.Oracle.seed) in
      ( minimized,
        Some (Estimation_error.to_string error),
        Oracle.check_adaptive ?jobs ~dists:[ d ] ?fault small )

let report ?jobs ?fault (t : Oracle.instance) =
  let minimized, diagnostics = shrink ?jobs ?fault t in
  { instance = t; minimized; minimized_dist = None; diagnostics }

let report_adaptive ?jobs ?fault (t : Oracle.instance) =
  let minimized, minimized_dist, diagnostics = shrink_adaptive ?jobs ?fault t in
  { instance = t; minimized; minimized_dist; diagnostics }

let render r =
  let t = r.instance in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "FAIL seed=%d (tables=%d, joins=%d)\n" t.Oracle.seed t.Oracle.tables
       t.Oracle.joins);
  Buffer.add_string buf
    (Printf.sprintf "  query:     %s\n" (String.concat " " t.Oracle.relations));
  Buffer.add_string buf
    (Printf.sprintf "  minimized: %s\n" (String.concat " " r.minimized));
  (match r.minimized_dist with
  | Some d -> Buffer.add_string buf (Printf.sprintf "  est-error: %s\n" d)
  | None -> ());
  Buffer.add_string buf "  violated:\n";
  List.iter
    (fun d -> Buffer.add_string buf (Printf.sprintf "    %s\n" (D.to_string d)))
    r.diagnostics;
  Buffer.add_string buf
    (Printf.sprintf "  repro: raqo fuzz%s --seeds 1 --start %d --tables %d --joins %d\n"
       (if r.minimized_dist <> None then " --adaptive" else "")
       t.Oracle.seed t.Oracle.tables t.Oracle.joins);
  Buffer.contents buf

let m_seeds = Raqo_obs.Metrics.counter "raqo_fuzz_seeds_total"

let run ?tables ?joins ?jobs ?fault ?(adaptive = false)
    ?(progress = fun ~seed:_ ~failed:_ -> ()) ?(start = 1) ~seeds () =
  let failures = ref [] in
  for seed = start to start + seeds - 1 do
    if Raqo_obs.Obs.enabled () then Raqo_obs.Metrics.Counter.inc m_seeds;
    let t = Oracle.instance ?tables ?joins seed in
    let diags =
      if adaptive then Oracle.check_adaptive ?jobs t else check_full ?jobs ?fault t
    in
    match diags with
    | [] -> progress ~seed ~failed:false
    | _ :: _ ->
        progress ~seed ~failed:true;
        failures :=
          (if adaptive then report_adaptive ?jobs t else report ?jobs ?fault t)
          :: !failures
  done;
  List.rev !failures

let main ?tables ?joins ?jobs ?(adaptive = false) ?(start = 1) ~seeds () =
  (* The fuzz CLI always runs with observability on: the closing metrics
     summary doubles as a smoke test that instrumentation does not disturb
     the planners the oracle compares. *)
  Raqo_obs.Obs.set_enabled true;
  let progress ~seed ~failed =
    if failed then Printf.printf "seed %d: FAIL\n%!" seed
    else if seed mod 50 = 0 || seed = start + seeds - 1 then
      Printf.printf "seed %d: ok\n%!" seed
  in
  let failures = run ?tables ?joins ?jobs ~adaptive ~progress ~start ~seeds () in
  List.iter (fun r -> print_string (render r)) failures;
  Printf.printf "fuzz%s: %d seeds, %d failure%s\n"
    (if adaptive then " (adaptive)" else "")
    seeds (List.length failures)
    (if List.length failures = 1 then "" else "s");
  let v name = Raqo_obs.Metrics.Counter.value (Raqo_obs.Metrics.counter name) in
  Printf.printf
    "metrics: seeds=%d oracle-arms=%d cost-evaluations=%d cache-hits=%d cache-misses=%d\n"
    (v "raqo_fuzz_seeds_total")
    (v "raqo_fuzz_oracle_arms_total")
    (v "raqo_cost_evaluations_total")
    (v "raqo_plan_cache_hits_total")
    (v "raqo_plan_cache_misses_total");
  (* The parallel shared-memo DP arms: claims = subproblems computed,
     conflicts = lost claim races (0 under cursor-based work sharing),
     publishes must equal claims when no arm raised. *)
  Printf.printf "memo: claims=%d conflicts=%d publishes=%d hits=%d\n"
    (v "raqo_memo_claims_total")
    (v "raqo_memo_conflicts_total")
    (v "raqo_memo_publishes_total")
    (v "raqo_memo_hits_total");
  if not adaptive then
    Printf.printf "alloc: surfaces=%d evaluations=%d frontier-points=%d exact-states=%d moves=%d\n"
      (v "raqo_alloc_surfaces_total")
      (v "raqo_alloc_evaluations_total")
      (v "raqo_alloc_frontier_points_total")
      (v "raqo_alloc_exact_states_total")
      (v "raqo_alloc_moves_total");
  if adaptive then
    Printf.printf "adaptive: replans=%d switches=%d failed-replans=%d\n"
      (v "raqo_adaptive_replans_total")
      (v "raqo_adaptive_switches_total")
      (v "raqo_adaptive_failed_replans_total");
  if failures = [] then 0 else 1
