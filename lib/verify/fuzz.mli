(** Seeded fuzz harness over the differential oracle: generate random
    instances, check them, and greedily shrink any failure to a minimal
    failing query with a self-contained printed repro. *)

type report = {
  instance : Oracle.instance;  (** the original failing instance *)
  minimized : string list;  (** smallest still-failing relation subset *)
  diagnostics : Diagnostic.t list;  (** violations on the minimized query *)
}

(** [shrink t] greedily drops relations from [t]'s query while the oracle
    still fails and the query stays connected; returns the minimized
    relation set and its diagnostics. Call only on failing instances (a
    passing instance shrinks to itself with []). *)
val shrink :
  ?jobs:int list -> ?fault:Oracle.fault -> Oracle.instance -> string list * Diagnostic.t list

(** [report t] is {!shrink} packaged with the originating instance. *)
val report : ?jobs:int list -> ?fault:Oracle.fault -> Oracle.instance -> report

(** [render r] formats a failure as a self-contained repro block: seed,
    generation parameters, original and minimized query, violated
    invariants, and the CLI command that replays it. *)
val render : report -> string

(** [run ?tables ?joins ?jobs ?fault ?progress ?start ~seeds ()] checks
    seeds [start .. start + seeds - 1] and returns a shrunk report per
    failing seed. [progress] is invoked once per seed. *)
val run :
  ?tables:int ->
  ?joins:int ->
  ?jobs:int list ->
  ?fault:Oracle.fault ->
  ?progress:(seed:int -> failed:bool -> unit) ->
  ?start:int ->
  seeds:int ->
  unit ->
  report list

(** [main] is the CLI entry point: prints progress, every rendered failure,
    and a summary; returns the process exit code (0 clean, 1 failures). *)
val main : ?tables:int -> ?joins:int -> ?jobs:int list -> ?start:int -> seeds:int -> unit -> int
