(** Seeded fuzz harness over the differential oracle: generate random
    instances, check them, and greedily shrink any failure to a minimal
    failing query with a self-contained printed repro. The adaptive mode
    runs {!Oracle.check_adaptive} instead and additionally shrinks along the
    error-seed dimension, isolating a single failing (distribution, seed)
    error pattern. *)

type report = {
  instance : Oracle.instance;  (** the original failing instance *)
  minimized : string list;  (** smallest still-failing relation subset *)
  minimized_dist : string option;
      (** adaptive shrinking only: a single error spec
          (["DIST=MAG:SEED"], {!Raqo_execsim.Estimation_error.to_string})
          that still fails on the minimized query; [None] when only the full
          distribution sweep fails, or for non-adaptive reports *)
  diagnostics : Diagnostic.t list;  (** violations on the minimized query *)
}

(** [shrink t] greedily drops relations from [t]'s query while the oracle
    still fails and the query stays connected; returns the minimized
    relation set and its diagnostics. Call only on failing instances (a
    passing instance shrinks to itself with []). *)
val shrink :
  ?jobs:int list -> ?fault:Oracle.fault -> Oracle.instance -> string list * Diagnostic.t list

(** [shrink_adaptive t] is {!shrink} against the adaptive oracle, followed
    by the error-seed dimension: the minimized relation set, the isolated
    single failing error spec (if any single distribution suffices), and the
    diagnostics of that narrowest still-failing configuration. *)
val shrink_adaptive :
  ?jobs:int list ->
  ?fault:Oracle.masked_fault ->
  Oracle.instance ->
  string list * string option * Diagnostic.t list

(** [report t] is {!shrink} packaged with the originating instance. *)
val report : ?jobs:int list -> ?fault:Oracle.fault -> Oracle.instance -> report

(** [report_adaptive t] is {!shrink_adaptive} packaged with the instance. *)
val report_adaptive :
  ?jobs:int list -> ?fault:Oracle.masked_fault -> Oracle.instance -> report

(** [render r] formats a failure as a self-contained repro block: seed,
    generation parameters, original and minimized query, the isolated error
    spec for adaptive failures, violated invariants, and the CLI command
    that replays it. *)
val render : report -> string

(** [run ?tables ?joins ?jobs ?fault ?adaptive ?progress ?start ~seeds ()]
    checks seeds [start .. start + seeds - 1] and returns a shrunk report
    per failing seed. [adaptive] (default false) swaps in
    {!Oracle.check_adaptive} ([fault] applies to the classic oracle only).
    [progress] is invoked once per seed. *)
val run :
  ?tables:int ->
  ?joins:int ->
  ?jobs:int list ->
  ?fault:Oracle.fault ->
  ?adaptive:bool ->
  ?progress:(seed:int -> failed:bool -> unit) ->
  ?start:int ->
  seeds:int ->
  unit ->
  report list

(** [main] is the CLI entry point: prints progress, every rendered failure,
    and a summary; returns the process exit code (0 clean, 1 failures). *)
val main :
  ?tables:int ->
  ?joins:int ->
  ?jobs:int list ->
  ?adaptive:bool ->
  ?start:int ->
  seeds:int ->
  unit ->
  int
