module Join_tree = Raqo_plan.Join_tree
module Join_impl = Raqo_plan.Join_impl
module Resources = Raqo_cluster.Resources
module Conditions = Raqo_cluster.Conditions
module Schema = Raqo_catalog.Schema
module Join_graph = Raqo_catalog.Join_graph
module Op_cost = Raqo_cost.Op_cost
module Plan_cache = Raqo_resource.Plan_cache
module D = Diagnostic

let names xs = String.concat " " xs

(* ----------------------------------------------------------------- trees *)

let check_shape ~schema ~expected tree =
  let leaves = Join_tree.relations tree in
  let sorted = List.sort compare leaves in
  let rec dups = function
    | a :: (b :: _ as rest) -> if a = b then a :: dups rest else dups rest
    | [ _ ] | [] -> []
  in
  let duplicated =
    List.map
      (fun r -> D.v ~invariant:"tree/duplicate-leaf" "relation %s appears more than once" r)
      (List.sort_uniq compare (dups sorted))
  in
  let expected_set = List.sort_uniq compare expected in
  let leaf_set = List.sort_uniq compare leaves in
  let missing =
    List.filter_map
      (fun r ->
        if List.mem r leaf_set then None
        else Some (D.v ~invariant:"tree/missing-leaf" "query relation %s has no leaf" r))
      expected_set
  in
  let extra =
    List.filter_map
      (fun r ->
        if List.mem r expected_set then None
        else Some (D.v ~invariant:"tree/extra-leaf" "leaf %s is not in the query" r))
      leaf_set
  in
  let unknown =
    List.filter_map
      (fun r ->
        if Schema.mem schema r then None
        else Some (D.v ~invariant:"tree/unknown-relation" "leaf %s is not in the schema" r))
      leaf_set
  in
  let graph = Schema.graph schema in
  let cartesian =
    Join_tree.fold_joins
      (fun acc _ left right ->
        if
          List.for_all (Schema.mem schema) (left @ right)
          && Join_graph.edges_between graph left right = []
        then
          D.v ~invariant:"tree/cartesian-join" "join [%s] x [%s] crosses no join edge"
            (names left) (names right)
          :: acc
        else acc)
      [] tree
  in
  duplicated @ missing @ extra @ unknown @ List.rev cartesian

(* ------------------------------------------------------------- resources *)

let check_resources ?(grid = false) ~conditions tree =
  let check acc (_, (r : Resources.t)) left right =
    let where = Printf.sprintf "join [%s] x [%s]" (names left) (names right) in
    let acc =
      if r.Resources.containers < conditions.Conditions.min_containers
         || r.Resources.containers > conditions.Conditions.max_containers
      then
        D.v ~invariant:"resources/containers-out-of-bounds" "%s: %d containers outside %d..%d"
          where r.Resources.containers conditions.Conditions.min_containers
          conditions.Conditions.max_containers
        :: acc
      else acc
    in
    let acc =
      if r.Resources.container_gb < conditions.Conditions.min_gb -. 1e-9
         || r.Resources.container_gb > conditions.Conditions.max_gb +. 1e-9
      then
        D.v ~invariant:"resources/memory-out-of-bounds" "%s: %.3f GB outside %.3f..%.3f"
          where r.Resources.container_gb conditions.Conditions.min_gb
          conditions.Conditions.max_gb
        :: acc
      else acc
    in
    if grid && not (Conditions.contains conditions r) then
      D.v ~invariant:"resources/off-grid" "%s: %s not on the condition grid" where
        (Resources.to_string r)
      :: acc
    else acc
  in
  List.rev (Join_tree.fold_joins check [] tree)

let check_bhj_memory ~model ~schema tree =
  let check acc (impl, resources) left right =
    match impl with
    | Join_impl.Smj -> acc
    | Join_impl.Bhj ->
        let small_gb =
          Float.min (Schema.join_size_gb schema left) (Schema.join_size_gb schema right)
        in
        if Option.is_some (Op_cost.predict model Join_impl.Bhj ~small_gb ~resources) then acc
        else
          D.v ~invariant:"resources/bhj-oom"
            "BHJ [%s] x [%s]: %.2f GB build side exceeds %.2f GB headroom of %s" (names left)
            (names right) small_gb
            (model.Op_cost.oom_headroom *. resources.Resources.container_gb)
            (Resources.to_string resources)
          :: acc
  in
  List.rev (Join_tree.fold_joins check [] tree)

(* ----------------------------------------------------------------- costs *)

let check_cost ?(what = "plan") cost =
  if not (Float.is_finite cost) then
    [ D.v ~invariant:"cost/non-finite" "%s cost is %f" what cost ]
  else if cost < 0.0 then [ D.v ~invariant:"cost/negative" "%s cost is %f" what cost ]
  else []

let check_joint ~model ~conditions ~schema ~expected (tree, cost) =
  check_shape ~schema ~expected tree
  @ check_resources ~conditions tree
  @ check_bhj_memory ~model ~schema tree
  @ check_cost cost

(* ---------------------------------------------------------------- pareto *)

let check_pareto ~objective ~describe items =
  let arr = Array.of_list items in
  let out = ref [] in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i <> j && Raqo_cost.Objective.dominates (objective a) (objective b) then
            out :=
              D.v ~invariant:"pareto/dominated" "%s is dominated by %s" (describe b)
                (describe a)
              :: !out)
        arr)
    arr;
  List.rev !out

(* ----------------------------------------------------------------- cache *)

let check_cache_lookup cache ~key ~data_gb lookup =
  let result = Plan_cache.find cache ~key ~data_gb lookup in
  let entries = Plan_cache.entries cache ~key in
  let dist k = Float.abs (k -. data_gb) in
  let in_radius radius = List.filter (fun (k, _) -> dist k <= radius) entries in
  let fail invariant fmt = D.v ~invariant fmt in
  match (lookup, result) with
  | Plan_cache.Exact, None ->
      if List.exists (fun (k, _) -> k = data_gb) entries then
        [ fail "cache/exact-missed" "%s: exact entry at %g not returned" key data_gb ]
      else []
  | Plan_cache.Exact, Some r ->
      if List.exists (fun (k, v) -> k = data_gb && Resources.equal v r) entries then []
      else
        [ fail "cache/exact-wrong" "%s: returned %s, no exact entry at %g matches" key
            (Resources.to_string r) data_gb ]
  | Plan_cache.Nearest_neighbor radius, None ->
      if in_radius radius = [] then []
      else [ fail "cache/nn-missed" "%s: entries within %g of %g but no answer" key radius data_gb ]
  | Plan_cache.Nearest_neighbor radius, Some r -> begin
      match in_radius radius with
      | [] ->
          [ fail "cache/nn-out-of-radius" "%s: answered %s with no entry within %g of %g" key
              (Resources.to_string r) radius data_gb ]
      | close ->
          let dmin = List.fold_left (fun acc (k, _) -> Float.min acc (dist k)) infinity close in
          if List.exists (fun (k, v) -> dist k = dmin && Resources.equal v r) close then []
          else
            [ fail "cache/nn-not-nearest" "%s: %s is not a nearest entry to %g (dmin %g)" key
                (Resources.to_string r) data_gb dmin ]
    end
  | Plan_cache.Weighted_average radius, None ->
      if in_radius radius = [] then []
      else [ fail "cache/wa-missed" "%s: entries within %g of %g but no answer" key radius data_gb ]
  | Plan_cache.Weighted_average radius, Some r -> begin
      match in_radius radius with
      | [] ->
          [ fail "cache/wa-out-of-radius" "%s: answered %s with no entry within %g of %g" key
              (Resources.to_string r) radius data_gb ]
      | close -> begin
          let eps = Plan_cache.exact_epsilon ~data_gb in
          match List.find_opt (fun (k, _) -> dist k <= eps) close with
          | Some (_, exact) ->
              if Resources.equal r exact then []
              else
                [ fail "cache/wa-not-exact" "%s: near-exact entry %s at %g, got %s" key
                    (Resources.to_string exact) data_gb (Resources.to_string r) ]
          | None ->
              (* The weighted average is a convex combination: every field must
                 lie inside the hull of the contributing entries (containers
                 rounded, and floored at 1 by [Resources.make]). *)
              let fold f init = List.fold_left (fun acc (_, v) -> f acc v) init close in
              let min_c = fold (fun a (v : Resources.t) -> min a v.containers) max_int in
              let max_c = fold (fun a (v : Resources.t) -> max a v.containers) min_int in
              let min_gb = fold (fun a (v : Resources.t) -> Float.min a v.container_gb) infinity in
              let max_gb =
                fold (fun a (v : Resources.t) -> Float.max a v.container_gb) neg_infinity
              in
              let ok_c = r.Resources.containers >= max 1 (min_c - 1) && r.Resources.containers <= max_c + 1 in
              let ok_gb =
                r.Resources.container_gb >= min_gb -. 1e-9
                && r.Resources.container_gb <= max_gb +. 1e-9
              in
              if ok_c && ok_gb then []
              else
                [ fail "cache/wa-outside-hull"
                    "%s: %s outside hull [%d..%d] x [%.3f..%.3f] of in-radius entries" key
                    (Resources.to_string r) min_c max_c min_gb max_gb ]
        end
    end
