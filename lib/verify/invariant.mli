(** Structural validity checks for joint plans and the data structures around
    them. Each check returns the (possibly empty) list of violated
    invariants as {!Diagnostic.t} values; an empty list means the property
    holds. Checks never raise on malformed input — malformed input is
    precisely what they exist to describe. *)

(** [check_shape ~schema ~expected tree] verifies join-tree well-formedness:
    every base relation appears exactly once, the leaf set equals the query
    relation set [expected], every leaf is a schema relation, and every join
    node is crossed by at least one join edge (no hidden cartesian
    products). Works on any annotation type. *)
val check_shape :
  schema:Raqo_catalog.Schema.t ->
  expected:string list ->
  'a Raqo_plan.Join_tree.t ->
  Diagnostic.t list

(** [check_resources ?grid ~conditions tree] verifies every per-operator
    resource configuration lies within the cluster bounds. With [grid=true]
    it additionally requires each configuration to sit on the condition
    grid (off by default: weighted-average cache answers and clamped hill
    climbs legitimately interpolate between grid points). *)
val check_resources :
  ?grid:bool ->
  conditions:Raqo_cluster.Conditions.t ->
  Raqo_plan.Join_tree.joint ->
  Diagnostic.t list

(** [check_bhj_memory ~model ~schema tree] verifies every broadcast-hash join
    is memory-feasible: the build side fits in the configured container
    memory with the model's OOM headroom. *)
val check_bhj_memory :
  model:Raqo_cost.Op_cost.t ->
  schema:Raqo_catalog.Schema.t ->
  Raqo_plan.Join_tree.joint ->
  Diagnostic.t list

(** [check_cost ?what cost] verifies a cost is finite and non-negative. *)
val check_cost : ?what:string -> float -> Diagnostic.t list

(** [check_joint ~model ~conditions ~schema ~expected (tree, cost)] runs all
    of the above on one emitted joint plan. *)
val check_joint :
  model:Raqo_cost.Op_cost.t ->
  conditions:Raqo_cluster.Conditions.t ->
  schema:Raqo_catalog.Schema.t ->
  expected:string list ->
  Raqo_plan.Join_tree.joint * float ->
  Diagnostic.t list

(** [check_pareto ~objective ~describe items] verifies a claimed Pareto front
    is mutually non-dominated: no element dominates another under
    {!Raqo_cost.Objective.dominates}. *)
val check_pareto :
  objective:('a -> Raqo_cost.Objective.t) ->
  describe:('a -> string) ->
  'a list ->
  Diagnostic.t list

(** [check_cache_lookup cache ~key ~data_gb lookup] performs the lookup and
    audits the answer against the cache's stored entries: exact lookups must
    return the exact entry, nearest-neighbor answers must be a nearest
    in-radius entry, weighted-average answers must equal a near-exact entry
    when one exists and otherwise lie within the convex hull of the
    in-radius entries; and no lookup may answer from outside its radius. *)
val check_cache_lookup :
  Raqo_resource.Plan_cache.t ->
  key:string ->
  data_gb:float ->
  Raqo_resource.Plan_cache.lookup ->
  Diagnostic.t list
